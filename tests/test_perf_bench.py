"""The benchmark suite and its regression gate.

Runs the real suites on the small pinned instance (tiny workload, one
repeat) and checks the machine-readable contract: the JSON schema
``suite -> {metric, value, unit, instance, seed}``, backend consistency,
the gate's pass/fail/skip behavior that CI relies on, and that the
timings written to JSON agree with the ``bench.*`` spans and gauges the
run reports to the metrics registry (the no-drift guarantee).
"""

import importlib.util
import json
import pathlib

import pytest

from repro.obs.catalog import (
    BENCH_SUITE_DURATION_SECONDS,
    SPAN_DURATION_SECONDS,
)
from repro.obs.registry import Registry, use_registry
from repro.perf.bench import (
    ZOO_FAMILIES,
    render_results,
    run_bench,
    run_zoo_bench,
    write_results,
)

ROOT = pathlib.Path(__file__).parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_gate", ROOT / "tools" / "bench_gate.py"
)
bench_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_gate)

REQUIRED_SUITES = (
    "pll_construction",
    "build_throughput",
    "build_speedup",
    "build_consistency",
    "flat_conversion",
    "cache_store",
    "cache_hit_latency",
    "batch_throughput_dict",
    "batch_throughput_flat",
    "batch_speedup",
    "backend_consistency",
    "label_memory_dict",
    "label_memory_flat",
    "serving_throughput",
    "serving_batch_throughput",
    "serving_speedup",
    "serving_consistency",
    "serving_throughput_sharded",
    "sharded_consistency",
    "sssp_rows",
    "obs_overhead",
    "update_latency",
    "qps_under_churn",
    "churn_consistency",
)

#: Suites whose gauge records the duration behind a JSON value.
TIMED_SUITES = (
    "pll_construction",
    "build_throughput",
    "flat_conversion",
    "cache_store",
    "cache_hit_latency",
    "batch_throughput_dict",
    "batch_throughput_flat",
    "sssp_rows",
    "obs_overhead",
)


@pytest.fixture(scope="module")
def bench_run():
    # Module-scoped fixtures are created before the function-scoped
    # autouse registry swap in conftest, so isolate explicitly here and
    # hand the registry to the agreement tests alongside the results.
    registry = Registry()
    with use_registry(registry):
        results = run_bench(quick=True, num_sources=4, repeats=1)
    return results, registry


@pytest.fixture(scope="module")
def results(bench_run):
    return bench_run[0]


class TestBenchSchema:
    def test_every_suite_present(self, results):
        for suite in REQUIRED_SUITES:
            assert suite in results, suite

    def test_entry_schema(self, results):
        for suite, row in results.items():
            for key in ("metric", "value", "unit", "instance", "seed"):
                assert key in row, (suite, key)
            assert row["instance"] == "G(2,1)"
            assert row["seed"] == 7
            assert isinstance(row["value"], (int, float))

    def test_backends_consistent(self, results):
        assert results["backend_consistency"]["value"] == 0
        assert results["backend_consistency"]["pairs"] > 0

    def test_direct_builder_consistent(self, results):
        assert results["build_consistency"]["value"] == 0
        assert results["build_consistency"]["vertices"] > 0

    def test_build_suites(self, results):
        assert results["build_throughput"]["value"] > 0
        assert results["build_speedup"]["value"] > 0
        assert results["flat_conversion"]["direct_s"] > 0

    def test_cache_suites(self, results):
        assert results["cache_store"]["value"] > 0
        assert results["cache_hit_latency"]["value"] > 0
        assert results["cache_hit_latency"]["hit"] == 1

    def test_cache_hit_reports_both_doors(self, results):
        # The entry value stays the deserialize time (what baselines
        # compare), with the zero-copy mmap load reported alongside.
        row = results["cache_hit_latency"]
        assert row["deserialize_s"] == row["value"]
        assert row["mmap_s"] > 0
        assert row["mmap_hit"] == 1

    def test_sharded_suites(self, results):
        sharded = results["serving_throughput_sharded"]
        assert sharded["value"] > 0
        assert sharded["workers"] == 4
        assert sharded["single_process_qps"] > 0
        consistency = results["sharded_consistency"]
        assert consistency["value"] == 0
        assert consistency["pairs"] > 0

    def test_throughputs_positive(self, results):
        assert results["batch_throughput_dict"]["value"] > 0
        assert results["batch_throughput_flat"]["value"] > 0
        assert results["batch_speedup"]["value"] > 0

    def test_dynamic_suites(self, results):
        # The repair path must both move (positive rates, mutations
        # actually landed inside the churn window) and stay exact
        # (zero repair-vs-rebuild mismatches).
        assert results["update_latency"]["value"] > 0
        assert results["update_latency"]["ops"] == 2
        churn = results["qps_under_churn"]
        assert churn["value"] > 0
        assert churn["mutations"] >= 1
        consistency = results["churn_consistency"]
        assert consistency["value"] == 0
        assert consistency["pairs"] > 0
        assert consistency["mutations"] >= 1

    def test_render_lists_every_suite(self, results):
        text = render_results(results)
        for suite in REQUIRED_SUITES:
            assert suite in text

    def test_write_results_round_trips(self, results, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        write_results(results, str(out))
        assert json.loads(out.read_text()) == json.loads(
            json.dumps(results)
        )


def _entry(metric, value, instance="G(2,1)"):
    return {
        "metric": metric,
        "value": value,
        "unit": "queries/s",
        "instance": instance,
        "seed": 7,
    }


class TestGateLogic:
    def test_within_bounds_passes(self):
        current = {"t": _entry("throughput", 95.0)}
        baseline = {"t": _entry("throughput", 100.0)}
        assert bench_gate.compare(current, baseline, 0.20) == []

    def test_regression_fails(self):
        current = {"t": _entry("throughput", 70.0)}
        baseline = {"t": _entry("throughput", 100.0)}
        failures = bench_gate.compare(current, baseline, 0.20)
        assert len(failures) == 1
        assert "below baseline" in failures[0]

    def test_non_throughput_metrics_not_gated(self):
        current = {"m": _entry("build_time", 900.0)}
        baseline = {"m": _entry("build_time", 1.0)}
        assert bench_gate.compare(current, baseline, 0.20) == []

    def test_instance_mismatch_skipped(self, capsys):
        current = {"t": _entry("throughput", 1.0, instance="G(2,2)")}
        baseline = {"t": _entry("throughput", 100.0)}
        assert bench_gate.compare(current, baseline, 0.20) == []

    def test_backend_mismatch_fails(self):
        current = {"backend_consistency": _entry("mismatches", 3)}
        assert bench_gate.self_check(current, 0.10)

    def test_build_mismatch_fails(self):
        current = {"build_consistency": _entry("mismatches", 2)}
        failures = bench_gate.self_check(current, 0.10)
        assert len(failures) == 1
        assert "build_consistency" in failures[0]

    def test_build_consistency_zero_passes(self):
        current = {"build_consistency": _entry("mismatches", 0)}
        assert bench_gate.self_check(current, 0.10) == []

    def test_sharded_mismatch_fails(self):
        current = {"sharded_consistency": _entry("mismatches", 1)}
        failures = bench_gate.self_check(current, 0.10)
        assert len(failures) == 1
        assert "sharded_consistency" in failures[0]

    def test_churn_mismatch_fails(self):
        current = {"churn_consistency": _entry("mismatches", 1)}
        failures = bench_gate.self_check(current, 0.10)
        assert len(failures) == 1
        assert "churn_consistency" in failures[0]

    def test_churn_consistency_zero_passes(self):
        current = {"churn_consistency": _entry("mismatches", 0)}
        assert bench_gate.self_check(current, 0.10) == []

    def test_sharded_ratio_floor_on_full_instance(self):
        current = {
            "serving_throughput_sharded": _entry(
                "throughput", 250.0, instance="G(2,2)"
            ),
            "serving_batch_throughput": _entry(
                "throughput", 100.0, instance="G(2,2)"
            ),
        }
        assert bench_gate.self_check(current, 0.10) == []
        current["serving_throughput_sharded"]["value"] = 120.0
        failures = bench_gate.self_check(current, 0.10)
        assert len(failures) == 1
        assert "serving_throughput_sharded" in failures[0]
        assert "1.20x" in failures[0]

    def test_sharded_ratio_core_starved_exempt(self, capsys):
        # Fan-out cannot beat one process without cores to fan out
        # onto; such runs record the honest rate but are not floored.
        current = {
            "serving_throughput_sharded": dict(
                _entry("throughput", 50.0, instance="G(2,2)"),
                workers=4,
                cores=1,
            ),
            "serving_batch_throughput": _entry(
                "throughput", 100.0, instance="G(2,2)"
            ),
        }
        assert bench_gate.self_check(current, 0.10) == []
        assert "core" in capsys.readouterr().out

    def test_sharded_ratio_quick_instance_exempt(self):
        current = {
            "serving_throughput_sharded": _entry("throughput", 50.0),
            "serving_batch_throughput": _entry("throughput", 100.0),
        }
        assert bench_gate.self_check(current, 0.10) == []

    def test_overhead_within_budget_passes(self):
        current = {"obs_overhead": _entry("overhead", 1.07)}
        assert bench_gate.self_check(current, 0.10) == []

    def test_overhead_above_budget_fails(self):
        current = {"obs_overhead": _entry("overhead", 1.23)}
        failures = bench_gate.self_check(current, 0.10)
        assert len(failures) == 1
        assert "obs_overhead" in failures[0]

    def test_real_run_overhead_within_gate(self, results):
        assert bench_gate.self_check(results, 0.10) == []

    def test_speedup_is_gated(self):
        current = {"s": _entry("speedup", 2.0)}
        baseline = {"s": _entry("speedup", 3.0)}
        assert bench_gate.compare(current, baseline, 0.20)

    def test_missing_baseline_runs_self_checks_only(self, tmp_path, capsys):
        current = tmp_path / "cur.json"
        current.write_text("{}")
        code = bench_gate.main(
            [
                "--current",
                str(current),
                "--baseline",
                str(tmp_path / "missing.json"),
            ]
        )
        assert code == 0
        assert "self-checks only" in capsys.readouterr().out

    def test_missing_baseline_still_gates_overhead(self, tmp_path):
        current = tmp_path / "cur.json"
        current.write_text(json.dumps({"obs_overhead": _entry("overhead", 1.5)}))
        code = bench_gate.main(
            [
                "--current",
                str(current),
                "--baseline",
                str(tmp_path / "missing.json"),
            ]
        )
        assert code == 1

    def test_missing_current_file_skips(self, tmp_path, capsys):
        code = bench_gate.main(
            [
                "--current",
                str(tmp_path / "missing.json"),
                "--baseline",
                str(tmp_path / "also-missing.json"),
            ]
        )
        assert code == 0
        assert "skipping" in capsys.readouterr().out

    def test_main_pass_and_fail(self, tmp_path):
        cur = tmp_path / "cur.json"
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"t": _entry("throughput", 100.0)}))
        cur.write_text(json.dumps({"t": _entry("throughput", 99.0)}))
        assert (
            bench_gate.main(
                ["--current", str(cur), "--baseline", str(base)]
            )
            == 0
        )
        cur.write_text(json.dumps({"t": _entry("throughput", 9.0)}))
        assert (
            bench_gate.main(
                ["--current", str(cur), "--baseline", str(base)]
            )
            == 1
        )

    def test_committed_baseline_is_machine_portable(self):
        """The repo's baseline gates ratios, never absolute rates."""
        path = ROOT / "benchmarks" / "baselines" / "BENCH_quick.json"
        baseline = json.loads(path.read_text())
        for suite, row in baseline.items():
            assert row["unit"] in ("x", "pairs", "vertices"), suite


class TestMetricsAgreement:
    """BENCH_perf.json and the registry must report the same timings."""

    def test_every_timed_suite_has_a_duration_gauge(self, bench_run):
        _, registry = bench_run
        for suite in TIMED_SUITES:
            gauge = registry.get(BENCH_SUITE_DURATION_SECONDS, suite=suite)
            assert gauge is not None, suite
            assert gauge.value > 0, suite

    def test_gauge_is_the_best_span_duration(self, bench_run):
        # The gauge is set to the exact float returned by the timing
        # loop, which is the minimum of the per-repeat span durations --
        # identity, not approximation.
        _, registry = bench_run
        for suite in TIMED_SUITES:
            if suite == "pll_construction":
                continue  # timed by a single span, checked below
            gauge = registry.get(BENCH_SUITE_DURATION_SECONDS, suite=suite)
            hist = registry.get(
                SPAN_DURATION_SECONDS, span=f"bench.{suite}"
            )
            assert hist is not None, suite
            assert hist.count >= 1
            assert gauge.value == hist.min

    def test_pll_construction_gauge_matches_span(self, bench_run):
        _, registry = bench_run
        gauge = registry.get(
            BENCH_SUITE_DURATION_SECONDS, suite="pll_construction"
        )
        hist = registry.get(
            SPAN_DURATION_SECONDS, span="bench.pll_construction"
        )
        assert hist is not None and hist.count == 1
        assert gauge.value == hist.min == hist.max

    def test_json_values_derive_from_gauge_durations(self, bench_run):
        results, registry = bench_run
        checks = {
            "pll_construction": lambda row, d: row["value"]
            == round(d, 6),
            "batch_throughput_dict": lambda row, d: row["value"]
            == round(row["pairs"] / d, 1),
            "batch_throughput_flat": lambda row, d: row["value"]
            == round(row["pairs"] / d, 1),
            "sssp_rows": lambda row, d: row["value"]
            == round(row["roots"] / d, 3),
        }
        for suite, check in checks.items():
            gauge = registry.get(BENCH_SUITE_DURATION_SECONDS, suite=suite)
            assert check(results[suite], gauge.value), suite


class TestZooBench:
    """The per-family zoo sweep: schema, agreement, gate acceptance."""

    ZOO_METRIC_SUITES = (
        "label_memory",
        "batch_speedup",
        "serving_batch_throughput",
        "consistency",
    )

    @pytest.fixture(scope="class")
    def zoo_run(self):
        registry = Registry()
        with use_registry(registry):
            results = run_zoo_bench(
                quick=True, num_sources=4, repeats=1, scale=64
            )
        return results, registry

    @pytest.fixture(scope="class")
    def zoo_results(self, zoo_run):
        return zoo_run[0]

    def test_every_family_emits_every_suite(self, zoo_results):
        for family in ZOO_FAMILIES:
            for metric_suite in self.ZOO_METRIC_SUITES:
                assert f"graph_zoo.{family}.{metric_suite}" in zoo_results

    def test_entry_schema_carries_family(self, zoo_results):
        for suite, row in zoo_results.items():
            assert suite.startswith("graph_zoo.")
            for key in ("metric", "value", "unit", "instance", "seed",
                        "family", "n"):
                assert key in row, (suite, key)
            assert row["instance"] == f"{row['family']}(n={row['n']})"
            assert isinstance(row["value"], (int, float))

    def test_all_families_consistent(self, zoo_results):
        for family in ZOO_FAMILIES:
            row = zoo_results[f"graph_zoo.{family}.consistency"]
            assert row["value"] == 0, family
            assert row["pairs"] > 0

    def test_memory_and_throughput_positive(self, zoo_results):
        for family in ZOO_FAMILIES:
            assert zoo_results[f"graph_zoo.{family}.label_memory"]["value"] > 0
            serving = zoo_results[
                f"graph_zoo.{family}.serving_batch_throughput"
            ]
            assert serving["value"] > 0
            assert serving["pairs"] > 0

    def test_gate_accepts_a_clean_zoo_run(self, zoo_results):
        assert bench_gate.self_check(zoo_results, 0.10) == []

    def test_gate_fails_any_family_mismatch(self, zoo_results):
        poisoned = json.loads(json.dumps(zoo_results))
        poisoned["graph_zoo.road.consistency"]["value"] = 2
        failures = bench_gate.self_check(poisoned, 0.10)
        assert len(failures) == 1
        assert "graph_zoo.road.consistency" in failures[0]
        assert "road" in failures[0]

    def test_zoo_timings_mirrored_into_gauges(self, zoo_run):
        zoo_results, registry = zoo_run
        for family in ZOO_FAMILIES:
            suite = f"graph_zoo.{family}.serving_batch_throughput"
            gauge = registry.get(BENCH_SUITE_DURATION_SECONDS, suite=suite)
            hist = registry.get(SPAN_DURATION_SECONDS, span=f"bench.{suite}")
            assert gauge is not None and hist is not None, suite
            assert gauge.value == hist.min
            row = zoo_results[suite]
            assert row["value"] == round(row["pairs"] / gauge.value, 1)

    def test_ratio_gate_compares_per_family(self):
        current = {
            "graph_zoo.ba.batch_speedup": {
                "metric": "speedup", "value": 1.0, "unit": "x",
                "instance": "ba(n=64)", "seed": 7, "family": "ba", "n": 64,
            }
        }
        baseline = json.loads(json.dumps(current))
        baseline["graph_zoo.ba.batch_speedup"]["value"] = 2.0
        failures = bench_gate.compare(current, baseline, 0.20)
        assert len(failures) == 1
        assert "graph_zoo.ba.batch_speedup" in failures[0]
