"""The benchmark suite and its regression gate.

Runs the real suites on the small pinned instance (tiny workload, one
repeat) and checks the machine-readable contract: the JSON schema
``suite -> {metric, value, unit, instance, seed}``, backend consistency,
and the gate's pass/fail/skip behavior that CI relies on.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.perf.bench import render_results, run_bench, write_results

ROOT = pathlib.Path(__file__).parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_gate", ROOT / "tools" / "bench_gate.py"
)
bench_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_gate)

REQUIRED_SUITES = (
    "pll_construction",
    "flat_conversion",
    "batch_throughput_dict",
    "batch_throughput_flat",
    "batch_speedup",
    "backend_consistency",
    "label_memory_dict",
    "label_memory_flat",
    "sssp_rows",
)


@pytest.fixture(scope="module")
def results():
    return run_bench(quick=True, num_sources=4, repeats=1)


class TestBenchSchema:
    def test_every_suite_present(self, results):
        for suite in REQUIRED_SUITES:
            assert suite in results, suite

    def test_entry_schema(self, results):
        for suite, row in results.items():
            for key in ("metric", "value", "unit", "instance", "seed"):
                assert key in row, (suite, key)
            assert row["instance"] == "G(2,1)"
            assert row["seed"] == 7
            assert isinstance(row["value"], (int, float))

    def test_backends_consistent(self, results):
        assert results["backend_consistency"]["value"] == 0
        assert results["backend_consistency"]["pairs"] > 0

    def test_throughputs_positive(self, results):
        assert results["batch_throughput_dict"]["value"] > 0
        assert results["batch_throughput_flat"]["value"] > 0
        assert results["batch_speedup"]["value"] > 0

    def test_render_lists_every_suite(self, results):
        text = render_results(results)
        for suite in REQUIRED_SUITES:
            assert suite in text

    def test_write_results_round_trips(self, results, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        write_results(results, str(out))
        assert json.loads(out.read_text()) == json.loads(
            json.dumps(results)
        )


def _entry(metric, value, instance="G(2,1)"):
    return {
        "metric": metric,
        "value": value,
        "unit": "queries/s",
        "instance": instance,
        "seed": 7,
    }


class TestGateLogic:
    def test_within_bounds_passes(self):
        current = {"t": _entry("throughput", 95.0)}
        baseline = {"t": _entry("throughput", 100.0)}
        assert bench_gate.compare(current, baseline, 0.20) == []

    def test_regression_fails(self):
        current = {"t": _entry("throughput", 70.0)}
        baseline = {"t": _entry("throughput", 100.0)}
        failures = bench_gate.compare(current, baseline, 0.20)
        assert len(failures) == 1
        assert "below baseline" in failures[0]

    def test_non_throughput_metrics_not_gated(self):
        current = {"m": _entry("build_time", 900.0)}
        baseline = {"m": _entry("build_time", 1.0)}
        assert bench_gate.compare(current, baseline, 0.20) == []

    def test_instance_mismatch_skipped(self, capsys):
        current = {"t": _entry("throughput", 1.0, instance="G(2,2)")}
        baseline = {"t": _entry("throughput", 100.0)}
        assert bench_gate.compare(current, baseline, 0.20) == []

    def test_backend_mismatch_fails(self):
        current = {"backend_consistency": _entry("mismatches", 3)}
        assert bench_gate.compare(current, {}, 0.20)

    def test_speedup_is_gated(self):
        current = {"s": _entry("speedup", 2.0)}
        baseline = {"s": _entry("speedup", 3.0)}
        assert bench_gate.compare(current, baseline, 0.20)

    def test_missing_baseline_file_skips(self, tmp_path, capsys):
        current = tmp_path / "cur.json"
        current.write_text("{}")
        code = bench_gate.main(
            [
                "--current",
                str(current),
                "--baseline",
                str(tmp_path / "missing.json"),
            ]
        )
        assert code == 0
        assert "skipping" in capsys.readouterr().out

    def test_main_pass_and_fail(self, tmp_path):
        cur = tmp_path / "cur.json"
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"t": _entry("throughput", 100.0)}))
        cur.write_text(json.dumps({"t": _entry("throughput", 99.0)}))
        assert (
            bench_gate.main(
                ["--current", str(cur), "--baseline", str(base)]
            )
            == 0
        )
        cur.write_text(json.dumps({"t": _entry("throughput", 9.0)}))
        assert (
            bench_gate.main(
                ["--current", str(cur), "--baseline", str(base)]
            )
            == 1
        )

    def test_committed_baseline_is_machine_portable(self):
        """The repo's baseline gates ratios, never absolute rates."""
        path = ROOT / "benchmarks" / "baselines" / "BENCH_quick.json"
        baseline = json.loads(path.read_text())
        for suite, row in baseline.items():
            assert row["unit"] in ("x", "pairs"), suite
