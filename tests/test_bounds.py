"""Closed-form bound curves."""

import math

from repro.core import (
    gppr_general_label_bits,
    gppr_sparse_label_lower_bound_bits,
    sqrt_n_lower_bound_bits,
    theorem_11_average_hub_lower_bound,
    theorem_14_average_hub_upper_bound,
    theorem_21_hub_sum_lower_bound,
    theorem_21_node_count_bounds,
)
from repro.rs import rs_lower_bound, rs_upper_bound, log_star


class TestTheoremCurves:
    def test_theorem_11_is_sublinear_but_barely(self):
        n = 10 ** 6
        value = theorem_11_average_hub_lower_bound(n)
        assert 0 < value < n
        # n / 2^{O(sqrt(log n))} dwarfs any fixed polynomial n^c, c < 1;
        # with constant 3 the sqrt(n) crossover sits at n = 2^36.
        assert theorem_11_average_hub_lower_bound(10 ** 13) > math.sqrt(10 ** 13)

    def test_theorem_11_monotone(self):
        values = [theorem_11_average_hub_lower_bound(10 ** k) for k in range(2, 8)]
        assert values == sorted(values)

    def test_theorem_14_below_n(self):
        for k in range(2, 7):
            n = 10 ** k
            assert 0 < theorem_14_average_hub_upper_bound(n) < n

    def test_theorem_14_larger_c_weaker(self):
        n = 10 ** 5
        assert theorem_14_average_hub_upper_bound(
            n, c=7
        ) > theorem_14_average_hub_upper_bound(n, c=3)

    def test_node_count_bounds_bracket(self):
        lower, upper = theorem_21_node_count_bounds(2, 2)
        assert lower == 4 ** 2 * 5
        assert upper > lower

    def test_hub_sum_bound_positive_and_growing(self):
        small = theorem_21_hub_sum_lower_bound(2, 2)
        large = theorem_21_hub_sum_lower_bound(3, 2)
        assert 0 < small < large

    def test_hub_sum_bound_formula(self):
        # b=2, l=1: s=4; triplets = 4 * 2 = 8; distortion = 4*16*4 = 256.
        assert theorem_21_hub_sum_lower_bound(2, 1) == 8 / 256

    def test_gppr_curves(self):
        assert gppr_general_label_bits(100) == 0.5 * math.log2(3) * 100
        assert gppr_sparse_label_lower_bound_bits(100) == 10
        assert sqrt_n_lower_bound_bits(64) == 8


class TestRSCurves:
    def test_envelope_order(self):
        for k in range(2, 9):
            n = 10 ** k
            assert 1 <= rs_lower_bound(n) <= rs_upper_bound(n)

    def test_log_star_known_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_rs_upper_bound_subpolynomial(self):
        # e^{c sqrt(ln n)} grows slower than any n^epsilon; with the
        # Behrend constant the sqrt(n) crossover sits near n ~ 4e9.
        n = 10 ** 12
        assert rs_upper_bound(n) < n ** 0.5
        ratios = [
            rs_upper_bound(10 ** k) / (10 ** k) ** 0.5 for k in (10, 14, 18)
        ]
        assert ratios == sorted(ratios, reverse=True)


class TestSumIndexCurves:
    def test_ambainis_curve_between_bounds(self):
        from repro.core import (
            ambainis_sumindex_upper_bound_bits,
            sqrt_n_lower_bound_bits,
        )

        for k in range(4, 10):
            n = 10 ** k
            upper = ambainis_sumindex_upper_bound_bits(n)
            assert sqrt_n_lower_bound_bits(n) < upper < n

    def test_ambainis_sublinear_ratio_shrinks(self):
        from repro.core import ambainis_sumindex_upper_bound_bits

        ratios = [
            ambainis_sumindex_upper_bound_bits(10 ** k) / 10 ** k
            for k in (4, 6, 8, 10)
        ]
        assert ratios == sorted(ratios, reverse=True)
