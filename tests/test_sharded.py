"""The multi-process sharded serving door.

:class:`~repro.serve.sharded.ShardedQueryServer` fans the existing
batch door out over worker processes reading one shared-memory label
store.  These tests hold it to the same contracts as the in-process
server: byte-identical answers (value AND type, ``inf`` included),
loud overload, loud domain errors, drain-then-stop shutdown with
surviving statistics, and transparent worker respawn surfaced through
the health report and the ``serve.worker_*`` metrics.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.core import pruned_landmark_labeling
from repro.graphs import Graph, random_sparse_graph
from repro.obs.catalog import (
    SERVE_WORKER_BATCHES,
    SERVE_WORKER_RESTARTS,
    SERVE_WORKERS_ALIVE,
)
from repro.oracles.oracle import HubLabelOracle
from repro.perf.flat import FlatHubLabeling
from repro.runtime.errors import DomainError, ServerOverloadError
from repro.serve import FleetHealth, ShardedQueryServer, run_loadgen

INF = float("inf")


def _disconnected_graph():
    """Two components -- cross pairs must answer ``inf`` (a float)."""
    g = Graph(10)
    for u in range(4):
        g.add_edge(u, u + 1)
    for u in range(5, 9):
        g.add_edge(u, u + 1)
    return g


@pytest.fixture(scope="module")
def built():
    graph = random_sparse_graph(48, seed=11)
    labeling = pruned_landmark_labeling(graph)
    return graph, labeling, FlatHubLabeling.from_labeling(labeling)


@pytest.fixture
def server(built):
    _, _, flat = built
    fleet = ShardedQueryServer(
        HubLabelOracle(flat, backend="flat"), processes=2
    )
    fleet.start()
    yield fleet
    fleet.stop()


class TestAnswers:
    def test_differential_corpus_byte_identical(self, built, server):
        graph, labeling, _ = built
        n = graph.num_vertices
        pairs = [(u, v) for u in range(n) for v in range(0, n, 3)]
        us = [u for u, _ in pairs]
        vs = [v for _, v in pairs]
        got = server.submit_batch(us, vs).result()
        assert len(got) == len(pairs)
        for (u, v), answer in zip(pairs, got):
            want = labeling.query(u, v)
            assert answer == want, (u, v)
            assert type(answer) is type(want), (u, v)

    def test_disconnected_pairs_answer_inf(self):
        graph = _disconnected_graph()
        labeling = pruned_landmark_labeling(graph)
        flat = FlatHubLabeling.from_labeling(labeling)
        with ShardedQueryServer(
            HubLabelOracle(flat, backend="flat"), processes=1
        ) as fleet:
            assert fleet.query(0, 7) == INF
            assert isinstance(fleet.query(0, 7), float)
            near = fleet.query(0, 3)
            assert near == labeling.query(0, 3)
            assert type(near) is int

    def test_loadgen_validated_through_the_sharded_door(self, built,
                                                        server):
        graph, labeling, _ = built
        report = run_loadgen(
            server,
            graph.num_vertices,
            clients=3,
            requests_per_client=120,
            batch_size=16,
            expected=labeling.query,
            seed=3,
        )
        assert report.ok
        assert report.wrong == 0
        assert report.requests == 3 * 120

    def test_empty_batch(self, server):
        ticket = server.submit_batch([], [])
        assert ticket.width == 0
        assert ticket.result() == []


class TestErrors:
    def test_domain_error_on_submit(self, built, server):
        # Per-pair failures resolve through the future, matching the
        # in-process QueryServer's contract.
        graph, _, _ = built
        future = server.submit(graph.num_vertices, 0)
        with pytest.raises(DomainError):
            future.result()

    def test_domain_error_on_batch(self, built, server):
        graph, _, _ = built
        with pytest.raises(DomainError):
            server.submit_batch([0, -1], [1, 2])

    def test_overload_is_loud(self, built):
        _, _, flat = built
        fleet = ShardedQueryServer(
            HubLabelOracle(flat, backend="flat"),
            processes=1,
            max_queue=4,
        )
        fleet.start()
        try:
            # Soft admission admits while inflight < max_queue, so a
            # second oversized batch must bounce deterministically.
            fleet._inflight = fleet.max_queue
            with pytest.raises(ServerOverloadError):
                fleet.submit_batch([0, 1, 2], [1, 2, 3])
            fleet._inflight = 0
            assert fleet.stats().overloads == 1
        finally:
            fleet.stop()

    def test_submit_before_start_raises(self, built):
        _, _, flat = built
        fleet = ShardedQueryServer(
            HubLabelOracle(flat, backend="flat"), processes=1
        )
        with pytest.raises(RuntimeError):
            fleet.submit(0, 1)


class TestLifecycle:
    def test_stats_survive_shutdown(self, built):
        graph, _, flat = built
        fleet = ShardedQueryServer(
            HubLabelOracle(flat, backend="flat"), processes=2
        )
        fleet.start()
        for u in range(6):
            fleet.submit(u, (u + 2) % graph.num_vertices).result()
        fleet.submit(0, 2).result()  # repeat -> worker cache hit
        fleet.stop()
        stats = fleet.stats()
        assert stats.requests == 7
        assert stats.responses == 7
        assert stats.batches >= 1
        assert stats.cache_hits >= 1

    def test_stop_is_idempotent_and_restartable(self, built):
        _, _, flat = built
        fleet = ShardedQueryServer(
            HubLabelOracle(flat, backend="flat"), processes=1
        )
        fleet.start()
        assert fleet.workers_alive() == 1
        fleet.stop()
        fleet.stop()
        assert fleet.workers_alive() == 0

    def test_health_report(self, server):
        health = server.health()
        assert isinstance(health, FleetHealth)
        assert health.processes == 2
        assert health.alive == 2
        assert health.restarts == 0
        assert health.ok

    def test_worker_death_respawns_and_is_counted(
        self, built, server, metrics_registry
    ):
        graph, labeling, _ = built
        victim = server._workers[1].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10)
        # Every pair keeps answering correctly across the respawn.
        for u in range(10):
            v = (u + 3) % graph.num_vertices
            assert server.submit(u, v).result() == labeling.query(u, v)
        health = server.health()
        assert health.alive == 2
        assert health.restarts == 1
        assert not FleetHealth(
            processes=2, alive=1, restarts=1, frames=(0, 0)
        ).ok
        assert metrics_registry.get(SERVE_WORKER_RESTARTS).value == 1
        assert metrics_registry.get(SERVE_WORKERS_ALIVE).value == 2

    def test_worker_batches_metric_labelled_by_slot(
        self, built, server, metrics_registry
    ):
        for u in range(8):
            server.submit(u, u + 1).result()
        total = 0
        for slot in range(server.processes):
            counter = metrics_registry.get(
                SERVE_WORKER_BATCHES, worker=str(slot)
            )
            if counter is not None:
                total += counter.value
        assert total == 8
