"""The persistent label cache: hits, misses, corruption recovery.

``LabelCache`` must be invisible to correctness (a warm hit returns the
exact arrays the builder produced; a corrupt artifact is discarded and
rebuilt) and visible to observability (the hit/miss/invalidation
counters, and the *absence* of the ``build.flat`` span on hits -- that
absence is how the CI smoke step proves a warm run skipped
construction).
"""

import pytest

from repro.core.orders import degree_order, random_order
from repro.graphs import Graph, grid_2d, random_sparse_graph
from repro.obs.catalog import (
    BUILD_CACHE_HITS,
    BUILD_CACHE_INVALIDATIONS,
    BUILD_CACHE_MISSES,
    SPAN_DURATION_SECONDS,
)
from repro.obs.registry import Registry, use_registry
from repro.perf.build import build_flat_labels
from repro.perf.cache import LabelCache, cache_key

pytest.importorskip("numpy")


def _graph(n=40, seed=3):
    return random_sparse_graph(n, seed=seed)


def _flats_equal(a, b):
    return (
        list(a._offsets) == list(b._offsets)
        and list(a._hubs) == list(b._hubs)
        and list(a._dists) == list(b._dists)
    )


class TestKey:
    def test_key_is_stable(self):
        graph = _graph()
        order = degree_order(graph)
        assert cache_key(graph, order) == cache_key(graph, order)

    def test_key_depends_on_order(self):
        graph = _graph()
        assert cache_key(graph, degree_order(graph)) != cache_key(
            graph, random_order(graph, seed=1)
        )

    def test_key_depends_on_graph(self):
        g1 = _graph(seed=3)
        g2 = _graph(seed=4)
        assert cache_key(g1, degree_order(g1)) != cache_key(
            g2, degree_order(g2)
        )

    def test_key_depends_on_weights(self):
        g1 = Graph(3)
        g1.add_edge(0, 1)
        g1.add_edge(1, 2)
        g2 = Graph(3)
        g2.add_edge(0, 1, 5)
        g2.add_edge(1, 2)
        order = [0, 1, 2]
        assert cache_key(g1, order) != cache_key(g2, order)


class TestRoundTrip:
    def test_cold_build_then_warm_hit(self, tmp_path):
        graph = _graph()
        cache = LabelCache(tmp_path)
        first = cache.load_or_build(graph)
        second = cache.load_or_build(graph)
        assert _flats_equal(first, second)
        reference = build_flat_labels(graph)
        assert _flats_equal(first, reference)

    def test_store_is_atomic_no_leftover_tmp(self, tmp_path):
        graph = _graph()
        cache = LabelCache(tmp_path)
        cache.load_or_build(graph)
        names = [p.name for p in tmp_path.iterdir()]
        assert len(names) == 1
        assert names[0].startswith("labels-") and names[0].endswith(".rhl")

    def test_distinct_orders_get_distinct_entries(self, tmp_path):
        graph = grid_2d(4, 4)
        cache = LabelCache(tmp_path)
        cache.load_or_build(graph, degree_order(graph))
        cache.load_or_build(graph, random_order(graph, seed=2))
        assert len(list(tmp_path.iterdir())) == 2

    def test_missing_directory_is_created(self, tmp_path):
        nested = tmp_path / "a" / "b"
        LabelCache(nested).load_or_build(_graph(n=12))
        assert nested.is_dir()


class TestCounters:
    def test_miss_then_hit(self, tmp_path):
        graph = _graph()
        registry = Registry()
        with use_registry(registry):
            cache = LabelCache(tmp_path)
            cache.load_or_build(graph)
            cache.load_or_build(graph)
        assert registry.get(BUILD_CACHE_MISSES).value == 1
        assert registry.get(BUILD_CACHE_HITS).value == 1
        assert registry.get(BUILD_CACHE_INVALIDATIONS).value == 0

    def test_hit_emits_no_build_span(self, tmp_path):
        graph = _graph()
        LabelCache(tmp_path).load_or_build(graph)  # cold, uninstrumented
        registry = Registry()
        with use_registry(registry):
            LabelCache(tmp_path).load_or_build(graph)
        assert registry.get(BUILD_CACHE_HITS).value == 1
        span = registry.get(SPAN_DURATION_SECONDS, span="build.flat")
        assert span is None

    def test_counters_absent_without_registry(self, tmp_path):
        from repro.obs.registry import NullRegistry

        with use_registry(NullRegistry()):
            cache = LabelCache(tmp_path)
            assert cache._hits is None
            cache.load_or_build(_graph(n=10))  # must not raise


class TestCorruptionRecovery:
    def _artifact(self, cache, graph):
        return cache.path_for(cache_key(graph, degree_order(graph)))

    def test_corrupt_artifact_is_rebuilt(self, tmp_path):
        graph = _graph()
        registry = Registry()
        with use_registry(registry):
            cache = LabelCache(tmp_path)
            good = cache.load_or_build(graph)
            artifact = self._artifact(cache, graph)
            blob = bytearray(artifact.read_bytes())
            blob[-3] ^= 0xFF
            artifact.write_bytes(bytes(blob))
            rebuilt = cache.load_or_build(graph)
        assert _flats_equal(good, rebuilt)
        assert registry.get(BUILD_CACHE_INVALIDATIONS).value == 1
        assert registry.get(BUILD_CACHE_MISSES).value == 2
        assert registry.get(BUILD_CACHE_HITS).value == 0
        # The rebuild re-persisted a good artifact: next lookup hits.
        with use_registry(registry):
            cache.load_or_build(graph)
        assert registry.get(BUILD_CACHE_HITS).value == 1

    def test_truncated_artifact_is_rebuilt(self, tmp_path):
        graph = _graph(seed=6)
        cache = LabelCache(tmp_path)
        good = cache.load_or_build(graph)
        artifact = self._artifact(cache, graph)
        artifact.write_bytes(artifact.read_bytes()[:10])
        assert _flats_equal(good, cache.load_or_build(graph))

    def test_wrong_vertex_count_is_invalidated(self, tmp_path):
        small, big = _graph(n=10, seed=1), _graph(n=30, seed=1)
        registry = Registry()
        with use_registry(registry):
            cache = LabelCache(tmp_path)
            cache.load_or_build(small)
            # Plant the small graph's artifact under the big graph's key.
            planted = self._artifact(cache, big)
            planted.write_bytes(
                self._artifact(cache, small).read_bytes()
            )
            flat = cache.load_or_build(big)
        assert flat.num_vertices == big.num_vertices
        assert registry.get(BUILD_CACHE_INVALIDATIONS).value == 1
