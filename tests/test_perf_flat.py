"""The flat-array label store: layout, equality with the dict store.

The contract under test is strict: ``FlatHubLabeling`` changes memory
layout and batch speed, *never* answers.  Every query -- scalar, batch,
one-to-many, through the accelerated kernels or the pure-Python merge
fallback -- must return exactly what the dict store returns, including
``INF`` for disconnected pairs and identical Python types.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HubLabeling, pruned_landmark_labeling
from repro.core.fastquery import SortedHubIndex
from repro.graphs import INF, random_sparse_graph, random_tree
from repro.perf import FlatHubLabeling
from repro.perf import kernels
from repro.runtime import DomainError


def _all_pairs(n):
    return [(u, v) for u in range(n) for v in range(n)]


@pytest.fixture(scope="module")
def connected_case():
    graph = random_sparse_graph(40, seed=3)
    labeling = pruned_landmark_labeling(graph)
    return labeling, FlatHubLabeling.from_labeling(labeling)


@pytest.fixture(scope="module")
def disconnected_case():
    # Two components: the tree on 0..19 and another on 20..39.
    from repro.graphs import Graph

    graph = Graph(40)
    for offset, seed in ((0, 1), (20, 2)):
        for u, v, w in random_tree(20, seed=seed).edges():
            graph.add_edge(offset + u, offset + v, w)
    labeling = pruned_landmark_labeling(graph)
    return labeling, FlatHubLabeling.from_labeling(labeling)


class TestRoundTrip:
    def test_to_labeling_is_exact(self, connected_case):
        labeling, flat = connected_case
        back = flat.to_labeling()
        assert back.num_vertices == labeling.num_vertices
        for v in range(labeling.num_vertices):
            assert back.hubs(v) == labeling.hubs(v)

    def test_accounting_matches(self, connected_case):
        labeling, flat = connected_case
        assert flat.total_size() == labeling.total_size()
        assert flat.average_size() == labeling.average_size()
        assert flat.max_size() == labeling.max_size()
        for v in range(labeling.num_vertices):
            assert flat.label_size(v) == labeling.label_size(v)
            assert flat.hub_set(v) == labeling.hub_set(v)
            assert flat.hubs(v) == labeling.hubs(v)

    def test_hub_runs_are_sorted(self, connected_case):
        _, flat = connected_case
        for v in range(flat.num_vertices):
            hubs = flat.hub_set(v)
            assert hubs == sorted(hubs)

    def test_repr(self, connected_case):
        _, flat = connected_case
        assert "FlatHubLabeling" in repr(flat)

    def test_empty_labeling(self):
        flat = FlatHubLabeling.from_labeling(HubLabeling(3))
        assert flat.query(0, 2) == INF
        assert flat.batch_query([(0, 1), (2, 2)]) == [INF, INF]


class TestScalarEquality:
    def test_query_matches_dict_everywhere(self, connected_case):
        labeling, flat = connected_case
        for u, v in _all_pairs(labeling.num_vertices):
            expected = labeling.query(u, v)
            got = flat.query(u, v)
            assert got == expected
            assert type(got) is type(expected)
            # ``meet`` may break ties differently between the stores;
            # any common hub realizing the minimum is correct.
            hub = flat.meet(u, v)
            if expected == INF:
                assert hub is None
            else:
                assert labeling.hubs(u)[hub] + labeling.hubs(v)[hub] == expected

    def test_disconnected_pairs_are_inf(self, disconnected_case):
        labeling, flat = disconnected_case
        assert flat.query(0, 25) == INF
        for u, v in _all_pairs(labeling.num_vertices):
            assert flat.query(u, v) == labeling.query(u, v)

    def test_hub_distance_and_contains(self, connected_case):
        labeling, flat = connected_case
        for v in range(labeling.num_vertices):
            for hub, dist in labeling.hubs(v).items():
                assert flat.hub_distance(v, hub) == dist
                assert (v, hub) in flat
            assert flat.hub_distance(v, 10**6) is None

    def test_domain_errors(self, connected_case):
        _, flat = connected_case
        n = flat.num_vertices
        with pytest.raises(DomainError):
            flat.query(0, n)
        with pytest.raises(DomainError):
            flat.query(-1, 0)
        with pytest.raises(DomainError):
            flat.batch_query([(0, 1), (n, 0)])
        with pytest.raises(DomainError):
            flat.batch_query_from(n)


class TestBatchEquality:
    def test_batch_matches_scalar_loop(self, connected_case):
        labeling, flat = connected_case
        pairs = _all_pairs(labeling.num_vertices)
        answers = flat.batch_query(pairs)
        for (u, v), got in zip(pairs, answers):
            expected = labeling.query(u, v)
            assert got == expected
            assert type(got) is type(expected)

    def test_batch_on_disconnected_graph(self, disconnected_case):
        labeling, flat = disconnected_case
        pairs = _all_pairs(labeling.num_vertices)
        expected = [labeling.query(u, v) for u, v in pairs]
        assert flat.batch_query(pairs) == expected

    def test_batch_query_from_full_row(self, connected_case):
        labeling, flat = connected_case
        n = labeling.num_vertices
        for source in (0, 7, n - 1):
            row = flat.batch_query_from(source)
            assert row == [labeling.query(source, v) for v in range(n)]

    def test_batch_query_from_explicit_targets(self, disconnected_case):
        labeling, flat = disconnected_case
        targets = [0, 5, 21, 39, 5]
        row = flat.batch_query_from(3, targets)
        assert row == [labeling.query(3, v) for v in targets]

    def test_empty_batch(self, connected_case):
        _, flat = connected_case
        assert flat.batch_query([]) == []

    def test_pure_python_merge_agrees(self, connected_case):
        labeling, flat = connected_case
        pairs = _all_pairs(labeling.num_vertices)[:300]
        assert flat._batch_query_merge(pairs) == flat.batch_query(pairs)


class TestAcceleratorGating:
    def test_accelerator_used_on_integral_labels(self, connected_case):
        _, flat = connected_case
        if kernels.HAVE_NUMPY:
            assert flat._accelerator() is not None

    def test_fractional_distances_fall_back(self):
        lab = HubLabeling(2)
        lab.add_hub(0, 0, 0.5)
        lab.add_hub(1, 0, 0.25)
        flat = FlatHubLabeling.from_labeling(lab)
        assert flat._accelerator() is None
        assert flat.query(0, 1) == 0.75
        assert flat.batch_query([(0, 1)]) == [0.75]

    def test_huge_distances_fall_back(self):
        lab = HubLabeling(2)
        lab.add_hub(0, 0, 20000)
        lab.add_hub(1, 0, 1)
        flat = FlatHubLabeling.from_labeling(lab)
        # 2 * max_dist would overflow the uint16 sentinel headroom.
        assert flat._accelerator() is None
        assert flat.batch_query([(0, 1), (1, 1)]) == [20001, 2]


class TestSortedHubIndexInterop:
    def test_index_accepts_flat_store(self, connected_case):
        labeling, flat = connected_case
        index = SortedHubIndex(flat)
        for u, v in _all_pairs(labeling.num_vertices)[:200]:
            assert index.query(u, v).distance == labeling.query(u, v)


class TestPropertyEquality:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=24),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_random_graphs_agree(self, n, seed):
        graph = random_sparse_graph(n, seed=seed)
        labeling = pruned_landmark_labeling(graph)
        flat = FlatHubLabeling.from_labeling(labeling)
        pairs = _all_pairs(n)
        expected = [labeling.query(u, v) for u, v in pairs]
        assert flat.batch_query(pairs) == expected
        assert [flat.query(u, v) for u, v in pairs] == expected

    @settings(max_examples=15, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=50),
            ),
            max_size=40,
        )
    )
    def test_arbitrary_labelings_agree(self, entries):
        lab = HubLabeling(8)
        for v, hub, dist in entries:
            lab.add_hub(v, hub, dist)
        flat = FlatHubLabeling.from_labeling(lab)
        pairs = _all_pairs(8)
        assert flat.batch_query(pairs) == [lab.query(u, v) for u, v in pairs]


class TestAddHubRegression:
    """``add_hub`` must keep the minimum distance per (vertex, hub).

    The flat freeze inherits whatever the dict store holds, so a
    re-add regression would silently poison both backends -- pin the
    behavior from several angles.
    """

    def test_readd_larger_is_ignored(self):
        lab = HubLabeling(2)
        lab.add_hub(0, 1, 3)
        lab.add_hub(0, 1, 7)
        assert lab.hub_distance(0, 1) == 3
        assert FlatHubLabeling.from_labeling(lab).hub_distance(0, 1) == 3

    def test_readd_smaller_wins(self):
        lab = HubLabeling(2)
        lab.add_hub(0, 1, 7)
        lab.add_hub(0, 1, 3)
        lab.add_hub(0, 1, 5)
        assert lab.hub_distance(0, 1) == 3

    def test_add_hubs_bulk_keeps_minimum(self):
        lab = HubLabeling(1)
        lab.add_hubs(0, [(0, 9), (0, 2), (0, 4)])
        assert lab.hub_distance(0, 0) == 2

    def test_query_reflects_minimum_after_readds(self):
        lab = HubLabeling(2)
        lab.add_hub(0, 0, 10)
        lab.add_hub(1, 0, 10)
        lab.add_hub(0, 0, 1)
        lab.add_hub(1, 0, 1)
        lab.add_hub(0, 0, 99)
        assert lab.query(0, 1) == 2
        assert FlatHubLabeling.from_labeling(lab).query(0, 1) == 2

    def test_float_and_int_mix_keeps_minimum(self):
        lab = HubLabeling(1)
        lab.add_hub(0, 0, 2.5)
        lab.add_hub(0, 0, 2)
        lab.add_hub(0, 0, 2.25)
        assert lab.hub_distance(0, 0) == 2
        assert not math.isinf(lab.query(0, 0))
