"""Greedy 2-hop cover (Cohen et al.)."""

import pytest

from repro.core import (
    greedy_hub_labeling,
    is_valid_cover,
    pruned_landmark_labeling,
)
from repro.graphs import (
    cycle_graph,
    grid_2d,
    path_graph,
    random_sparse_graph,
    random_tree,
    random_weighted_graph,
    star_graph,
)


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(10),
            cycle_graph(9),
            star_graph(8),
            grid_2d(4, 4),
            random_tree(25, seed=2),
            random_sparse_graph(30, seed=4),
        ],
        ids=["path", "cycle", "star", "grid", "tree", "sparse"],
    )
    def test_valid_cover(self, graph):
        labeling = greedy_hub_labeling(graph)
        assert is_valid_cover(graph, labeling)

    def test_weighted(self):
        g = random_weighted_graph(20, 40, seed=1)
        assert is_valid_cover(g, greedy_hub_labeling(g))

    def test_disconnected(self):
        from repro.graphs import Graph

        g = Graph(5)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        assert is_valid_cover(g, greedy_hub_labeling(g))

    def test_max_rounds_still_correct(self, small_grid):
        labeling = greedy_hub_labeling(small_grid, max_rounds=1)
        assert is_valid_cover(small_grid, labeling)

    def test_zero_rounds_trivial_completion(self):
        g = path_graph(6)
        labeling = greedy_hub_labeling(g, max_rounds=0)
        assert is_valid_cover(g, labeling)


class TestQuality:
    def test_star_is_near_optimal(self):
        # Optimal for a star: center in every label (2 per leaf).
        g = star_graph(12)
        labeling = greedy_hub_labeling(g)
        assert labeling.total_size() <= 2 * 12

    def test_beats_or_matches_pll_on_small_graphs(self):
        # Greedy optimizes total size directly and should not lose badly.
        for seed in range(3):
            g = random_sparse_graph(25, seed=seed)
            greedy = greedy_hub_labeling(g).total_size()
            pll = pruned_landmark_labeling(g).total_size()
            assert greedy <= pll * 1.5

    def test_self_hubs_present(self, small_grid):
        labeling = greedy_hub_labeling(small_grid)
        for v in small_grid.vertices():
            assert labeling.hub_distance(v, v) == 0

    def test_path_logarithmic_flavor(self):
        g = path_graph(32)
        labeling = greedy_hub_labeling(g)
        # Far from the quadratic trivial cover.
        assert labeling.total_size() < 32 * 8
