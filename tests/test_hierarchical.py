"""Hierarchical labeling predicates and the canonical-count oracle."""

from repro.core import (
    canonical_hub_count,
    degree_order,
    is_hierarchical,
    order_rank,
    pruned_landmark_labeling,
)
from repro.graphs import grid_2d, path_graph, random_sparse_graph, star_graph


class TestPredicates:
    def test_order_rank(self):
        assert order_rank([2, 0, 1]) == [1, 2, 0]

    def test_pll_is_hierarchical(self):
        for seed in range(3):
            g = random_sparse_graph(30, seed=seed)
            order = degree_order(g)
            labeling = pruned_landmark_labeling(g, order)
            assert is_hierarchical(labeling, order)

    def test_non_hierarchical_detected(self):
        from repro.core import HubLabeling

        lab = HubLabeling(3)
        lab.add_hub(0, 2, 1)  # hub 2 has lower rank than owner 0
        assert not is_hierarchical(lab, [0, 1, 2])
        assert is_hierarchical(lab, [2, 1, 0])


class TestCanonicalOracle:
    def test_pll_matches_canonical_counts(self):
        # PLL label sizes equal the canonical definition, vertex by
        # vertex -- the minimality of PLL for its order.
        for graph in (path_graph(8), star_graph(6), grid_2d(3, 3)):
            order = degree_order(graph)
            labeling = pruned_landmark_labeling(graph, order)
            for v in graph.vertices():
                assert labeling.label_size(v) == canonical_hub_count(
                    graph, order, v
                ), v

    def test_canonical_counts_star(self):
        g = star_graph(5)
        order = [0, 1, 2, 3, 4]
        assert canonical_hub_count(g, order, 0) == 1
        for leaf in range(1, 5):
            assert canonical_hub_count(g, order, leaf) == 2
