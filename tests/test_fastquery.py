"""Early-termination hub-label queries."""

import random

import pytest

from repro.core import (
    SortedHubIndex,
    pruned_landmark_labeling,
)
from repro.graphs import (
    all_pairs_distances,
    grid_2d,
    path_graph,
    random_sparse_graph,
    random_weighted_graph,
)


class TestExactness:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_plain_query_sparse(self, seed):
        g = random_sparse_graph(40, seed=seed)
        labeling = pruned_landmark_labeling(g)
        index = SortedHubIndex(labeling)
        for u in range(40):
            for v in range(40):
                assert index.query(u, v).distance == labeling.query(u, v)

    def test_matches_on_weighted(self):
        g = random_weighted_graph(30, 60, seed=5)
        labeling = pruned_landmark_labeling(g)
        index = SortedHubIndex(labeling)
        matrix = all_pairs_distances(g)
        for u in range(0, 30, 3):
            for v in range(0, 30, 4):
                assert index.query(u, v).distance == matrix[u][v]

    def test_disconnected_pair(self):
        from repro.graphs import Graph

        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        index = SortedHubIndex(pruned_landmark_labeling(g))
        from repro.graphs import INF

        assert index.query(0, 3).distance == INF

    def test_empty_label(self):
        from repro.core import HubLabeling
        from repro.graphs import INF

        lab = HubLabeling(2)
        lab.add_hub(0, 0, 0)
        index = SortedHubIndex(lab)
        stats = index.query(0, 1)
        assert stats.distance == INF
        assert stats.entries_scanned == 0


class TestWorkSavings:
    def test_scan_never_exceeds_total(self):
        g = grid_2d(6, 6)
        index = SortedHubIndex(pruned_landmark_labeling(g))
        for u in range(0, 36, 5):
            for v in range(0, 36, 7):
                stats = index.query(u, v)
                assert stats.entries_scanned <= stats.entries_total

    def test_close_pairs_scan_little(self):
        g = path_graph(64)
        order = sorted(range(64), key=lambda v: -((v + 1) & -(v + 1)))
        index = SortedHubIndex(pruned_landmark_labeling(g, order))
        near = index.query(10, 11)
        far = index.query(0, 63)
        assert near.entries_scanned <= far.entries_scanned

    def test_average_savings_on_sparse(self):
        g = random_sparse_graph(80, seed=9)
        index = SortedHubIndex(pruned_landmark_labeling(g))
        rng = random.Random(0)
        pairs = [
            (rng.randrange(80), rng.randrange(80)) for _ in range(50)
        ]
        fraction = index.average_scan_fraction(pairs)
        assert 0 < fraction < 1.0  # strictly saves work on average

    def test_stats_fraction(self):
        g = path_graph(5)
        index = SortedHubIndex(pruned_landmark_labeling(g))
        stats = index.query(0, 4)
        assert stats.fraction_scanned == pytest.approx(
            stats.entries_scanned / stats.entries_total
        )
