"""The threshold-based sparse-graph scheme (ADKP16/GKU16 style)."""

import pytest

from repro.core import (
    default_radius,
    is_valid_cover,
    sparse_hub_labeling,
)
from repro.graphs import (
    grid_2d,
    path_graph,
    random_bounded_degree_graph,
    random_sparse_graph,
    random_weighted_graph,
)


class TestCorrectness:
    @pytest.mark.parametrize("radius", [1, 2, 3, 5])
    def test_valid_for_every_radius(self, radius):
        g = random_sparse_graph(50, seed=4)
        result = sparse_hub_labeling(g, radius=radius, seed=1)
        assert is_valid_cover(g, result.labeling)

    def test_default_radius_valid(self, small_grid):
        result = sparse_hub_labeling(small_grid, seed=0)
        assert is_valid_cover(small_grid, result.labeling)

    def test_rejects_weighted(self):
        g = random_weighted_graph(10, 15, seed=0)
        with pytest.raises(ValueError):
            sparse_hub_labeling(g)

    def test_rejects_bad_radius(self, small_grid):
        with pytest.raises(ValueError):
            sparse_hub_labeling(small_grid, radius=0)


class TestAccounting:
    def test_components_add_up(self):
        g = random_bounded_degree_graph(60, 3, seed=2)
        result = sparse_hub_labeling(g, radius=3, seed=5)
        # Label = self + sample + corrections + ball; union may dedupe, so
        # total <= sum of parts + n (selves).
        upper = (
            60
            + 60 * len(result.hitting.hitting_set)
            + result.correction_total
            + result.ball_total
        )
        assert result.labeling.total_size() <= upper

    def test_ball_total_counts_pairs_within_radius(self):
        g = path_graph(10)
        result = sparse_hub_labeling(g, radius=2, seed=0)
        expected = sum(
            1
            for v in range(10)
            for x in range(10)
            if x != v and abs(x - v) <= 2
        )
        assert result.ball_total == expected

    def test_default_radius_scales_with_log(self):
        small = default_radius(random_sparse_graph(30, seed=1))
        big = default_radius(random_sparse_graph(300, seed=1))
        assert big >= small

    def test_bigger_radius_smaller_sample(self):
        g = random_sparse_graph(80, seed=6)
        small_d = sparse_hub_labeling(g, radius=2, seed=3)
        large_d = sparse_hub_labeling(g, radius=6, seed=3)
        assert len(large_d.hitting.hitting_set) <= len(
            small_d.hitting.hitting_set
        )
