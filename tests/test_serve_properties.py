"""Property-based tests for the serving layer's pure data structures.

The coalescer and the result cache are the two pieces the dispatcher's
correctness leans on, and both are deliberately clock-free / pure so
hypothesis can drive *arbitrary* interleavings deterministically:

* :class:`MicroBatcher` -- any sequence of ``add`` / ``poll`` / ``flush``
  events at any (monotone) timestamps partitions the item stream: no
  item is lost, duplicated, or reordered, no batch exceeds
  ``max_batch``, and no item waits past its deadline unobserved;
* :class:`ResultCache` -- behaves exactly like a capacity-bounded model
  dict under any operation sequence, and a generation mismatch can
  never smuggle a stale answer in (the ``set_oracle`` guard).
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import MISS, MicroBatcher, ResultCache

# ---------------------------------------------------------------------------
# MicroBatcher
# ---------------------------------------------------------------------------

#: One abstract event: ("add",) consumes the next item from a counter,
#: ("poll",) checks the deadline, ("tick", dt) advances the clock.
_events = st.lists(
    st.one_of(
        st.just(("add",)),
        st.just(("poll",)),
        st.just(("flush",)),
        st.tuples(st.just("tick"), st.floats(0.0, 2.0, allow_nan=False)),
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(
    events=_events,
    max_batch=st.integers(1, 7),
    max_delay=st.floats(0.0, 1.0, allow_nan=False),
)
def test_batcher_partitions_the_stream(events, max_batch, max_delay):
    batcher = MicroBatcher(max_batch, max_delay)
    counter = itertools.count()
    now = 0.0
    submitted = []
    flushed = []

    def take(batch):
        if batch:
            assert 0 < len(batch) <= max_batch
            flushed.extend(batch)

    for event in events:
        if event[0] == "tick":
            now += event[1]
        elif event[0] == "add":
            item = next(counter)
            submitted.append(item)
            take(batcher.add(item, now))
        elif event[0] == "poll":
            take(batcher.poll(now))
        else:
            take(batcher.flush())
        # Size trigger: the pending batch never reaches max_batch.
        assert len(batcher) < max_batch
    take(batcher.flush())
    # Every item added came back exactly once, in arrival order.
    assert flushed == submitted
    assert len(batcher) == 0 and batcher.deadline is None


@settings(max_examples=150, deadline=None)
@given(
    gaps=st.lists(st.floats(0.0, 0.4, allow_nan=False), max_size=30),
    max_delay=st.floats(0.0, 1.0, allow_nan=False),
)
def test_batcher_deadline_is_anchored_to_oldest_item(gaps, max_delay):
    """A steady trickle cannot postpone the flush past first+max_delay."""
    batcher = MicroBatcher(10_000, max_delay)  # size never triggers
    now = 0.0
    anchor = None
    for index, gap in enumerate(gaps):
        now += gap
        if anchor is None:
            anchor = now
        batcher.add(index, now)
        assert batcher.deadline == anchor + max_delay
        batch = batcher.poll(now)
        if batch is not None:
            # poll only fires at/after the anchored deadline.
            assert now >= anchor + max_delay
            anchor = None


# ---------------------------------------------------------------------------
# ResultCache vs a model
# ---------------------------------------------------------------------------

_keys = st.integers(0, 9)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("get"), _keys),
        st.tuples(st.just("put"), _keys, st.integers(0, 99)),
        st.tuples(st.just("rekey"), st.sampled_from(["g1", "g2", "g3"])),
        st.tuples(
            st.just("stale_put"),
            _keys,
            st.integers(0, 99),
            st.sampled_from(["g1", "g2", "g3"]),
        ),
        st.just(("clear",)),
    ),
    max_size=80,
)


@settings(max_examples=200, deadline=None)
@given(ops=_ops, capacity=st.integers(0, 6))
def test_cache_matches_model(ops, capacity):
    cache = ResultCache(capacity)
    cache.rekey("g1")
    generation = "g1"
    model = {}  # insertion order tracks recency (dicts are ordered)

    def touch(key):
        model[key] = model.pop(key)

    for op in ops:
        if op[0] == "get":
            got = cache.get(op[1])
            if op[1] in model:
                assert got == model[op[1]]
                touch(op[1])
            else:
                assert got is MISS
        elif op[0] == "put":
            accepted = cache.put(op[1], op[2], generation)
            assert accepted == (capacity > 0)
            if accepted:
                model[op[1]] = op[2]
                touch(op[1])
                while len(model) > capacity:
                    del model[next(iter(model))]  # evict true LRU
        elif op[0] == "rekey":
            cleared = cache.rekey(op[1])
            assert cleared == (op[1] != generation)
            if cleared:
                model.clear()
            generation = op[1]
        elif op[0] == "stale_put":
            accepted = cache.put(op[1], op[2], op[3])
            if op[3] != generation:
                # The staleness guard: a put tagged with any *other*
                # generation must be dropped, never served later.
                assert not accepted
            elif accepted:
                model[op[1]] = op[2]
                touch(op[1])
                while len(model) > capacity:
                    del model[next(iter(model))]
        else:
            cache.clear()
            model.clear()
        assert len(cache) == len(model)
        assert set(cache.keys()) == set(model)
    # Final recency order must agree exactly (LRU -> MRU).
    assert list(cache.keys()) == list(model)


@settings(max_examples=100, deadline=None)
@given(
    warm=st.lists(st.tuples(_keys, st.integers(0, 99)), max_size=20),
    generations=st.lists(st.sampled_from(["a", "b", "c"]), max_size=10),
)
def test_rebuild_never_serves_stale(warm, generations):
    """After any rekey chain, entries from an older generation are gone."""
    cache = ResultCache(32)
    cache.rekey("initial")
    for key, value in warm:
        cache.put(key, value, "initial")
    current = "initial"
    for generation in generations:
        changed = cache.rekey(generation)
        if generation != current:
            assert changed
            assert len(cache) == 0  # nothing survives a real swap
        current = generation
        cache.put(0, 42, current)
        assert cache.get(0) == 42
