"""Property-based tests for the serving layer's pure data structures.

The coalescer and the result cache are the two pieces the dispatcher's
correctness leans on, and both are deliberately clock-free / pure so
hypothesis can drive *arbitrary* interleavings deterministically:

* :class:`MicroBatcher` -- any sequence of ``add`` / ``poll`` / ``flush``
  events at any (monotone) timestamps partitions the item stream: no
  item is lost, duplicated, or reordered, no batch exceeds
  ``max_batch``, and no item waits past its deadline unobserved;
* :class:`ResultCache` -- behaves exactly like a capacity-bounded model
  dict under any operation sequence, and a generation mismatch can
  never smuggle a stale answer in (the ``set_oracle`` guard).
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import MISS, MicroBatcher, ResultCache

# ---------------------------------------------------------------------------
# MicroBatcher
# ---------------------------------------------------------------------------

#: One abstract event: ("add",) consumes the next item from a counter,
#: ("poll",) checks the deadline, ("tick", dt) advances the clock.
_events = st.lists(
    st.one_of(
        st.just(("add",)),
        st.just(("poll",)),
        st.just(("flush",)),
        st.tuples(st.just("tick"), st.floats(0.0, 2.0, allow_nan=False)),
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(
    events=_events,
    max_batch=st.integers(1, 7),
    max_delay=st.floats(0.0, 1.0, allow_nan=False),
)
def test_batcher_partitions_the_stream(events, max_batch, max_delay):
    batcher = MicroBatcher(max_batch, max_delay)
    counter = itertools.count()
    now = 0.0
    submitted = []
    flushed = []

    def take(batch):
        if batch:
            assert 0 < len(batch) <= max_batch
            flushed.extend(batch)

    for event in events:
        if event[0] == "tick":
            now += event[1]
        elif event[0] == "add":
            item = next(counter)
            submitted.append(item)
            take(batcher.add(item, now))
        elif event[0] == "poll":
            take(batcher.poll(now))
        else:
            take(batcher.flush())
        # Size trigger: the pending batch never reaches max_batch.
        assert len(batcher) < max_batch
    take(batcher.flush())
    # Every item added came back exactly once, in arrival order.
    assert flushed == submitted
    assert len(batcher) == 0 and batcher.deadline is None


@settings(max_examples=150, deadline=None)
@given(
    gaps=st.lists(st.floats(0.0, 0.4, allow_nan=False), max_size=30),
    max_delay=st.floats(0.0, 1.0, allow_nan=False),
)
def test_batcher_deadline_is_anchored_to_oldest_item(gaps, max_delay):
    """A steady trickle cannot postpone the flush past first+max_delay."""
    batcher = MicroBatcher(10_000, max_delay)  # size never triggers
    now = 0.0
    anchor = None
    for index, gap in enumerate(gaps):
        now += gap
        if anchor is None:
            anchor = now
        batcher.add(index, now)
        assert batcher.deadline == anchor + max_delay
        batch = batcher.poll(now)
        if batch is not None:
            # poll only fires at/after the anchored deadline.
            assert now >= anchor + max_delay
            anchor = None


# ---------------------------------------------------------------------------
# ResultCache vs a model
# ---------------------------------------------------------------------------

_keys = st.integers(0, 9)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("get"), _keys),
        st.tuples(st.just("put"), _keys, st.integers(0, 99)),
        st.tuples(st.just("rekey"), st.sampled_from(["g1", "g2", "g3"])),
        st.tuples(
            st.just("stale_put"),
            _keys,
            st.integers(0, 99),
            st.sampled_from(["g1", "g2", "g3"]),
        ),
        st.just(("clear",)),
    ),
    max_size=80,
)


@settings(max_examples=200, deadline=None)
@given(ops=_ops, capacity=st.integers(0, 6))
def test_cache_matches_model(ops, capacity):
    cache = ResultCache(capacity)
    cache.rekey("g1")
    generation = "g1"
    model = {}  # insertion order tracks recency (dicts are ordered)

    def touch(key):
        model[key] = model.pop(key)

    for op in ops:
        if op[0] == "get":
            got = cache.get(op[1])
            if op[1] in model:
                assert got == model[op[1]]
                touch(op[1])
            else:
                assert got is MISS
        elif op[0] == "put":
            accepted = cache.put(op[1], op[2], generation)
            assert accepted == (capacity > 0)
            if accepted:
                model[op[1]] = op[2]
                touch(op[1])
                while len(model) > capacity:
                    del model[next(iter(model))]  # evict true LRU
        elif op[0] == "rekey":
            cleared = cache.rekey(op[1])
            assert cleared == (op[1] != generation)
            if cleared:
                model.clear()
            generation = op[1]
        elif op[0] == "stale_put":
            accepted = cache.put(op[1], op[2], op[3])
            if op[3] != generation:
                # The staleness guard: a put tagged with any *other*
                # generation must be dropped, never served later.
                assert not accepted
            elif accepted:
                model[op[1]] = op[2]
                touch(op[1])
                while len(model) > capacity:
                    del model[next(iter(model))]
        else:
            cache.clear()
            model.clear()
        assert len(cache) == len(model)
        assert set(cache.keys()) == set(model)
    # Final recency order must agree exactly (LRU -> MRU).
    assert list(cache.keys()) == list(model)


@settings(max_examples=100, deadline=None)
@given(
    warm=st.lists(st.tuples(_keys, st.integers(0, 99)), max_size=20),
    generations=st.lists(st.sampled_from(["a", "b", "c"]), max_size=10),
)
def test_rebuild_never_serves_stale(warm, generations):
    """After any rekey chain, entries from an older generation are gone."""
    cache = ResultCache(32)
    cache.rekey("initial")
    for key, value in warm:
        cache.put(key, value, "initial")
    current = "initial"
    for generation in generations:
        changed = cache.rekey(generation)
        if generation != current:
            assert changed
            assert len(cache) == 0  # nothing survives a real swap
        current = generation
        cache.put(0, 42, current)
        assert cache.get(0) == 42


# ---------------------------------------------------------------------------
# get_many / put_many vs the scalar operations
# ---------------------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(
    puts=st.lists(st.tuples(_keys, st.integers(0, 99)), max_size=25),
    probes=st.lists(_keys, max_size=25),
    capacity=st.integers(0, 8),
)
def test_bulk_ops_match_scalar_ops(puts, probes, capacity):
    """put_many/get_many behave exactly like a loop of put/get."""
    bulk = ResultCache(capacity)
    scalar = ResultCache(capacity)
    bulk.rekey("g")
    scalar.rekey("g")
    accepted = bulk.put_many(
        [key for key, _ in puts], [value for _, value in puts], "g"
    )
    for key, value in puts:
        scalar_accepted = scalar.put(key, value, "g")
    if puts:
        assert accepted == (capacity > 0)
    assert list(bulk.keys()) == list(scalar.keys())
    got_bulk = bulk.get_many(probes)
    got_scalar = [scalar.get(key) for key in probes]
    assert got_bulk == got_scalar
    # Bulk gets freshen recency identically to scalar gets.
    assert list(bulk.keys()) == list(scalar.keys())


def test_put_many_stale_generation_dropped_whole():
    cache = ResultCache(8)
    cache.rekey("new")
    assert not cache.put_many([1, 2], [10, 20], "old")
    assert len(cache) == 0


# ---------------------------------------------------------------------------
# submit_batch equals per-pair submit through a live server
# ---------------------------------------------------------------------------

import math
import threading

import pytest

from repro.core import pruned_landmark_labeling
from repro.graphs import Graph
from repro.oracles.oracle import HubLabelOracle
from repro.perf.flat import FlatHubLabeling
from repro.serve import QueryServer


def _two_island_setup():
    """A 12-vertex graph with two components: finite AND inf answers."""
    graph = Graph(12)
    for u in range(5):
        graph.add_edge(u, u + 1)
    for u in range(6, 11):
        graph.add_edge(u, u + 1)
    labeling = pruned_landmark_labeling(graph)
    flat = FlatHubLabeling.from_labeling(labeling)
    return labeling, flat


_ISLAND_LABELING, _ISLAND_FLAT = _two_island_setup()
_pair_lists = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=40
)


@settings(max_examples=40, deadline=None)
@given(pairs=_pair_lists)
def test_submit_batch_equals_per_pair_submit(pairs):
    """Same pairs, both doors, byte-identical answers (INF included)."""
    oracle = HubLabelOracle(_ISLAND_FLAT, backend="flat")
    with QueryServer(oracle, max_batch=8, max_delay=0.001) as server:
        scalar = [server.submit(u, v).result(timeout=30) for u, v in pairs]
        batched = server.submit_batch(
            [u for u, _ in pairs], [v for _, v in pairs]
        ).result(timeout=30)
    assert len(batched) == len(scalar)
    for (u, v), one, many in zip(pairs, scalar, batched):
        assert type(one) is type(many), (u, v, one, many)
        if isinstance(one, float) and math.isinf(one):
            assert math.isinf(many)
        else:
            assert one == many, (u, v, one, many)


def _weighted_path_setup(weight):
    graph = Graph(10)
    for u in range(9):
        graph.add_edge(u, u + 1, weight)
    return pruned_landmark_labeling(graph)


_PATH_A = _weighted_path_setup(1)   # distance(u, v) = |u - v|
_PATH_B = _weighted_path_setup(3)   # distance(u, v) = 3|u - v|


@settings(max_examples=25, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
            lambda p: p[0] != p[1]
        ),
        min_size=1,
        max_size=12,
    ),
    swap_first=st.booleans(),
)
def test_set_oracle_between_batches_never_serves_stale(pairs, swap_first):
    """Across a swap, every ticket answers from the *current* labeling."""
    oracle_a = HubLabelOracle(_PATH_A, backend="dict")
    oracle_b = HubLabelOracle(_PATH_B, backend="dict")
    first, second = (
        (oracle_b, oracle_a) if swap_first else (oracle_a, oracle_b)
    )
    us = [u for u, _ in pairs]
    vs = [v for _, v in pairs]
    with QueryServer(first, max_batch=4, max_delay=0.001) as server:
        before = server.submit_batch(us, vs).result(timeout=30)
        assert server.set_oracle(second)  # different digest: cache cleared
        after = server.submit_batch(us, vs).result(timeout=30)
    for (u, v), got_first, got_second in zip(pairs, before, after):
        want_first = first.query(u, v).distance
        want_second = second.query(u, v).distance
        assert got_first == want_first and type(got_first) is type(want_first)
        assert got_second == want_second
        assert type(got_second) is type(want_second)
        assert got_first != got_second  # the swap is observable


def test_concurrent_swaps_yield_only_real_answers():
    """A swap hammer mid-flight: answers are always one labeling's truth.

    With the cache off, each ticket is served in one oracle hold, so
    every ticket must be *entirely* A's answers or entirely B's --
    never a blend, never garbage.
    """
    oracle_a = HubLabelOracle(_PATH_A, backend="dict")
    oracle_b = HubLabelOracle(_PATH_B, backend="dict")
    pairs = [(u, v) for u in range(10) for v in range(10) if u != v]
    us = [u for u, _ in pairs]
    vs = [v for _, v in pairs]
    want_a = [oracle_a.query(u, v).distance for u, v in pairs]
    want_b = [oracle_b.query(u, v).distance for u, v in pairs]
    stop = threading.Event()
    with QueryServer(
        oracle_a, max_batch=16, max_delay=0.0005, cache_size=0
    ) as server:

        def swapper():
            flip = False
            while not stop.is_set():
                server.set_oracle(oracle_b if flip else oracle_a)
                flip = not flip

        thread = threading.Thread(target=swapper)
        thread.start()
        try:
            for _ in range(30):
                got = server.submit_batch(us, vs).result(timeout=30)
                assert got == want_a or got == want_b
        finally:
            stop.set()
            thread.join()


# ---------------------------------------------------------------------------
# Skewed workloads: Zipf / hotspot streams through both serving doors
# ---------------------------------------------------------------------------

import random

from repro.graphs import random_sparse_graph
from repro.serve import make_pair_sampler, run_loadgen


@settings(max_examples=60, deadline=None)
@given(
    num_vertices=st.integers(1, 50),
    distribution=st.sampled_from(["uniform", "zipf", "hotspot"]),
    shape_seed=st.integers(0, 2**31),
    draw_seed=st.integers(0, 2**31),
)
def test_sampler_in_range_and_shape_deterministic(
    num_vertices, distribution, shape_seed, draw_seed
):
    """Any sampler yields valid vertex pairs, and the same (shape seed,
    draw seed) pair replays the identical stream."""
    sampler = make_pair_sampler(
        num_vertices, distribution, seed=shape_seed
    )
    rng = random.Random(draw_seed)
    stream = [sampler(rng) for _ in range(30)]
    for u, v in stream:
        assert 0 <= u < num_vertices
        assert 0 <= v < num_vertices
    again = make_pair_sampler(num_vertices, distribution, seed=shape_seed)
    rng = random.Random(draw_seed)
    assert [again(rng) for _ in range(30)] == stream


def test_zipf_sampler_is_actually_skewed():
    """The most popular endpoint dominates a uniform endpoint's share."""
    sampler = make_pair_sampler(100, "zipf", seed=3, zipf_s=1.2)
    rng = random.Random(1)
    counts = {}
    draws = 4000
    for _ in range(draws):
        u, v = sampler(rng)
        counts[u] = counts.get(u, 0) + 1
        counts[v] = counts.get(v, 0) + 1
    top = max(counts.values())
    assert top > 5 * (2 * draws) / 100  # >5x the uniform share


def test_hotspot_sampler_concentrates_on_hot_pairs():
    sampler = make_pair_sampler(
        1000, "hotspot", seed=4, hot_pairs=8, hot_fraction=0.9
    )
    rng = random.Random(2)
    draws = [sampler(rng) for _ in range(2000)]
    hot = {pair for pair, count in
           {p: draws.count(p) for p in set(draws)}.items() if count > 20}
    assert 0 < len(hot) <= 8
    hot_share = sum(1 for pair in draws if pair in hot) / len(draws)
    assert hot_share > 0.8


def test_unknown_distribution_rejected():
    with pytest.raises(ValueError):
        make_pair_sampler(10, "pareto")
    with pytest.raises(ValueError):
        make_pair_sampler(10, "zipf", zipf_s=0.0)
    with pytest.raises(ValueError):
        make_pair_sampler(10, "hotspot", hot_fraction=1.5)


class TestSkewedWorkloadsThroughBothDoors:
    """Zipf and hotspot streams, graded against the dict oracle.

    ``batch_size=None`` drives per-pair ``submit`` (the ``--batch 0``
    door); ``batch_size=16`` drives batch-native ``submit_batch``.
    Either way every answer must match ground truth -- skew changes the
    cache and coalescing behavior, never the answers.
    """

    def _setup(self, n=80):
        graph = random_sparse_graph(n, seed=9)
        labeling = pruned_landmark_labeling(graph)
        flat = HubLabelOracle(
            FlatHubLabeling.from_labeling(labeling), backend="flat"
        )
        ground = HubLabelOracle(labeling, backend="dict")
        return graph, flat, ground

    @pytest.mark.parametrize("distribution", ["zipf", "hotspot"])
    @pytest.mark.parametrize("batch_size", [None, 16])
    def test_skewed_answers_match_oracle(self, distribution, batch_size):
        graph, flat, ground = self._setup()
        with QueryServer(flat, max_batch=32, max_delay=0.001) as server:
            report = run_loadgen(
                server,
                graph.num_vertices,
                clients=4,
                requests_per_client=120,
                seed=5,
                expected=lambda u, v: ground.query(u, v).distance,
                batch_size=batch_size,
                distribution=distribution,
            )
        assert report.ok, report.render()
        assert report.requests == 4 * 120

    def test_hotspot_raises_cache_hit_rate(self):
        """The hotspot stream is the result cache's best case: its hit
        rate must clearly beat the uniform stream's on the same server
        configuration."""
        graph, flat, ground = self._setup()
        rates = {}
        for distribution in ("uniform", "hotspot"):
            with QueryServer(
                flat, max_batch=32, max_delay=0.001, cache_size=4096
            ) as server:
                report = run_loadgen(
                    server,
                    graph.num_vertices,
                    clients=4,
                    requests_per_client=200,
                    seed=6,
                    expected=lambda u, v: ground.query(u, v).distance,
                    distribution=distribution,
                    hot_pairs=8,
                    hot_fraction=0.9,
                )
                stats = server.stats()
            assert report.ok, report.render()
            rates[distribution] = stats.cache_hits / stats.responses
        assert rates["hotspot"] > rates["uniform"] + 0.3
        # ~90% of hotspot traffic is 8 pairs: nearly all of it hits.
        assert rates["hotspot"] > 0.7
