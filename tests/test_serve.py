"""The serving layer: coalescer, result cache, and QueryServer.

The concurrency contract under test is the one the whole repo is built
around: the server adds threads, queues, batching, and caching -- and
changes **nothing** about the answers.  Every distance that comes back
through a future must be byte-identical (value and type, ``inf``
included) to what the dict-backend oracle says serially.
"""

import math
import sys
import threading
import time
from concurrent.futures import Future

import pytest

from repro.core import pruned_landmark_labeling
from repro.graphs import Graph, random_sparse_graph
from repro.obs.catalog import (
    SERVE_BATCHES,
    SERVE_CACHE_HITS,
    SERVE_CACHE_MISSES,
    SERVE_OVERLOADS,
    SERVE_REQUESTS,
)
from repro.oracles.oracle import HubLabelOracle
from repro.perf.flat import FlatHubLabeling
from repro.runtime import DomainError, ResilientOracle, ServerOverloadError
from repro.serve import (
    MISS,
    MicroBatcher,
    QueryServer,
    ResultCache,
    labeling_digest,
    run_loadgen,
)


@pytest.fixture
def served_graph():
    return random_sparse_graph(60, seed=5)


@pytest.fixture
def served_labeling(served_graph):
    return pruned_landmark_labeling(served_graph)


@pytest.fixture
def flat_oracle(served_labeling):
    flat = FlatHubLabeling.from_labeling(served_labeling)
    return HubLabelOracle(flat, backend="flat")


@pytest.fixture
def ground(served_labeling):
    oracle = HubLabelOracle(served_labeling, backend="dict")
    return lambda u, v: oracle.query(u, v).distance


class _StallOracle:
    """Blocks every query until released -- fills queues on demand."""

    def __init__(self):
        self.release = threading.Event()
        self.served = []

    def query(self, u, v):
        self.release.wait()
        self.served.append((u, v))
        return float(u + v)

    def batch_query(self, pairs):
        self.release.wait()
        self.served.extend(pairs)
        return [float(u + v) for u, v in pairs]


class TestMicroBatcher:
    def test_size_trigger(self):
        batcher = MicroBatcher(3, 10.0)
        assert batcher.add("a", 0.0) is None
        assert batcher.add("b", 0.0) is None
        assert batcher.add("c", 0.0) == ["a", "b", "c"]
        assert len(batcher) == 0
        assert batcher.deadline is None

    def test_deadline_anchored_to_first_item(self):
        batcher = MicroBatcher(100, 1.0)
        batcher.add("a", 5.0)
        batcher.add("b", 5.9)  # trickle must not postpone the flush
        assert batcher.deadline == 6.0
        assert batcher.poll(5.99) is None
        assert batcher.poll(6.0) == ["a", "b"]

    def test_flush_takes_everything(self):
        batcher = MicroBatcher(10, 1.0)
        batcher.add(1, 0.0)
        batcher.add(2, 0.0)
        assert batcher.flush() == [1, 2]
        assert batcher.flush() == []

    def test_poll_empty_is_none(self):
        assert MicroBatcher(4, 0.5).poll(1e9) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(0, 1.0)
        with pytest.raises(ValueError):
            MicroBatcher(1, -0.1)

    def test_zero_delay_flushes_on_first_poll(self):
        batcher = MicroBatcher(100, 0.0)
        batcher.add("x", 7.0)
        assert batcher.poll(7.0) == ["x"]


class TestResultCache:
    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.rekey("g")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # freshen: "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is MISS
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_miss_sentinel_distinguishes_cached_none(self):
        cache = ResultCache(4)
        cache.put("k", None)
        assert cache.get("k") is None
        assert cache.get("absent") is MISS

    def test_zero_capacity_disables(self):
        cache = ResultCache(0)
        assert not cache.put("k", 1)
        assert cache.get("k") is MISS

    def test_rekey_clears_only_on_change(self):
        cache = ResultCache(4)
        cache.rekey("g1")
        cache.put("k", 1)
        assert not cache.rekey("g1")  # same generation: keep warm
        assert cache.get("k") == 1
        assert cache.rekey("g2")  # new generation: cold
        assert cache.get("k") is MISS

    def test_stale_generation_put_dropped(self):
        cache = ResultCache(4)
        cache.rekey("new")
        assert not cache.put("k", 1, generation="old")
        assert cache.get("k") is MISS
        assert cache.put("k", 2, generation="new")
        assert cache.get("k") == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)


class TestLabelingDigest:
    def test_dict_and_flat_layouts_share_digest(self, served_labeling):
        flat = FlatHubLabeling.from_labeling(served_labeling)
        assert labeling_digest(served_labeling) == labeling_digest(flat)

    def test_different_labelings_differ(self, served_labeling):
        other = pruned_landmark_labeling(random_sparse_graph(60, seed=6))
        assert labeling_digest(served_labeling) != labeling_digest(other)


class TestQueryServer:
    def test_answers_match_ground_truth(self, flat_oracle, ground):
        n = 60
        pairs = [(u, v) for u in range(0, n, 3) for v in range(0, n, 4)]
        with QueryServer(flat_oracle, max_batch=8, max_delay=0.001) as server:
            got = server.batch(pairs)
        for (u, v), answer in zip(pairs, got):
            want = ground(u, v)
            assert type(answer) is type(want), (u, v, answer, want)
            if isinstance(want, float) and math.isinf(want):
                assert math.isinf(answer)
            else:
                assert answer == want

    def test_submit_requires_running_server(self, flat_oracle):
        server = QueryServer(flat_oracle)
        with pytest.raises(RuntimeError):
            server.submit(0, 1)
        server.start()
        assert server.query(0, 1) == server.query(0, 1)
        server.stop()
        with pytest.raises(RuntimeError):
            server.submit(0, 1)

    def test_stop_drains_pending_requests(self, flat_oracle):
        # A huge delay parks requests in the batcher; stop() must still
        # flush and answer every accepted future.
        server = QueryServer(flat_oracle, max_batch=10_000, max_delay=30.0)
        with server:
            futures = [server.submit(0, v) for v in range(25)]
        assert all(f.done() for f in futures)
        assert [f.exception() for f in futures] == [None] * 25

    def test_stop_without_drain_cancels(self):
        stalled = _StallOracle()
        server = QueryServer(stalled, max_batch=1, max_delay=0.0)
        server.start()
        # The dispatcher blocks inside the first query; the rest queue.
        first = server.submit(1, 2)
        backlog = [server.submit(3, v) for v in range(5)]
        time.sleep(0.05)
        stopper = threading.Thread(
            target=server.stop, kwargs={"drain": False}
        )
        stopper.start()
        time.sleep(0.05)
        stalled.release.set()
        stopper.join(timeout=5)
        assert not stopper.is_alive()
        assert first.result(timeout=1) == 3.0
        for future in backlog:
            assert future.cancelled() or future.done()

    def test_overload_raises_typed_error(self, metrics_registry):
        stalled = _StallOracle()
        server = QueryServer(stalled, max_queue=2, max_batch=1, max_delay=0.0)
        server.start()
        try:
            overloaded = None
            futures = []
            # Distinct pairs so the cache can never absorb a submit.
            for k in range(16):
                try:
                    futures.append(server.submit(k, k + 1))
                except ServerOverloadError as exc:
                    overloaded = exc
                    break
            assert overloaded is not None, "queue of 2 never overflowed"
            assert overloaded.exit_code == 70
            assert "capacity 2" in str(overloaded)
            counter = metrics_registry.get(SERVE_OVERLOADS)
            assert counter is not None and counter.value == 1
            assert server.stats().overloads == 1
        finally:
            stalled.release.set()
            server.stop()
        for future in futures:
            assert future.exception(timeout=1) is None

    def test_cache_serves_repeats_without_oracle(self, flat_oracle, ground):
        with QueryServer(flat_oracle, max_batch=4, max_delay=0.0) as server:
            first = server.query(1, 2)
            baseline = server.stats()
            again = [server.query(1, 2) for _ in range(5)]
            stats = server.stats()
        assert again == [first] * 5
        assert first == ground(1, 2)
        assert stats.cache_hits - baseline.cache_hits == 5
        # Cache hits resolve inline: no extra batches were dispatched.
        assert stats.batches == baseline.batches

    def test_cache_disabled_with_zero_capacity(self, flat_oracle):
        with QueryServer(flat_oracle, cache_size=0) as server:
            server.query(1, 2)
            server.query(1, 2)
            assert server.stats().cache_hits == 0

    def test_duplicate_pairs_coalesce_to_one_backend_query(self):
        stalled = _StallOracle()
        server = QueryServer(stalled, max_batch=64, max_delay=10.0,
                             cache_size=0)
        server.start()
        futures = [server.submit(4, 5) for _ in range(8)]
        stalled.release.set()
        server.stop()
        assert [f.result() for f in futures] == [9.0] * 8
        assert stalled.served.count((4, 5)) == 1

    def test_scalar_only_oracle_is_served(self, served_labeling, ground):
        class ScalarOnly:
            def __init__(self, labeling):
                self._labeling = labeling

            def query(self, u, v):
                return self._labeling.query(u, v)

        with QueryServer(ScalarOnly(served_labeling)) as server:
            assert server.query(0, 7) == ground(0, 7)

    def test_per_pair_error_isolation(self, flat_oracle, ground):
        # One out-of-domain pair fails the batch call; its batch-mates
        # must still get answers, and only it carries the error.
        with QueryServer(
            flat_oracle, max_batch=10_000, max_delay=30.0
        ) as server:
            good = [server.submit(v, v + 1) for v in range(6)]
            bad = server.submit(0, 10_000)
        for v, future in enumerate(good):
            assert future.result(timeout=1) == ground(v, v + 1)
        with pytest.raises(DomainError):
            bad.result(timeout=1)

    def test_set_oracle_rekeys_cache(self, flat_oracle):
        other = pruned_landmark_labeling(random_sparse_graph(60, seed=6))
        with QueryServer(flat_oracle) as server:
            server.query(2, 3)
            assert len(server.cache) >= 1
            cleared = server.set_oracle(
                HubLabelOracle(other, backend="dict")
            )
        assert cleared
        assert len(server.cache) == 0

    def test_set_oracle_same_labels_keeps_cache(
        self, served_labeling, flat_oracle
    ):
        # dict and flat are two layouts of one labeling: answers are
        # byte-identical, so the warm cache survives the swap.
        with QueryServer(flat_oracle) as server:
            server.query(2, 3)
            warm = len(server.cache)
            cleared = server.set_oracle(
                HubLabelOracle(served_labeling, backend="dict")
            )
            assert not cleared
            assert len(server.cache) == warm

    def test_resilient_oracle_swap_changes_generation(
        self, served_graph, served_labeling, flat_oracle
    ):
        # Same labels behind a different wrapper class: the generation
        # token includes the class, so the cache goes cold.
        resilient = ResilientOracle(served_graph, served_labeling)
        with QueryServer(flat_oracle) as server:
            before = server.generation
            assert server.set_oracle(resilient)
            assert server.generation != before

    def test_request_counters_add_up(self, flat_oracle, metrics_registry):
        with QueryServer(flat_oracle, max_batch=4, max_delay=0.0) as server:
            pairs = [(u, u + 1) for u in range(10)]
            server.batch(pairs)  # cold round: all misses, all answered
            server.batch(pairs)  # two warm rounds: 20 guaranteed hits
            server.batch(pairs)
        requests = metrics_registry.get(SERVE_REQUESTS).value
        hits = metrics_registry.get(SERVE_CACHE_HITS).value
        misses = metrics_registry.get(SERVE_CACHE_MISSES).value
        batches = metrics_registry.get(SERVE_BATCHES).value
        assert requests == 30
        assert hits + misses == requests
        assert hits >= 20  # every repeat lands after its first answer
        assert batches == server.stats().batches >= 1

    def test_context_manager_restarts(self, flat_oracle):
        server = QueryServer(flat_oracle)
        with server:
            a = server.query(0, 1)
        with server:
            assert server.query(0, 1) == a

    def test_repr_mentions_state(self, flat_oracle):
        server = QueryServer(flat_oracle)
        assert "stopped" in repr(server)
        with server:
            assert "running" in repr(server)

    def test_invalid_queue_bound_rejected(self, flat_oracle):
        with pytest.raises(ValueError):
            QueryServer(flat_oracle, max_queue=0)


class TestThreadedSweep:
    """N worker threads, every answer graded against serial truth."""

    @pytest.mark.parametrize("threads", [8, 16])
    def test_concurrent_clients_get_exact_answers(
        self, served_graph, flat_oracle, ground, threads
    ):
        switch = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # provoke interleavings
        try:
            with QueryServer(
                flat_oracle, max_batch=16, max_delay=0.001
            ) as server:
                report = run_loadgen(
                    server,
                    served_graph.num_vertices,
                    clients=threads,
                    requests_per_client=150,
                    seed=23,
                    expected=ground,
                )
        finally:
            sys.setswitchinterval(switch)
        assert report.ok, report.render()
        assert report.requests == threads * 150

    def test_resilient_oracle_behind_server(
        self, served_graph, served_labeling, ground
    ):
        oracle = ResilientOracle(
            served_graph, served_labeling, fallback=True, verify_sample=8
        )
        with QueryServer(oracle, max_batch=8, max_delay=0.001) as server:
            report = run_loadgen(
                server,
                served_graph.num_vertices,
                clients=6,
                requests_per_client=100,
                seed=31,
                expected=ground,
            )
        assert report.ok, report.render()
        assert oracle.health.healthy


class TestLoadReport:
    def test_render_mentions_verdict(self):
        from repro.serve import LoadReport

        report = LoadReport(clients=2, requests=10, duration_s=1.0)
        text = report.render()
        assert "OK" in text and "10 req/s" in text
        report.wrong = 1
        assert "FAILED" in report.render()

    def test_loadgen_validates_num_vertices(self, flat_oracle):
        with QueryServer(flat_oracle) as server:
            with pytest.raises(ValueError):
                run_loadgen(server, 0)


class TestSubmitBatch:
    """The batch-native door must answer exactly like per-pair submit."""

    def test_results_match_per_pair_submit(self, flat_oracle, ground):
        n = 60
        pairs = [(u, v) for u in range(0, n, 3) for v in range(0, n, 4)]
        us = [u for u, _ in pairs]
        vs = [v for _, v in pairs]
        with QueryServer(flat_oracle, max_batch=8, max_delay=0.001) as server:
            scalar = server.batch(pairs)
            batched = server.submit_batch(us, vs).result(timeout=30)
        assert len(batched) == len(pairs)
        for (u, v), one, many in zip(pairs, scalar, batched):
            assert type(one) is type(many), (u, v, one, many)
            assert one == many or (
                isinstance(one, float)
                and math.isinf(one)
                and math.isinf(many)
            ), (u, v, one, many)
            want = ground(u, v)
            assert type(many) is type(want)

    def test_numpy_arrays_accepted(self, flat_oracle, ground):
        np = pytest.importorskip("numpy")
        us = np.arange(0, 40, 2, dtype=np.int64)
        vs = np.arange(1, 41, 2, dtype=np.int64)
        with QueryServer(flat_oracle, cache_size=0) as server:
            got = server.submit_batch(us, vs).result(timeout=30)
        for u, v, answer in zip(us.tolist(), vs.tolist(), got):
            want = ground(u, v)
            assert answer == want and type(answer) is type(want)

    def test_infinite_distances_survive_scatter(self, flat_oracle):
        # Two islands: every cross pair is unreachable (inf, a float).
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        labeling = pruned_landmark_labeling(graph)
        flat = HubLabelOracle(
            FlatHubLabeling.from_labeling(labeling), backend="flat"
        )
        with QueryServer(flat, cache_size=0) as server:
            got = server.submit_batch([0, 0, 2], [1, 2, 3]).result(timeout=30)
        assert got[0] == 1 and got[2] == 1
        assert isinstance(got[1], float) and math.isinf(got[1])

    def test_duplicates_collapse_to_one_backend_pair(self, served_labeling):
        class _Recorder:
            def __init__(self, inner):
                self.inner = inner
                self.pairs = []

            @property
            def labeling(self):
                return self.inner.labeling

            def batch_query(self, pairs):
                self.pairs.extend(pairs)
                return self.inner.batch_query(pairs)

        recorder = _Recorder(HubLabelOracle(served_labeling, backend="dict"))
        with QueryServer(recorder, cache_size=0) as server:
            got = server.submit_batch(
                [4, 4, 7, 4], [5, 5, 9, 5]
            ).result(timeout=30)
        assert recorder.pairs.count((4, 5)) == 1
        assert got[0] == got[1] == got[3]

    def test_empty_batch_resolves_immediately(self, flat_oracle):
        with QueryServer(flat_oracle) as server:
            ticket = server.submit_batch([], [])
            assert ticket.done()
            assert ticket.result(timeout=0) == []
            assert ticket.width == 0

    def test_mismatched_lengths_rejected(self, flat_oracle):
        with QueryServer(flat_oracle) as server:
            with pytest.raises(ValueError):
                server.submit_batch([1, 2], [3])

    def test_out_of_domain_vertex_rejected_at_submit(self, flat_oracle):
        with QueryServer(flat_oracle) as server:
            with pytest.raises(DomainError) as info:
                server.submit_batch([0, 10_000], [1, 2])
            assert info.value.exit_code == 69

    def test_batch_overload_is_typed_and_counted(self, metrics_registry):
        stalled = _StallOracle()
        server = QueryServer(
            stalled, max_queue=4, max_batch=1, max_delay=0.0, cache_size=0
        )
        server.start()
        overloaded = None
        tickets = []
        try:
            for k in range(16):
                try:
                    tickets.append(
                        server.submit_batch([2 * k], [2 * k + 1])
                    )
                except ServerOverloadError as exc:
                    overloaded = exc
                    break
        finally:
            stalled.release.set()
        assert overloaded is not None
        assert overloaded.exit_code == 70
        assert "capacity 4" in str(overloaded)
        server.stop()
        for ticket in tickets:
            assert ticket.result(timeout=10) is not None
        assert server.stats().overloads == 1

    def test_stop_without_drain_fails_pending_tickets(self):
        stalled = _StallOracle()
        server = QueryServer(stalled, max_queue=64, max_batch=1, cache_size=0)
        server.start()
        first = server.submit_batch([1], [2])
        time.sleep(0.05)  # dispatcher now blocked inside the oracle
        backlog = [server.submit_batch([3, 4], [5, 6]) for _ in range(5)]
        stalled.release.set()
        server.stop(drain=False)
        assert first.result(timeout=10) == [3.0]
        from concurrent.futures import CancelledError

        for ticket in backlog:
            assert ticket.done()
            try:
                ticket.result(timeout=0)
            except CancelledError:
                pass

    def test_warm_cache_resolves_inline(self, flat_oracle):
        with QueryServer(flat_oracle, max_batch=4) as server:
            server.submit_batch([1, 2, 3], [4, 5, 6]).result(timeout=30)
            batches_before = server.stats().batches
            ticket = server.submit_batch([1, 2, 3], [4, 5, 6])
            assert ticket.done()  # all hits: resolved at submit time
            ticket.result(timeout=0)
            stats = server.stats()
        assert stats.batches == batches_before
        assert stats.cache_hits >= 3

    def test_scalar_only_oracle_serves_batches(self, served_labeling, ground):
        class _ScalarOnly:
            def __init__(self, inner):
                self.inner = inner

            @property
            def labeling(self):
                return self.inner.labeling

            def query(self, u, v):
                return self.inner.query(u, v)

        oracle = _ScalarOnly(HubLabelOracle(served_labeling, backend="dict"))
        with QueryServer(oracle, cache_size=0) as server:
            got = server.submit_batch([0, 5], [9, 14]).result(timeout=30)
        for (u, v), answer in zip([(0, 9), (5, 14)], got):
            want = ground(u, v)
            assert answer == want and type(answer) is type(want)

    def test_width_percentiles_populated(self, flat_oracle):
        with QueryServer(flat_oracle, cache_size=0) as server:
            server.submit_batch(list(range(8)), list(range(1, 9))).result(
                timeout=30
            )
            stats = server.stats()
        assert stats.batches >= 1
        assert stats.batch_width_p50 > 0
        assert stats.batch_width_p95 >= stats.batch_width_p50

    def test_repr_mentions_shards_and_dispatchers(self, flat_oracle):
        server = QueryServer(flat_oracle, shards=3, dispatchers=2)
        text = repr(server)
        assert "shards=[0, 0, 0]" in text
        assert "dispatchers=2" in text
        assert server.shard_depths() == (0, 0, 0)

    def test_multi_dispatcher_smoke(self, flat_oracle, ground):
        with QueryServer(
            flat_oracle, shards=4, dispatchers=2, max_batch=8,
            max_delay=0.001, cache_size=0,
        ) as server:
            report = run_loadgen(
                server,
                60,
                clients=8,
                requests_per_client=100,
                seed=11,
                expected=ground,
                batch_size=16,
            )
        assert report.ok, report.render()
        assert report.requests == 8 * 100

    def test_invalid_knobs_rejected(self, flat_oracle):
        with pytest.raises(ValueError):
            QueryServer(flat_oracle, shards=0)
        with pytest.raises(ValueError):
            QueryServer(flat_oracle, dispatchers=0)

    def test_single_thread_can_fill_whole_queue(self, flat_oracle):
        # A bursty single client must see the full max_queue capacity,
        # not one stripe's slice: admission overflows to other shards.
        stalled = _StallOracle()
        server = QueryServer(
            stalled, max_queue=8, shards=4, max_batch=1, cache_size=0
        )
        server.start()
        futures = []
        try:
            overloads = 0
            for k in range(20):
                try:
                    futures.append(server.submit(3 * k, 3 * k + 1))
                except ServerOverloadError:
                    overloads += 1
            assert len(futures) >= 8  # >= max_queue admitted
            assert overloads > 0
        finally:
            stalled.release.set()
        server.stop()


class TestLoadgenBatchPath:
    def test_batched_loadgen_matches_ground_truth(self, flat_oracle, ground):
        with QueryServer(flat_oracle, max_batch=32, cache_size=0) as server:
            report = run_loadgen(
                server,
                60,
                clients=4,
                requests_per_client=203,  # non-multiple: ragged tail
                seed=13,
                expected=ground,
                batch_size=64,
            )
        assert report.ok, report.render()
        assert report.requests == 4 * 203

    def test_batch_size_validation(self, flat_oracle):
        with QueryServer(flat_oracle) as server:
            with pytest.raises(ValueError):
                run_loadgen(server, 60, batch_size=0)


class TestMicroBatcherAddMany:
    def test_add_many_matches_repeated_add(self):
        reference = MicroBatcher(3, 1.0)
        bulk = MicroBatcher(3, 1.0)
        items = list(range(8))
        singles = []
        for item in items:
            batch = reference.add(item, 5.0)
            if batch:
                singles.append(batch)
        assert bulk.add_many(items, 5.0) == singles
        assert len(bulk) == len(reference)
        assert bulk.deadline == reference.deadline

    def test_add_many_anchors_deadline_to_first_item(self):
        batcher = MicroBatcher(100, 1.0)
        assert batcher.add_many([1, 2, 3], 7.0) == []
        assert batcher.deadline == 8.0
