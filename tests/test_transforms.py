"""Graph transformations: subdivision, unions, products, apex."""

import pytest

from repro.graphs import (
    Graph,
    add_apex,
    cartesian_product,
    cycle_graph,
    diameter,
    disjoint_union,
    grid_2d,
    hypercube_graph,
    is_connected,
    path_graph,
    random_weighted_graph,
    shortest_path_distances,
    subdivide_weighted,
)


class TestSubdivision:
    def test_preserves_distances(self):
        g = random_weighted_graph(25, 50, max_weight=6, seed=3)
        expanded, index = subdivide_weighted(g)
        assert not expanded.is_weighted
        for u in range(0, 25, 4):
            orig, _ = shortest_path_distances(g, u)
            new, _ = shortest_path_distances(expanded, index[u])
            for v in range(25):
                assert orig[v] == new[index[v]]

    def test_size_is_total_weight(self):
        g = Graph(3)
        g.add_edge(0, 1, 4)
        g.add_edge(1, 2, 2)
        expanded, _ = subdivide_weighted(g)
        assert expanded.num_edges == 6
        assert expanded.num_vertices == 3 + (4 - 1) + (2 - 1)

    def test_unit_edges_untouched(self):
        g = path_graph(5)
        expanded, _ = subdivide_weighted(g)
        assert expanded.num_vertices == 5
        assert expanded.num_edges == 4

    def test_rejects_zero_weights(self):
        g = Graph(2)
        g.add_edge(0, 1, 0)
        with pytest.raises(ValueError):
            subdivide_weighted(g)


class TestUnionProductApex:
    def test_disjoint_union(self):
        union, offset = disjoint_union(path_graph(3), cycle_graph(4))
        assert union.num_vertices == 7
        assert union.num_edges == 2 + 4
        assert offset == 3
        assert not is_connected(union)

    def test_product_of_paths_is_grid(self):
        product = cartesian_product(path_graph(3), path_graph(4))
        grid = grid_2d(3, 4)
        assert product.num_vertices == grid.num_vertices
        assert sorted(product.edges()) == sorted(grid.edges())

    def test_product_of_edges_is_square(self):
        square = cartesian_product(path_graph(2), path_graph(2))
        # Isomorphic to C4 (under the (a,x) indexing, not equal to the
        # canonical cycle labels): 4 vertices of degree 2, diameter 2.
        assert sorted(square.edges()) == [
            (0, 1, 1),
            (0, 2, 1),
            (1, 3, 1),
            (2, 3, 1),
        ]
        assert diameter(square) == 2

    def test_product_hypercube(self):
        edge = path_graph(2)
        cube = cartesian_product(cartesian_product(edge, edge), edge)
        assert cube.num_vertices == 8
        assert cube.num_edges == hypercube_graph(3).num_edges

    def test_apex_diameter_two(self):
        g, apex = add_apex(path_graph(10))
        assert g.degree(apex) == 10
        assert diameter(g) == 2

    def test_product_metric_is_sum_of_factor_metrics(self):
        # dist_{G x H}((a,x),(b,y)) = dist_G(a,b) + dist_H(x,y).
        from repro.graphs import cycle_graph as cyc

        g = path_graph(4)
        h = cyc(5)
        product = cartesian_product(g, h)
        cols = h.num_vertices
        dist_g = {a: shortest_path_distances(g, a)[0] for a in g.vertices()}
        dist_h = {x: shortest_path_distances(h, x)[0] for x in h.vertices()}
        for a in g.vertices():
            for x in h.vertices():
                row, _ = shortest_path_distances(product, a * cols + x)
                for b in g.vertices():
                    for y in h.vertices():
                        assert (
                            row[b * cols + y]
                            == dist_g[a][b] + dist_h[x][y]
                        )
