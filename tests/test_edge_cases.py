"""Cross-cutting edge cases the dedicated modules don't pin down."""

import pytest

from repro.core import (
    HubLabeling,
    SortedHubIndex,
    pruned_landmark_labeling,
)
from repro.graphs import (
    Graph,
    INF,
    diameter,
    is_connected,
    shortest_path_distances,
)
from repro.labeling import (
    BitWriter,
    DistanceRowScheme,
    HubEncodedScheme,
)


class TestSingletonAndEmptyGraphs:
    def test_single_vertex_everything(self):
        g = Graph(1)
        labeling = pruned_landmark_labeling(g)
        assert labeling.query(0, 0) == 0
        assert diameter(g) == 0
        assert is_connected(g)
        scheme = DistanceRowScheme(g)
        assert scheme.query(0, 0) == 0

    def test_empty_graph_labeling(self):
        labeling = pruned_landmark_labeling(Graph(0))
        assert labeling.num_vertices == 0
        assert labeling.total_size() == 0

    def test_two_isolated_vertices(self):
        g = Graph(2)
        labeling = pruned_landmark_labeling(g)
        assert labeling.query(0, 1) == INF
        index = SortedHubIndex(labeling)
        assert index.query(0, 1).distance == INF


class TestLargeValues:
    def test_big_weights_survive_everything(self):
        g = Graph(3)
        g.add_edge(0, 1, 10 ** 9)
        g.add_edge(1, 2, 10 ** 9)
        dist, _ = shortest_path_distances(g, 0)
        assert dist[2] == 2 * 10 ** 9
        labeling = pruned_landmark_labeling(g)
        assert labeling.query(0, 2) == 2 * 10 ** 9
        scheme = HubEncodedScheme(labeling)
        assert scheme.query(0, 2) == 2 * 10 ** 9

    def test_bitwriter_huge_gamma(self):
        w = BitWriter()
        w.write_gamma(2 ** 40 + 7)
        from repro.labeling import BitReader

        assert BitReader(w.getvalue()).read_gamma() == 2 ** 40 + 7


class TestQuerySymmetryAndSelfPairs:
    def test_hub_query_self_without_self_hub(self):
        lab = HubLabeling(2)
        lab.add_hub(0, 1, 3)
        lab.add_hub(1, 1, 0)
        # Self query falls back to 2 * d(0, hub) -- documents that the
        # store does not special-case u == v; constructions add self
        # hubs for that reason.
        assert lab.query(0, 0) == 6

    def test_distance_row_scheme_rejects_giant_widths(self):
        g = Graph(2)
        with pytest.raises(ValueError):
            DistanceRowScheme(g, distance_width=300)


class TestDenseGraphCorner:
    def test_complete_graph_labels_are_prefixes(self):
        from repro.graphs import complete_graph

        g = complete_graph(12)
        labeling = pruned_landmark_labeling(g)
        # On a clique every pair's only shortest path is its edge, so
        # the canonical labeling stores exactly the higher-priority
        # endpoint: S(v) = {0..v} under the identity order -- adjacency
        # is the hard case for 2-hop covers, not distance.
        for v in g.vertices():
            assert labeling.hub_set(v) == list(range(v + 1))
        assert labeling.average_size() == pytest.approx(6.5)

    def test_star_plus_clique_mixed_degrees(self):
        g = Graph(8)
        for u in range(4):
            for v in range(u + 1, 4):
                g.add_edge(u, v)
        for leaf in range(4, 8):
            g.add_edge(0, leaf)
        labeling = pruned_landmark_labeling(g)
        from repro.core import is_valid_cover

        assert is_valid_cover(g, labeling)


class TestRuntimeEdgeCases:
    """Degradation paths on degenerate structures."""

    def test_empty_labeling_round_trips_through_envelope(self):
        from repro.core import labeling_from_bytes, labeling_to_bytes

        blob = labeling_to_bytes(HubLabeling(0))
        assert labeling_from_bytes(blob).num_vertices == 0
        legacy = labeling_to_bytes(HubLabeling(0), envelope=False)
        assert labeling_from_bytes(legacy).num_vertices == 0

    def test_resilient_oracle_on_singleton(self):
        from repro.runtime import ResilientOracle

        g = Graph(1)
        oracle = ResilientOracle(
            g, pruned_landmark_labeling(g), verify_sample=1
        )
        assert oracle.query(0, 0).distance == 0
        assert oracle.health.healthy

    def test_isolated_vertex_queries_stay_inf(self):
        from repro.runtime import ResilientOracle

        g = Graph(3)
        g.add_edge(0, 1)
        oracle = ResilientOracle(
            g, pruned_landmark_labeling(g), verify_sample=3
        )
        assert oracle.query(0, 2).distance == INF
        assert oracle.query(2, 2).distance == 0

    def test_edgelist_comments_and_blank_lines(self):
        from repro.core import graph_from_edgelist

        g = graph_from_edgelist(
            "# weighted triangle\n\n3 3\n0 1 2\n\n1 2 3  # heavy\n0 2 1\n"
        )
        assert g.num_vertices == 3
        assert g.num_edges == 3

    def test_edgelist_weightless_lines_default_to_one(self):
        from repro.core import graph_from_edgelist

        g = graph_from_edgelist("2 1\n0 1\n")
        assert g.edge_weight(0, 1) == 1

    def test_edgelist_errors_name_the_line(self):
        from repro.core import graph_from_edgelist
        from repro.runtime import FormatError

        cases = [
            ("bogus header\n", 1),
            ("2 1\n0 1 1 9\n", 2),          # too many fields
            ("2 1\n\n0 -1 1\n", 3),         # negative id, after blank
            ("2 1\n0 1 x\n", 2),            # non-numeric weight
            ("2 1\n0 5 1\n", 2),            # id out of range
            ("2 1\n0 0 1\n", 2),            # self-loop
            ("2 2\n0 1 1\n", 1),            # count mismatch -> header
        ]
        for text, line in cases:
            with pytest.raises(FormatError) as excinfo:
                graph_from_edgelist(text)
            assert excinfo.value.line == line, text
