"""Centralized distance oracles: exactness and accounting."""

import pytest

from repro.core import pruned_landmark_labeling
from repro.graphs import (
    INF,
    Graph,
    all_pairs_distances,
    grid_2d,
    path_graph,
    random_sparse_graph,
    random_weighted_graph,
)
from repro.oracles import HubLabelOracle, LandmarkOracle, MatrixOracle
from repro.runtime import DomainError, ResilientOracle


def assert_oracle_exact(graph, oracle, stride=1):
    matrix = all_pairs_distances(graph)
    n = graph.num_vertices
    for u in range(0, n, stride):
        for v in range(0, n, stride):
            outcome = oracle.query(u, v)
            assert outcome.distance == matrix[u][v], (u, v)
            assert outcome.operations >= 1


class TestMatrixOracle:
    def test_exact(self):
        g = random_sparse_graph(30, seed=1)
        assert_oracle_exact(g, MatrixOracle(g))

    def test_space_quadratic(self):
        g = path_graph(10)
        assert MatrixOracle(g).space_words() == 100

    def test_constant_ops(self):
        g = grid_2d(4, 4)
        oracle = MatrixOracle(g)
        assert oracle.query(0, 15).operations == 1


class TestHubLabelOracle:
    def test_exact(self):
        g = random_sparse_graph(30, seed=2)
        oracle = HubLabelOracle(pruned_landmark_labeling(g))
        assert_oracle_exact(g, oracle)

    def test_space_counts_pairs(self):
        g = path_graph(6)
        labeling = pruned_landmark_labeling(g)
        oracle = HubLabelOracle(labeling)
        assert oracle.space_words() == 2 * labeling.total_size()

    def test_ops_bounded_by_smaller_label(self):
        g = grid_2d(5, 5)
        labeling = pruned_landmark_labeling(g)
        oracle = HubLabelOracle(labeling)
        out = oracle.query(0, 24)
        assert out.operations <= min(
            labeling.label_size(0), labeling.label_size(24)
        )


class TestHubLabelOracleBackends:
    def test_flat_backend_exact(self):
        g = random_sparse_graph(30, seed=2)
        oracle = HubLabelOracle(pruned_landmark_labeling(g), backend="flat")
        assert oracle.backend == "flat"
        assert_oracle_exact(g, oracle)

    def test_backends_answer_identically(self):
        g = random_sparse_graph(25, seed=8)
        labeling = pruned_landmark_labeling(g)
        dict_oracle = HubLabelOracle(labeling, backend="dict")
        flat_oracle = HubLabelOracle(labeling, backend="flat")
        pairs = [(u, v) for u in range(25) for v in range(25)]
        assert flat_oracle.batch_query(pairs) == dict_oracle.batch_query(
            pairs
        )
        for u, v in pairs[:100]:
            assert (
                flat_oracle.query(u, v).distance
                == dict_oracle.query(u, v).distance
            )

    def test_space_words_agree(self):
        g = path_graph(8)
        labeling = pruned_landmark_labeling(g)
        assert (
            HubLabelOracle(labeling, backend="flat").space_words()
            == HubLabelOracle(labeling, backend="dict").space_words()
        )

    def test_flat_input_converts_for_dict_backend(self):
        from repro.perf import FlatHubLabeling

        g = path_graph(8)
        labeling = pruned_landmark_labeling(g)
        flat = FlatHubLabeling.from_labeling(labeling)
        oracle = HubLabelOracle(flat, backend="dict")
        assert oracle.backend == "dict"
        assert_oracle_exact(g, oracle)

    def test_unknown_backend_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            HubLabelOracle(pruned_landmark_labeling(g), backend="csr")

    def test_batch_query_checks_domain(self):
        g = path_graph(6)
        oracle = HubLabelOracle(pruned_landmark_labeling(g), backend="flat")
        with pytest.raises(DomainError):
            oracle.batch_query([(0, 1), (0, 6)])


class TestLandmarkOracle:
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_exact_unweighted(self, k):
        g = random_sparse_graph(40, seed=3)
        assert_oracle_exact(g, LandmarkOracle(g, k, seed=1), stride=3)

    def test_exact_weighted(self):
        g = random_weighted_graph(30, 60, seed=4)
        assert_oracle_exact(g, LandmarkOracle(g, 4, seed=2), stride=3)

    def test_space_scales_with_landmarks(self):
        g = path_graph(20)
        assert LandmarkOracle(g, 2, seed=0).space_words() <= LandmarkOracle(
            g, 8, seed=0
        ).space_words()

    def test_landmark_bound_is_upper_bound(self):
        g = random_sparse_graph(100, seed=5)
        oracle = LandmarkOracle(g, 10, seed=1)
        matrix_row = all_pairs_distances(g)
        for u, v in [(0, 50), (10, 90), (25, 75), (5, 95)]:
            assert oracle.landmark_upper_bound(u, v) >= matrix_row[u][v]

    def test_more_landmarks_tighter_bounds(self):
        g = random_sparse_graph(100, seed=5)
        few = LandmarkOracle(g, 2, seed=1)
        many = LandmarkOracle(g, 30, seed=1)
        pairs = [(0, 50), (10, 90), (25, 75), (5, 95)]
        slack_few = sum(few.landmark_upper_bound(u, v) for u, v in pairs)
        slack_many = sum(many.landmark_upper_bound(u, v) for u, v in pairs)
        assert slack_many <= slack_few

    def test_rejects_zero_landmarks(self):
        with pytest.raises(ValueError):
            LandmarkOracle(path_graph(5), 0)

    def test_same_vertex(self):
        g = path_graph(5)
        oracle = LandmarkOracle(g, 2, seed=0)
        assert oracle.query(3, 3).distance == 0


def _all_oracles(graph):
    labeling = pruned_landmark_labeling(graph)
    return [
        MatrixOracle(graph),
        HubLabelOracle(labeling),
        LandmarkOracle(graph, 2, seed=0),
        ResilientOracle(graph, labeling),
    ]


class TestQueryOutcomeDegradation:
    """Out-of-range ids and disconnected pairs behave the same way on
    every oracle: DomainError and QueryOutcome(INF) respectively."""

    @pytest.mark.parametrize(
        "pair", [(-1, 0), (0, -1), (0, 10), (10, 0), (10**9, 0)]
    )
    def test_out_of_range_raises_domain_error_everywhere(self, pair):
        g = path_graph(10)
        for oracle in _all_oracles(g):
            with pytest.raises(DomainError):
                oracle.query(*pair)

    def test_domain_error_is_a_value_error(self):
        g = path_graph(4)
        for oracle in _all_oracles(g):
            with pytest.raises(ValueError):
                oracle.query(0, 99)

    def test_disconnected_pair_returns_inf_everywhere(self):
        g = Graph(5)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        for oracle in _all_oracles(g):
            outcome = oracle.query(0, 3)
            assert outcome.distance == INF, oracle.name
            assert outcome.operations >= 1

    def test_disconnected_self_component_pairs_exact(self):
        g = Graph(6)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        truth = all_pairs_distances(g)
        for oracle in _all_oracles(g):
            for u in range(6):
                for v in range(6):
                    assert oracle.query(u, v).distance == truth[u][v]

    def test_outcome_source_field(self):
        g = path_graph(6)
        labeling = pruned_landmark_labeling(g)
        assert HubLabelOracle(labeling).query(0, 5).source == "oracle"
        assert ResilientOracle(g, labeling).query(0, 5).source == "label"

    def test_empty_graph_oracles_reject_all_queries(self):
        g = Graph(0)
        labeling = pruned_landmark_labeling(g)
        for oracle in (
            MatrixOracle(g),
            HubLabelOracle(labeling),
            ResilientOracle(g, labeling),
        ):
            with pytest.raises(DomainError):
                oracle.query(0, 0)
