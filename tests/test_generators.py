"""Generators: exact shapes, determinism, connectivity, degree caps.

The graph-zoo families (power-law configuration model, Watts-Strogatz
small-world, road-network grids) get hypothesis property coverage:
exact degree-sequence realization, exact edge counts, connectivity
where the construction guarantees it, and seed determinism.  The
``seed`` keyword convention of :mod:`repro.graphs.generators` is
enforced by enumerating the module, so new generators cannot drift.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    balanced_binary_tree,
    caterpillar,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    diameter,
    gnm_random_graph,
    grid_2d,
    hypercube_graph,
    is_connected,
    path_graph,
    random_bounded_degree_graph,
    random_sparse_graph,
    random_tree,
    random_weighted_graph,
    star_graph,
    torus_2d,
)


class TestDeterministicFamilies:
    def test_path(self):
        g = path_graph(10)
        assert g.num_edges == 9
        assert g.max_degree() == 2
        assert diameter(g) == 9

    def test_cycle(self):
        g = cycle_graph(8)
        assert g.num_edges == 8
        assert all(g.degree(v) == 2 for v in g.vertices())
        assert diameter(g) == 4

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 5
        assert g.num_edges == 5
        assert diameter(g) == 2

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert diameter(g) == 1

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert g.num_edges == 12
        assert g.degree(0) == 4
        assert g.degree(3) == 3

    def test_grid(self):
        g = grid_2d(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4
        assert diameter(g) == 5

    def test_torus(self):
        g = torus_2d(4, 4)
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert diameter(g) == 4

    def test_torus_too_small(self):
        with pytest.raises(ValueError):
            torus_2d(2, 5)

    def test_balanced_binary_tree(self):
        g = balanced_binary_tree(3)
        assert g.num_vertices == 15
        assert g.num_edges == 14
        assert g.max_degree() == 3
        assert is_connected(g)

    def test_caterpillar(self):
        g = caterpillar(5, 2)
        assert g.num_vertices == 15
        assert g.num_edges == 14
        assert is_connected(g)

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.num_vertices == 16
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert diameter(g) == 4


class TestRandomFamilies:
    def test_random_tree_is_tree(self):
        for seed in range(5):
            g = random_tree(40, seed=seed)
            assert g.num_edges == 39
            assert is_connected(g)

    def test_random_tree_deterministic(self):
        a = random_tree(25, seed=3)
        b = random_tree(25, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_random_tree_tiny(self):
        assert random_tree(1).num_edges == 0
        assert random_tree(2).num_edges == 1

    def test_gnm_counts(self):
        g = gnm_random_graph(30, 45, seed=2)
        assert g.num_vertices == 30
        assert g.num_edges == 45

    def test_gnm_too_many_edges(self):
        with pytest.raises(ValueError):
            gnm_random_graph(4, 100)

    def test_sparse_connected_and_sparse(self):
        for seed in range(4):
            g = random_sparse_graph(70, seed=seed, avg_degree=3.0)
            assert is_connected(g)
            assert g.num_edges <= 2 * 70  # m = O(n)

    def test_bounded_degree_cap_respected(self):
        g = random_bounded_degree_graph(60, 3, seed=4)
        assert g.max_degree() <= 3
        assert is_connected(g)

    def test_bounded_degree_rejects_small_cap(self):
        with pytest.raises(ValueError):
            random_bounded_degree_graph(10, 1)

    def test_weighted_graph_connected_weights_in_range(self):
        g = random_weighted_graph(40, 80, max_weight=7, seed=6)
        assert is_connected(g)
        assert all(1 <= w <= 7 for _, _, w in g.edges())


class TestComplexNetworkFamilies:
    def test_barabasi_albert_shape(self):
        from repro.graphs import barabasi_albert

        g = barabasi_albert(150, 2, seed=1)
        assert g.num_vertices == 150
        assert is_connected(g)
        # Heavy tail: the max degree dwarfs the average.
        assert g.max_degree() > 4 * g.average_degree()
        # Sparse: m ~ attach * n.
        assert g.num_edges <= 3 * 150

    def test_barabasi_albert_small_n(self):
        from repro.graphs import barabasi_albert

        g = barabasi_albert(2, 3, seed=0)
        assert g.num_vertices == 2

    def test_barabasi_albert_deterministic(self):
        from repro.graphs import barabasi_albert

        a = barabasi_albert(50, 2, seed=7)
        b = barabasi_albert(50, 2, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_barabasi_albert_invalid(self):
        from repro.graphs import barabasi_albert

        with pytest.raises(ValueError):
            barabasi_albert(10, 0)

    def test_random_geometric_locality(self):
        from repro.graphs import random_geometric

        g = random_geometric(100, 0.2, seed=3)
        assert g.num_vertices == 100
        # Locality: smaller radius, fewer edges.
        smaller = random_geometric(100, 0.1, seed=3)
        assert smaller.num_edges < g.num_edges

    def test_random_geometric_invalid(self):
        from repro.graphs import random_geometric

        with pytest.raises(ValueError):
            random_geometric(10, 0)

    def test_pll_valid_on_both(self):
        from repro.core import is_valid_cover, pruned_landmark_labeling
        from repro.graphs import barabasi_albert, random_geometric

        for g in (
            barabasi_albert(60, 2, seed=4),
            random_geometric(60, 0.2, seed=5),
        ):
            assert is_valid_cover(g, pruned_landmark_labeling(g))

    def test_ba_hubs_are_tiny(self):
        # The practical phenomenon: on preferential-attachment networks
        # PLL labels stay very small (high-degree hubs cover everything).
        from repro.core import pruned_landmark_labeling
        from repro.graphs import barabasi_albert, random_bounded_degree_graph

        ba = barabasi_albert(150, 2, seed=6)
        flat = random_bounded_degree_graph(150, 3, seed=6)
        ba_avg = pruned_landmark_labeling(ba).average_size()
        flat_avg = pruned_landmark_labeling(flat).average_size()
        assert ba_avg < flat_avg


class TestPowerlawDegreeSequence:
    def test_is_graphical_known_cases(self):
        from repro.graphs import is_graphical

        assert is_graphical([3, 3, 3, 3])       # K4
        assert is_graphical([2, 2, 2])          # triangle
        assert is_graphical([4, 1, 1, 1, 1])    # star
        assert is_graphical([])                  # empty graph
        assert not is_graphical([1])             # odd degree sum
        assert not is_graphical([3, 3, 1, 1])    # fails Erdos-Gallai
        assert not is_graphical([5, 1, 1, 1, 1])  # degree >= n

    @given(
        n=st.integers(min_value=2, max_value=60),
        exponent=st.floats(min_value=1.5, max_value=3.5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_sequence_is_graphical_and_deterministic(self, n, exponent, seed):
        from repro.graphs import is_graphical, powerlaw_degree_sequence

        degrees = powerlaw_degree_sequence(n, exponent=exponent, seed=seed)
        assert len(degrees) == n
        assert all(d >= 1 for d in degrees)
        assert sum(degrees) % 2 == 0
        assert is_graphical(degrees)
        again = powerlaw_degree_sequence(n, exponent=exponent, seed=seed)
        assert degrees == again


class TestConfigurationModel:
    @given(
        n=st.integers(min_value=2, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_realizes_degree_sequence_exactly(self, n, seed):
        from repro.graphs import configuration_model, powerlaw_degree_sequence

        degrees = powerlaw_degree_sequence(n, seed=seed)
        g = configuration_model(degrees, seed=seed)
        assert g.num_vertices == n
        # Exact realization as a *simple* graph: the Graph class rejects
        # self-loops and collapses duplicate edges, so hitting every
        # degree on the nose also proves neither ever happened.
        assert [g.degree(v) for v in range(n)] == degrees
        assert 2 * g.num_edges == sum(degrees)

    def test_non_graphical_rejected(self):
        from repro.graphs import configuration_model

        with pytest.raises(ValueError):
            configuration_model([3, 3, 1, 1])
        with pytest.raises(ValueError):
            configuration_model([1])

    def test_deterministic_and_seed_sensitive(self):
        from repro.graphs import configuration_model

        degrees = [3, 3, 2, 2, 2, 2, 1, 1, 1, 1]
        a = configuration_model(degrees, seed=5)
        b = configuration_model(degrees, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())
        variants = {
            tuple(sorted(configuration_model(degrees, seed=s).edges()))
            for s in range(8)
        }
        assert len(variants) > 1

    def test_powerlaw_configuration_deterministic(self):
        from repro.graphs import powerlaw_configuration

        a = powerlaw_configuration(80, seed=3)
        b = powerlaw_configuration(80, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())
        assert a.num_vertices == 80


class TestWattsStrogatz:
    @given(
        n=st.integers(min_value=8, max_value=80),
        half_k=st.integers(min_value=1, max_value=3),
        beta=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_edge_count_and_connectivity(self, n, half_k, beta, seed):
        from repro.graphs import watts_strogatz

        k = 2 * half_k
        # n >= 2k keeps every vertex far from saturation, so the edge
        # count is exactly the ring lattice's n*k/2.
        if n < 2 * k:
            n = 2 * k
        g = watts_strogatz(n, k, beta, seed=seed)
        assert g.num_vertices == n
        assert g.num_edges == n * k // 2
        # The offset-1 ring is never rewired, so the graph stays
        # connected at any beta.
        assert is_connected(g)

    def test_beta_zero_is_ring_lattice(self):
        from repro.graphs import watts_strogatz

        g = watts_strogatz(12, 4, 0.0, seed=9)
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert diameter(g) == 3

    def test_rewiring_shrinks_diameter(self):
        from repro.graphs import watts_strogatz

        ring = watts_strogatz(120, 4, 0.0, seed=1)
        rewired = watts_strogatz(120, 4, 0.3, seed=1)
        assert diameter(rewired) < diameter(ring)

    def test_deterministic(self):
        from repro.graphs import watts_strogatz

        a = watts_strogatz(40, 4, 0.2, seed=11)
        b = watts_strogatz(40, 4, 0.2, seed=11)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_invalid_parameters(self):
        from repro.graphs import watts_strogatz

        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(ValueError):
            watts_strogatz(4, 4, 0.1)  # k >= n
        with pytest.raises(ValueError):
            watts_strogatz(10, 4, 1.5)  # beta out of range


class TestRoadNetwork:
    @given(
        rows=st.integers(min_value=2, max_value=8),
        cols=st.integers(min_value=2, max_value=8),
        diagonal_prob=st.floats(min_value=0.0, max_value=1.0),
        delete_prob=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_connected(self, rows, cols, diagonal_prob, delete_prob,
                              seed):
        from repro.graphs import road_network

        g = road_network(
            rows,
            cols,
            diagonal_prob=diagonal_prob,
            delete_prob=delete_prob,
            seed=seed,
        )
        assert g.num_vertices == rows * cols
        # Deletions are committed one at a time, each re-checked for
        # connectivity, so the network never fragments.
        assert is_connected(g)

    def test_no_knobs_is_plain_grid(self):
        from repro.graphs import road_network

        g = road_network(4, 5, diagonal_prob=0.0, delete_prob=0.0, seed=0)
        grid = grid_2d(4, 5)
        assert sorted(g.edges()) == sorted(grid.edges())

    def test_deterministic_and_seed_sensitive(self):
        from repro.graphs import road_network

        a = road_network(6, 6, seed=2)
        b = road_network(6, 6, seed=2)
        assert sorted(a.edges()) == sorted(b.edges())
        variants = {
            tuple(sorted(road_network(6, 6, seed=s).edges()))
            for s in range(6)
        }
        assert len(variants) > 1

    def test_sparse(self):
        from repro.graphs import road_network

        g = road_network(10, 10, seed=4)
        # Planar-ish: well under the 3n - 6 planar bound.
        assert g.num_edges < 3 * g.num_vertices


class TestSeedKwargConvention:
    """Every random generator takes ``seed`` the same way.

    The module docstring promises: keyword-only ``seed`` with default 0,
    all randomness from ``random.Random(seed)``, documented per
    function.  Enumerating ``__all__`` keeps the promise honest for
    generators added later without touching this test.
    """

    def _seeded_generators(self):
        import inspect

        from repro.dynamic import mutations as mutations_module
        from repro.graphs import generators as module

        for mod in (module, mutations_module):
            for name in mod.__all__:
                fn = getattr(mod, name)
                # Classes (MutationScript) carry a ``seed`` dataclass
                # field, not a generator seed; the convention is about
                # the random *functions*.
                if not callable(fn) or inspect.isclass(fn):
                    continue
                signature = inspect.signature(fn)
                if "seed" in signature.parameters:
                    yield name, fn, signature.parameters["seed"]

    def test_seed_is_keyword_only_with_default_zero(self):
        import inspect

        found = []
        for name, _, param in self._seeded_generators():
            assert param.kind is inspect.Parameter.KEYWORD_ONLY, name
            assert param.default == 0, name
            found.append(name)
        # The random families must all be present -- a generator that
        # silently dropped its seed would vanish from this list.
        assert {
            "random_tree",
            "gnm_random_graph",
            "erdos_renyi",
            "random_sparse_graph",
            "random_bounded_degree_graph",
            "random_weighted_graph",
            "barabasi_albert",
            "random_geometric",
            "powerlaw_degree_sequence",
            "configuration_model",
            "powerlaw_configuration",
            "watts_strogatz",
            "road_network",
            "mutation_script",
        } <= set(found)

    def test_every_seeded_generator_documents_its_rng(self):
        for name, fn, _ in self._seeded_generators():
            assert "random.Random" in (fn.__doc__ or ""), name

    def test_global_rng_untouched(self):
        import random as random_module

        from repro.graphs import generators as module
        from repro.graphs.generators import random_sparse_graph

        state = random_module.getstate()
        for name, fn, _ in self._seeded_generators():
            if name == "mutation_script":
                fn(random_sparse_graph(10, seed=2), 6, seed=1)
            elif name == "configuration_model":
                fn([2, 2, 2], seed=1)
            elif name == "gnm_random_graph":
                fn(8, 10, seed=1)
            elif name == "erdos_renyi":
                fn(8, 0.3, seed=1)
            elif name == "random_bounded_degree_graph":
                fn(8, 3, seed=1)
            elif name == "random_weighted_graph":
                fn(8, 10, seed=1)
            elif name == "random_geometric":
                fn(8, 0.5, seed=1)
            elif name == "watts_strogatz":
                fn(10, 4, 0.2, seed=1)
            elif name == "road_network":
                fn(3, 3, seed=1)
            else:
                fn(8, seed=1)
        assert random_module.getstate() == state
