"""Generators: exact shapes, determinism, connectivity, degree caps."""

import pytest

from repro.graphs import (
    balanced_binary_tree,
    caterpillar,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    diameter,
    gnm_random_graph,
    grid_2d,
    hypercube_graph,
    is_connected,
    path_graph,
    random_bounded_degree_graph,
    random_sparse_graph,
    random_tree,
    random_weighted_graph,
    star_graph,
    torus_2d,
)


class TestDeterministicFamilies:
    def test_path(self):
        g = path_graph(10)
        assert g.num_edges == 9
        assert g.max_degree() == 2
        assert diameter(g) == 9

    def test_cycle(self):
        g = cycle_graph(8)
        assert g.num_edges == 8
        assert all(g.degree(v) == 2 for v in g.vertices())
        assert diameter(g) == 4

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 5
        assert g.num_edges == 5
        assert diameter(g) == 2

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert diameter(g) == 1

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert g.num_edges == 12
        assert g.degree(0) == 4
        assert g.degree(3) == 3

    def test_grid(self):
        g = grid_2d(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4
        assert diameter(g) == 5

    def test_torus(self):
        g = torus_2d(4, 4)
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert diameter(g) == 4

    def test_torus_too_small(self):
        with pytest.raises(ValueError):
            torus_2d(2, 5)

    def test_balanced_binary_tree(self):
        g = balanced_binary_tree(3)
        assert g.num_vertices == 15
        assert g.num_edges == 14
        assert g.max_degree() == 3
        assert is_connected(g)

    def test_caterpillar(self):
        g = caterpillar(5, 2)
        assert g.num_vertices == 15
        assert g.num_edges == 14
        assert is_connected(g)

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.num_vertices == 16
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert diameter(g) == 4


class TestRandomFamilies:
    def test_random_tree_is_tree(self):
        for seed in range(5):
            g = random_tree(40, seed=seed)
            assert g.num_edges == 39
            assert is_connected(g)

    def test_random_tree_deterministic(self):
        a = random_tree(25, seed=3)
        b = random_tree(25, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_random_tree_tiny(self):
        assert random_tree(1).num_edges == 0
        assert random_tree(2).num_edges == 1

    def test_gnm_counts(self):
        g = gnm_random_graph(30, 45, seed=2)
        assert g.num_vertices == 30
        assert g.num_edges == 45

    def test_gnm_too_many_edges(self):
        with pytest.raises(ValueError):
            gnm_random_graph(4, 100)

    def test_sparse_connected_and_sparse(self):
        for seed in range(4):
            g = random_sparse_graph(70, seed=seed, avg_degree=3.0)
            assert is_connected(g)
            assert g.num_edges <= 2 * 70  # m = O(n)

    def test_bounded_degree_cap_respected(self):
        g = random_bounded_degree_graph(60, 3, seed=4)
        assert g.max_degree() <= 3
        assert is_connected(g)

    def test_bounded_degree_rejects_small_cap(self):
        with pytest.raises(ValueError):
            random_bounded_degree_graph(10, 1)

    def test_weighted_graph_connected_weights_in_range(self):
        g = random_weighted_graph(40, 80, max_weight=7, seed=6)
        assert is_connected(g)
        assert all(1 <= w <= 7 for _, _, w in g.edges())


class TestComplexNetworkFamilies:
    def test_barabasi_albert_shape(self):
        from repro.graphs import barabasi_albert

        g = barabasi_albert(150, 2, seed=1)
        assert g.num_vertices == 150
        assert is_connected(g)
        # Heavy tail: the max degree dwarfs the average.
        assert g.max_degree() > 4 * g.average_degree()
        # Sparse: m ~ attach * n.
        assert g.num_edges <= 3 * 150

    def test_barabasi_albert_small_n(self):
        from repro.graphs import barabasi_albert

        g = barabasi_albert(2, 3, seed=0)
        assert g.num_vertices == 2

    def test_barabasi_albert_deterministic(self):
        from repro.graphs import barabasi_albert

        a = barabasi_albert(50, 2, seed=7)
        b = barabasi_albert(50, 2, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_barabasi_albert_invalid(self):
        from repro.graphs import barabasi_albert

        with pytest.raises(ValueError):
            barabasi_albert(10, 0)

    def test_random_geometric_locality(self):
        from repro.graphs import random_geometric

        g = random_geometric(100, 0.2, seed=3)
        assert g.num_vertices == 100
        # Locality: smaller radius, fewer edges.
        smaller = random_geometric(100, 0.1, seed=3)
        assert smaller.num_edges < g.num_edges

    def test_random_geometric_invalid(self):
        from repro.graphs import random_geometric

        with pytest.raises(ValueError):
            random_geometric(10, 0)

    def test_pll_valid_on_both(self):
        from repro.core import is_valid_cover, pruned_landmark_labeling
        from repro.graphs import barabasi_albert, random_geometric

        for g in (
            barabasi_albert(60, 2, seed=4),
            random_geometric(60, 0.2, seed=5),
        ):
            assert is_valid_cover(g, pruned_landmark_labeling(g))

    def test_ba_hubs_are_tiny(self):
        # The practical phenomenon: on preferential-attachment networks
        # PLL labels stay very small (high-degree hubs cover everything).
        from repro.core import pruned_landmark_labeling
        from repro.graphs import barabasi_albert, random_bounded_degree_graph

        ba = barabasi_albert(150, 2, seed=6)
        flat = random_bounded_degree_graph(150, 3, seed=6)
        ba_avg = pruned_landmark_labeling(ba).average_size()
        flat_avg = pruned_landmark_labeling(flat).average_size()
        assert ba_avg < flat_avg
