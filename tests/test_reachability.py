"""Directed 2-hop reachability covers ([CHKZ03] framework)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.reachability import (
    DiGraph,
    ReachabilityLabeling,
    is_valid_reachability_cover,
    pruned_reachability_labeling,
)


def random_digraph(n, density, seed):
    rng = random.Random(seed)
    g = DiGraph(n)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < density:
                g.add_edge(u, v)
    return g


class TestDiGraph:
    def test_basics(self):
        g = DiGraph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert g.num_edges == 2
        assert g.successors(0) == [1]
        assert g.predecessors(2) == [1]
        assert sorted(g.edges()) == [(0, 1), (1, 2)]

    def test_parallel_collapse_and_loops(self):
        g = DiGraph(2)
        g.add_edge(0, 1)
        g.add_edge(0, 1)
        assert g.num_edges == 1
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_reachability_oracle(self):
        g = DiGraph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert g.reaches(0, 2)
        assert not g.reaches(2, 0)
        assert g.reachable_from(0) == {0, 1, 2}
        assert g.reaching_to(2) == {0, 1, 2}

    def test_topological_order_dag(self):
        g = DiGraph(4)
        g.add_edge(3, 1)
        g.add_edge(1, 0)
        g.add_edge(3, 2)
        order = g.topological_order()
        assert order is not None
        position = {v: i for i, v in enumerate(order)}
        for u, v in g.edges():
            assert position[u] < position[v]
        assert g.is_dag()

    def test_cycle_detected(self):
        g = DiGraph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 0)
        assert g.topological_order() is None
        assert not g.is_dag()


class TestTwoHopCover:
    @pytest.mark.parametrize("seed", range(8))
    def test_valid_on_random_digraphs(self, seed):
        g = random_digraph(14, 0.2, seed)
        labeling = pruned_reachability_labeling(g)
        assert is_valid_reachability_cover(g, labeling)

    def test_valid_on_cycle(self):
        g = DiGraph(6)
        for v in range(6):
            g.add_edge(v, (v + 1) % 6)
        labeling = pruned_reachability_labeling(g)
        assert is_valid_reachability_cover(g, labeling)
        # In a directed cycle everyone reaches everyone.
        assert all(labeling.query(u, v) for u in range(6) for v in range(6))

    def test_valid_on_dag_chain(self):
        g = DiGraph(8)
        for v in range(7):
            g.add_edge(v, v + 1)
        labeling = pruned_reachability_labeling(g)
        assert is_valid_reachability_cover(g, labeling)
        assert labeling.query(0, 7)
        assert not labeling.query(7, 0)

    def test_self_reachability(self):
        g = DiGraph(3)
        labeling = pruned_reachability_labeling(g)
        for v in range(3):
            assert labeling.query(v, v)

    def test_custom_order_still_valid(self):
        g = random_digraph(12, 0.25, seed=99)
        order = list(range(12))
        labeling = pruned_reachability_labeling(g, order)
        assert is_valid_reachability_cover(g, labeling)

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            pruned_reachability_labeling(DiGraph(3), [0, 1])

    def test_pruning_helps_on_star_dag(self):
        # Source star: hub-first order gives tiny labels.
        n = 20
        g = DiGraph(n)
        for v in range(1, n):
            g.add_edge(0, v)
        labeling = pruned_reachability_labeling(g, list(range(n)))
        assert labeling.average_size() <= 4

    def test_size_accounting(self):
        g = random_digraph(10, 0.3, seed=5)
        labeling = pruned_reachability_labeling(g)
        assert labeling.total_size() == sum(
            len(s) for s in labeling.out_labels
        ) + sum(len(s) for s in labeling.in_labels)
        assert labeling.average_size() == labeling.total_size() / 10

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.0, max_value=0.5),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_property_random_digraphs(self, n, density, seed):
        g = random_digraph(n, density, seed)
        labeling = pruned_reachability_labeling(g)
        assert is_valid_reachability_cover(g, labeling)

    def test_mismatched_labeling_rejected(self):
        g = DiGraph(3)
        assert not is_valid_reachability_cover(
            g, ReachabilityLabeling.empty(2)
        )


class TestDirectedDistance:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_on_random_digraphs(self, seed):
        from repro.reachability import (
            is_valid_directed_cover,
            pruned_directed_labeling,
        )

        g = random_digraph(13, 0.25, seed)
        labeling = pruned_directed_labeling(g)
        assert is_valid_directed_cover(g, labeling)

    def test_asymmetry(self):
        from repro.reachability import pruned_directed_labeling

        g = DiGraph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        labeling = pruned_directed_labeling(g)
        assert labeling.query(0, 3) == 3
        assert labeling.query(3, 0) == float("inf")
        assert labeling.query(2, 2) == 0

    def test_cycle_distances(self):
        from repro.reachability import (
            is_valid_directed_cover,
            pruned_directed_labeling,
        )

        g = DiGraph(5)
        for v in range(5):
            g.add_edge(v, (v + 1) % 5)
        labeling = pruned_directed_labeling(g)
        assert is_valid_directed_cover(g, labeling)
        assert labeling.query(0, 4) == 4
        assert labeling.query(4, 0) == 1

    def test_invalid_order_rejected(self):
        from repro.reachability import pruned_directed_labeling

        with pytest.raises(ValueError):
            pruned_directed_labeling(DiGraph(3), [2, 1])

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=11),
        st.floats(min_value=0.0, max_value=0.5),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_property_random_digraphs(self, n, density, seed):
        from repro.reachability import (
            is_valid_directed_cover,
            pruned_directed_labeling,
        )

        g = random_digraph(n, density, seed)
        assert is_valid_directed_cover(g, pruned_directed_labeling(g))


class TestDirectedUndirectedEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=2, max_value=12),
        st.floats(min_value=0.1, max_value=0.5),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_symmetric_digraph_matches_undirected_bfs(self, n, density, seed):
        """On a symmetric digraph, directed labels reproduce undirected
        distances -- a cross-substrate consistency check."""
        from repro.graphs import Graph, shortest_path_distances, INF
        from repro.reachability import pruned_directed_labeling

        rng = random.Random(seed)
        undirected = Graph(n)
        directed = DiGraph(n)
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < density:
                    undirected.add_edge(u, v)
                    directed.add_edge(u, v)
                    directed.add_edge(v, u)
        labeling = pruned_directed_labeling(directed)
        for u in range(n):
            dist, _ = shortest_path_distances(undirected, u)
            for v in range(n):
                expected = dist[v] if dist[v] != INF else float("inf")
                assert labeling.query(u, v) == expected
