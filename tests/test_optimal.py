"""Exact minimum hub labelings and the hierarchical gap (tiny graphs)."""

import pytest

from repro.core import (
    best_hierarchical_labeling,
    greedy_hub_labeling,
    is_hierarchical,
    is_valid_cover,
    minimum_hub_labeling,
    minimum_total_size,
    pruned_landmark_labeling,
)
from repro.graphs import Graph, cycle_graph, path_graph, star_graph


class TestMinimum:
    def test_single_edge(self):
        g = path_graph(2)
        # One pair; cover it with one shared hub: sizes {1, 1}.
        assert minimum_total_size(g) == 2

    def test_triangle(self):
        g = cycle_graph(3)
        # Each pair is an edge whose only hub candidates are its two
        # endpoints, so each edge orients to a hub and S(v) collects the
        # hubs of v's edges.  At most one vertex can see both its edges
        # agree, hence the optimum is 3 * 2 - 1 = 5.
        assert minimum_total_size(g) == 5

    def test_star_optimum(self):
        g = star_graph(5)
        # Center must meet every pair: S(leaf) = {center, ...}.
        # Optimal: S(0)={0}, S(leaf)={0} covers leaf pairs via 0 (on the
        # shortest path) and (0, leaf) via 0.  Total = 5.
        assert minimum_total_size(g) == 5

    def test_path4_optimum_below_pll(self):
        g = path_graph(4)
        optimum = minimum_total_size(g)
        pll = pruned_landmark_labeling(g).total_size()
        assert optimum <= pll

    def test_minimum_is_valid_cover_up_to_selfpairs(self):
        for g in (path_graph(5), cycle_graph(5), star_graph(5)):
            labeling = minimum_hub_labeling(g)
            from repro.core import verify_cover

            report = verify_cover(g, labeling)
            assert report.ok

    def test_greedy_within_log_factor(self):
        import math

        for g in (path_graph(6), cycle_graph(6), star_graph(6)):
            optimum = minimum_total_size(g)
            greedy = greedy_hub_labeling(g).total_size()
            n = g.num_vertices
            # Greedy includes n self-hubs by design; compare covers.
            assert greedy <= optimum * (2 + math.log(n)) + n

    def test_size_guard(self):
        with pytest.raises(ValueError):
            minimum_hub_labeling(path_graph(12))


class TestBestHierarchical:
    def test_best_order_on_path(self):
        g = path_graph(5)
        labeling, order = best_hierarchical_labeling(g)
        assert is_valid_cover(g, labeling)
        assert is_hierarchical(labeling, list(order))
        # The dyadic order (2, 1, 3, 0, 4) is among the optima.
        from repro.core import pruned_landmark_labeling

        dyadic = pruned_landmark_labeling(g, [2, 1, 3, 0, 4])
        assert labeling.total_size() == dyadic.total_size()

    def test_hierarchical_at_least_unrestricted(self):
        for g in (path_graph(5), cycle_graph(5)):
            hier, _ = best_hierarchical_labeling(g)
            optimum = minimum_total_size(g)
            assert hier.total_size() >= optimum

    def test_size_guard(self):
        with pytest.raises(ValueError):
            best_hierarchical_labeling(path_graph(10))
