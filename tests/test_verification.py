"""Cover verification: correct labelings pass, broken ones are caught."""

from repro.core import (
    HubLabeling,
    coverage_fraction,
    is_valid_cover,
    pruned_landmark_labeling,
    verify_cover,
)
from repro.graphs import Graph, path_graph
import pytest


def trivial_labeling(graph) -> HubLabeling:
    """Every vertex stores hub 0 (assumes connectivity through vertex 0)."""
    from repro.graphs import shortest_path_distances

    lab = HubLabeling(graph.num_vertices)
    dist, _ = shortest_path_distances(graph, 0)
    for v in graph.vertices():
        lab.add_hub(v, 0, dist[v])
        lab.add_hub(v, v, 0)
    return lab


class TestVerifyCover:
    def test_valid_pll(self, small_grid):
        report = verify_cover(small_grid, pruned_landmark_labeling(small_grid))
        assert report.ok
        assert report.fraction_covered == 1.0
        assert not report.violations

    def test_hub_zero_only_valid_on_star(self, small_star):
        # On a star, vertex 0 lies on every shortest path.
        lab = trivial_labeling(small_star)
        assert is_valid_cover(small_star, lab)

    def test_hub_zero_invalid_on_path_midpoints(self):
        g = path_graph(5)
        lab = trivial_labeling(g)
        # Pair (1, 2): route via 0 gives 1 + 2 = 3 > 1.
        report = verify_cover(g, lab)
        assert not report.ok
        assert any(u == 1 and v == 2 for u, v, _, _ in report.violations)

    def test_violation_records_distances(self):
        g = path_graph(4)
        lab = trivial_labeling(g)
        report = verify_cover(g, lab)
        for u, v, true_dist, estimate in report.violations:
            assert estimate > true_dist

    def test_max_violations_cap(self):
        g = path_graph(30)
        lab = trivial_labeling(g)
        report = verify_cover(g, lab, max_violations=3)
        assert len(report.violations) == 3
        assert report.num_covered < report.num_pairs

    def test_explicit_pairs(self, small_grid):
        lab = pruned_landmark_labeling(small_grid)
        report = verify_cover(small_grid, lab, pairs=[(0, 5), (3, 19)])
        assert report.num_pairs == 2
        assert report.ok

    def test_size_mismatch_rejected(self, small_grid):
        with pytest.raises(ValueError):
            verify_cover(small_grid, HubLabeling(3))

    def test_disconnected_pairs_ignored(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        lab = HubLabeling(4)
        for v in range(4):
            lab.add_hub(v, v, 0)
        lab.add_hub(1, 0, 1)
        lab.add_hub(3, 2, 1)
        report = verify_cover(g, lab)
        assert report.num_pairs == 2  # only the connected pairs
        assert report.ok

    def test_coverage_fraction_partial(self):
        g = path_graph(5)
        lab = trivial_labeling(g)
        frac = coverage_fraction(g, lab)
        assert 0 < frac < 1

    def test_report_repr(self, small_grid):
        report = verify_cover(small_grid, pruned_landmark_labeling(small_grid))
        assert "OK" in repr(report)
