"""End-to-end observability: real workloads, exact counter math.

Runs the instrumented subsystems (oracles, resilient runtime, builders,
chaos sweep) against real graphs and asserts the registry holds exactly
the counts the workload implies, that the CLI surfaces (``repro stats``,
``--metrics-out``) work, and that the metrics-schema drift gate passes
in-process.
"""

import importlib.util
import json
import pathlib
import random

import pytest

from repro.cli import main as cli_main
from repro.core import pruned_landmark_labeling
from repro.core.hitting import build_hitting_set
from repro.core.pll_fast import fast_pruned_landmark_labeling
from repro.obs.catalog import (
    BUILD_LABELS_PER_SECOND,
    BUILD_PAIRS_PER_SECOND,
    CHAOS_INJECTIONS,
    CHAOS_WRONG_ANSWERS,
    ORACLE_BATCH_LATENCY_SECONDS,
    ORACLE_BATCHES,
    ORACLE_QUERIES,
    ORACLE_QUERY_LATENCY_SECONDS,
    RESILIENT_FALLBACKS,
    RESILIENT_LABEL_ANSWERS,
    RESILIENT_QUARANTINED_VERTICES,
    RESILIENT_QUERIES,
    SPAN_COUNT,
)
from repro.obs.registry import NullRegistry, use_registry
from repro.oracles.oracle import LATENCY_SAMPLE, HubLabelOracle
from repro.runtime import ResilientOracle, chaos_sweep

ROOT = pathlib.Path(__file__).parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_metrics_schema", ROOT / "tools" / "check_metrics_schema.py"
)
check_metrics_schema = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_metrics_schema)


@pytest.fixture
def labeled(sparse_graph):
    return sparse_graph, pruned_landmark_labeling(sparse_graph)


class TestOracleCounters:
    def test_ten_k_batch_per_backend(self, labeled, metrics_registry):
        """The acceptance workload: 10k pairs -> 10k per-backend counts."""
        graph, labeling = labeled
        rng = random.Random(0)
        n = graph.num_vertices
        pairs = [
            (rng.randrange(n), rng.randrange(n)) for _ in range(10_000)
        ]
        for backend in ("dict", "flat"):
            HubLabelOracle(labeling, backend=backend).batch_query(pairs)
        for backend in ("dict", "flat"):
            queries = metrics_registry.get(ORACLE_QUERIES, backend=backend)
            assert queries.value == 10_000
            latency = metrics_registry.get(
                ORACLE_QUERY_LATENCY_SECONDS, backend=backend
            )
            assert latency.count > 0
            assert metrics_registry.get(
                ORACLE_BATCHES, backend=backend
            ).value == 1
            assert metrics_registry.get(
                ORACLE_BATCH_LATENCY_SECONDS, backend=backend
            ).count == 1

    def test_scalar_queries_counted_exactly(self, labeled, metrics_registry):
        graph, labeling = labeled
        oracle = HubLabelOracle(labeling, backend="dict")
        total = 100
        for u in range(total):
            oracle.query(u % graph.num_vertices, 0)
        counter = metrics_registry.get(ORACLE_QUERIES, backend="dict")
        assert counter.value == total
        # Latency is sampled deterministically 1-in-LATENCY_SAMPLE.
        latency = metrics_registry.get(
            ORACLE_QUERY_LATENCY_SECONDS, backend="dict"
        )
        assert latency.count == total // LATENCY_SAMPLE

    def test_instruments_rebind_after_registry_swap(self, labeled):
        _, labeling = labeled
        oracle = HubLabelOracle(labeling, backend="dict")
        with use_registry() as first:
            oracle.query(0, 1)
        with use_registry() as second:
            oracle.query(0, 1)
            oracle.query(1, 2)
        assert first.get(ORACLE_QUERIES, backend="dict").value == 1
        assert second.get(ORACLE_QUERIES, backend="dict").value == 2

    def test_null_registry_records_nothing(self, labeled):
        _, labeling = labeled
        oracle = HubLabelOracle(labeling, backend="dict")
        null = NullRegistry()
        with use_registry(null):
            for _ in range(40):
                oracle.query(0, 1)
        assert len(null) == 0


class TestResilientCounters:
    def test_counters_mirror_health_report(self, labeled, metrics_registry):
        graph, labeling = labeled
        oracle = ResilientOracle(graph, labeling, fallback=True)
        rng = random.Random(1)
        n = graph.num_vertices
        for _ in range(50):
            oracle.query(rng.randrange(n), rng.randrange(n))
        oracle.batch_query([(0, 1), (2, 3), (4, 5)])
        health = oracle.health
        assert (
            metrics_registry.get(RESILIENT_QUERIES).value == health.queries
        )
        assert (
            metrics_registry.get(RESILIENT_LABEL_ANSWERS).value
            == health.label_answers
        )
        fallbacks = metrics_registry.get(RESILIENT_FALLBACKS)
        assert (fallbacks.value if fallbacks else 0) == health.fallbacks

    def test_quarantine_gauge_tracks_set(self, labeled, metrics_registry):
        graph, labeling = labeled
        mangled = labeling.copy()
        victim = 3
        for hub in list(mangled.hubs(victim)):
            mangled.discard_hub(victim, hub)
        oracle = ResilientOracle(
            graph,
            mangled,
            fallback=True,
            verify_sample=graph.num_vertices,
        )
        gauge = metrics_registry.get(RESILIENT_QUARANTINED_VERTICES)
        assert gauge is not None
        assert gauge.value == len(oracle.health.quarantined)
        assert gauge.value > 0


class TestBuilderInstrumentation:
    def test_pll_build_reports_span_and_rate(
        self, sparse_graph, metrics_registry
    ):
        labeling = pruned_landmark_labeling(sparse_graph)
        assert metrics_registry.get(SPAN_COUNT, span="pll.build").value == 1
        assert (
            metrics_registry.get(
                SPAN_COUNT, span="pll.build/pll.sweeps"
            ).value
            == 1
        )
        gauge = metrics_registry.get(BUILD_LABELS_PER_SECOND, builder="pll")
        assert gauge is not None and gauge.value > 0
        # Rate is labels / span duration, so it implies the label count.
        assert labeling.total_size() > 0

    def test_fast_pll_reports_its_own_builder(
        self, sparse_graph, metrics_registry
    ):
        fast_pruned_landmark_labeling(sparse_graph)
        assert (
            metrics_registry.get(SPAN_COUNT, span="pll-fast.build").value
            == 1
        )
        gauge = metrics_registry.get(
            BUILD_LABELS_PER_SECOND, builder="pll-fast"
        )
        assert gauge is not None and gauge.value > 0

    def test_hitting_set_reports_pair_rate(
        self, small_grid, metrics_registry
    ):
        build_hitting_set(small_grid, 3)
        assert (
            metrics_registry.get(SPAN_COUNT, span="hitting.build").value
            == 1
        )
        gauge = metrics_registry.get(
            BUILD_PAIRS_PER_SECOND, builder="hitting-set"
        )
        assert gauge is not None and gauge.value > 0


class TestChaosCounters:
    def test_counters_match_report(self, metrics_registry):
        from repro.graphs import random_sparse_graph

        graph = random_sparse_graph(20, seed=5)
        labeling = pruned_landmark_labeling(graph)
        report = chaos_sweep(
            graph, labeling, trials_per_kind=3, queries_per_trial=4, seed=2
        )
        summary = report.by_kind()
        total_injections = 0
        for kind, row in summary.items():
            injections = metrics_registry.get(CHAOS_INJECTIONS, kind=kind)
            assert injections.value == row["injections"]
            wrong = metrics_registry.get(CHAOS_WRONG_ANSWERS, kind=kind)
            # Created even at zero, so a healthy run still exposes it.
            assert wrong is not None
            assert wrong.value == row["wrong"] == 0
            total_injections += injections.value
        assert total_injections == report.num_injections


class TestCli:
    def test_stats_json_reports_both_backends(self, capsys):
        code = cli_main(
            [
                "stats",
                "--generator",
                "sparse:40",
                "--pairs",
                "500",
                "--json",
            ]
        )
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        counts = {
            m["labels"]["backend"]: m["value"]
            for m in snapshot["metrics"]
            if m["name"] == ORACLE_QUERIES
        }
        assert counts == {"dict": 500, "flat": 500}

    def test_stats_prom_output(self, capsys):
        code = cli_main(
            ["stats", "--generator", "sparse:30", "--pairs", "64", "--prom"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_oracle_queries_total counter" in out

    def test_metrics_out_round_trips_through_stats(self, tmp_path, capsys):
        labels = tmp_path / "labels.bin"
        assert (
            cli_main(
                [
                    "label",
                    "--generator",
                    "sparse:40",
                    "--save",
                    str(labels),
                ]
            )
            == 0
        )
        out_file = tmp_path / "metrics.json"
        code = cli_main(
            [
                "query",
                str(labels),
                "0",
                "5",
                "--generator",
                "sparse:40",
                "--metrics-out",
                str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()
        capsys.readouterr()
        assert cli_main(["stats", str(out_file)]) == 0
        table = capsys.readouterr().out
        assert RESILIENT_QUERIES in table

    def test_plain_query_metrics_out_counts_queries(self, tmp_path, capsys):
        # The graph-less query path must still serve through the
        # instrumented oracle, not labeling.query directly -- otherwise
        # --metrics-out writes an empty snapshot.
        labels = tmp_path / "labels.bin"
        assert (
            cli_main(
                [
                    "label",
                    "--generator",
                    "sparse:40",
                    "--save",
                    str(labels),
                ]
            )
            == 0
        )
        out_file = tmp_path / "metrics.json"
        code = cli_main(
            [
                "query",
                str(labels),
                "0",
                "5",
                "3",
                "7",
                "--metrics-out",
                str(out_file),
            ]
        )
        assert code == 0
        snapshot = json.loads(out_file.read_text())
        counts = {
            m["labels"]["backend"]: m["value"]
            for m in snapshot["metrics"]
            if m["name"] == ORACLE_QUERIES
        }
        assert counts == {"dict": 2}

    def test_chaos_metrics_out(self, tmp_path, capsys):
        out_file = tmp_path / "chaos-metrics.json"
        code = cli_main(
            [
                "chaos",
                "--generator",
                "sparse:20",
                "--trials",
                "2",
                "--metrics-out",
                str(out_file),
            ]
        )
        assert code == 0
        snapshot = json.loads(out_file.read_text())
        names = {m["name"] for m in snapshot["metrics"]}
        assert CHAOS_INJECTIONS in names

    def test_stats_rejects_foreign_snapshot(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a snapshot"}\n')
        with pytest.raises(SystemExit):
            cli_main(["stats", str(bad)])


class TestSchemaGate:
    def test_drift_check_passes_in_process(self):
        assert check_metrics_schema.check() == []

    def test_workload_emits_only_catalogued_names(self):
        from repro.obs.catalog import CATALOG

        emitted = check_metrics_schema.run_workload()
        assert emitted
        assert emitted <= set(CATALOG)
