"""The fast direct-to-flat builder: byte-identity with reference PLL.

``build_flat_labels`` must emit exactly the canonical hierarchical
labeling that ``FlatHubLabeling.from_labeling(pruned_landmark_labeling(
graph, order))`` produces -- same offsets, same hub ids, same distances,
for every graph, every order, and every batch width.  The committed
differential corpus replays that contract on pinned cases; smaller
directed checks cover the fallback path (weighted graphs), disconnected
inputs, shuffled orders, degenerate sizes, and the observability
surface (span + metrics).
"""

import json
import pathlib

import pytest

from repro.core import pruned_landmark_labeling
from repro.core.orders import degree_order, random_order
from repro.graphs import Graph, grid_2d, random_sparse_graph, random_tree
from repro.obs.catalog import (
    BUILD_BITPARALLEL_PASSES,
    BUILD_DURATION_SECONDS,
    BUILD_LABELS_PER_SECOND,
    SPAN_DURATION_SECONDS,
)
from repro.obs.registry import Registry, use_registry
from repro.perf import build as build_module
from repro.perf.build import (
    BUILDER_VERSION,
    bitparallel_available,
    build_flat_labels,
)
from repro.perf.flat import FlatHubLabeling

CORPUS_PATH = (
    pathlib.Path(__file__).parent / "data" / "differential_corpus.json"
)

numpy = pytest.importorskip("numpy")


def _corpus_graphs():
    corpus = json.loads(CORPUS_PATH.read_text())
    for case in corpus["cases"]:
        graph = Graph(case["n"])
        for u, v, w in case["edges"]:
            graph.add_edge(u, v, w)
        yield case["name"], graph


def assert_identical(graph, order=None):
    """Direct build == reference build, byte for byte."""
    direct = build_flat_labels(graph, order)
    reference = FlatHubLabeling.from_labeling(
        pruned_landmark_labeling(graph, order)
    )
    assert direct.num_vertices == reference.num_vertices
    assert list(direct._offsets) == list(reference._offsets)
    assert list(direct._hubs) == list(reference._hubs)
    assert list(direct._dists) == list(reference._dists)
    return direct


class TestCorpusIdentity:
    def test_every_corpus_case_default_order(self):
        for name, graph in _corpus_graphs():
            assert_identical(graph)

    def test_every_corpus_case_shuffled_order(self):
        for name, graph in _corpus_graphs():
            assert_identical(graph, random_order(graph, seed=11))


class TestBatchWidths:
    """Identity must hold at any batch width, not just the default."""

    @pytest.mark.parametrize("width", [1, 4, 64])
    def test_narrow_batches(self, width, monkeypatch):
        monkeypatch.setattr(build_module, "_BATCH", width)
        assert_identical(random_sparse_graph(60, seed=5))
        assert_identical(grid_2d(5, 5))

    def test_batch_smaller_than_graph_and_larger(self, monkeypatch):
        graph = random_tree(40, seed=2)
        monkeypatch.setattr(build_module, "_BATCH", 7)
        assert_identical(graph)
        monkeypatch.setattr(build_module, "_BATCH", 4096)
        assert_identical(graph)


class TestEdgeCases:
    def test_empty_and_tiny_graphs(self):
        for n in (0, 1, 2, 3):
            assert_identical(Graph(n))

    def test_single_edge(self):
        graph = Graph(2)
        graph.add_edge(0, 1)
        assert_identical(graph)

    def test_disconnected_components(self):
        graph = Graph(9)
        for u, v in [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7)]:
            graph.add_edge(u, v)
        flat = assert_identical(graph)
        assert flat.query(0, 2) == 2
        assert flat.query(0, 3) == float("inf")
        assert flat.query(8, 0) == float("inf")

    def test_non_permutation_order_rejected(self):
        graph = random_tree(6, seed=0)
        with pytest.raises(ValueError):
            build_flat_labels(graph, [0, 1, 2, 3, 4, 4])
        with pytest.raises(ValueError):
            build_flat_labels(graph, [0, 1, 2])


class TestFallback:
    def test_weighted_graph_uses_fallback_and_matches(self):
        graph = Graph(8)
        edges = [(0, 1, 2), (1, 2, 3), (2, 3, 1), (3, 4, 5), (4, 5, 1),
                 (5, 6, 2), (6, 7, 4), (0, 7, 9)]
        for u, v, w in edges:
            graph.add_edge(u, v, w)
        assert graph.is_weighted
        assert not bitparallel_available(graph)
        assert_identical(graph)

    def test_fallback_reports_builder_label(self):
        graph = Graph(4)
        graph.add_edge(0, 1, 3)
        graph.add_edge(1, 2, 2)
        registry = Registry()
        with use_registry(registry):
            build_flat_labels(graph)
        gauge = registry.get(BUILD_DURATION_SECONDS, builder="fallback")
        assert gauge is not None and gauge.value > 0
        passes = registry.get(BUILD_BITPARALLEL_PASSES)
        assert passes is not None and passes.value == 0


class TestObservability:
    def test_build_emits_span_passes_and_rate(self):
        graph = random_sparse_graph(50, seed=9)
        registry = Registry()
        with use_registry(registry):
            flat = build_flat_labels(graph)
        hist = registry.get(SPAN_DURATION_SECONDS, span="build.flat")
        assert hist is not None and hist.count == 1
        gauge = registry.get(BUILD_DURATION_SECONDS, builder="bitparallel")
        assert gauge is not None and gauge.value > 0
        passes = registry.get(BUILD_BITPARALLEL_PASSES)
        assert passes is not None and passes.value >= 1
        rate = registry.get(
            BUILD_LABELS_PER_SECOND, builder="flat-bitparallel"
        )
        assert rate is not None and rate.value > 0
        assert flat.total_size() > 0

    def test_builder_version_is_pinned(self):
        # The cache key embeds this; bumping it must be a conscious act.
        assert isinstance(BUILDER_VERSION, int)
        assert BUILDER_VERSION >= 1


class TestOracleFromGraph:
    def test_from_graph_flat_backend(self):
        graph = grid_2d(4, 4)
        from repro.oracles.oracle import HubLabelOracle

        oracle = HubLabelOracle.from_graph(graph)
        assert oracle.query(0, 15).distance == 6

    def test_from_graph_dict_backend(self):
        graph = random_tree(20, seed=4)
        from repro.oracles.oracle import HubLabelOracle

        oracle = HubLabelOracle.from_graph(graph, backend="dict")
        reference = pruned_landmark_labeling(graph)
        for u, v in [(0, 1), (3, 17), (5, 5), (19, 2)]:
            assert oracle.query(u, v).distance == reference.query(u, v)
