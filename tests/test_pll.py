"""Pruned landmark labeling: correctness across families and orders."""

import pytest

from repro.core import (
    degree_order,
    eccentricity_order,
    is_valid_cover,
    pruned_landmark_labeling,
    random_order,
    verify_cover,
)
from repro.graphs import (
    balanced_binary_tree,
    cycle_graph,
    grid_2d,
    hypercube_graph,
    path_graph,
    random_bounded_degree_graph,
    random_sparse_graph,
    random_tree,
    random_weighted_graph,
    star_graph,
)


FAMILIES = [
    ("path", path_graph(15)),
    ("cycle", cycle_graph(12)),
    ("star", star_graph(10)),
    ("grid", grid_2d(5, 5)),
    ("tree", random_tree(40, seed=1)),
    ("binary-tree", balanced_binary_tree(4)),
    ("sparse", random_sparse_graph(60, seed=2)),
    ("bounded-degree", random_bounded_degree_graph(50, 3, seed=3)),
    ("hypercube", hypercube_graph(4)),
]


class TestCorrectness:
    @pytest.mark.parametrize("name,graph", FAMILIES, ids=[f[0] for f in FAMILIES])
    def test_valid_cover_on_family(self, name, graph):
        labeling = pruned_landmark_labeling(graph)
        assert is_valid_cover(graph, labeling)

    def test_weighted_graph(self):
        g = random_weighted_graph(40, 80, seed=5)
        labeling = pruned_landmark_labeling(g)
        assert is_valid_cover(g, labeling)

    def test_zero_weight_edges(self):
        from repro.graphs import Graph

        g = Graph(4)
        g.add_edge(0, 1, 0)
        g.add_edge(1, 2, 3)
        g.add_edge(2, 3, 0)
        labeling = pruned_landmark_labeling(g)
        assert is_valid_cover(g, labeling)

    def test_disconnected_graph(self):
        from repro.graphs import Graph

        g = Graph(6)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        labeling = pruned_landmark_labeling(g)
        assert is_valid_cover(g, labeling)

    @pytest.mark.parametrize("seed", range(4))
    def test_any_order_is_correct(self, seed, small_grid):
        order = random_order(small_grid, seed=seed)
        labeling = pruned_landmark_labeling(small_grid, order)
        assert is_valid_cover(small_grid, labeling)

    def test_invalid_order_rejected(self, small_grid):
        with pytest.raises(ValueError):
            pruned_landmark_labeling(small_grid, [0, 1])


class TestStructure:
    def test_every_vertex_is_own_hub(self, small_grid):
        labeling = pruned_landmark_labeling(small_grid)
        for v in small_grid.vertices():
            assert labeling.hub_distance(v, v) == 0

    def test_first_vertex_hub_of_all(self, small_grid):
        order = degree_order(small_grid)
        labeling = pruned_landmark_labeling(small_grid, order)
        root = order[0]
        for v in small_grid.vertices():
            assert labeling.hub_distance(v, root) is not None

    def test_star_center_first_gives_two_hubs(self):
        g = star_graph(12)
        labeling = pruned_landmark_labeling(g, degree_order(g))
        # center stores itself; leaves store center + themselves.
        assert labeling.label_size(0) == 1
        assert all(labeling.label_size(v) == 2 for v in range(1, 12))

    def test_path_dyadic_order_logarithmic(self):
        # A dyadic (recursive-separator) order on the path gives the
        # canonical O(log n) hierarchical labeling.
        g = path_graph(64)
        order = sorted(range(64), key=lambda v: -((v + 1) & -(v + 1)))
        labeling = pruned_landmark_labeling(g, order)
        assert labeling.max_size() <= 7  # log2(64) + 1

    def test_order_quality_matters(self):
        g = path_graph(64)
        good_order = sorted(range(64), key=lambda v: -((v + 1) & -(v + 1)))
        good = pruned_landmark_labeling(g, good_order)
        bad = pruned_landmark_labeling(g, list(range(64)))
        assert good.total_size() < bad.total_size()
        # Eccentricity (center-first) order also beats the linear scan.
        centered = pruned_landmark_labeling(g, eccentricity_order(g))
        assert centered.total_size() < bad.total_size()

    def test_hierarchical_property(self, small_grid):
        # In a PLL labeling, hub h in S(v) implies rank(h) <= rank(v)
        # in the processing order.
        order = degree_order(small_grid)
        rank = {v: i for i, v in enumerate(order)}
        labeling = pruned_landmark_labeling(small_grid, order)
        for v in small_grid.vertices():
            for h in labeling.hub_set(v):
                assert rank[h] <= rank[v]
