"""Greedy edge partition into induced matchings."""

from repro.rs import (
    build_rs_graph,
    greedy_induced_matching,
    greedy_induced_partition,
    is_induced_matching,
    strong_edge_classes_upper_bound,
    verify_induced_matching_partition,
)


def complete_bipartite_edges(s):
    return [(i, 100 + j) for i in range(s) for j in range(s)]


class TestGreedyInducedMatching:
    def test_result_is_induced(self):
        edges = [(0, 10), (0, 11), (1, 11), (2, 12), (3, 13)]
        matching = greedy_induced_matching(edges)
        assert is_induced_matching(set(edges), matching)

    def test_complete_bipartite_single_edge(self):
        edges = complete_bipartite_edges(4)
        matching = greedy_induced_matching(edges)
        assert len(matching) == 1  # any two edges of K_{s,s} see a cross

    def test_disjoint_edges_all_taken(self):
        edges = [(i, 50 + i) for i in range(6)]
        assert len(greedy_induced_matching(edges)) == 6

    def test_empty(self):
        assert greedy_induced_matching([]) == []


class TestGreedyPartition:
    def test_partition_valid(self):
        edges = [(0, 10), (0, 11), (1, 10), (1, 11), (2, 12)]
        classes = greedy_induced_partition(edges)
        assert verify_induced_matching_partition(set(edges), classes)

    def test_complete_bipartite_needs_s_squared(self):
        s = 4
        edges = complete_bipartite_edges(s)
        classes = greedy_induced_partition(edges)
        assert len(classes) == s * s  # one edge per class
        assert verify_induced_matching_partition(set(edges), classes)

    def test_rs_graph_needs_few_classes(self):
        rs = build_rs_graph(31)
        classes = greedy_induced_partition(sorted(rs.edges))
        assert verify_induced_matching_partition(rs.edges, classes)
        # The RS structure admits <= n classes (its own partition does);
        # greedy may be worse but must stay within |E| trivially and
        # beat the complete-bipartite collapse by a wide margin.
        assert len(classes) < len(rs.edges)

    def test_upper_bound_counter(self):
        edges = complete_bipartite_edges(3)
        assert strong_edge_classes_upper_bound(edges) == 9

    def test_duplicate_edges_deduped(self):
        classes = greedy_induced_partition([(0, 10), (0, 10), (1, 11)])
        total = sum(len(c) for c in classes)
        assert total == 2
