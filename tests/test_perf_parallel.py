"""The process-pool traversal fan-out: parallel == serial, always.

``shortest_path_rows`` must return rows bit-identical to looping
``shortest_path_distances`` regardless of ``workers``; the consumers
(hitting sets, landmark oracles, sampled verification) must therefore
be deterministic in the worker count.  The pool is real -- these tests
actually fork two workers -- so they stay on small graphs.
"""

import pytest

from repro.core import pruned_landmark_labeling
from repro.core.hitting import build_hitting_set
from repro.core.verification import verify_cover_sampled
from repro.graphs import random_sparse_graph, random_tree
from repro.graphs.traversal import shortest_path_distances
from repro.oracles.oracle import LandmarkOracle
from repro.perf import resolve_workers, shortest_path_rows


@pytest.fixture(scope="module")
def graph():
    return random_sparse_graph(30, seed=9)


@pytest.fixture(scope="module")
def weighted_graph():
    g = random_tree(24, seed=5)
    weighted = type(g)(24)
    for i, (u, v, _w) in enumerate(g.edges()):
        weighted.add_edge(u, v, 1 + (i % 4))
    return weighted


class TestResolveWorkers:
    def test_serial_spellings(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_parallel_passthrough(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestRows:
    def test_serial_matches_traversal(self, graph):
        rows = shortest_path_rows(graph)
        for v in graph.vertices():
            assert rows[v] == shortest_path_distances(graph, v)[0]

    def test_two_workers_match_serial(self, graph):
        serial = shortest_path_rows(graph)
        parallel = shortest_path_rows(graph, workers=2)
        assert parallel == serial

    def test_roots_subset_and_order(self, graph):
        roots = [17, 3, 3, 0]
        rows = shortest_path_rows(graph, roots, workers=2)
        assert len(rows) == len(roots)
        for root, row in zip(roots, rows):
            assert row == shortest_path_distances(graph, root)[0]

    def test_weighted_graph_dijkstra_path(self, weighted_graph):
        serial = shortest_path_rows(weighted_graph)
        parallel = shortest_path_rows(weighted_graph, workers=2)
        assert parallel == serial

    def test_empty_roots(self, graph):
        assert shortest_path_rows(graph, [], workers=2) == []

    def test_bad_root_rejected(self, graph):
        with pytest.raises(Exception):
            shortest_path_rows(graph, [graph.num_vertices])


class TestConsumers:
    def test_hitting_set_deterministic_in_workers(self, graph):
        serial = build_hitting_set(graph, 4, seed=3)
        parallel = build_hitting_set(graph, 4, seed=3, workers=2)
        assert parallel.hitting_set == serial.hitting_set
        assert parallel.corrections == serial.corrections
        assert parallel.num_rich_pairs == serial.num_rich_pairs

    def test_landmark_oracle_deterministic_in_workers(self, graph):
        serial = LandmarkOracle(graph, num_landmarks=5, seed=2)
        parallel = LandmarkOracle(graph, num_landmarks=5, seed=2, workers=2)
        assert parallel.space_words() == serial.space_words()
        for u in range(0, graph.num_vertices, 7):
            for v in range(0, graph.num_vertices, 5):
                assert (
                    parallel.query(u, v).distance
                    == serial.query(u, v).distance
                )

    def test_sampled_verification_deterministic_in_workers(self, graph):
        labeling = pruned_landmark_labeling(graph)
        serial = verify_cover_sampled(graph, labeling, num_sources=8, seed=1)
        parallel = verify_cover_sampled(
            graph, labeling, num_sources=8, seed=1, workers=2
        )
        assert serial.ok
        assert parallel.num_pairs == serial.num_pairs
        assert parallel.num_covered == serial.num_covered
        assert parallel.violations == serial.violations
