"""Brandes betweenness centrality vs networkx and closed forms."""

import networkx as nx
import pytest

from repro.graphs import (
    Graph,
    betweenness_centrality,
    cycle_graph,
    grid_2d,
    path_graph,
    random_sparse_graph,
    random_weighted_graph,
    star_graph,
)


def to_networkx(graph):
    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    for u, v, w in graph.edges():
        g.add_edge(u, v, weight=w)
    return g


class TestClosedForms:
    def test_path_interior(self):
        # On a path, vertex i lies between i*(n-1-i) pairs.
        n = 7
        scores = betweenness_centrality(path_graph(n))
        for i in range(n):
            assert scores[i] == pytest.approx(i * (n - 1 - i))

    def test_star_center(self):
        n = 9
        scores = betweenness_centrality(star_graph(n))
        assert scores[0] == pytest.approx((n - 1) * (n - 2) / 2)
        assert all(s == 0 for s in scores[1:])

    def test_cycle_uniform(self):
        scores = betweenness_centrality(cycle_graph(8))
        assert len(set(round(s, 9) for s in scores)) == 1

    def test_normalized_range(self):
        scores = betweenness_centrality(grid_2d(4, 4), normalized=True)
        assert all(0 <= s <= 1 for s in scores)


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx_unweighted(self, seed):
        g = random_sparse_graph(40, seed=seed)
        ours = betweenness_centrality(g, normalized=True)
        theirs = nx.betweenness_centrality(to_networkx(g), normalized=True)
        for v in g.vertices():
            assert ours[v] == pytest.approx(theirs[v], abs=1e-9)

    def test_matches_networkx_weighted(self):
        g = random_weighted_graph(25, 50, seed=4)
        ours = betweenness_centrality(g, normalized=True)
        theirs = nx.betweenness_centrality(
            to_networkx(g), normalized=True, weight="weight"
        )
        for v in g.vertices():
            assert ours[v] == pytest.approx(theirs[v], abs=1e-9)

    def test_rejects_zero_weights(self):
        g = Graph(2)
        g.add_edge(0, 1, 0)
        with pytest.raises(ValueError):
            betweenness_centrality(g)

    def test_disconnected(self):
        g = Graph(5)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        scores = betweenness_centrality(g)
        assert scores[1] == pytest.approx(1.0)
        assert scores[3] == 0 and scores[4] == 0


class TestBetweennessOrder:
    def test_order_on_star(self):
        from repro.core import betweenness_order

        order = betweenness_order(star_graph(7))
        assert order[0] == 0
        assert sorted(order) == list(range(7))

    def test_order_improves_pll_on_grid(self):
        from repro.core import betweenness_order, pruned_landmark_labeling
        from repro.core import random_order

        g = grid_2d(6, 6)
        smart = pruned_landmark_labeling(g, betweenness_order(g))
        naive = pruned_landmark_labeling(g, random_order(g, seed=1))
        assert smart.total_size() <= naive.total_size()
