"""Bit codecs: fixed, unary, Elias gamma/delta -- incl. property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.labeling import (
    BitReader,
    BitWriter,
    elias_delta_length,
    elias_gamma_length,
)


class TestFixed:
    def test_round_trip(self):
        w = BitWriter()
        w.write_fixed(5, 4)
        w.write_fixed(0, 3)
        w.write_fixed(255, 8)
        r = BitReader(w.getvalue())
        assert r.read_fixed(4) == 5
        assert r.read_fixed(3) == 0
        assert r.read_fixed(8) == 255
        assert r.remaining == 0

    def test_overflow_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_fixed(16, 4)
        with pytest.raises(ValueError):
            w.write_fixed(-1, 4)

    def test_eof(self):
        r = BitReader((1, 0))
        r.read_fixed(2)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_write_bit_validation(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bit(2)


class TestUnaryGammaDelta:
    def test_unary_round_trip(self):
        w = BitWriter()
        for v in (0, 1, 5):
            w.write_unary(v)
        r = BitReader(w.getvalue())
        assert [r.read_unary() for _ in range(3)] == [0, 1, 5]

    def test_gamma_known_codes(self):
        w = BitWriter()
        w.write_gamma(1)
        assert tuple(w.getvalue()) == (1,)
        w2 = BitWriter()
        w2.write_gamma(2)
        assert tuple(w2.getvalue()) == (0, 1, 0)

    def test_gamma_rejects_zero(self):
        with pytest.raises(ValueError):
            BitWriter().write_gamma(0)
        with pytest.raises(ValueError):
            BitWriter().write_delta(0)

    @given(st.lists(st.integers(min_value=1, max_value=10 ** 9), max_size=30))
    def test_gamma_round_trip(self, values):
        w = BitWriter()
        for v in values:
            w.write_gamma(v)
        r = BitReader(w.getvalue())
        assert [r.read_gamma() for _ in values] == values
        assert r.remaining == 0

    @given(st.lists(st.integers(min_value=1, max_value=10 ** 9), max_size=30))
    def test_delta_round_trip(self, values):
        w = BitWriter()
        for v in values:
            w.write_delta(v)
        r = BitReader(w.getvalue())
        assert [r.read_delta() for _ in values] == values

    @given(st.integers(min_value=1, max_value=10 ** 9))
    def test_length_formulas(self, value):
        w = BitWriter()
        w.write_gamma(value)
        assert len(w.getvalue()) == elias_gamma_length(value)
        w2 = BitWriter()
        w2.write_delta(value)
        assert len(w2.getvalue()) == elias_delta_length(value)

    @given(st.integers(min_value=16, max_value=10 ** 9))
    def test_delta_shorter_than_gamma_for_large(self, value):
        assert elias_delta_length(value) <= elias_gamma_length(value)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["fixed8", "gamma", "delta", "unary"]),
                st.integers(min_value=1, max_value=200),
            ),
            max_size=20,
        )
    )
    def test_mixed_stream_round_trip(self, items):
        w = BitWriter()
        for kind, v in items:
            if kind == "fixed8":
                w.write_fixed(v, 8)
            elif kind == "gamma":
                w.write_gamma(v)
            elif kind == "delta":
                w.write_delta(v)
            else:
                w.write_unary(v)
        r = BitReader(w.getvalue())
        for kind, v in items:
            if kind == "fixed8":
                assert r.read_fixed(8) == v
            elif kind == "gamma":
                assert r.read_gamma() == v
            elif kind == "delta":
                assert r.read_delta() == v
            else:
                assert r.read_unary() == v
