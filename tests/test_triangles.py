"""The RS78 triangle systems (linearity from AP-freeness)."""

import pytest

from repro.rs import TriangleSystem, build_triangle_system


class TestConstruction:
    @pytest.mark.parametrize("q", [3, 9, 21, 51])
    def test_linear_for_ap_free_sets(self, q):
        ts = build_triangle_system(q)
        assert ts.is_linear()

    def test_counts(self):
        ts = build_triangle_system(15, difference_set=[1, 4, 6])
        assert len(ts.triangles) == 15 * 3
        assert ts.num_edges == 3 * 15 * 3  # edges never coincide
        assert ts.num_vertices == 90

    def test_custom_set_validated(self):
        with pytest.raises(ValueError):
            build_triangle_system(20, difference_set=[1, 2, 3])
        with pytest.raises(ValueError):
            build_triangle_system(20, difference_set=[0, 4])
        with pytest.raises(ValueError):
            build_triangle_system(5, difference_set=[7])
        with pytest.raises(ValueError):
            build_triangle_system(1)

    def test_ap_set_breaks_linearity(self):
        # Bypassing validation with an AP set creates stray triangles:
        # s1, s3, s2 with s1 + s2 = 2 s3 glue edges of three intended
        # triangles into a fourth one.
        q = 12
        S = [1, 2, 3]
        y, z = q, 3 * q
        triangles, edges = [], set()
        for x in range(q):
            for s in S:
                a, b, c = x, y + x + s, z + x + 2 * s
                triangles.append((a, b, c))
                edges |= {(a, b), (b, c), (a, c)}
        ts = TriangleSystem(
            q=q, difference_set=S, triangles=triangles, edges=edges
        )
        assert not ts.is_linear()
        assert len(ts.all_graph_triangles()) > len(triangles)

    def test_density_same_phenomenon_as_matchings(self):
        # n^2 / m for the triangle system's graph tracks the same RS
        # witness scale as the bipartite midpoint form.
        from repro.rs import build_rs_graph, empirical_rs_from_graph

        q = 51
        ts = build_triangle_system(q)
        bip = build_rs_graph(q)
        tri_witness = empirical_rs_from_graph(ts.num_vertices, ts.num_edges)
        bip_witness = bip.density_ratio()
        assert 0.2 < tri_witness / bip_witness < 5
