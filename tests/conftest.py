"""Shared fixtures: small graphs every test module reuses, plus a
fresh metrics registry swapped in around every test."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    cycle_graph,
    grid_2d,
    path_graph,
    random_sparse_graph,
    random_tree,
    star_graph,
)
from repro.obs.registry import Registry, get_registry, set_registry


@pytest.fixture(autouse=True)
def metrics_registry():
    """Isolate every test behind its own metrics registry.

    Tests observe whatever the code under test emits without seeing
    counts from other tests, and a test that swaps the global registry
    but forgets to restore it is caught at teardown.  (Module-scoped
    fixtures run *before* this one -- code they run that should be
    observed must isolate itself with ``use_registry``.)
    """
    fresh = Registry()
    previous = set_registry(fresh)
    yield fresh
    assert get_registry() is fresh, (
        "test left a swapped metrics registry behind "
        "(use use_registry() or restore set_registry()'s return value)"
    )
    set_registry(previous)


@pytest.fixture
def small_path() -> Graph:
    return path_graph(6)


@pytest.fixture
def small_cycle() -> Graph:
    return cycle_graph(7)


@pytest.fixture
def small_grid() -> Graph:
    return grid_2d(4, 5)


@pytest.fixture
def small_star() -> Graph:
    return star_graph(8)


@pytest.fixture
def small_tree() -> Graph:
    return random_tree(30, seed=7)


@pytest.fixture
def sparse_graph() -> Graph:
    return random_sparse_graph(80, seed=11)


@pytest.fixture
def weighted_triangle() -> Graph:
    g = Graph(3)
    g.add_edge(0, 1, 2)
    g.add_edge(1, 2, 3)
    g.add_edge(0, 2, 10)
    return g


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="run tests marked slow (larger hard instances)",
    )
    parser.addoption(
        "--run-soak",
        action="store_true",
        default=False,
        help="run tests marked soak (long chaos+load endurance runs; "
        "budget via REPRO_SOAK_SECONDS)",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running test")
    config.addinivalue_line(
        "markers", "soak: endurance test excluded from tier-1 (make soak)"
    )


def pytest_collection_modifyitems(config, items):
    skips = []
    if not config.getoption("--run-slow"):
        skips.append(("slow", pytest.mark.skip(reason="needs --run-slow")))
    if not config.getoption("--run-soak"):
        skips.append(("soak", pytest.mark.skip(reason="needs --run-soak")))
    for item in items:
        for keyword, marker in skips:
            if keyword in item.keywords:
                item.add_marker(marker)
