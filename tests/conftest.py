"""Shared fixtures: small graphs every test module reuses."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    cycle_graph,
    grid_2d,
    path_graph,
    random_sparse_graph,
    random_tree,
    star_graph,
)


@pytest.fixture
def small_path() -> Graph:
    return path_graph(6)


@pytest.fixture
def small_cycle() -> Graph:
    return cycle_graph(7)


@pytest.fixture
def small_grid() -> Graph:
    return grid_2d(4, 5)


@pytest.fixture
def small_star() -> Graph:
    return star_graph(8)


@pytest.fixture
def small_tree() -> Graph:
    return random_tree(30, seed=7)


@pytest.fixture
def sparse_graph() -> Graph:
    return random_sparse_graph(80, seed=11)


@pytest.fixture
def weighted_triangle() -> Graph:
    g = Graph(3)
    g.add_edge(0, 1, 2)
    g.add_edge(1, 2, 3)
    g.add_edge(0, 2, 10)
    return g


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="run tests marked slow (larger hard instances)",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running test")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --run-slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
