"""The experiment runners (smoke + consistency; full runs live in
benchmarks/)."""

import pytest

from repro.experiments import (
    Table,
    ap_free_table,
    audit_construction,
    audit_degree_reduction,
    baseline_table,
    construction_table,
    degree_reduction_table,
    figure1_table,
    hitting_table,
    monotone_table,
    oracle_table,
    order_table,
    rs_graph_table,
    run_ap_free,
    run_baselines,
    run_cover_rule,
    run_figure1,
    run_hitting,
    run_monotone,
    run_oracles,
    run_order_ablation,
    run_rs_graphs,
    run_sample_factor,
    run_threshold_sweep,
    run_upper_bound,
    upper_bound_table,
)


class TestTable:
    def test_render_and_alignment(self):
        t = Table("Title", ["a", "bb"])
        t.add_row(1, 2.5)
        t.add_row("xx", float("inf"))
        text = t.render()
        assert "Title" in text
        assert "2.5" in text
        assert "inf" in text

    def test_wrong_arity(self):
        t = Table("T", ["a"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)

    def test_float_formatting(self):
        t = Table("T", ["x"])
        t.add_row(1234.5678)
        t.add_row(0.0001234)
        text = t.render()
        assert "1.23e+03" in text
        assert "0.000123" in text


class TestRunners:
    def test_figure1(self):
        result = run_figure1()
        assert result.blue_length == result.blue_expected
        assert "Figure 1" in figure1_table(result).render()

    def test_construction_small(self):
        audit = audit_construction(1, 1)
        assert audit.claims_hold
        assert construction_table([audit]).rows

    def test_degree_reduction(self):
        audit = audit_degree_reduction(30, seed=1)
        assert audit.distances_preserved
        assert degree_reduction_table([audit]).rows

    def test_hitting(self):
        rows = run_hitting([40], threshold=4, seed=1)
        assert rows[0].within_bound
        assert hitting_table(rows).rows

    def test_upper_bound(self):
        rows = run_upper_bound([50], threshold=3, seed=1)
        assert rows[0].valid
        assert upper_bound_table(rows).rows

    def test_ap_free_and_rs(self):
        assert ap_free_table(run_ap_free([50])).rows
        rows = run_rs_graphs([21], verify=True)
        assert rows[0].verified
        assert rs_graph_table(rows).rows

    def test_baselines_and_monotone(self):
        from repro.experiments import standard_families

        families = standard_families(scale=25)
        rows = run_baselines(families, greedy_limit=30)
        assert all(r.all_valid for r in rows)
        assert baseline_table(rows).rows
        mono = run_monotone(families)
        assert all(r.within_bound for r in mono)
        assert monotone_table(mono).rows

    def test_oracles(self):
        rows = run_oracles(n=40, num_pairs=10, seed=1)
        assert all(r.exact for r in rows)
        assert oracle_table(rows).rows

    def test_ablations(self):
        sweep = run_threshold_sweep(n=40, thresholds=[2, 3], seed=1)
        assert all(r.valid for r in sweep)
        rules = run_cover_rule(n=40, seed=1)
        by_rule = {r.rule: r for r in rules}
        assert by_rule["konig"].charges <= by_rule["matching"].charges
        orders = run_order_ablation(scale=25, seed=1)
        assert order_table(orders).rows
        factors = run_sample_factor(n=50, threshold=4, seed=1)
        uncovered = [r.uncovered for r in factors]
        assert uncovered == sorted(uncovered, reverse=True)


class TestNewRunners:
    def test_certificate_preview(self):
        from repro.experiments import preview_table, run_certificate_preview

        rows = run_certificate_preview([(1, 1), (2, 2), (4, 4)])
        assert rows[0].num_vertices == 90
        assert rows[-1].num_vertices > 10 ** 9
        assert all(r.certified_average > 0 for r in rows)
        assert preview_table(rows).rows

    def test_bit_sizes(self):
        from repro.experiments import bit_size_table, run_bit_sizes

        rows = run_bit_sizes([40], seed=2)
        assert {r.family for r in rows} == {"sparse", "tree"}
        for row in rows:
            assert row.hub_bits < row.row_bits
        assert bit_size_table(rows).rows

    def test_exact_complexity(self):
        from repro.experiments import (
            exact_complexity_table,
            run_exact_complexity,
        )

        rows = run_exact_complexity([1, 2, 3])
        by_m = {r.m: r.exact_bits for r in rows}
        assert by_m[1] == 1
        assert by_m[2] == 2
        assert by_m[3] is None  # capped
        assert exact_complexity_table(rows).rows

    def test_approximation_runner(self):
        from repro.experiments import approximation_table, run_approximation

        rows = run_approximation([30], seed=3)
        assert rows[0].corrected_exact
        assert rows[0].errors_bounded
        assert approximation_table(rows).rows

    def test_pruning_runner(self):
        from repro.experiments import pruning_table, run_pruning_slack

        rows = run_pruning_slack(n=30, seed=4)
        assert all(r.valid_after for r in rows)
        assert pruning_table(rows).rows
