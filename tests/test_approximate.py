"""Additive-approximate labels + correction tables (Section 1.1)."""

import pytest

from repro.core import (
    CorrectedScheme,
    additive_approximation,
    approximation_errors,
    pruned_landmark_labeling,
)
from repro.graphs import (
    all_pairs_distances,
    grid_2d,
    path_graph,
    random_sparse_graph,
)


class TestAdditiveApproximation:
    @pytest.mark.parametrize("seed", range(4))
    def test_error_in_0_1_2(self, seed):
        g = random_sparse_graph(40, seed=seed)
        exact = pruned_landmark_labeling(g)
        coarse = additive_approximation(g, exact, seed=seed)
        counts = approximation_errors(g, coarse)
        assert len(counts) <= 3  # errors 0, 1, 2 only
        assert sum(counts) == sum(
            1
            for u in range(40)
            for v in range(u + 1, 40)
        )

    def test_never_underestimates(self):
        g = grid_2d(5, 5)
        exact = pruned_landmark_labeling(g)
        coarse = additive_approximation(g, exact, seed=3)
        matrix = all_pairs_distances(g)
        for u in range(25):
            for v in range(25):
                assert coarse.query(u, v) >= matrix[u][v]

    def test_coarsening_never_grows_labels(self):
        g = random_sparse_graph(50, seed=7)
        exact = pruned_landmark_labeling(g)
        coarse = additive_approximation(g, exact, seed=1)
        assert coarse.total_size() <= exact.total_size()

    def test_identity_map_possible(self):
        # On a path with seed choices mapping each hub to itself the
        # approximation degenerates to exact -- error histogram has only
        # slot 0 populated... any seed: errors still bounded.
        g = path_graph(10)
        exact = pruned_landmark_labeling(g)
        coarse = additive_approximation(g, exact, seed=0)
        counts = approximation_errors(g, coarse)
        assert sum(counts) == 45


class TestCorrectedScheme:
    def test_exact_queries(self):
        g = random_sparse_graph(30, seed=2)
        scheme = CorrectedScheme.build(
            g, pruned_landmark_labeling(g), seed=5
        )
        matrix = all_pairs_distances(g)
        for u in range(30):
            for v in range(30):
                assert scheme.query(u, v) == matrix[u][v]

    def test_bit_accounting(self):
        import math

        g = random_sparse_graph(30, seed=3)
        scheme = CorrectedScheme.build(
            g, pruned_landmark_labeling(g), seed=1
        )
        assert scheme.correction_bits_per_vertex() == pytest.approx(
            math.log2(3) * 30
        )
        assert scheme.total_bits_per_vertex() > scheme.correction_bits_per_vertex()

    def test_corrections_are_ternary(self):
        g = grid_2d(4, 4)
        scheme = CorrectedScheme.build(
            g, pruned_landmark_labeling(g), seed=2
        )
        for row in scheme.corrections:
            assert all(0 <= e <= 2 for e in row)
