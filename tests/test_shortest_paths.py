"""Shortest-path structure: reconstruction, counting, hub candidates."""

import pytest

from repro.graphs import (
    INF,
    Graph,
    all_pairs_distances,
    count_shortest_paths,
    cycle_graph,
    grid_2d,
    has_unique_shortest_path,
    hub_candidates,
    hub_candidates_from_distances,
    is_shortest_path,
    path_graph,
    path_weight,
    reconstruct_path,
    shortest_path,
    shortest_path_dag_edges,
    shortest_path_distances,
)


class TestPathReconstruction:
    def test_shortest_path_on_path_graph(self):
        g = path_graph(5)
        assert shortest_path(g, 0, 4) == [0, 1, 2, 3, 4]

    def test_shortest_path_disconnected(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert shortest_path(g, 0, 2) is None

    def test_reconstruct_cycle_detection(self):
        with pytest.raises(ValueError):
            reconstruct_path([1, 0], 0)

    def test_path_weight(self):
        g = Graph(3)
        g.add_edge(0, 1, 2)
        g.add_edge(1, 2, 3)
        assert path_weight(g, [0, 1, 2]) == 5
        with pytest.raises(ValueError):
            path_weight(g, [0, 2])

    def test_is_shortest_path(self):
        g = cycle_graph(6)
        assert is_shortest_path(g, [0, 1, 2])
        assert not is_shortest_path(g, [0, 1, 2, 3, 4])  # long way round
        assert is_shortest_path(g, [3])
        assert not is_shortest_path(g, [])


class TestCounting:
    def test_grid_counts_are_binomials(self):
        # Paths in a grid from corner to (r, c) number C(r+c, r).
        g = grid_2d(4, 4)
        dist, count = count_shortest_paths(g, 0)
        import math

        for r in range(4):
            for c in range(4):
                v = r * 4 + c
                assert dist[v] == r + c
                assert count[v] == math.comb(r + c, r)

    def test_unique_on_tree(self):
        g = path_graph(6)
        for v in range(6):
            assert has_unique_shortest_path(g, 0, v)

    def test_even_cycle_has_two_paths(self):
        g = cycle_graph(6)
        dist, count = count_shortest_paths(g, 0)
        assert dist[3] == 3
        assert count[3] == 2
        assert not has_unique_shortest_path(g, 0, 3)

    def test_rejects_zero_weights(self):
        g = Graph(2)
        g.add_edge(0, 1, 0)
        with pytest.raises(ValueError):
            count_shortest_paths(g, 0)

    def test_unreachable_pair_not_unique(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert not has_unique_shortest_path(g, 0, 2)


class TestHubCandidates:
    def test_candidates_on_path(self):
        g = path_graph(5)
        assert hub_candidates(g, 0, 4) == [0, 1, 2, 3, 4]
        assert hub_candidates(g, 1, 3) == [1, 2, 3]

    def test_candidates_on_even_cycle(self):
        g = cycle_graph(4)
        # Antipodal pair: both intermediate vertices qualify.
        assert sorted(hub_candidates(g, 0, 2)) == [0, 1, 2, 3]

    def test_candidates_disconnected(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert hub_candidates(g, 0, 2) == []

    def test_candidates_from_matrix(self):
        g = grid_2d(3, 3)
        matrix = all_pairs_distances(g)
        direct = hub_candidates(g, 0, 8)
        reused = hub_candidates_from_distances(
            matrix[0], matrix[8], matrix[0][8]
        )
        assert direct == reused

    def test_self_pair(self):
        g = path_graph(3)
        assert hub_candidates(g, 1, 1) == [1]


class TestDag:
    def test_dag_predecessors(self):
        g = grid_2d(2, 2)
        preds = shortest_path_dag_edges(g, 0)
        assert sorted(preds[3]) == [1, 2]
        assert preds[1] == [0]
        assert 0 not in preds

    def test_dag_omits_unreachable(self):
        g = Graph(3)
        g.add_edge(0, 1)
        preds = shortest_path_dag_edges(g, 0)
        assert 2 not in preds


class TestAllPairs:
    def test_symmetry(self, small_grid):
        matrix = all_pairs_distances(small_grid)
        n = small_grid.num_vertices
        for u in range(n):
            for v in range(n):
                assert matrix[u][v] == matrix[v][u]

    def test_triangle_inequality(self, sparse_graph):
        matrix = all_pairs_distances(sparse_graph)
        n = sparse_graph.num_vertices
        for u in range(0, n, 9):
            for v in range(0, n, 7):
                for w in range(0, n, 11):
                    if INF not in (matrix[u][w], matrix[w][v]):
                        assert matrix[u][v] <= matrix[u][w] + matrix[w][v]
