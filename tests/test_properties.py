"""Structural property computations."""

from repro.graphs import (
    INF,
    Graph,
    complete_graph,
    connected_components,
    cycle_graph,
    degeneracy,
    degree_histogram,
    diameter,
    eccentricity,
    graph_stats,
    grid_2d,
    is_connected,
    path_graph,
    random_tree,
    star_graph,
)


class TestComponents:
    def test_single_component(self, small_grid):
        assert len(connected_components(small_grid)) == 1
        assert is_connected(small_grid)

    def test_multiple_components(self):
        g = Graph(6)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        comps = connected_components(g)
        assert sorted(map(tuple, comps)) == [(0, 1), (2, 3), (4,), (5,)]
        assert not is_connected(g)

    def test_empty_graph_connected(self):
        assert is_connected(Graph())


class TestDistancesStats:
    def test_eccentricity_path(self):
        g = path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2

    def test_diameter_disconnected(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert diameter(g) == INF

    def test_diameter_known_values(self):
        assert diameter(grid_2d(3, 3)) == 4
        assert diameter(star_graph(9)) == 2
        assert diameter(complete_graph(5)) == 1


class TestDegeneracy:
    def test_tree_degeneracy_one(self):
        assert degeneracy(random_tree(30, seed=2)) == 1

    def test_cycle_degeneracy_two(self):
        assert degeneracy(cycle_graph(9)) == 2

    def test_complete_graph(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_empty(self):
        assert degeneracy(Graph()) == 0
        assert degeneracy(Graph(5)) == 0


class TestHistogramAndStats:
    def test_degree_histogram(self):
        g = star_graph(5)
        hist = degree_histogram(g)
        assert hist[1] == 4
        assert hist[4] == 1
        assert sum(hist) == 5

    def test_graph_stats_record(self, small_grid):
        stats = graph_stats(small_grid, with_diameter=True)
        assert stats.num_vertices == 20
        assert stats.num_edges == small_grid.num_edges
        assert stats.is_connected
        assert stats.diameter == 7
        assert len(stats.row()) == 6

    def test_graph_stats_without_diameter(self, small_grid):
        stats = graph_stats(small_grid)
        assert stats.diameter is None
