"""The resilient runtime's building blocks: faults, health, budgets.

End-to-end chaos grading lives in ``test_failure_injection.py``; these
are the unit-level contracts of :mod:`repro.runtime` -- deterministic
injectors, health accounting, and report rendering.
"""

import pytest

from repro.core import (
    labeling_from_bytes,
    labeling_to_bytes,
    pruned_landmark_labeling,
)
from repro.graphs import Graph, INF, random_sparse_graph
from repro.runtime import (
    FAULT_KINDS,
    ArtifactCorruptError,
    DomainError,
    FaultInjector,
    HealthReport,
    ResilientOracle,
)


@pytest.fixture
def setting():
    graph = random_sparse_graph(30, seed=3)
    return graph, pruned_landmark_labeling(graph)


class TestFaultInjectorDeterminism:
    def test_same_seed_same_bit_flips(self, setting):
        _, labeling = setting
        blob = labeling_to_bytes(labeling)
        assert FaultInjector(seed=5).bit_flip(blob, flips=3) == FaultInjector(
            seed=5
        ).bit_flip(blob, flips=3)

    def test_different_seed_different_bit_flips(self, setting):
        _, labeling = setting
        blob = labeling_to_bytes(labeling)
        assert FaultInjector(seed=1).bit_flip(blob, flips=3) != FaultInjector(
            seed=2
        ).bit_flip(blob, flips=3)

    def test_truncate_strictly_shortens(self, setting):
        _, labeling = setting
        blob = labeling_to_bytes(labeling)
        for seed in range(10):
            assert len(FaultInjector(seed=seed).truncate(blob)) < len(blob)

    def test_drop_hubs_removes_entries(self, setting):
        _, labeling = setting
        mangled = FaultInjector(seed=0).drop_hubs(labeling, count=5)
        assert mangled.total_size() == labeling.total_size() - 5
        # The original is untouched (faults operate on copies).
        assert labeling.total_size() > mangled.total_size()

    def test_perturb_keeps_size_changes_distances(self, setting):
        _, labeling = setting
        mangled = FaultInjector(seed=0).perturb_distances(labeling, count=4)
        assert mangled.total_size() == labeling.total_size()
        changed = sum(
            dict(mangled.hubs(v)) != dict(labeling.hubs(v))
            for v in range(labeling.num_vertices)
        )
        assert changed >= 1

    def test_string_seeds_are_stable(self, setting):
        _, labeling = setting
        blob = labeling_to_bytes(labeling)
        a = FaultInjector(seed="0:bit-flip:3").bit_flip(blob)
        b = FaultInjector(seed="0:bit-flip:3").bit_flip(blob)
        assert a == b

    def test_byte_vs_label_fault_routing(self, setting):
        _, labeling = setting
        blob = labeling_to_bytes(labeling)
        injector = FaultInjector(seed=0)
        with pytest.raises(ValueError):
            injector.corrupt_blob("drop-hub", blob)
        with pytest.raises(ValueError):
            injector.corrupt_labeling("truncate", labeling)

    def test_empty_inputs(self):
        injector = FaultInjector(seed=0)
        assert injector.bit_flip(b"") == b""
        assert injector.truncate(b"x") == b""
        from repro.core import HubLabeling

        empty = HubLabeling(0)
        assert injector.drop_hubs(empty).num_vertices == 0
        assert injector.perturb_distances(empty).num_vertices == 0

    def test_all_kinds_corrupt_something(self, setting):
        _, labeling = setting
        blob = labeling_to_bytes(labeling)
        for kind in FAULT_KINDS:
            injector = FaultInjector(seed=kind)
            if kind in ("bit-flip", "truncate"):
                assert injector.corrupt_blob(kind, blob) != blob
            else:
                mangled = injector.corrupt_labeling(kind, labeling)
                assert any(
                    dict(mangled.hubs(v)) != dict(labeling.hubs(v))
                    for v in range(labeling.num_vertices)
                )


class TestHealthReport:
    def test_fresh_report_is_healthy(self):
        assert HealthReport().healthy

    def test_quarantine_breaks_health(self):
        report = HealthReport()
        report.quarantined.add(3)
        assert not report.healthy

    def test_as_dict_round_trip(self):
        report = HealthReport(queries=4, fallbacks=2)
        snapshot = report.as_dict()
        assert snapshot["queries"] == 4
        assert snapshot["fallbacks"] == 2
        assert "degraded" not in repr(HealthReport())
        assert "healthy" in repr(HealthReport())


class TestResilientOracleUnit:
    def test_space_words_delegates(self, setting):
        graph, labeling = setting
        oracle = ResilientOracle(graph, labeling)
        assert oracle.space_words() == 2 * labeling.total_size()

    def test_self_query_is_zero(self, setting):
        graph, labeling = setting
        oracle = ResilientOracle(graph, labeling)
        assert oracle.query(7, 7).distance == 0

    def test_manual_quarantine_forces_fallback(self, setting):
        graph, labeling = setting
        oracle = ResilientOracle(graph, labeling)
        oracle.quarantine(4)
        outcome = oracle.query(4, 9)
        assert outcome.source == "fallback"
        with pytest.raises(DomainError):
            oracle.quarantine(-2)

    def test_disconnected_pair_returns_inf(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        labeling = pruned_landmark_labeling(graph)
        oracle = ResilientOracle(
            graph, labeling, verify_sample=graph.num_vertices
        )
        outcome = oracle.query(0, 3)
        assert outcome.distance == INF
        # Genuine disconnection is not an integrity failure.
        assert oracle.health.integrity_failures == 0

    def test_invalid_budget_rejected(self, setting):
        graph, labeling = setting
        with pytest.raises(DomainError):
            ResilientOracle(graph, labeling, operation_budget=0)

    def test_sampled_admission_cheaper_than_full(self, setting):
        graph, labeling = setting
        oracle = ResilientOracle(graph, labeling, verify_sample=4, seed=1)
        assert oracle.health.healthy


class TestResilientBatchQuery:
    def _pairs(self, n):
        return [(u, v) for u in range(n) for v in range(0, n, 3)]

    def test_batch_matches_scalar_per_backend(self, setting):
        graph, labeling = setting
        pairs = self._pairs(graph.num_vertices)
        scalar = ResilientOracle(graph, labeling)
        expected = [scalar.query(u, v).distance for u, v in pairs]
        for backend in ("dict", "flat"):
            oracle = ResilientOracle(graph, labeling, backend=backend)
            assert oracle.batch_query(pairs) == expected
            assert oracle.health.queries == len(pairs)

    def test_quarantined_pairs_degrade_in_batch(self, setting):
        graph, labeling = setting
        oracle = ResilientOracle(graph, labeling, backend="flat")
        oracle.quarantine(4)
        before = oracle.health.fallbacks
        answers = oracle.batch_query([(4, 9), (0, 9), (3, 3)])
        assert oracle.health.fallbacks > before
        scalar = ResilientOracle(graph, labeling)
        assert answers == [
            scalar.query(4, 9).distance,
            scalar.query(0, 9).distance,
            0,
        ]

    def test_batch_budget_overruns_fall_back(self, setting):
        graph, labeling = setting
        oracle = ResilientOracle(
            graph, labeling, operation_budget=1, backend="flat"
        )
        pairs = self._pairs(graph.num_vertices)[:20]
        answers = oracle.batch_query(pairs)
        assert oracle.health.budget_exhaustions > 0
        scalar = ResilientOracle(graph, labeling)
        assert answers == [scalar.query(u, v).distance for u, v in pairs]

    def test_batch_inf_claim_cross_checked(self):
        # A labeling that falsely claims disconnection: the batch path
        # must re-answer exactly and record the integrity failure.
        graph = Graph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        labeling = pruned_landmark_labeling(graph)
        labeling.discard_hub(2, labeling.hub_set(2)[0])
        lying = any(
            labeling.query(u, v) == INF
            for u in range(3)
            for v in range(3)
            if u != v
        )
        oracle = ResilientOracle(graph, labeling, backend="flat")
        answers = oracle.batch_query([(0, 2), (2, 0)])
        assert answers == [2, 2]
        if lying:
            assert oracle.health.integrity_failures > 0

    def test_batch_rejects_bad_vertices(self, setting):
        graph, labeling = setting
        oracle = ResilientOracle(graph, labeling, backend="flat")
        with pytest.raises(DomainError):
            oracle.batch_query([(0, 1), (0, graph.num_vertices)])


class TestEnvelopeProperties:
    def test_envelope_overhead_is_constant(self, setting):
        _, labeling = setting
        enveloped = labeling_to_bytes(labeling)
        legacy = labeling_to_bytes(labeling, envelope=False)
        assert len(enveloped) - len(legacy) == 25  # fixed header size

    def test_double_corruption_still_detected(self, setting):
        _, labeling = setting
        blob = labeling_to_bytes(labeling)
        injector = FaultInjector(seed=13)
        mangled = injector.truncate(injector.bit_flip(blob, flips=2))
        with pytest.raises(ArtifactCorruptError):
            labeling_from_bytes(mangled)
