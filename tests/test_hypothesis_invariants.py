"""Property-based invariants across the whole stack (hypothesis)."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    HubLabeling,
    is_valid_cover,
    monotone_closure,
    pruned_landmark_labeling,
)
from repro.graphs import (
    Graph,
    INF,
    all_pairs_distances,
    bidirectional_distance,
    shortest_path_distances,
)
from repro.labeling import HubEncodedScheme


@st.composite
def random_graphs(draw):
    """Small random graphs (possibly disconnected, possibly weighted)."""
    n = draw(st.integers(min_value=1, max_value=18))
    density = draw(st.floats(min_value=0.0, max_value=0.5))
    weighted = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    rng = random.Random(seed)
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                weight = rng.randint(1, 9) if weighted else 1
                g.add_edge(u, v, weight)
    return g


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_pll_always_valid(graph):
    labeling = pruned_landmark_labeling(graph)
    assert is_valid_cover(graph, labeling)


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_pll_queries_symmetric(graph):
    labeling = pruned_landmark_labeling(graph)
    n = graph.num_vertices
    for u in range(n):
        for v in range(u, n):
            assert labeling.query(u, v) == labeling.query(v, u)


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_bidirectional_matches_single_source(graph):
    n = graph.num_vertices
    source = 0
    dist, _ = shortest_path_distances(graph, source)
    for v in range(n):
        assert bidirectional_distance(graph, source, v) == dist[v]


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_monotone_closure_keeps_cover_valid(graph):
    labeling = pruned_landmark_labeling(graph)
    closed = monotone_closure(graph, labeling)
    assert is_valid_cover(graph, closed)
    assert closed.total_size() >= labeling.total_size()


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_hub_encoding_round_trips_distances(graph):
    labeling = pruned_landmark_labeling(graph)
    scheme = HubEncodedScheme(labeling)
    matrix = all_pairs_distances(graph)
    n = graph.num_vertices
    for u in range(n):
        for v in range(n):
            assert scheme.query(u, v) == matrix[u][v]


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_query_is_upper_bound_even_for_partial_labels(graph):
    """Any labeling with *exact* hub distances over-estimates, never
    under-estimates."""
    n = graph.num_vertices
    partial = HubLabeling(n)
    rng = random.Random(42)
    for v in range(n):
        dist, _ = shortest_path_distances(graph, v)
        for h in range(n):
            if dist[h] != INF and rng.random() < 0.3:
                partial.add_hub(v, h, dist[h])
    matrix = all_pairs_distances(graph)
    for u in range(n):
        for v in range(n):
            assert partial.query(u, v) >= matrix[u][v]


@settings(max_examples=30, deadline=None)
@given(random_graphs(), st.integers(min_value=2, max_value=4))
def test_rs_scheme_always_valid(graph, threshold):
    from repro.core import rs_hub_labeling

    result = rs_hub_labeling(graph, threshold=threshold, seed=1)
    assert is_valid_cover(graph, result.labeling)


@settings(max_examples=30, deadline=None)
@given(random_graphs())
def test_degree_reduction_preserves_metric(graph):
    from repro.core import reduce_degree

    reduction = reduce_degree(graph, chunk=2)
    n = graph.num_vertices
    for u in range(0, n, max(1, n // 4)):
        dist_orig, _ = shortest_path_distances(graph, u)
        dist_red, _ = shortest_path_distances(
            reduction.reduced, reduction.representative[u]
        )
        for v in range(n):
            assert dist_orig[v] == dist_red[reduction.representative[v]]
