"""Random hitting sets for far pairs -- property (*) of Section 4."""

import math

import pytest

from repro.core import build_hitting_set, hitting_set_size
from repro.graphs import (
    all_pairs_distances,
    hub_candidates_from_distances,
    path_graph,
    random_sparse_graph,
)


class TestSizeFormula:
    def test_formula(self):
        assert hitting_set_size(100, 10) == math.ceil(10 * math.log(10))

    def test_threshold_one_takes_everything(self):
        assert hitting_set_size(50, 1) == 50

    def test_capped_at_n(self):
        assert hitting_set_size(5, 2) <= 5

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            hitting_set_size(10, 0)


class TestBuild:
    def test_corrections_complete_the_cover(self):
        g = random_sparse_graph(60, seed=3)
        threshold = 4
        result = build_hitting_set(g, threshold, seed=1)
        matrix = all_pairs_distances(g)
        for u in range(60):
            for v in range(u + 1, 60):
                candidates = hub_candidates_from_distances(
                    matrix[u], matrix[v], matrix[u][v]
                )
                if len(candidates) < threshold:
                    continue
                hit = not result.hitting_set.isdisjoint(candidates)
                corrected = v in result.corrections.get(u, ())
                assert hit or corrected

    def test_corrections_symmetric(self):
        g = random_sparse_graph(50, seed=9)
        result = build_hitting_set(g, 5, seed=2)
        for u, partners in result.corrections.items():
            for v in partners:
                assert u in result.corrections[v]

    def test_uncovered_within_probabilistic_bound(self):
        # The proof promises expectation <= n^2 / D; allow slack 4x.
        g = random_sparse_graph(80, seed=5)
        threshold = 5
        result = build_hitting_set(g, threshold, seed=3)
        assert result.num_uncovered <= 4 * result.correction_bound(80)

    def test_rich_pairs_counted(self):
        g = path_graph(20)
        result = build_hitting_set(g, 5, seed=0)
        # On a path, H_uv has dist+1 vertices: pairs at distance >= 4.
        expected = sum(1 for u in range(20) for v in range(u + 1, 20) if v - u >= 4)
        assert result.num_rich_pairs == expected

    def test_matrix_reuse_equivalent(self):
        g = random_sparse_graph(40, seed=7)
        matrix = all_pairs_distances(g)
        a = build_hitting_set(g, 4, seed=11)
        b = build_hitting_set(g, 4, seed=11, matrix=matrix)
        assert a.hitting_set == b.hitting_set
        assert a.corrections == b.corrections

    def test_threshold_one_hits_everything(self):
        g = path_graph(10)
        result = build_hitting_set(g, 1, seed=0)
        assert result.hitting_set == set(range(10))
        assert result.num_uncovered == 0
