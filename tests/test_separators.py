"""Separators and the recursive separator hub labeling."""

import math

import pytest

from repro.core import (
    grid_recursive_separator_fn,
    is_valid_cover,
    separator_hub_labeling,
)
from repro.graphs import (
    Graph,
    bfs_level_separator,
    grid_2d,
    grid_separator,
    path_graph,
    random_sparse_graph,
    random_tree,
)


class TestGridSeparator:
    def test_middle_row(self):
        sep = grid_separator(4, 6)
        assert sep == [2 * 6 + c for c in range(6)]

    def test_middle_column_when_taller(self):
        sep = grid_separator(6, 4)
        assert sep == [r * 4 + 2 for r in range(6)]

    def test_separates_grid(self):
        rows, cols = 5, 5
        g = grid_2d(rows, cols)
        sep = set(grid_separator(rows, cols))
        remaining, _ = g.remove_vertices(sep)
        from repro.graphs import connected_components

        parts = connected_components(remaining)
        assert len(parts) == 2


class TestBfsLevelSeparator:
    def test_path_middle(self):
        g = path_graph(9)
        sep = bfs_level_separator(g, list(range(9)))
        assert len(sep) == 1
        assert sep[0] == 4  # BFS from 0: best level is the middle

    def test_always_inside_component(self):
        g = random_sparse_graph(40, seed=5)
        component = list(range(40))
        sep = bfs_level_separator(g, component)
        assert sep
        assert set(sep) <= set(component)

    def test_singleton_component(self):
        g = Graph(3)
        assert bfs_level_separator(g, [2]) == [2]

    def test_is_a_cut(self):
        # Removing a BFS level disconnects below from above.
        g = grid_2d(5, 5)
        sep = set(bfs_level_separator(g, list(range(25))))
        if len(sep) < 25:
            remaining, mapping = g.remove_vertices(sep)
            # Any split is fine; just check nothing broke structurally.
            assert remaining.num_vertices == 25 - len(sep)


class TestSeparatorLabeling:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(20),
            grid_2d(5, 6),
            random_tree(30, seed=2),
            random_sparse_graph(35, seed=3),
        ],
        ids=["path", "grid", "tree", "sparse"],
    )
    def test_valid_cover(self, graph):
        labeling = separator_hub_labeling(graph)
        assert is_valid_cover(graph, labeling)

    def test_disconnected(self):
        g = Graph(7)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(4, 5)
        labeling = separator_hub_labeling(g)
        assert is_valid_cover(g, labeling)

    def test_grid_sqrt_bound(self):
        # The GPPR04 shape: O(sqrt n) hubs per vertex on grids.
        side = 8
        g = grid_2d(side, side)
        labeling = separator_hub_labeling(
            g, separator_fn=grid_recursive_separator_fn(side)
        )
        assert is_valid_cover(g, labeling)
        n = side * side
        # Hub count <= ~ side + side/2 + side/2 + side/4*... ~ 4*sqrt(n).
        assert labeling.max_size() <= 4 * math.isqrt(n) + 4

    def test_grid_beats_naive_pll_order(self):
        from repro.core import pruned_landmark_labeling

        side = 8
        g = grid_2d(side, side)
        sep = separator_hub_labeling(
            g, separator_fn=grid_recursive_separator_fn(side)
        )
        naive = pruned_landmark_labeling(g, list(range(side * side)))
        assert sep.total_size() < naive.total_size()

    def test_empty_separator_rejected(self):
        g = path_graph(5)
        with pytest.raises(ValueError):
            separator_hub_labeling(g, separator_fn=lambda graph, comp: [])

    def test_foreign_separator_rejected(self):
        g = path_graph(5)
        with pytest.raises(ValueError):
            separator_hub_labeling(
                g, separator_fn=lambda graph, comp: [99]
            )
