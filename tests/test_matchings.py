"""Bipartite matchings, Koenig covers, induced matchings."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.rs import (
    greedy_maximal_matching,
    is_induced_matching,
    is_matching,
    konig_vertex_cover,
    maximum_bipartite_matching,
)


def brute_force_maximum_matching(edges):
    best = 0
    for r in range(len(edges), 0, -1):
        for combo in itertools.combinations(edges, r):
            if is_matching(combo):
                return r
    return best


def random_edges(num_left, num_right, count, seed):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < count:
        edges.add((rng.randrange(num_left), rng.randrange(num_right)))
    return sorted(edges)


class TestGreedyMaximal:
    def test_is_matching_and_maximal(self):
        edges = random_edges(6, 6, 12, seed=1)
        mm = greedy_maximal_matching(edges)
        assert is_matching(mm)
        used_l = {u for u, _ in mm}
        used_r = {v for _, v in mm}
        for u, v in edges:
            assert u in used_l or v in used_r  # maximality

    def test_empty(self):
        assert greedy_maximal_matching([]) == []


class TestMaximumMatching:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        edges = random_edges(5, 5, 8, seed=seed)
        hk = maximum_bipartite_matching(edges)
        assert is_matching(hk)
        assert set(hk) <= set(edges)
        assert len(hk) == brute_force_maximum_matching(edges)

    def test_perfect_matching_on_crown(self):
        edges = [(i, i) for i in range(5)] + [(i, (i + 1) % 5) for i in range(5)]
        assert len(maximum_bipartite_matching(edges)) == 5

    def test_star_has_matching_one(self):
        edges = [(0, j) for j in range(6)]
        assert len(maximum_bipartite_matching(edges)) == 1


class TestKonig:
    def covers(self, cover, edges):
        left_cover, right_cover = cover
        return all(u in left_cover or v in right_cover for u, v in edges)

    @pytest.mark.parametrize("seed", range(6))
    def test_cover_valid_and_tight(self, seed):
        edges = random_edges(5, 6, 9, seed=seed + 10)
        cover = konig_vertex_cover(edges)
        assert self.covers(cover, edges)
        matching_size = len(maximum_bipartite_matching(edges))
        assert len(cover[0]) + len(cover[1]) == matching_size

    def test_cover_at_most_twice_greedy(self):
        # The Lemma 4.2 inequality |VC| <= 2 |MM| for any maximal MM.
        edges = random_edges(8, 8, 20, seed=3)
        cover = konig_vertex_cover(edges)
        mm = greedy_maximal_matching(edges)
        assert len(cover[0]) + len(cover[1]) <= 2 * len(mm)

    def test_empty(self):
        assert konig_vertex_cover([]) == (set(), set())


class TestInducedMatchings:
    def test_is_matching(self):
        assert is_matching([(0, 1), (2, 3)])
        assert not is_matching([(0, 1), (0, 3)])
        assert not is_matching([(0, 1), (2, 1)])

    def test_induced_positive(self):
        graph_edges = {(0, 10), (1, 11), (2, 12)}
        assert is_induced_matching(graph_edges, [(0, 10), (1, 11)])

    def test_cross_edge_breaks_inducedness(self):
        graph_edges = {(0, 10), (1, 11), (0, 11)}
        assert not is_induced_matching(graph_edges, [(0, 10), (1, 11)])

    def test_non_matching_rejected(self):
        graph_edges = {(0, 10), (0, 11)}
        assert not is_induced_matching(graph_edges, [(0, 10), (0, 11)])

    @given(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=10, max_value=14),
            ),
            max_size=12,
        )
    )
    @settings(max_examples=50)
    def test_single_edge_always_induced(self, graph_edges):
        for edge in graph_edges:
            assert is_induced_matching(graph_edges, [edge])
