"""Soak test: sustained mixed load against a chaos-damaged oracle.

Excluded from tier-1 (``soak`` marker, run via ``make soak`` or
``pytest --run-soak``); CI runs it with a small time budget through
``REPRO_SOAK_SECONDS``.

The scenario stacks every resilience layer this repo has and leans on
it for a wall-clock-bounded barrage:

* labels are **corrupted** by the seeded fault injector (``drop-hub``
  and ``perturb`` -- the kinds the artifact envelope cannot catch, so
  the runtime itself must);
* a :class:`ResilientOracle` with exhaustive admission verification
  and exact fallback serves them;
* a :class:`QueryServer` coalesces concurrent clients on top;
* :func:`run_loadgen` fires mixed duration-mode load, grading every
  answer against the pristine labeling.

Pass criterion is absolute: **zero wrong answers, zero dropped
requests** -- resilience may cost throughput (fallback searches), but
never correctness and never silent loss.
"""

import os

import pytest

from repro.core import pruned_landmark_labeling
from repro.graphs import random_sparse_graph
from repro.oracles.oracle import HubLabelOracle
from repro.runtime import ResilientOracle
from repro.runtime.faults import FaultInjector
from repro.serve import QueryServer, run_loadgen

#: Wall-clock budget per corruption kind; CI sets a small value.
SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "60"))


@pytest.mark.soak
@pytest.mark.parametrize("kind", ["drop-hub", "perturb"])
def test_soak_chaos_load_zero_wrong_zero_dropped(kind):
    graph = random_sparse_graph(150, seed=17)
    pristine = pruned_landmark_labeling(graph)
    ground_oracle = HubLabelOracle(pristine, backend="dict")

    corrupted = FaultInjector(seed=23).corrupt_labeling(kind, pristine)
    oracle = ResilientOracle(
        graph,
        corrupted,
        fallback=True,
        verify_sample=graph.num_vertices,  # exhaustive admission check
        seed=23,
    )

    with QueryServer(
        oracle, max_queue=4096, max_batch=32, max_delay=0.002
    ) as server:
        report = run_loadgen(
            server,
            graph.num_vertices,
            clients=8,
            duration=SOAK_SECONDS / 2,  # two kinds share the budget
            seed=29,
            expected=lambda u, v: ground_oracle.query(u, v).distance,
        )
        stats = server.stats()

    assert report.wrong == 0, report.render()
    assert report.dropped == 0, report.render()
    assert report.errors == 0, report.render()
    assert report.requests > 0
    assert stats.responses >= report.requests
    # The damaged labels must have actually exercised the resilience
    # machinery -- otherwise this soak proves nothing.
    health = oracle.health
    assert (
        len(health.quarantined) > 0
        or health.fallbacks > 0
        or health.admission_violations > 0
    ), "corruption was a no-op; the soak exercised nothing"
