"""Soak test: sustained mixed load against a chaos-damaged oracle.

Excluded from tier-1 (``soak`` marker, run via ``make soak`` or
``pytest --run-soak``); CI runs it with a small time budget through
``REPRO_SOAK_SECONDS``.

The scenario stacks every resilience layer this repo has and leans on
it for a wall-clock-bounded barrage:

* labels are **corrupted** by the seeded fault injector (``drop-hub``
  and ``perturb`` -- the kinds the artifact envelope cannot catch, so
  the runtime itself must);
* a :class:`ResilientOracle` with exhaustive admission verification
  and exact fallback serves them;
* a :class:`QueryServer` coalesces concurrent clients on top;
* :func:`run_loadgen` fires mixed duration-mode load, grading every
  answer against the pristine labeling.

Pass criterion is absolute: **zero wrong answers, zero dropped
requests** -- resilience may cost throughput (fallback searches), but
never correctness and never silent loss.
"""

import os

import pytest

from repro.core import pruned_landmark_labeling
from repro.graphs import random_sparse_graph
from repro.oracles.oracle import HubLabelOracle
from repro.runtime import ResilientOracle
from repro.runtime.faults import FaultInjector
from repro.serve import QueryServer, run_loadgen

#: Wall-clock budget per corruption kind; CI sets a small value.
SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "60"))


@pytest.mark.soak
@pytest.mark.parametrize("kind", ["drop-hub", "perturb"])
def test_soak_chaos_load_zero_wrong_zero_dropped(kind):
    graph = random_sparse_graph(150, seed=17)
    pristine = pruned_landmark_labeling(graph)
    ground_oracle = HubLabelOracle(pristine, backend="dict")

    corrupted = FaultInjector(seed=23).corrupt_labeling(kind, pristine)
    oracle = ResilientOracle(
        graph,
        corrupted,
        fallback=True,
        verify_sample=graph.num_vertices,  # exhaustive admission check
        seed=23,
    )

    with QueryServer(
        oracle, max_queue=4096, max_batch=32, max_delay=0.002
    ) as server:
        report = run_loadgen(
            server,
            graph.num_vertices,
            clients=8,
            duration=SOAK_SECONDS / 2,  # two kinds share the budget
            seed=29,
            expected=lambda u, v: ground_oracle.query(u, v).distance,
        )
        stats = server.stats()

    assert report.wrong == 0, report.render()
    assert report.dropped == 0, report.render()
    assert report.errors == 0, report.render()
    assert report.requests > 0
    assert stats.responses >= report.requests
    # The damaged labels must have actually exercised the resilience
    # machinery -- otherwise this soak proves nothing.
    health = oracle.health
    assert (
        len(health.quarantined) > 0
        or health.fallbacks > 0
        or health.admission_violations > 0
    ), "corruption was a no-op; the soak exercised nothing"


@pytest.mark.soak
def test_soak_churn_hot_swap_zero_wrong_zero_stale():
    """Mutate the graph under live multi-process load.

    A churn thread applies seeded edge edits through
    :class:`DynamicHubLabeling`'s incremental repair and hot-swaps each
    repaired labeling into a running :class:`ShardedQueryServer` via
    ``set_oracle``.  After every swap it grades probe queries against
    the repaired labeling -- the sharded door guarantees requests
    admitted after ``set_oracle`` returns are answered by the new
    labeling, so any probe mismatch is a stale or wrong answer.  Pass
    criteria: zero wrong, zero dropped, zero errors, a strictly
    increasing ``serve.generation`` gauge, and at least one mutation
    actually landing inside the window.
    """
    from repro.dynamic import DynamicHubLabeling, mutation_script
    from repro.obs.catalog import SERVE_GENERATION
    from repro.obs.registry import get_registry
    from repro.runtime.errors import ServerOverloadError
    from repro.serve import ShardedQueryServer, run_loadgen

    graph = random_sparse_graph(120, seed=31)
    dyn = DynamicHubLabeling(graph)
    n = graph.num_vertices
    registry = get_registry()

    cursor = iter(())
    refill = [0]
    generations = []
    probe_state = {"index": 0}

    def churn():
        nonlocal cursor
        op = next(cursor, None)
        if op is None:
            # Refill from the *current* graph state so every edit stays
            # legal; the seed sequence keeps refills deterministic.
            refill[0] += 1
            cursor = iter(
                mutation_script(dyn.graph, 16, seed=31 + refill[0])
            )
            op = next(cursor, None)
            if op is None:  # pragma: no cover - graph stuck
                return False
        kind, u, v, w = op
        if kind == "insert":
            dyn.insert_edge(u, v, w)
        else:
            dyn.delete_edge(u, v)
        server.set_oracle(HubLabelOracle(dyn.flat(), backend="flat"))
        generations.append(registry.get(SERVE_GENERATION).value)
        for _ in range(4):  # post-swap probes, graded against repair
            i = probe_state["index"] = probe_state["index"] + 1
            a, b = (i * 13) % n, (i * 29 + 7) % n
            try:
                got = server.query(a, b)
            except ServerOverloadError:
                continue
            want = dyn.query(a, b)
            assert got == want and type(got) is type(want), (
                f"stale/wrong answer after swap {len(generations)}: "
                f"dist({a},{b}) = {got!r}, want {want!r}"
            )
        return True

    server = ShardedQueryServer(
        HubLabelOracle(dyn.flat(), backend="flat"), processes=2
    )
    with server:
        report = run_loadgen(
            server,
            n,
            clients=4,
            duration=SOAK_SECONDS / 2,
            seed=37,
            batch_size=32,
            churn=churn,
            churn_interval=0.01,
        )

    assert report.wrong == 0, report.render()
    assert report.dropped == 0, report.render()
    assert report.errors == 0, report.render()
    assert report.requests > 0
    assert report.mutations >= 1, "no mutation landed; the soak proved nothing"
    assert report.mutations == len(generations)
    # The generation gauge must be strictly monotone: one bump per
    # swap, never a repeat, never a rollback.
    assert generations == sorted(set(generations))
    assert generations[-1] == server.generation_seq
    # And the final repaired labeling still matches a full rebuild.
    from repro.perf.build import build_flat_labels

    rebuilt = build_flat_labels(dyn.graph, dyn.order)
    for u in range(0, n, 3):
        for v in range(0, n, 7):
            got, want = dyn.query(u, v), rebuilt.query(u, v)
            assert got == want and type(got) is type(want), (u, v)
