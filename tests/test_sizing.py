"""Closed-form sizing of hard instances vs the real constructions."""

import pytest

from repro.lowerbound import (
    balanced_parameters,
    build_degree3_instance,
    certificate_for,
    certificate_preview,
    predict_size,
)


class TestPrediction:
    @pytest.mark.parametrize("b,ell", [(1, 1), (2, 1), (1, 2)])
    def test_matches_real_instance(self, b, ell):
        inst = build_degree3_instance(b, ell)
        prediction = predict_size(b, ell)
        assert prediction.cores == inst.num_core_vertices
        assert prediction.tree_vertices == inst.num_tree_vertices
        assert prediction.path_vertices == inst.num_path_vertices
        assert prediction.total == inst.graph.num_vertices

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            predict_size(0, 1)

    def test_growth_is_monotone(self):
        sizes = [
            predict_size(b, ell).total
            for b, ell in [(1, 1), (1, 2), (2, 2), (2, 3)]
        ]
        assert sizes == sorted(sizes)


class TestBalance:
    def test_small_target(self):
        assert balanced_parameters(10) == (1, 1)

    def test_respects_budget(self):
        for target in (10 ** 3, 10 ** 5, 10 ** 7):
            b, ell = balanced_parameters(target)
            if (b, ell) != (1, 1):
                assert predict_size(b, ell).total <= target

    def test_square_balance_grows(self):
        small = balanced_parameters(10 ** 4)
        large = balanced_parameters(10 ** 8)
        assert large >= small


class TestCertificatePreview:
    @pytest.mark.parametrize("b,ell", [(1, 1), (2, 1)])
    def test_matches_built_certificate(self, b, ell):
        inst = build_degree3_instance(b, ell)
        built = certificate_for(inst)
        preview = certificate_preview(b, ell)
        assert preview.triplet_count == built.triplet_count
        assert preview.distortion == built.distortion
        assert preview.num_vertices == built.num_vertices

    def test_preview_scales_without_building(self):
        # (4, 4) would be a ~10^9-vertex graph; the preview is instant.
        cert = certificate_preview(4, 4)
        assert cert.num_vertices > 10 ** 8
        assert cert.hub_sum_lower_bound > 10 ** 3
        # The certified *average* starts climbing once the grid term
        # s^{2l} outruns the gadget overhead (s^{l+3} l^2-ish): visible
        # from (3,3) onward on the balanced diagonal.
        mid = certificate_preview(3, 3)
        huge = certificate_preview(5, 5)
        assert (
            huge.hub_sum_lower_bound / huge.num_vertices
            > mid.hub_sum_lower_bound / mid.num_vertices
        )
