"""Differential testing: dict vs flat vs exact search, byte-identical.

Hypothesis generates small sparse graphs (unweighted and integer
weighted, connected or not); every ``(u, v)`` pair is answered by

* the dict-backed :class:`HubLabelOracle` (scalar and batch),
* the flat-backed :class:`HubLabelOracle` (scalar and batch), and
* exact BFS/Dijkstra (:func:`shortest_path_distances`),

and all five answers must agree *byte-identically* -- same value, same
type (the flat store narrows integral doubles back to int), with
disconnected pairs reported as the same ``inf``.  Hard instances
``G_{b,l}`` from the paper's lower-bound construction go through the
same comparison deterministically.

A seed-pinned corpus under ``tests/data/`` replays the same contract on
committed cases, so a behavioral change shows up as a reviewable diff
even if hypothesis happens not to hit it.  Since version 2 the corpus
is organized by graph family: the original hand-picked cases plus 30
seed-swept cases from each zoo family (Barabasi-Albert, power-law
configuration, small-world, road-network), regenerated and
drift-checked by ``tools/gen_differential_corpus.py``.

The serving layer joins the same contract: every corpus answer must
come back byte-identical when fired through a :class:`QueryServer`
from many client threads at once -- concurrency, coalescing, and
caching must be invisible in the answers.
"""

import json
import math
import pathlib
import random
import sys
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pruned_landmark_labeling
from repro.graphs import Graph
from repro.graphs.traversal import shortest_path_distances
from repro.lowerbound import build_degree3_instance
from repro.oracles.oracle import HubLabelOracle
from repro.serve import QueryServer

DATA_DIR = pathlib.Path(__file__).parent / "data"
CORPUS_PATH = DATA_DIR / "differential_corpus.json"


def _exact_row(graph: Graph, source: int):
    return shortest_path_distances(graph, source)[0]


def _assert_identical(expected, got, context):
    """Equal value AND equal type: 2 is not 2.0 for this contract."""
    assert type(expected) is type(got), (context, expected, got)
    if isinstance(expected, float) and math.isinf(expected):
        assert math.isinf(got), (context, expected, got)
    else:
        assert expected == got, (context, expected, got)


def _check_graph(graph: Graph, pairs=None):
    labeling = pruned_landmark_labeling(graph)
    dict_oracle = HubLabelOracle(labeling, backend="dict")
    flat_oracle = HubLabelOracle(labeling, backend="flat")
    n = graph.num_vertices
    if pairs is None:
        pairs = [(u, v) for u in range(n) for v in range(n)]
    exact_rows = {}
    dict_batch = dict_oracle.batch_query(pairs)
    flat_batch = flat_oracle.batch_query(pairs)
    for index, (u, v) in enumerate(pairs):
        if u not in exact_rows:
            exact_rows[u] = _exact_row(graph, u)
        expected = exact_rows[u][v]
        dict_scalar = dict_oracle.query(u, v).distance
        flat_scalar = flat_oracle.query(u, v).distance
        # Exact search returns floats (INF-capable rows); the oracles
        # answer ints on unweighted/integer graphs.  Values must agree
        # exactly; the four oracle answers must be byte-identical.
        assert dict_scalar == expected or (
            math.isinf(expected) and math.isinf(dict_scalar)
        ), (u, v, dict_scalar, expected)
        _assert_identical(dict_scalar, flat_scalar, ("scalar", u, v))
        _assert_identical(dict_scalar, dict_batch[index], ("dict-batch", u, v))
        _assert_identical(dict_scalar, flat_batch[index], ("flat-batch", u, v))


@st.composite
def sparse_graphs(draw, weighted):
    n = draw(st.integers(min_value=2, max_value=12))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(
            st.sampled_from(possible),
            unique=True,
            max_size=min(len(possible), 2 * n),
        )
    )
    graph = Graph(n)
    for u, v in edges:
        weight = draw(st.integers(1, 9)) if weighted else 1
        graph.add_edge(u, v, weight)
    return graph


class TestHypothesisDifferential:
    @settings(max_examples=120, deadline=None)
    @given(graph=sparse_graphs(weighted=False))
    def test_unweighted_graphs(self, graph):
        _check_graph(graph)

    @settings(max_examples=80, deadline=None)
    @given(graph=sparse_graphs(weighted=True))
    def test_weighted_graphs(self, graph):
        _check_graph(graph)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=10),
        data=st.data(),
    )
    def test_forests_with_disconnection(self, n, data):
        # Forests guarantee INF pairs whenever there are >= 2 trees.
        graph = Graph(n)
        for v in range(1, n):
            parent = data.draw(
                st.one_of(st.none(), st.integers(0, v - 1)), label=f"p{v}"
            )
            if parent is not None:
                graph.add_edge(parent, v)
        _check_graph(graph)


class TestHardInstanceDifferential:
    def test_g11_full(self):
        graph = build_degree3_instance(1, 1).graph
        n = graph.num_vertices
        sources = list(range(0, n, max(1, n // 12)))
        pairs = [(s, t) for s in sources for t in range(0, n, 7)]
        _check_graph(graph, pairs=pairs)


#: Families the version-2 corpus must cover, with their case floors.
ZOO_FAMILY_FLOOR = 30
ZOO_FAMILIES = ("ba", "powerlaw", "smallworld", "road")


def _cases_by_family(corpus):
    grouped = {}
    for case in corpus["cases"]:
        grouped.setdefault(case["family"], []).append(case)
    return grouped


class TestPinnedCorpus:
    def test_corpus_exists_and_is_seed_pinned(self):
        corpus = json.loads(CORPUS_PATH.read_text())
        assert corpus["version"] == 2
        assert corpus["cases"], "corpus must not be empty"
        for case in corpus["cases"]:
            assert case["seed"] is not None
            assert case["family"], case["name"]

    def test_corpus_covers_every_zoo_family(self):
        """Each zoo family contributes at least its case floor, and the
        power-law configuration family (no connectivity guarantee) must
        pin some disconnected pairs so the INF contract stays covered.
        """
        corpus = json.loads(CORPUS_PATH.read_text())
        grouped = _cases_by_family(corpus)
        for family in ZOO_FAMILIES:
            assert len(grouped.get(family, [])) >= ZOO_FAMILY_FLOOR, family
        for family in ("sparse", "weighted", "forest", "degree3"):
            assert grouped.get(family), family
        inf_pairs = sum(
            1
            for case in grouped["powerlaw"]
            for value in case["expected"]
            if value is None
        )
        assert inf_pairs > 0

    def test_corpus_cases_replay_identically_through_server(self):
        """Corpus cases fired through QueryServer by 8 threads at once.

        Ground truth is the serial dict-backend answer; every response
        out of every client thread must match it byte-identically
        (value AND type, INF included) -- across coalescing, the result
        cache, and duplicate-pair collapsing.  Two cases per family
        keep the sweep representative without multiplying server
        spin-ups by the full 100+-case corpus.
        """
        corpus = json.loads(CORPUS_PATH.read_text())
        corpus = {
            "cases": [
                case
                for cases in _cases_by_family(corpus).values()
                for case in cases[:2]
            ]
        }
        switch = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            for case in corpus["cases"]:
                graph = Graph(case["n"])
                for u, v, w in case["edges"]:
                    graph.add_edge(u, v, w)
                labeling = pruned_landmark_labeling(graph)
                dict_oracle = HubLabelOracle(labeling, backend="dict")
                flat_oracle = HubLabelOracle(labeling, backend="flat")
                pairs = [tuple(pair) for pair in case["pairs"]]
                truth = {
                    pair: dict_oracle.query(*pair).distance
                    for pair in pairs
                }
                failures = []

                def client(index, server=None, truth=truth, pairs=pairs,
                           name=case["name"]):
                    rng = random.Random(1000 + index)
                    shuffled = list(pairs)
                    rng.shuffle(shuffled)
                    futures = [
                        (pair, server.submit(*pair)) for pair in shuffled
                    ]
                    for pair, future in futures:
                        got = future.result(timeout=30)
                        want = truth[pair]
                        if type(got) is not type(want) or not (
                            got == want
                            or (math.isinf(want) and math.isinf(got))
                        ):
                            failures.append((name, index, pair, got, want))

                # Deep queue: this sweep tests answer fidelity, and the
                # clients fire their whole workload without waiting
                # (backpressure has its own tests in test_serve.py).
                with QueryServer(
                    flat_oracle,
                    max_queue=100_000,
                    max_batch=8,
                    max_delay=0.001,
                ) as server:
                    threads = [
                        threading.Thread(target=client, args=(i, server))
                        for i in range(8)
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                assert not failures, failures[:5]
        finally:
            sys.setswitchinterval(switch)

    def test_hard_instance_served_concurrently(self):
        """G(2,1) through the server: sampled pairs, 8 threads."""
        from repro.perf.build import build_flat_labels
        from repro.core.orders import degree_order

        graph = build_degree3_instance(2, 1).graph
        flat = build_flat_labels(graph, degree_order(graph))
        dict_oracle = HubLabelOracle(flat.to_labeling(), backend="dict")
        n = graph.num_vertices
        rng = random.Random(42)
        pairs = [
            (rng.randrange(n), rng.randrange(n)) for _ in range(400)
        ]
        truth = {
            pair: dict_oracle.query(*pair).distance for pair in pairs
        }
        failures = []

        def client(index):
            local = list(pairs)
            random.Random(index).shuffle(local)
            for pair in local:
                got = server.query(*pair, timeout=30)
                want = truth[pair]
                if type(got) is not type(want) or not (
                    got == want
                    or (math.isinf(want) and math.isinf(got))
                ):
                    failures.append((index, pair, got, want))

        with QueryServer(
            HubLabelOracle(flat, backend="flat"),
            max_batch=32,
            max_delay=0.001,
        ) as server:
            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not failures, failures[:5]

    def test_corpus_cases_replay_identically(self):
        corpus = json.loads(CORPUS_PATH.read_text())
        for case in corpus["cases"]:
            graph = Graph(case["n"])
            for u, v, w in case["edges"]:
                graph.add_edge(u, v, w)
            labeling = pruned_landmark_labeling(graph)
            dict_oracle = HubLabelOracle(labeling, backend="dict")
            flat_oracle = HubLabelOracle(labeling, backend="flat")
            pairs = [tuple(pair) for pair in case["pairs"]]
            flat_batch = flat_oracle.batch_query(pairs)
            for index, (u, v) in enumerate(pairs):
                expected = case["expected"][index]
                expected = math.inf if expected is None else expected
                got = dict_oracle.query(u, v).distance
                assert got == expected, (case["name"], u, v, got, expected)
                _assert_identical(
                    got, flat_batch[index], (case["name"], u, v)
                )
