"""The GPPR04-style counting baseline (shortcut family)."""

import math
from itertools import combinations

import pytest

from repro.graphs import is_connected, shortest_path_distances
from repro.lowerbound import (
    counting_bound_bits_per_label,
    shortcut_family_bound,
    shortcut_family_graph,
    terminal_pairs,
)


class TestArithmetic:
    def test_bits_per_label(self):
        assert counting_bound_bits_per_label(100.0, 10) == 10.0

    def test_rejects_no_terminals(self):
        with pytest.raises(ValueError):
            counting_bound_bits_per_label(5.0, 0)

    def test_family_bound_shape(self):
        n, bits = shortcut_family_bound(10)
        assert n == 10 + 1 + 10 + 45
        assert bits == pytest.approx(4.5)
        # bits ~ (k-1)/2 = Theta(sqrt n).
        assert bits >= 0.5 * math.sqrt(n) - 2


class TestShortcutFamily:
    def test_distances_distinguish_members(self):
        k = 5
        pairs = terminal_pairs(k)
        seen = {}
        for r in range(3):  # a few members
            subset = frozenset(pairs[r::3])
            g = shortcut_family_graph(k, subset)
            profile = []
            for t in range(k):
                dist, _ = shortest_path_distances(g, t)
                profile.extend(dist[t2] for t2 in range(t + 1, k))
            key = tuple(profile)
            assert key not in seen
            seen[key] = subset

    def test_pair_distance_is_2_or_4(self):
        k = 4
        pairs = terminal_pairs(k)
        subset = frozenset({pairs[0], pairs[3]})
        g = shortcut_family_graph(k, subset)
        for pair in pairs:
            dist, _ = shortest_path_distances(g, pair[0])
            expected = 2 if pair in subset else 4
            assert dist[pair[1]] == expected

    def test_all_members_connected_same_size(self):
        k = 4
        pairs = terminal_pairs(k)
        sizes = set()
        for r in range(4):
            subset = frozenset(pairs[:r])
            g = shortcut_family_graph(k, subset)
            assert is_connected(g)
            sizes.add((g.num_vertices, g.num_edges))
        # Vertex count constant across the family.
        assert len({n for n, _ in sizes}) == 1

    def test_graph_is_sparse(self):
        k = 8
        g = shortcut_family_graph(k, frozenset(terminal_pairs(k)))
        assert g.num_edges <= 3 * g.num_vertices

    def test_invalid_subset_rejected(self):
        with pytest.raises(ValueError):
            shortcut_family_graph(3, frozenset({(0, 9)}))

    def test_full_family_exhaustive_small(self):
        # k = 3: all 8 members pairwise distinguishable.
        k = 3
        pairs = terminal_pairs(k)
        profiles = set()
        for r in range(len(pairs) + 1):
            for subset in combinations(pairs, r):
                g = shortcut_family_graph(k, frozenset(subset))
                profile = []
                for t in range(k):
                    dist, _ = shortest_path_distances(g, t)
                    profile.extend(dist[t2] for t2 in range(t + 1, k))
                profiles.add(tuple(profile))
        assert len(profiles) == 2 ** len(pairs)
