"""Highway dimension estimation."""

from repro.core import estimate_highway_dimension
from repro.graphs import Graph, grid_2d, path_graph, star_graph


class TestEstimate:
    def test_path_is_easy(self):
        est = estimate_highway_dimension(path_graph(16))
        # O(1) regardless of n: a ball of radius 2r is a subpath and its
        # long subpaths are hit by a constant number of vertices.
        assert est.dimension <= 4
        bigger = estimate_highway_dimension(path_graph(32))
        assert bigger.dimension <= 4  # flat as n grows

    def test_star_is_trivial(self):
        est = estimate_highway_dimension(star_graph(10))
        assert est.dimension <= 1

    def test_grid_grows(self):
        small = estimate_highway_dimension(grid_2d(4, 4)).dimension
        large = estimate_highway_dimension(grid_2d(7, 7)).dimension
        assert large >= small
        assert large >= 3  # grids have no highway structure

    def test_highway_mesh_flattens(self):
        # A grid plus express edges has lower highway dimension than the
        # bare grid at the radii the expressway covers.
        side = 7
        bare = grid_2d(side, side)
        express = bare.copy()
        # Add express edges along the middle row/column (weight 1 keeps
        # the graph unweighted in structure but shortcuts long paths).
        mid = side // 2
        for c in range(0, side - 2, 2):
            express.add_edge(mid * side + c, mid * side + c + 2)
            express.add_edge(c * side + mid, (c + 2) * side + mid)
        bare_est = estimate_highway_dimension(bare)
        express_est = estimate_highway_dimension(express)
        # Express edges add clutter at tiny radii but shrink the hitting
        # sets at the radii they span -- the [ADF+16] highway effect.
        for r in (4, 8):
            assert express_est.per_radius[r] <= bare_est.per_radius[r]

    def test_per_radius_keys_double(self):
        est = estimate_highway_dimension(grid_2d(5, 5))
        radii = sorted(est.per_radius)
        for a, b in zip(radii, radii[1:]):
            assert b == 2 * a

    def test_empty_and_single(self):
        assert estimate_highway_dimension(Graph(1)).dimension == 0
