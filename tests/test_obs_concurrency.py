"""Thread-safety regression tests for the metrics registry.

``counter.value += 1`` is a read-modify-write the GIL does **not** make
atomic -- before the serving layer arrived every instrument was bumped
from one thread and nobody could tell.  These tests hammer each
instrument from many threads with a tiny switch interval (forcing the
interpreter to preempt mid-bump) and demand *exact* final counts: a
single lost update is a failure, not noise.
"""

import sys
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import pruned_landmark_labeling
from repro.graphs import random_sparse_graph
from repro.obs.registry import Registry
from repro.oracles.oracle import HubLabelOracle
from repro.runtime import ServerOverloadError
from repro.serve import QueryServer

THREADS = 16
BUMPS = 2_000


@pytest.fixture(autouse=True)
def aggressive_preemption():
    """Force thread switches every ~10us so lost updates actually occur."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(previous)


def _hammer(worker, threads=THREADS):
    barrier = threading.Barrier(threads)

    def run(index):
        barrier.wait()  # maximal contention: everyone starts together
        worker(index)

    pool = [
        threading.Thread(target=run, args=(i,)) for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


class TestCounterConcurrency:
    def test_sixteen_threads_exact_count(self):
        counter = Registry().counter("test.hammer")
        _hammer(lambda i: [counter.inc() for _ in range(BUMPS)])
        assert counter.value == THREADS * BUMPS

    def test_amount_increments_exact(self):
        counter = Registry().counter("test.amounts")
        _hammer(lambda i: [counter.inc(3) for _ in range(BUMPS)])
        assert counter.value == THREADS * BUMPS * 3

    def test_mixed_amounts_exact(self):
        # Threads bump by different amounts; the striped cells must
        # account for every unit regardless of interleaving.
        counter = Registry().counter("test.mixed")
        _hammer(
            lambda i: [counter.inc(1 + i % 3) for _ in range(BUMPS)]
        )
        expected = BUMPS * sum(1 + i % 3 for i in range(THREADS))
        assert counter.value == expected

    def test_inline_cell_bumps_exact(self):
        # The hot-path contract: each thread caches its cell once and
        # bumps it inline; value sums every thread's cell exactly.
        counter = Registry().counter("test.cells")
        def worker(_):
            cell = counter.cell()
            for _ in range(BUMPS):
                cell[0] += 1
        _hammer(worker)
        assert counter.value == THREADS * BUMPS

    def test_value_readable_while_cells_register(self):
        # Concurrent first-touch cell registration grows the shard dict
        # while readers sum it; reads must never crash and the final
        # sum must be exact.
        counter = Registry().counter("test.grow")
        stop = threading.Event()
        observed = []
        def reader():
            while not stop.is_set():
                observed.append(counter.value)
        watcher = threading.Thread(target=reader)
        watcher.start()
        try:
            _hammer(lambda i: [counter.inc() for _ in range(BUMPS)])
        finally:
            stop.set()
            watcher.join()
        assert counter.value == THREADS * BUMPS
        assert all(
            0 <= count <= THREADS * BUMPS for count in observed
        )


class TestGaugeConcurrency:
    def test_inc_dec_balance_to_zero(self):
        gauge = Registry().gauge("test.balance")
        def worker(_):
            for _ in range(BUMPS):
                gauge.inc()
                gauge.dec()
        _hammer(worker)
        assert gauge.value == 0

    def test_asymmetric_amounts(self):
        gauge = Registry().gauge("test.asym")
        def worker(_):
            for _ in range(BUMPS):
                gauge.inc(5)
                gauge.dec(2)
        _hammer(worker)
        assert gauge.value == THREADS * BUMPS * 3


class TestHistogramConcurrency:
    def test_count_sum_and_buckets_stay_consistent(self):
        histogram = Registry().histogram(
            "test.hist", buckets=(1.0, 2.0, 4.0)
        )
        spread = (0.5, 1.5, 2.5, 4.5)  # one value per bucket incl +inf
        def worker(index):
            value = spread[index % 4]
            for _ in range(BUMPS):
                histogram.observe(value)
        _hammer(worker)
        total = THREADS * BUMPS
        assert histogram.count == total
        assert sum(histogram.counts) == total
        # 16 threads cycle the four values evenly: 4 threads per bucket.
        assert histogram.counts == [
            total // 4, total // 4, total // 4, total // 4
        ]
        assert histogram.sum == pytest.approx(BUMPS * 4 * sum(spread))
        assert histogram.min == 0.5 and histogram.max == 4.5


class TestRegistryConcurrency:
    def test_interning_race_yields_one_instrument(self):
        registry = Registry()
        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            counters = list(
                pool.map(
                    lambda _: registry.counter("test.interned"),
                    range(THREADS * 4),
                )
            )
        first = counters[0]
        assert all(counter is first for counter in counters)
        assert len(registry) == 1

    def test_trace_log_loses_nothing(self):
        registry = Registry()
        per_thread = 100
        _hammer(
            lambda i: [
                registry.record_trace(f"t{i}", 0, 0.0)
                for _ in range(per_thread)
            ]
        )
        assert len(registry.traces()) == THREADS * per_thread


class TestInstrumentedOracleConcurrency:
    def test_oracle_query_counter_is_exact_across_threads(
        self, metrics_registry
    ):
        graph = random_sparse_graph(40, seed=9)
        oracle = HubLabelOracle(pruned_landmark_labeling(graph))
        per_thread = 500
        def worker(index):
            for k in range(per_thread):
                oracle.query((index + k) % 40, (index * 7 + k) % 40)
        _hammer(worker, threads=8)
        queries = metrics_registry.get("oracle.queries", backend="dict")
        assert queries.value == 8 * per_thread


class _GatedOracle:
    """Stalls every query behind an event so admission queues stay full."""

    def __init__(self):
        self.release = threading.Event()

    def query(self, u, v):
        self.release.wait()
        return float(u + v)

    def batch_query(self, pairs):
        self.release.wait()
        return [float(u + v) for u, v in pairs]


class TestShardedAdmissionConcurrency:
    def test_sixteen_threads_exact_admission_accounting(
        self, metrics_registry
    ):
        # 16 threads flood a tiny sharded admission queue while the
        # dispatchers are stalled behind a gate.  No retries: every
        # submit either lands (tallied locally as accepted pairs) or
        # raises ServerOverloadError (tallied as one rejection).  The
        # server's books must agree with the threads' books *exactly* --
        # a single double-count or lost bump under preemption fails.
        oracle = _GatedOracle()
        server = QueryServer(
            oracle,
            max_queue=48,
            max_batch=8,
            max_delay=0.0005,
            cache_size=0,
            shards=4,
            dispatchers=2,
        )
        server.start()
        rounds = 60
        accepted = [0] * THREADS
        rejected = [0] * THREADS
        handles = [[] for _ in range(THREADS)]

        def worker(index):
            for k in range(rounds):
                base = (index * rounds + k) * 8
                try:
                    if k % 2:
                        ticket = server.submit_batch(
                            [base, base + 1, base + 2],
                            [base + 3, base + 4, base + 5],
                        )
                        handles[index].append(
                            (ticket, [base + base + 3 + 2 * j for j in range(3)])
                        )
                        accepted[index] += 3
                    else:
                        future = server.submit(base, base + 1)
                        handles[index].append((future, base + base + 1))
                        accepted[index] += 1
                except ServerOverloadError:
                    rejected[index] += 1

        try:
            _hammer(worker)
        finally:
            oracle.release.set()
            server.stop(drain=True)

        total_accepted = sum(accepted)
        total_rejected = sum(rejected)
        # The gate keeps the dispatchers stuck, so the flood must both
        # land some work and overflow the 48-slot queue.
        assert total_accepted > 0
        assert total_rejected > 0

        stats = server.stats()
        assert stats.requests == total_accepted
        assert stats.overloads == total_rejected
        assert stats.responses == total_accepted
        assert stats.errors == 0

        requests = metrics_registry.get("serve.requests")
        overloads = metrics_registry.get("serve.overloads")
        assert requests.value == total_accepted
        assert overloads.value == total_rejected

        # drain=True promised an answer for everything admitted.
        for per_thread in handles:
            for handle, want in per_thread:
                if isinstance(want, list):
                    assert handle.result(timeout=5) == [
                        float(value) for value in want
                    ]
                else:
                    assert handle.result(timeout=5) == float(want)
