"""Unit tests for the Graph and GraphBuilder data structures."""

import pytest

from repro.graphs import Graph, GraphBuilder


class TestGraphConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.max_degree() == 0
        assert g.average_degree() == 0.0

    def test_add_vertices(self):
        g = Graph(3)
        assert g.num_vertices == 3
        new = g.add_vertex()
        assert new == 3
        rng = g.add_vertices(4)
        assert list(rng) == [4, 5, 6, 7]
        assert g.num_vertices == 8

    def test_add_vertices_negative_rejected(self):
        g = Graph(1)
        with pytest.raises(ValueError):
            g.add_vertices(-1)

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_add_edge_basic(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 2, 5)
        assert g.num_edges == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.edge_weight(1, 2) == 5
        assert g.edge_weight(0, 2) is None

    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_negative_weight_rejected(self):
        g = Graph(2)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -1)

    def test_zero_weight_allowed(self):
        g = Graph(2)
        g.add_edge(0, 1, 0)
        assert g.edge_weight(0, 1) == 0
        assert g.is_weighted

    def test_out_of_range_vertex(self):
        g = Graph(2)
        with pytest.raises(IndexError):
            g.add_edge(0, 5)
        with pytest.raises(IndexError):
            g.degree(-1)

    def test_parallel_edge_keeps_minimum(self):
        g = Graph(2)
        g.add_edge(0, 1, 7)
        g.add_edge(0, 1, 3)
        assert g.num_edges == 1
        assert g.edge_weight(0, 1) == 3
        g.add_edge(0, 1, 9)
        assert g.edge_weight(0, 1) == 3

    def test_is_weighted_tracking(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert not g.is_weighted
        g.add_edge(1, 2, 4)
        assert g.is_weighted


class TestGraphInspection:
    def test_degrees(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        g.add_edge(0, 3)
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert g.max_degree() == 3
        assert g.average_degree() == pytest.approx(1.5)

    def test_neighbors(self):
        g = Graph(3)
        g.add_edge(0, 1, 2)
        g.add_edge(0, 2, 3)
        assert sorted(g.neighbor_ids(0)) == [1, 2]
        assert dict(g.neighbors(0)) == {1: 2, 2: 3}

    def test_edges_iteration_each_once(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 1, 4)
        g.add_edge(3, 0, 2)
        edges = sorted(g.edges())
        assert edges == [(0, 1, 1), (0, 3, 2), (1, 2, 4)]

    def test_total_weight(self):
        g = Graph(3)
        g.add_edge(0, 1, 2)
        g.add_edge(1, 2, 5)
        assert g.total_weight() == 7

    def test_repr_mentions_counts(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert "n=3" in repr(g)
        assert "m=1" in repr(g)


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = Graph(3)
        g.add_edge(0, 1)
        h = g.copy()
        h.add_edge(1, 2)
        assert g.num_edges == 1
        assert h.num_edges == 2

    def test_induced_subgraph(self):
        g = Graph(5)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(3, 4)
        sub, mapping = g.induced_subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert sub.has_edge(mapping[1], mapping[2])
        assert sub.has_edge(mapping[2], mapping[3])

    def test_induced_subgraph_preserves_weights(self):
        g = Graph(3)
        g.add_edge(0, 2, 9)
        sub, mapping = g.induced_subgraph([0, 2])
        assert sub.edge_weight(mapping[0], mapping[2]) == 9

    def test_remove_vertices(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        sub, mapping = g.remove_vertices([1])
        assert sub.num_vertices == 3
        assert sub.num_edges == 1
        assert 1 not in mapping
        assert sub.has_edge(mapping[2], mapping[3])


class TestGraphBuilder:
    def test_interning(self):
        b = GraphBuilder()
        i = b.vertex(("a", 1))
        j = b.vertex(("a", 2))
        assert i != j
        assert b.vertex(("a", 1)) == i
        assert b.has_vertex(("a", 2))
        assert not b.has_vertex("missing")

    def test_build_round_trip(self):
        b = GraphBuilder()
        b.add_edge("x", "y", 3)
        b.add_edge("y", "z")
        graph, index, names = b.build()
        assert graph.num_vertices == 3
        assert graph.edge_weight(index["x"], index["y"]) == 3
        assert names[index["z"]] == "z"

    def test_num_vertices_property(self):
        b = GraphBuilder()
        b.add_edge(1, 2)
        b.vertex(3)
        assert b.num_vertices == 3
