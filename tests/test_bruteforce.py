"""Exact SM complexity of tiny Sum-Index instances."""

import pytest

from repro.sumindex import exact_total_bits, protocol_exists


class TestProtocolExists:
    def test_m1_needs_one_bit(self):
        assert not protocol_exists(1, 1, 1)
        assert protocol_exists(1, 2, 1)
        assert protocol_exists(1, 1, 2)

    def test_m2_one_plus_one_suffices(self):
        assert protocol_exists(2, 2, 2)

    def test_m2_single_sided_bit_fails(self):
        # One bit total cannot carry the answer: the referee's output
        # must depend on both indices through the string.
        assert not protocol_exists(2, 2, 1)
        assert not protocol_exists(2, 1, 2)

    def test_m2_zero_bits_fails(self):
        assert not protocol_exists(2, 1, 1)

    def test_caps(self):
        with pytest.raises(ValueError):
            protocol_exists(3, 2, 2)
        with pytest.raises(ValueError):
            protocol_exists(0, 2, 2)


class TestExactTotal:
    def test_values(self):
        assert exact_total_bits(1) == 1
        assert exact_total_bits(2) == 2

    def test_budget_exhausted(self):
        assert exact_total_bits(2, max_bits=1) is None

    def test_monotone_in_m(self):
        assert exact_total_bits(1) <= exact_total_bits(2)
