"""Distance labeling schemes: exactness and bit accounting."""

import pytest

from repro.core import pruned_landmark_labeling
from repro.graphs import (
    INF,
    Graph,
    all_pairs_distances,
    grid_2d,
    path_graph,
    random_sparse_graph,
    random_tree,
    star_graph,
)
from repro.labeling import (
    DistanceRowScheme,
    HubEncodedScheme,
    IncrementalRowScheme,
    dfs_order,
    tree_centroid_labeling,
)


def assert_scheme_exact(graph, scheme, stride=1):
    matrix = all_pairs_distances(graph)
    n = graph.num_vertices
    for u in range(0, n, stride):
        for v in range(0, n, stride):
            assert scheme.query(u, v) == matrix[u][v], (u, v)


class TestDistanceRow:
    def test_exact_on_families(self):
        for g in (path_graph(12), grid_2d(4, 4), random_sparse_graph(30, seed=1)):
            assert_scheme_exact(g, DistanceRowScheme(g))

    def test_unreachable(self):
        g = Graph(4)
        g.add_edge(0, 1)
        scheme = DistanceRowScheme(g)
        assert scheme.query(0, 3) == INF

    def test_weighted(self):
        g = Graph(3)
        g.add_edge(0, 1, 7)
        g.add_edge(1, 2, 5)
        assert DistanceRowScheme(g).query(0, 2) == 12

    def test_decode_is_pure(self):
        g = path_graph(6)
        scheme = DistanceRowScheme(g)
        label_a = scheme.label(0)
        label_b = scheme.label(5)
        # A decode with no instance state: call through the class.
        assert DistanceRowScheme.decode(None, label_a, label_b) == 5

    def test_stats(self):
        g = path_graph(8)
        scheme = DistanceRowScheme(g)
        stats = scheme.stats()
        assert stats.num_vertices == 8
        assert stats.total_bits == 8 * stats.max_bits
        assert stats.average_bits == stats.max_bits

    def test_label_cached(self):
        g = path_graph(5)
        scheme = DistanceRowScheme(g)
        assert scheme.label(2) is scheme.label(2)


class TestHubEncoded:
    def test_exact_from_pll(self):
        g = random_sparse_graph(35, seed=3)
        scheme = HubEncodedScheme(pruned_landmark_labeling(g))
        assert_scheme_exact(g, scheme)

    def test_bits_scale_with_hub_count(self):
        g = star_graph(20)
        labeling = pruned_landmark_labeling(g)
        scheme = HubEncodedScheme(labeling)
        stats = scheme.stats()
        # ~2 hubs per leaf with tiny distances: labels must stay small.
        assert stats.average_bits < 40

    def test_gap_encoding_beats_naive_bound(self):
        g = grid_2d(6, 6)
        labeling = pruned_landmark_labeling(g)
        scheme = HubEncodedScheme(labeling)
        naive_bits = labeling.bit_size()
        assert scheme.stats().total_bits < 2 * naive_bits


class TestIncrementalRow:
    def test_exact(self):
        for g in (path_graph(10), grid_2d(4, 5), random_sparse_graph(25, seed=2)):
            assert_scheme_exact(g, IncrementalRowScheme(g))

    def test_rejects_weighted(self):
        g = Graph(2)
        g.add_edge(0, 1, 3)
        with pytest.raises(ValueError):
            IncrementalRowScheme(g)

    def test_rejects_disconnected_at_label_time(self):
        g = Graph(3)
        g.add_edge(0, 1)
        scheme = IncrementalRowScheme(g)
        with pytest.raises(ValueError):
            scheme.label(0)

    def test_dfs_order_is_permutation(self):
        g = grid_2d(3, 3)
        assert sorted(dfs_order(g)) == list(range(9))

    def test_labels_linear_bits_on_bounded_degree(self):
        from repro.graphs import random_bounded_degree_graph

        g = random_bounded_degree_graph(60, 3, seed=4)
        scheme = IncrementalRowScheme(g)
        stats = scheme.stats()
        # Increments along a DFS of a connected graph are small: the
        # per-label bits are O(n), far from the O(n log n) row encoding.
        assert stats.max_bits <= 8 * 60


class TestTreeCentroid:
    def test_valid_cover_and_log_hubs(self):
        from repro.core import is_valid_cover

        for seed in range(3):
            t = random_tree(60, seed=seed)
            labeling = tree_centroid_labeling(t)
            assert is_valid_cover(t, labeling)
            assert labeling.max_size() <= 8  # ~ log2(60) + 2

    def test_path_labels(self):
        labeling = tree_centroid_labeling(path_graph(31))
        assert labeling.max_size() <= 6

    def test_rejects_cycle(self):
        from repro.graphs import cycle_graph

        with pytest.raises(ValueError):
            tree_centroid_labeling(cycle_graph(5))

    def test_rejects_forest(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        # 3 edges needed for a 4-vertex tree; this forest has 2.
        with pytest.raises(ValueError):
            tree_centroid_labeling(g)

    def test_single_vertex(self):
        labeling = tree_centroid_labeling(Graph(1))
        assert labeling.hub_distance(0, 0) == 0

    def test_encoded_bits_polylog(self):
        t = random_tree(100, seed=9)
        scheme = HubEncodedScheme(tree_centroid_labeling(t))
        # O(log^2 n) bits with small constants.
        assert scheme.stats().max_bits <= 4 * 49  # 4 * log2(100)^2
