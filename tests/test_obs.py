"""Unit tests for the observability primitives (``repro.obs``).

Registry semantics (interning, type conflicts, swapping), histogram
bucket edges and percentile estimates, span nesting, and the exporters
(table, Prometheus exposition, snapshot files).
"""

import math

import pytest

from repro.obs import (
    CATALOG,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    catalog_names,
    current_span,
    get_registry,
    load_snapshot,
    render_prometheus,
    render_table,
    set_registry,
    snapshot_names,
    span,
    use_registry,
    write_snapshot,
)


class TestCounter:
    def test_starts_at_zero_and_counts(self):
        registry = Registry()
        counter = registry.counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(3)
        counter.value += 2  # hot-path form
        assert counter.value == 6

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            Registry().counter("c").inc(-1)

    def test_snapshot(self):
        registry = Registry()
        registry.counter("c", backend="dict").inc(4)
        snap = registry.counter("c", backend="dict").snapshot()
        assert snap == {
            "name": "c",
            "type": "counter",
            "labels": {"backend": "dict"},
            "value": 4,
        }


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Registry().gauge("g")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5


class TestHistogram:
    def test_edges_are_inclusive_upper_bounds(self):
        # The Prometheus `le` convention: x lands in the first bucket
        # with x <= edge, so an observation exactly on an edge belongs
        # to that edge's bucket.
        hist = Histogram("h", (), buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 99.0):
            hist.observe(value)
        assert hist.counts == [2, 2, 1, 1]  # <=1, <=2, <=4, +inf
        assert hist.count == 6
        assert hist.sum == pytest.approx(108.0)
        assert hist.min == 0.5
        assert hist.max == 99.0

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", (), buckets=())
        with pytest.raises(ValueError):
            Histogram("h", (), buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", (), buckets=(2.0, 1.0))

    def test_percentiles_interpolate_within_buckets(self):
        hist = Histogram("h", (), buckets=(10.0, 20.0))
        for value in (1.0, 2.0, 3.0, 15.0):
            hist.observe(value)
        # p50 -> rank 2 of 4, inside the first bucket [min=1, 10].
        p50 = hist.percentile(0.50)
        assert 1.0 <= p50 <= 10.0
        # p99 -> rank 4, inside the second bucket, clamped to max=15.
        assert hist.percentile(0.99) == pytest.approx(15.0)

    def test_percentiles_clamped_to_observed_range(self):
        hist = Histogram("h", (), buckets=tuple(DEFAULT_LATENCY_BUCKETS))
        hist.observe(3e-6)
        assert hist.percentile(0.0) == pytest.approx(3e-6)
        assert hist.percentile(1.0) == pytest.approx(3e-6)
        assert hist.percentile(0.5) == pytest.approx(3e-6)

    def test_empty_percentile_is_none(self):
        hist = Histogram("h", ())
        assert hist.percentile(0.5) is None
        assert hist.mean is None
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_snapshot_buckets(self):
        hist = Histogram("h", (), buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(2.0)
        snap = hist.snapshot()
        assert snap["buckets"] == [[1.0, 1], [None, 1]]
        assert snap["count"] == 2
        assert snap["min"] == 0.5 and snap["max"] == 2.0


class TestRegistry:
    def test_interns_by_name_and_labels(self):
        registry = Registry()
        a = registry.counter("c", backend="dict")
        b = registry.counter("c", backend="dict")
        c = registry.counter("c", backend="flat")
        assert a is b
        assert a is not c
        assert len(registry) == 2

    def test_label_order_does_not_matter(self):
        registry = Registry()
        a = registry.counter("c", x="1", y="2")
        b = registry.counter("c", y="2", x="1")
        assert a is b

    def test_type_conflict_raises(self):
        registry = Registry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")
        with pytest.raises(TypeError):
            registry.histogram("m")

    def test_histogram_bucket_conflict_raises(self):
        registry = Registry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))
        # Same edges are fine and intern to the same instrument.
        assert registry.histogram("h", buckets=(1.0, 2.0)) is registry.get(
            "h"
        )

    def test_get_returns_none_for_unknown(self):
        assert Registry().get("nope") is None

    def test_metric_names_and_metrics_sorted(self):
        registry = Registry()
        registry.counter("b")
        registry.counter("a", z="1")
        registry.counter("a", a="1")
        assert registry.metric_names() == ["a", "b"]
        names = [m.labels for m in registry.metrics()]
        assert names == [(("a", "1"),), (("z", "1"),), ()]

    def test_trace_log_is_bounded(self):
        registry = Registry()
        for i in range(registry.MAX_TRACES + 10):
            registry.record_trace("t", 0, float(i))
        traces = registry.traces()
        assert len(traces) == registry.MAX_TRACES
        assert traces[-1] == ("t", 0, float(registry.MAX_TRACES + 9))


class TestGlobalSwap:
    def test_use_registry_swaps_and_restores(self):
        outer = get_registry()
        with use_registry() as fresh:
            assert get_registry() is fresh
            assert fresh is not outer
        assert get_registry() is outer

    def test_use_registry_restores_on_raise(self):
        outer = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry():
                raise RuntimeError("boom")
        assert get_registry() is outer

    def test_set_registry_returns_previous(self):
        outer = get_registry()
        fresh = Registry()
        assert set_registry(fresh) is outer
        assert set_registry(outer) is fresh

    def test_set_registry_rejects_non_registry(self):
        with pytest.raises(TypeError):
            set_registry(object())

    def test_null_registry_is_disabled(self):
        assert NullRegistry().enabled is False
        assert Registry().enabled is True


class TestSpans:
    def test_nesting_builds_paths_and_depths(self):
        with use_registry() as registry:
            with span("outer") as outer:
                assert current_span() is outer
                with span("inner") as inner:
                    assert inner.path == "outer/inner"
                    assert inner.depth == 1
                assert current_span() is outer
            assert current_span() is None
            assert outer.path == "outer"
            assert outer.depth == 0
        assert outer.duration is not None and outer.duration >= 0
        assert inner.duration <= outer.duration
        assert [path for path, _, _ in registry.traces()] == [
            "outer/inner",
            "outer",
        ]

    def test_exit_reports_histogram_and_counter(self):
        with use_registry() as registry:
            with span("work"):
                pass
            with span("work"):
                pass
        hist = registry.get("span.duration_seconds", span="work")
        count = registry.get("span.count", span="work")
        assert hist.count == 2
        assert count.value == 2

    def test_rejects_multi_segment_names(self):
        with pytest.raises(ValueError):
            span("a/b")
        with pytest.raises(ValueError):
            span("")

    def test_measures_under_null_registry_but_records_nothing(self):
        null = NullRegistry()
        with use_registry(null):
            with span("quiet") as quiet:
                pass
        assert quiet.duration is not None
        assert len(null) == 0
        assert null.traces() == []

    def test_exceptions_propagate_and_still_record(self):
        with use_registry() as registry:
            with pytest.raises(KeyError):
                with span("fails"):
                    raise KeyError("x")
        assert registry.get("span.count", span="fails").value == 1
        assert current_span() is None


class TestExport:
    def _sample_registry(self) -> Registry:
        registry = Registry()
        registry.counter("oracle.queries", backend="dict").inc(7)
        registry.gauge("build.labels_per_second", builder="pll").set(123.5)
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(5.0)
        return registry

    def test_render_table_lists_everything(self):
        text = render_table(self._sample_registry().snapshot())
        assert "oracle.queries{backend=dict}" in text
        assert "build.labels_per_second{builder=pll}" in text
        assert "count=2" in text

    def test_render_table_empty(self):
        assert "no metrics" in render_table(Registry().snapshot())

    def test_prometheus_exposition(self):
        text = render_prometheus(self._sample_registry().snapshot())
        assert "# TYPE repro_oracle_queries_total counter" in text
        assert 'repro_oracle_queries_total{backend="dict"} 7' in text
        assert "repro_build_labels_per_second" in text
        # Cumulative buckets with the implicit +Inf edge.
        assert 'repro_lat_bucket{le="1.0"} 1' in text
        assert 'repro_lat_bucket{le="2.0"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert "repro_lat_count 2" in text

    def test_snapshot_round_trip(self, tmp_path):
        registry = self._sample_registry()
        path = tmp_path / "snap.json"
        written = write_snapshot(registry, str(path))
        loaded = load_snapshot(str(path))
        assert loaded == written == registry.snapshot()
        assert snapshot_names(loaded) == [
            "build.labels_per_second",
            "lat",
            "oracle.queries",
        ]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError):
            load_snapshot(str(path))
        path.write_text('{"version": 99, "metrics": []}\n')
        with pytest.raises(ValueError):
            load_snapshot(str(path))


class TestCatalog:
    def test_names_are_unique_and_sorted(self):
        names = catalog_names()
        assert list(names) == sorted(set(names))
        assert set(names) == set(CATALOG)

    def test_specs_are_well_formed(self):
        for name, spec in CATALOG.items():
            assert spec.name == name
            assert spec.kind in ("counter", "gauge", "histogram")
            assert isinstance(spec.labels, tuple)
            assert spec.fires


class TestConftestIsolation:
    def test_autouse_fixture_gives_fresh_registry(self, metrics_registry):
        # The autouse fixture in conftest swapped this in; nothing else
        # ran in this test, so it must be empty and active.
        assert get_registry() is metrics_registry
        assert len(metrics_registry) == 0
