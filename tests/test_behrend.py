"""Progression-free sets: Behrend, greedy, Stanley."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rs import (
    behrend_set,
    greedy_progression_free,
    is_progression_free,
    stanley_sequence,
)


class TestDetection:
    def test_ap_detected(self):
        assert not is_progression_free([1, 3, 5])
        assert not is_progression_free([0, 5, 10])
        assert not is_progression_free([2, 4, 3])  # order irrelevant

    def test_ap_free_examples(self):
        assert is_progression_free([])
        assert is_progression_free([7])
        assert is_progression_free([0, 1])
        assert is_progression_free([0, 1, 3, 4])  # classic 4-element set

    def test_duplicates_ignored(self):
        assert is_progression_free([2, 2, 5])

    @given(st.sets(st.integers(min_value=0, max_value=60), max_size=8))
    def test_matches_brute_force(self, values):
        items = sorted(values)
        brute = True
        for i, a in enumerate(items):
            for b in items[i + 1 :]:
                for c in items:
                    if c != a and c != b and a + b == 2 * c:
                        brute = False
        assert is_progression_free(items) == brute


class TestConstructions:
    @pytest.mark.parametrize("limit", [0, 1, 2, 3, 10, 50, 200, 1000])
    def test_behrend_ap_free_and_in_range(self, limit):
        s = behrend_set(limit)
        assert is_progression_free(s)
        assert all(0 <= v < limit for v in s)
        assert s == sorted(set(s))

    @pytest.mark.parametrize("limit", [0, 1, 5, 30, 120])
    def test_greedy_ap_free(self, limit):
        s = greedy_progression_free(limit)
        assert is_progression_free(s)
        assert all(0 <= v < limit for v in s)

    def test_greedy_equals_stanley(self):
        # The lexicographically greedy set is exactly the base-3
        # digits-{0,1} sequence.
        for limit in (10, 50, 200):
            assert greedy_progression_free(limit) == stanley_sequence(limit)

    def test_greedy_is_maximal(self):
        limit = 60
        s = set(greedy_progression_free(limit))
        for candidate in range(limit):
            if candidate in s:
                continue
            assert not is_progression_free(sorted(s | {candidate}))

    def test_behrend_density_grows(self):
        sizes = [len(behrend_set(n)) for n in (100, 1000, 10000)]
        assert sizes == sorted(sizes)
        # Known value check: the greedy/Stanley count below 100 is 14 and
        # behrend_set takes the max of both constructions at small scales.
        assert len(behrend_set(100)) >= 14

    def test_behrend_nontrivial_density(self):
        n = 10000
        s = behrend_set(n)
        # Far denser than sqrt(n)...
        assert len(s) >= 100
