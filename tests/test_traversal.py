"""Traversal engines cross-checked against networkx and each other."""

import networkx as nx
import pytest

from repro.graphs import (
    INF,
    Graph,
    bfs_distances,
    bidirectional_distance,
    dijkstra,
    distance_between,
    grid_2d,
    random_sparse_graph,
    random_weighted_graph,
    shortest_path_distances,
    zero_one_bfs,
)


def to_networkx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    for u, v, w in graph.edges():
        g.add_edge(u, v, weight=w)
    return g


class TestBFS:
    def test_path_distances(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        dist, _ = bfs_distances(g, 0)
        assert dist == [0, 1, 2, 3]

    def test_unreachable_is_inf(self):
        g = Graph(3)
        g.add_edge(0, 1)
        dist, _ = bfs_distances(g, 0)
        assert dist[2] == INF

    def test_parents_reconstruct_tree(self):
        g = grid_2d(3, 3)
        dist, parent = bfs_distances(g, 0, with_parents=True)
        for v in g.vertices():
            if v != 0:
                assert dist[parent[v]] + 1 == dist[v]

    def test_matches_networkx(self):
        g = random_sparse_graph(50, seed=5)
        expected = nx.single_source_shortest_path_length(to_networkx(g), 0)
        dist, _ = bfs_distances(g, 0)
        for v in g.vertices():
            assert dist[v] == expected.get(v, INF)


class TestDijkstra:
    def test_weighted_triangle(self, weighted_triangle):
        dist, _ = dijkstra(weighted_triangle, 0)
        assert dist == [0, 2, 5]

    def test_matches_networkx_weighted(self):
        g = random_weighted_graph(40, 100, seed=3)
        ng = to_networkx(g)
        expected = nx.single_source_dijkstra_path_length(ng, 0)
        dist, _ = dijkstra(g, 0)
        for v in g.vertices():
            assert dist[v] == expected.get(v, INF)

    def test_cutoff_drops_far_vertices(self):
        g = Graph(4)
        g.add_edge(0, 1, 1)
        g.add_edge(1, 2, 1)
        g.add_edge(2, 3, 1)
        dist, _ = dijkstra(g, 0, cutoff=2)
        assert dist[:3] == [0, 1, 2]
        assert dist[3] == INF

    def test_parents_consistent(self):
        g = random_weighted_graph(30, 60, seed=9)
        dist, parent = dijkstra(g, 0, with_parents=True)
        for v in g.vertices():
            if v != 0 and dist[v] != INF:
                w = g.edge_weight(parent[v], v)
                assert dist[parent[v]] + w == dist[v]

    def test_zero_weight_edges(self):
        g = Graph(3)
        g.add_edge(0, 1, 0)
        g.add_edge(1, 2, 5)
        dist, _ = dijkstra(g, 0)
        assert dist == [0, 0, 5]


class TestZeroOneBFS:
    def test_matches_dijkstra(self):
        g = Graph(6)
        edges = [(0, 1, 0), (1, 2, 1), (2, 3, 0), (0, 4, 1), (4, 5, 1), (5, 3, 0)]
        for u, v, w in edges:
            g.add_edge(u, v, w)
        d1, _ = zero_one_bfs(g, 0)
        d2, _ = dijkstra(g, 0)
        assert d1 == d2

    def test_rejects_other_weights(self):
        g = Graph(2)
        g.add_edge(0, 1, 3)
        with pytest.raises(ValueError):
            zero_one_bfs(g, 0)


class TestDispatcherAndPairQueries:
    def test_dispatch_unweighted(self, small_grid):
        d1, _ = shortest_path_distances(small_grid, 0)
        d2, _ = bfs_distances(small_grid, 0)
        assert d1 == d2

    def test_dispatch_weighted(self, weighted_triangle):
        d1, _ = shortest_path_distances(weighted_triangle, 0)
        assert d1 == [0, 2, 5]

    def test_distance_between_same_vertex(self, small_grid):
        assert distance_between(small_grid, 3, 3) == 0

    def test_bidirectional_matches_full(self):
        g = random_weighted_graph(40, 90, seed=1)
        dist, _ = dijkstra(g, 0)
        for v in range(0, 40, 3):
            assert bidirectional_distance(g, 0, v) == dist[v]

    def test_bidirectional_disconnected(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        assert bidirectional_distance(g, 0, 3) == INF

    def test_bidirectional_zero_weights(self):
        g = Graph(4)
        g.add_edge(0, 1, 0)
        g.add_edge(1, 2, 0)
        g.add_edge(2, 3, 0)
        assert bidirectional_distance(g, 0, 3) == 0

    def test_bidirectional_many_random_pairs(self):
        g = random_sparse_graph(60, seed=21)
        full = {v: shortest_path_distances(g, v)[0] for v in range(0, 60, 7)}
        for u, row in full.items():
            for v in range(0, 60, 5):
                assert bidirectional_distance(g, u, v) == row[v]
