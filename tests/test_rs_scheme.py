"""The Theorem 4.1 RS-based hub labeling construction."""

import pytest

from repro.core import (
    default_threshold,
    is_valid_cover,
    rs_hub_labeling,
)
from repro.graphs import (
    cycle_graph,
    grid_2d,
    path_graph,
    random_bounded_degree_graph,
    random_sparse_graph,
)
from repro.rs import is_induced_matching


class TestCorrectness:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(20),
            cycle_graph(15),
            grid_2d(5, 5),
            random_bounded_degree_graph(40, 3, seed=1),
            random_sparse_graph(40, seed=2),
        ],
        ids=["path", "cycle", "grid", "deg3", "sparse"],
    )
    @pytest.mark.parametrize("threshold", [2, 3, 5])
    def test_valid_cover(self, graph, threshold):
        result = rs_hub_labeling(graph, threshold=threshold, seed=7)
        assert is_valid_cover(graph, result.labeling)

    def test_multiple_seeds(self):
        g = random_bounded_degree_graph(35, 3, seed=3)
        for seed in range(5):
            result = rs_hub_labeling(g, threshold=3, seed=seed)
            assert is_valid_cover(g, result.labeling)

    def test_zero_one_weights_supported(self):
        from repro.core import reduce_degree

        g = random_sparse_graph(30, seed=5, avg_degree=4.0)
        reduction = reduce_degree(g, chunk=2)
        result = rs_hub_labeling(reduction.reduced, threshold=3, seed=1)
        assert is_valid_cover(reduction.reduced, result.labeling)

    def test_invalid_threshold(self, small_grid):
        with pytest.raises(ValueError):
            rs_hub_labeling(small_grid, threshold=1)

    def test_disconnected(self):
        from repro.graphs import Graph

        g = Graph(8)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(4, 5)
        g.add_edge(5, 6)
        result = rs_hub_labeling(g, threshold=2, seed=0)
        assert is_valid_cover(g, result.labeling)


class TestAccounting:
    def test_component_sizes_reported(self):
        g = random_bounded_degree_graph(40, 3, seed=4)
        result = rs_hub_labeling(g, threshold=3, seed=2)
        sizes = result.component_sizes()
        assert sizes["total_label_size"] == result.labeling.total_size()
        assert sizes["charges_F"] == result.charge_total
        # N(F) in a max-degree-Delta graph has <= (Delta+1)|F| vertices.
        delta = g.max_degree()
        assert result.neighborhood_total <= (delta + 1) * result.charge_total

    def test_num_colors_is_d_cubed(self):
        g = path_graph(15)
        result = rs_hub_labeling(g, threshold=3, seed=0)
        assert result.num_colors == 27

    def test_default_threshold_reasonable(self):
        assert 2 <= default_threshold(100) <= 10
        assert default_threshold(10 ** 6) >= default_threshold(100)

    def test_conflict_total_bounded(self):
        # E[sum |R_v|] <= n^2 / D; allow generous slack for small n.
        g = random_bounded_degree_graph(50, 3, seed=6)
        result = rs_hub_labeling(g, threshold=4, seed=3)
        assert result.conflict_total <= 4 * 50 * 50 / 4


class TestLemma42Diagnostics:
    def test_matchings_are_induced_in_color_class_union(self):
        """Lemma 4.2: the maximal matchings of hubs sharing a color tile
        the union graph G^c_{a,b} as *induced* matchings."""
        g = random_bounded_degree_graph(30, 3, seed=8)
        result = rs_hub_labeling(
            g, threshold=3, seed=4, collect_matchings=True
        )
        checked = 0
        for (color, a, b), matchings in result.matchings_by_color.items():
            union_edges = {e for m in matchings for e in m}
            for matching in matchings:
                assert is_induced_matching(union_edges, matching)
                checked += 1
        assert checked > 0

    def test_matchings_edge_disjoint_within_color(self):
        g = grid_2d(5, 5)
        result = rs_hub_labeling(
            g, threshold=3, seed=9, collect_matchings=True
        )
        for matchings in result.matchings_by_color.values():
            seen = set()
            for matching in matchings:
                for edge in matching:
                    assert edge not in seen
                    seen.add(edge)
