"""Vertex orderings for hierarchical labelings."""

from repro.core import (
    coverage_order,
    degree_order,
    eccentricity_order,
    random_order,
)
from repro.graphs import grid_2d, path_graph, star_graph


def is_permutation(order, n):
    return sorted(order) == list(range(n))


class TestOrders:
    def test_degree_order_star(self):
        order = degree_order(star_graph(6))
        assert order[0] == 0
        assert is_permutation(order, 6)

    def test_degree_order_tie_break_by_index(self):
        order = degree_order(path_graph(4))
        # degrees: 1,2,2,1 -> [1, 2, 0, 3]
        assert order == [1, 2, 0, 3]

    def test_random_order_deterministic_per_seed(self, small_grid):
        a = random_order(small_grid, seed=5)
        b = random_order(small_grid, seed=5)
        c = random_order(small_grid, seed=6)
        assert a == b
        assert a != c
        assert is_permutation(a, small_grid.num_vertices)

    def test_eccentricity_order_path_center_first(self):
        order = eccentricity_order(path_graph(7))
        assert order[0] == 3
        assert set(order[1:3]) == {2, 4}
        assert is_permutation(order, 7)

    def test_coverage_order_star_center_first(self):
        order = coverage_order(star_graph(8))
        assert order[0] == 0
        assert is_permutation(order, 8)

    def test_coverage_order_path_picks_central(self):
        order = coverage_order(path_graph(9))
        assert order[0] == 4  # the midpoint covers the most pairs
        assert is_permutation(order, 9)

    def test_coverage_order_rounds_cap(self):
        g = grid_2d(3, 3)
        order = coverage_order(g, rounds=2)
        assert is_permutation(order, 9)

    def test_coverage_order_disconnected(self):
        from repro.graphs import Graph

        g = Graph(4)
        g.add_edge(0, 1)
        order = coverage_order(g)
        assert is_permutation(order, 4)
