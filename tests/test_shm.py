"""Zero-copy label stores: shared-memory segments and mmap'ed artifacts.

Covers the contracts the sharded serving tier leans on: byte-identical
answers through both zero-copy sources, eager header validation with a
deferred (lazy) CRC, concurrent readers over one segment, no
``/dev/shm`` leaks even when a worker dies abnormally, and the
cold-start path -- a warm ``LabelCache(mmap=True)`` hit maps the
artifact instead of deserializing it and never emits a ``build.flat``
span.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.core import pruned_landmark_labeling
from repro.core.io import flat_labeling_to_bytes
from repro.core.orders import degree_order
from repro.graphs import random_sparse_graph
from repro.obs.catalog import (
    BUILD_CACHE_HITS,
    SHM_ATTACHES,
    SHM_BYTES_MAPPED,
    SHM_CRC_CHECKS,
    SPAN_DURATION_SECONDS,
)
from repro.oracles.oracle import HubLabelOracle
from repro.perf.cache import LabelCache
from repro.perf.flat import FlatHubLabeling
from repro.perf.shm import (
    SHM_NAME_PREFIX,
    MappedLabelStore,
    SharedLabelStore,
)
from repro.runtime.errors import ArtifactCorruptError
from repro.serve import ShardedQueryServer

INF = float("inf")


@pytest.fixture(scope="module")
def built():
    graph = random_sparse_graph(60, seed=5)
    labeling = pruned_landmark_labeling(graph)
    return graph, labeling, FlatHubLabeling.from_labeling(labeling)


def _grade(flat, labeling, n):
    """Every pair answered byte-identically: value AND Python type."""
    for u in range(0, n, 3):
        for v in range(0, n, 7):
            want = labeling.query(u, v)
            got = flat.query(u, v)
            assert got == want, (u, v)
            assert type(got) is type(want), (u, v)


def _shm_entries():
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(SHM_NAME_PREFIX)
        }
    except OSError:  # pragma: no cover - no /dev/shm on this platform
        return set()


class TestSharedLabelStore:
    def test_round_trip_byte_identical(self, built):
        graph, labeling, flat = built
        with SharedLabelStore.create(flat) as store:
            _grade(store.flat, labeling, graph.num_vertices)

    def test_attach_reads_the_same_segment(self, built, metrics_registry):
        graph, labeling, flat = built
        with SharedLabelStore.create(flat) as store:
            reader = SharedLabelStore.attach(store.name)
            try:
                assert not reader.owner
                _grade(reader.flat, labeling, graph.num_vertices)
                reader.verify()
            finally:
                reader.close()
            crc = metrics_registry.get(SHM_CRC_CHECKS, outcome="ok")
            assert crc is not None and crc.value == 1
            attaches = metrics_registry.get(SHM_ATTACHES, source="shm")
            assert attaches.value == 2  # create counts as the first open
            assert metrics_registry.get(
                SHM_BYTES_MAPPED, source="shm"
            ).value > 0

    def test_owner_close_unlinks_segment(self, built):
        _, _, flat = built
        store = SharedLabelStore.create(flat)
        name = store.name
        assert name.startswith(SHM_NAME_PREFIX)
        store.close()
        with pytest.raises(FileNotFoundError):
            SharedLabelStore.attach(name)
        assert name not in _shm_entries()

    def test_concurrent_readers_one_segment(self, built):
        """Forked readers attach by name; every answer matches."""
        graph, labeling, flat = built
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - no fork on this platform
            pytest.skip("fork start method unavailable")
        n = graph.num_vertices
        pairs = [(u, v) for u in range(0, n, 5) for v in range(0, n, 4)]

        def reader(name, conn):
            attached = SharedLabelStore.attach(name)
            try:
                conn.send([attached.flat.query(u, v) for u, v in pairs])
            finally:
                attached.close()
                conn.close()

        with SharedLabelStore.create(flat) as store:
            channels = []
            workers = []
            for _ in range(3):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=reader, args=(store.name, child)
                )
                proc.start()
                child.close()
                channels.append(parent)
                workers.append(proc)
            want = [labeling.query(u, v) for u, v in pairs]
            for parent, proc in zip(channels, workers):
                assert parent.recv() == want
                proc.join(timeout=10)
                assert proc.exitcode == 0
        assert store.name not in _shm_entries()


class TestMappedLabelStore:
    def _artifact(self, tmp_path, flat):
        path = tmp_path / "labels.bin"
        path.write_bytes(flat_labeling_to_bytes(flat))
        return path

    def test_round_trip_byte_identical(self, built, tmp_path):
        graph, labeling, flat = built
        with MappedLabelStore(self._artifact(tmp_path, flat)) as store:
            _grade(store.flat, labeling, graph.num_vertices)
            store.verify()

    def test_truncated_file_rejected_eagerly(self, built, tmp_path):
        _, _, flat = built
        path = self._artifact(tmp_path, flat)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ArtifactCorruptError):
            MappedLabelStore(path)

    def test_crc_is_lazy(self, built, tmp_path, metrics_registry):
        """A payload flip passes the eager open; verify() catches it."""
        _, _, flat = built
        path = self._artifact(tmp_path, flat)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        store = MappedLabelStore(path)  # header is intact -> opens
        try:
            with pytest.raises(ArtifactCorruptError):
                store.verify()
        finally:
            store.close()
        crc = metrics_registry.get(SHM_CRC_CHECKS, outcome="corrupt")
        assert crc is not None and crc.value == 1

    def test_open_records_mmap_metrics(self, built, tmp_path,
                                        metrics_registry):
        _, _, flat = built
        with MappedLabelStore(self._artifact(tmp_path, flat)):
            pass
        assert metrics_registry.get(SHM_ATTACHES, source="mmap").value == 1
        assert metrics_registry.get(
            SHM_BYTES_MAPPED, source="mmap"
        ).value > 0


class TestColdStartUsesMmap:
    def test_warm_hit_maps_instead_of_deserializing(
        self, built, tmp_path, metrics_registry
    ):
        graph, labeling, _ = built
        order = degree_order(graph)
        cache = LabelCache(tmp_path, mmap=True)
        cache.load_or_build(graph, order)  # cold: builds + stores

        from repro.obs.registry import Registry, use_registry

        cold_start = Registry()
        with use_registry(cold_start):
            warm_cache = LabelCache(tmp_path, mmap=True)
            flat = warm_cache.load_or_build(graph, order)
        _grade(flat, labeling, graph.num_vertices)
        assert cold_start.get(BUILD_CACHE_HITS).value == 1
        assert cold_start.get(SHM_ATTACHES, source="mmap").value == 1
        # The whole point: no reconstruction ran on the warm path.
        assert cold_start.get(
            SPAN_DURATION_SECONDS, span="build.flat"
        ) is None

    def test_mmap_and_bytes_loads_agree(self, built, tmp_path):
        graph, labeling, _ = built
        order = degree_order(graph)
        LabelCache(tmp_path).load_or_build(graph, order)
        mapped = LabelCache(tmp_path, mmap=True).load(graph, order)
        copied = LabelCache(tmp_path).load(graph, order)
        assert mapped is not None and copied is not None
        _grade(mapped, labeling, graph.num_vertices)
        _grade(copied, labeling, graph.num_vertices)


class TestNoLeaksOnAbnormalExit:
    def test_worker_sigkill_leaves_no_segments(self, built):
        """SIGKILL a worker mid-fleet; stop(); /dev/shm stays clean."""
        _, _, flat = built
        before = _shm_entries()
        server = ShardedQueryServer(
            HubLabelOracle(flat, backend="flat"), processes=2
        )
        server.start()
        try:
            assert server.submit(0, 1).result() is not None
            victim = server._workers[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            # The fleet respawns on the next frame routed to the slot.
            for u in range(8):
                server.submit(u, (u + 1) % flat.num_vertices).result()
            assert server.health().alive == 2
        finally:
            server.stop()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leaked = _shm_entries() - before
            if not leaked:
                break
            time.sleep(0.05)
        assert _shm_entries() - before == set()
