"""Redundant-hub pruning and DOT export."""

import pytest

from repro.core import (
    HubLabeling,
    is_valid_cover,
    prune_labeling,
    pruned_landmark_labeling,
    sparse_hub_labeling,
)
from repro.graphs import (
    grid_2d,
    path_graph,
    random_sparse_graph,
    to_dot,
)


class TestPruning:
    def test_pruned_still_valid(self):
        g = random_sparse_graph(40, seed=8)
        labeling = sparse_hub_labeling(g, radius=2, seed=1).labeling
        pruned = prune_labeling(g, labeling)
        assert is_valid_cover(g, pruned)

    def test_pruned_is_subset(self):
        g = grid_2d(4, 4)
        labeling = sparse_hub_labeling(g, radius=2, seed=2).labeling
        pruned = prune_labeling(g, labeling)
        for v in g.vertices():
            assert set(pruned.hub_set(v)) <= set(labeling.hub_set(v))

    def test_overprovisioned_shrinks_substantially(self):
        g = random_sparse_graph(50, seed=9)
        labeling = sparse_hub_labeling(g, radius=3, seed=3).labeling
        pruned = prune_labeling(g, labeling)
        assert pruned.total_size() < 0.6 * labeling.total_size()

    def test_pll_nearly_unshrinkable(self):
        # The canonical hierarchical labeling has little slack: pruning
        # removes at most a small fraction.
        g = random_sparse_graph(40, seed=10)
        labeling = pruned_landmark_labeling(g)
        pruned = prune_labeling(g, labeling)
        assert pruned.total_size() >= 0.8 * labeling.total_size()

    def test_broken_input_rejected(self):
        g = path_graph(5)
        with pytest.raises(ValueError):
            prune_labeling(g, HubLabeling(5))

    def test_size_mismatch_rejected(self):
        g = path_graph(5)
        with pytest.raises(ValueError):
            prune_labeling(g, HubLabeling(3))

    def test_self_hubs_kept_by_default(self):
        g = path_graph(6)
        labeling = pruned_landmark_labeling(g)
        pruned = prune_labeling(g, labeling)
        for v in g.vertices():
            assert pruned.hub_distance(v, v) == 0


class TestDot:
    def test_basic_structure(self):
        g = path_graph(3)
        dot = to_dot(g, name="demo")
        assert dot.startswith('graph "demo" {')
        assert "0 -- 1;" in dot
        assert "1 -- 2;" in dot
        assert dot.rstrip().endswith("}")

    def test_weights_rendered(self):
        from repro.graphs import Graph

        g = Graph(2)
        g.add_edge(0, 1, 7)
        dot = to_dot(g)
        assert 'label="7"' in dot

    def test_highlight_path(self):
        g = path_graph(4)
        dot = to_dot(g, highlight_path=[0, 1, 2])
        assert dot.count("color=blue") >= 4  # 3 vertices + 2 edges

    def test_names(self):
        g = path_graph(2)
        dot = to_dot(g, names={0: "v_{0,(1,0)}", 1: "mid"})
        assert 'label="v_{0,(1,0)}"' in dot
        assert 'label="mid"' in dot

    def test_figure1_artifact(self):
        # The actual Figure 1 graph with its blue path, as DOT.
        from repro.lowerbound import LayeredGraph

        lay = LayeredGraph(2, 2)
        path = lay.unique_path_vertices((1, 0), (3, 2))
        names = {
            lay.vertex(level, vec): f"v{level},{vec}"
            for level in range(lay.num_levels)
            for vec in lay.vectors()
        }
        dot = to_dot(lay.graph, names=names, highlight_path=path)
        assert 'label="v0,(1, 0)"' in dot
        assert dot.count("color=blue") >= 2 * len(path) - 1
