"""The Theorem 1.6 protocol end-to-end, plus baselines."""

import itertools

import pytest

from repro.core import pruned_landmark_labeling
from repro.labeling import HubEncodedScheme
from repro.sumindex import (
    GraphLabelingProtocol,
    SumIndexInstance,
    TrivialProtocol,
    random_bitstring,
    run_protocol,
)


class TestTrivialProtocol:
    def test_correct_on_all_inputs(self):
        m = 8
        proto = TrivialProtocol(m)
        bits = random_bitstring(m, seed=4)
        for a in range(m):
            for b in range(m):
                inst = SumIndexInstance(bits=bits, alice_index=a, bob_index=b)
                out, abits, bbits = run_protocol(proto, inst)
                assert out == inst.answer
                assert abits == m + 3  # payload + 3-bit index
                assert bbits == 3


class TestGraphProtocol:
    def test_exhaustive_b2_l1(self):
        b, ell = 2, 1
        m = 2
        for bits in itertools.product([0, 1], repeat=m):
            proto = GraphLabelingProtocol(b, ell)
            for a in range(m):
                for bb in range(m):
                    inst = SumIndexInstance(
                        bits=bits, alice_index=a, bob_index=bb
                    )
                    out, _, _ = run_protocol(proto, inst)
                    assert out == inst.answer, (bits, a, bb)

    def test_hub_encoded_backend(self):
        b, ell = 2, 1
        m = 2

        def hub_factory(graph):
            return HubEncodedScheme(pruned_landmark_labeling(graph))

        def hub_decoder(label_a, label_b):
            return HubEncodedScheme.decode(None, label_a, label_b)

        for bits in [(1, 0), (0, 1), (1, 1)]:
            proto = GraphLabelingProtocol(
                b, ell, scheme_factory=hub_factory, decoder=hub_decoder
            )
            for a in range(m):
                for bb in range(m):
                    inst = SumIndexInstance(
                        bits=bits, alice_index=a, bob_index=bb
                    )
                    out, _, _ = run_protocol(proto, inst)
                    assert out == inst.answer

    def test_messages_are_bit_accounted(self):
        proto = GraphLabelingProtocol(2, 1)
        inst = SumIndexInstance(bits=(1, 0), alice_index=1, bob_index=0)
        out, abits, bbits = run_protocol(proto, inst)
        assert out == inst.answer
        assert abits > 1
        assert bbits > 1

    def test_referee_never_sees_s(self):
        """The same messages decoded by a referee built fresh (no cache,
        no S) give the same answer."""
        proto = GraphLabelingProtocol(2, 1)
        bits = (0, 1)
        inst = SumIndexInstance(bits=bits, alice_index=1, bob_index=1)
        msg_a = proto.alice_message(bits, 1)
        msg_b = proto.bob_message(bits, 1)
        fresh_referee = GraphLabelingProtocol(2, 1)
        assert fresh_referee.referee(msg_a, msg_b) == inst.answer

    @pytest.mark.slow
    def test_exhaustive_b2_l2(self):
        b, ell = 2, 2
        m = 4
        bits = (1, 0, 0, 1)
        proto = GraphLabelingProtocol(b, ell)
        for a in range(m):
            for bb in range(m):
                inst = SumIndexInstance(bits=bits, alice_index=a, bob_index=bb)
                out, _, _ = run_protocol(proto, inst)
                assert out == inst.answer
