"""Array PLL: exact equality with the reference implementation."""

import pytest

from repro.core import (
    fast_pruned_landmark_labeling,
    is_valid_cover,
    pruned_landmark_labeling,
    random_order,
)
from repro.graphs import (
    CSRGraph,
    grid_2d,
    path_graph,
    random_bounded_degree_graph,
    random_sparse_graph,
    random_weighted_graph,
)


def labels_equal(a, b):
    return a.num_vertices == b.num_vertices and all(
        dict(a.hubs(v)) == dict(b.hubs(v)) for v in range(a.num_vertices)
    )


class TestCSR:
    def test_structure(self):
        g = grid_2d(3, 3)
        csr = CSRGraph(g)
        assert csr.num_vertices == 9
        assert csr.num_edges == g.num_edges
        for v in g.vertices():
            assert sorted(csr.neighbor_ids(v)) == sorted(g.neighbor_ids(v))

    def test_weighted_flag(self):
        g = random_weighted_graph(10, 15, seed=1)
        assert CSRGraph(g).is_weighted

    def test_slices_partition(self):
        g = random_sparse_graph(30, seed=2)
        csr = CSRGraph(g)
        assert csr.offsets[0] == 0
        assert csr.offsets[-1] == len(csr.targets)

    def test_num_edges_is_source_count_not_arc_count(self):
        # The CSR stores two directed arcs per undirected edge; the edge
        # count must come from the source graph, not the arc arrays.
        g = random_weighted_graph(12, 20, seed=6)
        csr = CSRGraph(g)
        assert csr.num_edges == g.num_edges
        assert len(csr.targets) == 2 * g.num_edges

    def test_repr(self):
        g = grid_2d(2, 3)
        assert repr(CSRGraph(g)) == "CSRGraph(n=6, m=7, unweighted)"
        w = random_weighted_graph(5, 6, seed=0)
        assert "weighted" in repr(CSRGraph(w))
        assert f"m={w.num_edges}" in repr(CSRGraph(w))


class TestFastPLL:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(12),
            grid_2d(5, 5),
            random_sparse_graph(50, seed=3),
            random_bounded_degree_graph(40, 3, seed=4),
        ],
        ids=["path", "grid", "sparse", "deg3"],
    )
    def test_identical_to_reference(self, graph):
        reference = pruned_landmark_labeling(graph)
        fast = fast_pruned_landmark_labeling(graph)
        assert labels_equal(reference, fast)

    @pytest.mark.parametrize("seed", range(3))
    def test_identical_under_random_orders(self, seed):
        g = random_sparse_graph(35, seed=seed)
        order = random_order(g, seed=seed)
        assert labels_equal(
            pruned_landmark_labeling(g, order),
            fast_pruned_landmark_labeling(g, order),
        )

    def test_weighted_fallback(self):
        g = random_weighted_graph(25, 50, seed=5)
        labeling = fast_pruned_landmark_labeling(g)
        assert is_valid_cover(g, labeling)

    def test_disconnected(self):
        from repro.graphs import Graph

        g = Graph(6)
        g.add_edge(0, 1)
        g.add_edge(3, 4)
        assert is_valid_cover(g, fast_pruned_landmark_labeling(g))

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            fast_pruned_landmark_labeling(path_graph(4), [0, 1])
