"""Serialization round trips (JSON, binary, edge lists)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    HubLabeling,
    graph_from_edgelist,
    graph_to_edgelist,
    labeling_from_bytes,
    labeling_from_json,
    labeling_to_bytes,
    labeling_to_json,
    pruned_landmark_labeling,
)
from repro.graphs import Graph, random_sparse_graph, random_weighted_graph


def labelings_equal(a: HubLabeling, b: HubLabeling) -> bool:
    if a.num_vertices != b.num_vertices:
        return False
    return all(
        dict(a.hubs(v)) == dict(b.hubs(v)) for v in range(a.num_vertices)
    )


class TestJson:
    def test_round_trip(self):
        g = random_sparse_graph(25, seed=1)
        labeling = pruned_landmark_labeling(g)
        assert labelings_equal(
            labeling, labeling_from_json(labeling_to_json(labeling))
        )

    def test_empty(self):
        assert labelings_equal(
            HubLabeling(0), labeling_from_json(labeling_to_json(HubLabeling(0)))
        )


class TestBinary:
    def test_round_trip(self):
        g = random_sparse_graph(30, seed=2)
        labeling = pruned_landmark_labeling(g)
        blob = labeling_to_bytes(labeling)
        assert labelings_equal(labeling, labeling_from_bytes(blob))

    def test_binary_smaller_than_json(self):
        g = random_sparse_graph(40, seed=3)
        labeling = pruned_landmark_labeling(g)
        assert len(labeling_to_bytes(labeling)) < len(
            labeling_to_json(labeling).encode()
        )

    @given(st.integers(min_value=0, max_value=12), st.integers(0, 10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_random_labelings(self, n, seed):
        import random

        rng = random.Random(seed)
        labeling = HubLabeling(n)
        for v in range(n):
            for _ in range(rng.randrange(4)):
                labeling.add_hub(v, rng.randrange(max(n, 1)), rng.randrange(50))
        blob = labeling_to_bytes(labeling)
        assert labelings_equal(labeling, labeling_from_bytes(blob))


class TestFlatArtifact:
    """The version-2 flat envelope: exact arrays, v1/v2 interop."""

    def _flat(self, n=30, seed=2):
        from repro.perf.flat import FlatHubLabeling

        g = random_sparse_graph(n, seed=seed)
        return FlatHubLabeling.from_labeling(pruned_landmark_labeling(g))

    def test_v2_round_trip_is_exact(self):
        from repro.core.io import (
            flat_labeling_from_bytes,
            flat_labeling_to_bytes,
        )

        flat = self._flat()
        back = flat_labeling_from_bytes(flat_labeling_to_bytes(flat))
        assert list(back._offsets) == list(flat._offsets)
        assert list(back._hubs) == list(flat._hubs)
        assert list(back._dists) == list(flat._dists)

    def test_v2_readable_as_dict_labeling(self):
        from repro.core.io import flat_labeling_to_bytes

        flat = self._flat(seed=5)
        labeling = labeling_from_bytes(flat_labeling_to_bytes(flat))
        for v in range(flat.num_vertices):
            assert dict(labeling.hubs(v)) == dict(flat.hubs(v))

    def test_v1_blob_readable_as_flat(self):
        from repro.core.io import flat_labeling_from_bytes

        g = random_sparse_graph(20, seed=7)
        labeling = pruned_landmark_labeling(g)
        flat = flat_labeling_from_bytes(labeling_to_bytes(labeling))
        for v in range(g.num_vertices):
            assert dict(flat.hubs(v)) == dict(labeling.hubs(v))

    def test_corruption_detected(self):
        from repro.core.io import (
            flat_labeling_from_bytes,
            flat_labeling_to_bytes,
        )
        from repro.runtime.errors import ArtifactCorruptError

        blob = bytearray(flat_labeling_to_bytes(self._flat(seed=9)))
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(ArtifactCorruptError):
            flat_labeling_from_bytes(bytes(blob))

    def test_truncation_detected(self):
        from repro.core.io import (
            flat_labeling_from_bytes,
            flat_labeling_to_bytes,
        )
        from repro.runtime.errors import ArtifactCorruptError

        blob = flat_labeling_to_bytes(self._flat(seed=3))
        with pytest.raises(ArtifactCorruptError):
            flat_labeling_from_bytes(blob[: len(blob) - 7])

    def test_empty_labeling_round_trips(self):
        from repro.core.io import (
            flat_labeling_from_bytes,
            flat_labeling_to_bytes,
        )
        from repro.perf.flat import FlatHubLabeling

        flat = FlatHubLabeling.from_labeling(HubLabeling(0))
        back = flat_labeling_from_bytes(flat_labeling_to_bytes(flat))
        assert back.num_vertices == 0
        assert back.total_size() == 0


class TestEdgeList:
    def test_round_trip(self):
        g = random_weighted_graph(20, 40, seed=4)
        text = graph_to_edgelist(g)
        h = graph_from_edgelist(text)
        assert sorted(g.edges()) == sorted(h.edges())
        assert g.num_vertices == h.num_vertices

    def test_empty(self):
        assert graph_from_edgelist(graph_to_edgelist(Graph())).num_vertices == 0

    def test_isolated_vertices_preserved(self):
        g = Graph(5)
        g.add_edge(0, 1)
        h = graph_from_edgelist(graph_to_edgelist(g))
        assert h.num_vertices == 5

    def test_header_mismatch_detected(self):
        with pytest.raises(ValueError):
            graph_from_edgelist("3 5\n0 1 1\n")
