"""Serialization round trips (JSON, binary, edge lists)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    HubLabeling,
    graph_from_edgelist,
    graph_to_edgelist,
    labeling_from_bytes,
    labeling_from_json,
    labeling_to_bytes,
    labeling_to_json,
    pruned_landmark_labeling,
)
from repro.graphs import Graph, random_sparse_graph, random_weighted_graph


def labelings_equal(a: HubLabeling, b: HubLabeling) -> bool:
    if a.num_vertices != b.num_vertices:
        return False
    return all(
        dict(a.hubs(v)) == dict(b.hubs(v)) for v in range(a.num_vertices)
    )


class TestJson:
    def test_round_trip(self):
        g = random_sparse_graph(25, seed=1)
        labeling = pruned_landmark_labeling(g)
        assert labelings_equal(
            labeling, labeling_from_json(labeling_to_json(labeling))
        )

    def test_empty(self):
        assert labelings_equal(
            HubLabeling(0), labeling_from_json(labeling_to_json(HubLabeling(0)))
        )


class TestBinary:
    def test_round_trip(self):
        g = random_sparse_graph(30, seed=2)
        labeling = pruned_landmark_labeling(g)
        blob = labeling_to_bytes(labeling)
        assert labelings_equal(labeling, labeling_from_bytes(blob))

    def test_binary_smaller_than_json(self):
        g = random_sparse_graph(40, seed=3)
        labeling = pruned_landmark_labeling(g)
        assert len(labeling_to_bytes(labeling)) < len(
            labeling_to_json(labeling).encode()
        )

    @given(st.integers(min_value=0, max_value=12), st.integers(0, 10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_random_labelings(self, n, seed):
        import random

        rng = random.Random(seed)
        labeling = HubLabeling(n)
        for v in range(n):
            for _ in range(rng.randrange(4)):
                labeling.add_hub(v, rng.randrange(max(n, 1)), rng.randrange(50))
        blob = labeling_to_bytes(labeling)
        assert labelings_equal(labeling, labeling_from_bytes(blob))


class TestEdgeList:
    def test_round_trip(self):
        g = random_weighted_graph(20, 40, seed=4)
        text = graph_to_edgelist(g)
        h = graph_from_edgelist(text)
        assert sorted(g.edges()) == sorted(h.edges())
        assert g.num_vertices == h.num_vertices

    def test_empty(self):
        assert graph_from_edgelist(graph_to_edgelist(Graph())).num_vertices == 0

    def test_isolated_vertices_preserved(self):
        g = Graph(5)
        g.add_edge(0, 1)
        h = graph_from_edgelist(graph_to_edgelist(g))
        assert h.num_vertices == 5

    def test_header_mismatch_detected(self):
        with pytest.raises(ValueError):
            graph_from_edgelist("3 5\n0 1 1\n")
