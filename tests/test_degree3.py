"""The unweighted max-degree-3 instance G_{b,l} (Theorem 2.1 (i)-(ii))."""

import pytest

from repro.core import theorem_21_node_count_bounds
from repro.graphs import (
    count_shortest_paths,
    is_connected,
    shortest_path,
    shortest_path_distances,
)
from repro.lowerbound import build_degree3_instance


@pytest.fixture(scope="module")
def inst11():
    return build_degree3_instance(1, 1)


@pytest.fixture(scope="module")
def inst21():
    return build_degree3_instance(2, 1)


class TestClaimsOneAndTwo:
    @pytest.mark.parametrize("b,ell", [(1, 1), (2, 1), (1, 2)])
    def test_max_degree_three(self, b, ell):
        inst = build_degree3_instance(b, ell)
        assert inst.graph.max_degree() == 3

    @pytest.mark.parametrize("b,ell", [(1, 1), (2, 1), (1, 2)])
    def test_connected_and_unweighted(self, b, ell):
        inst = build_degree3_instance(b, ell)
        assert is_connected(inst.graph)
        assert not inst.graph.is_weighted

    @pytest.mark.parametrize("b,ell", [(1, 1), (2, 1), (1, 2)])
    def test_node_count_within_proof_bounds(self, b, ell):
        inst = build_degree3_instance(b, ell)
        lower, upper = theorem_21_node_count_bounds(b, ell)
        assert lower <= inst.graph.num_vertices <= upper

    def test_component_accounting(self, inst21):
        total = (
            inst21.num_core_vertices
            + inst21.num_tree_vertices
            + inst21.num_path_vertices
        )
        assert total == inst21.graph.num_vertices


class TestDistanceSimulation:
    def test_adjacent_level_distances_match_h(self, inst21):
        lay = inst21.layered
        h = lay.graph
        for vector in lay.vectors():
            u = lay.vertex(0, vector)
            dist_h, _ = shortest_path_distances(h, u)
            core = inst21.core_vertex(0, vector)
            dist_g, _ = shortest_path_distances(inst21.graph, core)
            for target_vec in lay.vectors():
                for level in (1, 2):
                    vh = lay.vertex(level, target_vec)
                    vg = inst21.core_vertex(level, target_vec)
                    assert dist_g[vg] == dist_h[vh], (vector, level, target_vec)

    def test_lemma_pairs_unique_with_midpoint(self, inst21):
        lay = inst21.layered
        top = 2 * lay.ell
        for x, z in lay.lemma_pairs():
            cx = inst21.core_vertex(0, x)
            cz = inst21.core_vertex(top, z)
            dist, count = count_shortest_paths(inst21.graph, cx)
            assert dist[cz] == inst21.expected_core_distance(x, z)
            assert count[cz] == 1
            path = shortest_path(inst21.graph, cx, cz)
            mid = inst21.core_vertex(lay.ell, lay.midpoint(x, z))
            assert mid in path

    def test_simulated_edge_length(self, inst11):
        # core(u) -> core(v) along one H edge costs exactly w(e).
        lay = inst11.layered
        u = inst11.core_vertex(0, (0,))
        dist, _ = shortest_path_distances(inst11.graph, u)
        for value in range(lay.side):
            v = inst11.core_vertex(1, (value,))
            assert dist[v] == lay.base_weight + value ** 2


class TestGadgetAnatomy:
    def test_tree_and_path_vertex_degrees(self, inst11):
        g = inst11.graph
        from repro.graphs import degree_histogram

        hist = degree_histogram(g)
        # No isolated vertices; degree 3 only on tree nodes / cores.
        assert hist[0] == 0
        assert g.max_degree() == 3

    def test_small_weight_guard(self):
        # A = 3 l s^2 >= 2b + 3 holds for all b, l >= 1 -- the build
        # would raise otherwise; probe the smallest case.
        inst = build_degree3_instance(1, 1)
        assert inst.graph.num_vertices > 0
