"""Ruzsa-Szemeredi graphs: partition, inducedness, density."""

import pytest

from repro.rs import (
    RSGraph,
    build_rs_graph,
    empirical_rs_from_graph,
    matching_of_edge,
)


class TestConstruction:
    @pytest.mark.parametrize("q", [3, 5, 9, 21, 51])
    def test_verify_full_property(self, q):
        rs = build_rs_graph(q)
        assert rs.verify()

    def test_even_or_tiny_q_rejected(self):
        with pytest.raises(ValueError):
            build_rs_graph(10)
        with pytest.raises(ValueError):
            build_rs_graph(1)

    def test_custom_difference_set(self):
        rs = build_rs_graph(21, difference_set=[1, 4, 9])
        assert rs.verify()
        assert rs.num_edges == 21 * 3

    def test_ap_difference_set_rejected(self):
        with pytest.raises(ValueError):
            build_rs_graph(31, difference_set=[1, 2, 3])

    def test_too_large_difference_rejected(self):
        with pytest.raises(ValueError):
            build_rs_graph(11, difference_set=[6])

    def test_empty_difference_rejected(self):
        with pytest.raises(ValueError):
            build_rs_graph(11, difference_set=[])

    def test_edge_count_is_q_times_set_size(self):
        rs = build_rs_graph(51)
        assert rs.num_edges == 51 * len(rs.difference_set)

    def test_at_most_n_matchings(self):
        rs = build_rs_graph(25, difference_set=[1, 3, 8])
        assert rs.num_matchings <= rs.num_vertices


class TestPartitionStructure:
    def test_matching_of_edge_inverse(self):
        rs = build_rs_graph(21, difference_set=[1, 4, 9])
        for x, matching in enumerate(rs.matchings):
            for edge in matching:
                assert matching_of_edge(rs, edge) == x

    def test_unknown_edge_raises(self):
        rs = build_rs_graph(9, difference_set=[1])
        with pytest.raises(KeyError):
            matching_of_edge(rs, (0, 0))

    def test_matchings_have_equal_size(self):
        rs = build_rs_graph(25, difference_set=[1, 3, 8])
        sizes = {len(m) for m in rs.matchings}
        assert sizes == {3}


class TestDensity:
    def test_density_ratio(self):
        rs = build_rs_graph(51)
        assert rs.density_ratio() == pytest.approx(
            (2 * 51) ** 2 / rs.num_edges
        )
        assert empirical_rs_from_graph(
            rs.num_vertices, rs.num_edges
        ) == rs.density_ratio()

    def test_density_improves_with_scale(self):
        # n^2/m shrinks relative to n as q grows (denser in relative terms
        # than a constant-degree graph).
        small = build_rs_graph(51)
        large = build_rs_graph(201)
        assert (
            large.density_ratio() / large.num_vertices
            < small.density_ratio() / small.num_vertices
        )

    def test_empirical_rs_empty(self):
        assert empirical_rs_from_graph(10, 0) == float("inf")
