"""Monotone hubsets (Section 1.2): closure, detection, inflation bound."""

from repro.core import (
    HubLabeling,
    is_monotone,
    is_valid_cover,
    monotone_closure,
    pruned_landmark_labeling,
    tree_path_to_root,
)
from repro.graphs import (
    diameter,
    grid_2d,
    path_graph,
    random_sparse_graph,
    shortest_path_distances,
)


class TestTreePath:
    def test_tree_path_to_root(self):
        parent = [-1, 0, 1, 2]
        assert tree_path_to_root(parent, 3) == [3, 2, 1, 0]
        assert tree_path_to_root(parent, 0) == [0]


class TestClosure:
    def test_closure_is_monotone(self, small_grid):
        labeling = pruned_landmark_labeling(small_grid)
        closed = monotone_closure(small_grid, labeling)
        assert is_monotone(small_grid, closed)

    def test_closure_preserves_cover(self, small_grid):
        labeling = pruned_landmark_labeling(small_grid)
        closed = monotone_closure(small_grid, labeling)
        assert is_valid_cover(small_grid, closed)

    def test_closure_only_grows(self, sparse_graph):
        labeling = pruned_landmark_labeling(sparse_graph)
        closed = monotone_closure(sparse_graph, labeling)
        for v in sparse_graph.vertices():
            assert set(labeling.hub_set(v)) <= set(closed.hub_set(v))

    def test_closure_idempotent(self, small_grid):
        labeling = pruned_landmark_labeling(small_grid)
        once = monotone_closure(small_grid, labeling)
        twice = monotone_closure(small_grid, once)
        assert twice.total_size() == once.total_size()

    def test_closure_distances_exact(self, small_grid):
        labeling = pruned_landmark_labeling(small_grid)
        closed = monotone_closure(small_grid, labeling)
        for v in small_grid.vertices():
            dist, _ = shortest_path_distances(small_grid, v)
            for h, d in closed.hubs(v).items():
                assert d == dist[h]

    def test_closure_inflation_at_most_diameter(self, small_grid):
        # |S*_v| <= (diam + 1) |S_v| -- the Eq. (1) mechanism.
        labeling = pruned_landmark_labeling(small_grid)
        closed = monotone_closure(small_grid, labeling)
        diam = diameter(small_grid)
        for v in small_grid.vertices():
            assert closed.label_size(v) <= (diam + 1) * labeling.label_size(v)

    def test_closure_drops_unreachable_hubs(self):
        from repro.graphs import Graph

        g = Graph(3)
        g.add_edge(0, 1)
        lab = HubLabeling(3)
        lab.add_hub(0, 2, 5)  # bogus unreachable hub
        closed = monotone_closure(g, lab)
        assert closed.label_size(0) == 0


class TestIsMonotone:
    def test_path_prefix_labels_monotone(self):
        g = path_graph(5)
        lab = HubLabeling(5)
        for v in range(5):
            for h in range(v + 1):
                lab.add_hub(v, h, v - h)
        assert is_monotone(g, lab)

    def test_gap_breaks_monotonicity(self):
        g = path_graph(5)
        lab = HubLabeling(5)
        lab.add_hub(4, 4, 0)
        lab.add_hub(4, 0, 4)  # hub 0 without the intermediate vertices
        assert not is_monotone(g, lab)

    def test_wrong_distance_detected(self):
        g = path_graph(3)
        lab = HubLabeling(3)
        lab.add_hub(2, 2, 0)
        lab.add_hub(2, 1, 2)  # true distance is 1
        assert not is_monotone(g, lab)

    def test_empty_labels_are_monotone(self, small_grid):
        assert is_monotone(small_grid, HubLabeling(small_grid.num_vertices))

    def test_pll_not_necessarily_monotone(self):
        # On a sparse random graph PLL labels usually skip intermediates.
        g = random_sparse_graph(40, seed=8)
        labeling = pruned_landmark_labeling(g)
        closed = monotone_closure(g, labeling)
        # The closure is monotone even if the input was not.
        assert is_monotone(g, closed)
