"""Dynamic graphs: incremental PLL repair, hot-swap serving, churn.

The contract under test is absolute: after any sequence of edge
inserts and deletes, :class:`~repro.dynamic.DynamicHubLabeling` must
answer every pair identically -- value AND type, ``inf`` included --
to a from-scratch rebuild on the same pinned vertex order, and a
serving fleet hot-swapped through ``set_oracle`` must never return a
stale answer.  Three independent harnesses enforce it:

* the committed mutation corpus (``tests/data/mutation_corpus.json``)
  replays 40 seed-pinned scripts per zoo family against pinned
  post-mutation distances;
* hypothesis properties drive random edit sequences, weighted and
  unweighted, kept-connected and disconnecting;
* live hot-swap tests mutate under concurrent load through both the
  in-process and the multi-process sharded door.
"""

import json
import math
import pathlib
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pruned_landmark_labeling
from repro.core.orders import degree_order
from repro.dynamic import (
    DynamicHubLabeling,
    MutationScript,
    RepairReport,
    apply_script,
    mutation_script,
)
from repro.graphs import Graph, random_sparse_graph
from repro.graphs.generators import random_weighted_graph
from repro.graphs.traversal import INF
from repro.obs.catalog import (
    DYNAMIC_INSERTS,
    DYNAMIC_REBUILDS,
    SERVE_GENERATION,
)
from repro.obs.registry import get_registry
from repro.oracles.oracle import HubLabelOracle
from repro.perf.build import build_flat_labels
from repro.perf.cache import LabelCache
from repro.serve import QueryServer, run_loadgen

CORPUS_PATH = pathlib.Path(__file__).parent / "data" / "mutation_corpus.json"


def _assert_answer_identical(dyn, tag=""):
    """All-pairs value+type identity against a from-scratch rebuild."""
    rebuilt = build_flat_labels(dyn.graph, dyn.order)
    n = dyn.graph.num_vertices
    for u in range(n):
        for v in range(n):
            got = dyn.query(u, v)
            want = rebuilt.query(u, v)
            assert got == want and type(got) is type(want), (
                f"{tag} dist({u},{v}) = {got!r}, rebuild says {want!r}"
            )


class TestRemoveEdge:
    def test_round_trip(self):
        g = Graph(4)
        g.add_edge(0, 1, 5)
        g.add_edge(1, 2)
        assert g.remove_edge(0, 1) == 5
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1
        g.add_edge(0, 1, 5)
        assert g.has_edge(0, 1)

    def test_missing_edge_raises(self):
        g = Graph(3)
        g.add_edge(0, 1)
        with pytest.raises(KeyError):
            g.remove_edge(0, 2)

    def test_endpoint_order_irrelevant(self):
        g = Graph(3)
        g.add_edge(1, 2, 7)
        assert g.remove_edge(2, 1) == 7
        assert g.num_edges == 0


class TestConstruction:
    def test_bad_budgets_rejected(self):
        g = random_sparse_graph(8, seed=0)
        with pytest.raises(ValueError):
            DynamicHubLabeling(g, rebuild_fraction=0.0)
        with pytest.raises(ValueError):
            DynamicHubLabeling(g, rebuild_fraction=1.5)
        with pytest.raises(ValueError):
            DynamicHubLabeling(g, staleness_budget=0.0)

    def test_bad_order_rejected(self):
        g = random_sparse_graph(8, seed=0)
        with pytest.raises(ValueError):
            DynamicHubLabeling(g, order=[0, 1, 2])
        with pytest.raises(ValueError):
            DynamicHubLabeling(g, order=[0] * 8)

    def test_initial_labeling_matches_static(self):
        g = random_sparse_graph(20, seed=1)
        dyn = DynamicHubLabeling(g)
        _assert_answer_identical(dyn, "fresh")
        assert dyn.mutations == 0
        assert dyn.staleness == 0.0

    def test_order_property_is_a_copy(self):
        g = random_sparse_graph(8, seed=0)
        dyn = DynamicHubLabeling(g)
        dyn.order.reverse()
        assert dyn.order == degree_order(g)


class TestMutationErrors:
    def test_duplicate_insert_raises(self):
        g = Graph(3)
        g.add_edge(0, 1)
        dyn = DynamicHubLabeling(g)
        with pytest.raises(ValueError):
            dyn.insert_edge(1, 0)

    def test_missing_delete_raises(self):
        g = Graph(3)
        g.add_edge(0, 1)
        dyn = DynamicHubLabeling(g)
        with pytest.raises(KeyError):
            dyn.delete_edge(0, 2)

    def test_unknown_op_rejected(self):
        g = Graph(3)
        g.add_edge(0, 1)
        dyn = DynamicHubLabeling(g)
        with pytest.raises(ValueError):
            dyn.apply(MutationScript(ops=(("frobnicate", 0, 1, 1),)))


class TestRepairReports:
    def test_insert_and_delete_reports(self):
        g = random_sparse_graph(16, seed=2)
        dyn = DynamicHubLabeling(g)
        u, v = next(
            (a, b)
            for a in range(16)
            for b in range(a + 1, 16)
            if not g.has_edge(a, b)
        )
        rep = dyn.insert_edge(u, v)
        assert isinstance(rep, RepairReport)
        assert (rep.op, rep.u, rep.v, rep.weight) == ("insert", u, v, 1)
        assert "insert" in rep.render()
        rep = dyn.delete_edge(u, v)
        assert rep.op == "delete"
        assert rep.seconds >= 0
        assert dyn.mutations == 2

    def test_repair_metrics_emitted(self):
        g = random_sparse_graph(12, seed=3)
        dyn = DynamicHubLabeling(g)
        u, v = next(
            (a, b)
            for a in range(12)
            for b in range(a + 1, 12)
            if not g.has_edge(a, b)
        )
        dyn.insert_edge(u, v)
        registry = get_registry()
        assert registry.get(DYNAMIC_INSERTS).value == 1
        # Pre-created at zero even though no rebuild happened.
        assert registry.get(DYNAMIC_REBUILDS).value == 0


class TestBudgetFallback:
    def test_tiny_fraction_forces_rebuild(self):
        g = random_sparse_graph(16, seed=4)
        dyn = DynamicHubLabeling(g, rebuild_fraction=0.01)
        u, v = next(
            (a, b)
            for a in range(16)
            for b in range(a + 1, 16)
            if not g.has_edge(a, b)
        )
        rep = dyn.insert_edge(u, v)
        assert rep.rebuilt
        assert dyn.staleness == 0.0  # rebuild resets the accumulator
        assert get_registry().get(DYNAMIC_REBUILDS).value == 1
        _assert_answer_identical(dyn, "post-rebuild")

    def test_staleness_accumulates_until_budget(self):
        g = random_sparse_graph(16, seed=5)
        dyn = DynamicHubLabeling(
            g, rebuild_fraction=1.0, staleness_budget=0.75
        )
        script = mutation_script(g, 12, seed=5)
        rebuilds = sum(1 for rep in dyn.apply(script) if rep.rebuilt)
        # Every repair adds its affected fraction; a budget under 1.0
        # must eventually trip (each trip resets the accumulator).
        assert rebuilds >= 1
        assert dyn.staleness < 0.75
        _assert_answer_identical(dyn, "post-budget")

    def test_rebuild_served_through_cache(self, tmp_path):
        g = random_sparse_graph(14, seed=6)
        cache = LabelCache(str(tmp_path))
        dyn = DynamicHubLabeling(g, cache=cache, rebuild_fraction=0.01)
        u, v = next(
            (a, b)
            for a in range(14)
            for b in range(a + 1, 14)
            if not g.has_edge(a, b)
        )
        assert dyn.insert_edge(u, v).rebuilt
        # Both the initial build and the forced rebuild persisted.
        assert len(list(tmp_path.iterdir())) >= 2
        _assert_answer_identical(dyn, "cache-rebuild")


class TestMutationScripts:
    def test_scripts_are_seed_deterministic(self):
        g = random_sparse_graph(20, seed=7)
        a = mutation_script(g, 10, seed=3)
        b = mutation_script(g, 10, seed=3)
        assert a.ops == b.ops
        assert a.ops != mutation_script(g, 10, seed=4).ops

    def test_script_replays_cleanly(self):
        g = random_sparse_graph(20, seed=8)
        script = mutation_script(g, 10, seed=1, keep_connected=False)
        assert len(script) == 10
        inserts, deletes = script.counts()
        assert inserts + deletes == 10
        apply_script(g, script)  # every op names a legal edit

    def test_generation_leaves_graph_untouched(self):
        g = random_sparse_graph(20, seed=9)
        before = sorted(g.edges())
        mutation_script(g, 10, seed=2)
        assert sorted(g.edges()) == before

    def test_kept_connected_scripts_preserve_reachability(self):
        g = random_sparse_graph(20, seed=10)
        dyn = DynamicHubLabeling(g)
        finite = {
            (u, v)
            for u in range(20)
            for v in range(20)
            if dyn.query(u, v) != INF
        }
        dyn.apply(mutation_script(g, 10, seed=3, keep_connected=True))
        for u, v in finite:
            assert dyn.query(u, v) != INF, (u, v)


class TestRepairEqualsRebuild:
    """The headline property, across structure, weights, and budgets."""

    @settings(max_examples=20, deadline=None)
    @given(
        graph_seed=st.integers(0, 1000),
        script_seed=st.integers(0, 1000),
        keep_connected=st.booleans(),
    )
    def test_unweighted_random_edits(
        self, graph_seed, script_seed, keep_connected
    ):
        g = random_sparse_graph(12, seed=graph_seed)
        dyn = DynamicHubLabeling(g, rebuild_fraction=1.0)
        script = mutation_script(
            g, 5, seed=script_seed, keep_connected=keep_connected
        )
        for index, op in enumerate(script):
            dyn.apply(MutationScript(ops=(op,)))
            _assert_answer_identical(dyn, f"op {index} {op}")

    @settings(max_examples=12, deadline=None)
    @given(
        graph_seed=st.integers(0, 1000),
        script_seed=st.integers(0, 1000),
    )
    def test_weighted_random_edits(self, graph_seed, script_seed):
        g = random_weighted_graph(10, 16, seed=graph_seed)
        dyn = DynamicHubLabeling(g, rebuild_fraction=1.0)
        script = mutation_script(
            g, 4, seed=script_seed, keep_connected=False
        )
        for index, op in enumerate(script):
            dyn.apply(MutationScript(ops=(op,)))
            _assert_answer_identical(dyn, f"op {index} {op}")

    @settings(max_examples=10, deadline=None)
    @given(
        script_seed=st.integers(0, 1000),
        rebuild_fraction=st.sampled_from([0.05, 0.3, 1.0]),
        staleness_budget=st.sampled_from([0.5, 4.0]),
    )
    def test_budget_fallbacks_stay_exact(
        self, script_seed, rebuild_fraction, staleness_budget
    ):
        # Whether an edit repairs or trips a rebuild must be invisible
        # in the answers.
        g = random_sparse_graph(12, seed=script_seed)
        dyn = DynamicHubLabeling(
            g,
            rebuild_fraction=rebuild_fraction,
            staleness_budget=staleness_budget,
        )
        dyn.apply(mutation_script(g, 5, seed=script_seed))
        _assert_answer_identical(dyn, "budget-mix")


class TestMutationCorpus:
    """Replay the committed corpus: pinned answers, then rebuild parity."""

    @pytest.fixture(scope="class")
    def corpus(self):
        with open(CORPUS_PATH) as handle:
            return json.load(handle)

    def test_corpus_shape(self, corpus):
        assert corpus["version"] == 3
        families = {case["family"] for case in corpus["cases"]}
        assert families == {"ba", "powerlaw", "smallworld", "road"}
        assert len(corpus["cases"]) == 40
        connected = [c for c in corpus["cases"] if c["keep_connected"]]
        assert connected and len(connected) < len(corpus["cases"])

    def test_every_case_repairs_to_pinned_answers(self, corpus):
        for case in corpus["cases"]:
            graph = Graph(case["n"])
            for u, v, w in case["edges"]:
                graph.add_edge(u, v, w)
            dyn = DynamicHubLabeling(graph)
            dyn.apply(
                MutationScript(
                    ops=tuple(tuple(op) for op in case["ops"]),
                    seed=case["seed"],
                    keep_connected=case["keep_connected"],
                )
            )
            for (u, v), want in zip(case["pairs"], case["expected"]):
                got = dyn.query(u, v)
                if want is None:
                    assert got == INF, (case["name"], u, v, got)
                else:
                    assert got == want and type(got) is type(want), (
                        case["name"], u, v, got, want,
                    )
            rebuilt = build_flat_labels(dyn.graph, dyn.order)
            for (u, v), _ in zip(case["pairs"], case["expected"]):
                got = dyn.query(u, v)
                ref = rebuilt.query(u, v)
                assert got == ref and type(got) is type(ref), (
                    case["name"], u, v, got, ref,
                )

    def test_disconnecting_cases_pin_inf_answers(self, corpus):
        assert any(
            want is None
            for case in corpus["cases"]
            if not case["keep_connected"]
            for want in case["expected"]
        ), "no corpus case exercises the INF answer path"


class TestHotSwapServing:
    def _dyn_and_server(self, n=40, seed=11, **server_kwargs):
        graph = random_sparse_graph(n, seed=seed)
        dyn = DynamicHubLabeling(graph)
        server = QueryServer(
            HubLabelOracle(dyn.flat(), backend="flat"), **server_kwargs
        )
        return dyn, server

    def test_swap_serves_new_answers_and_bumps_generation(self):
        dyn, server = self._dyn_and_server()
        n = dyn.graph.num_vertices
        u, v = max(
            (
                (a, b)
                for a in range(n)
                for b in range(a + 1, n)
                if not dyn.graph.has_edge(a, b)
                and dyn.query(a, b) != INF
            ),
            key=lambda pair: dyn.query(*pair),
        )
        with server:
            before = server.query(u, v)
            assert before == dyn.query(u, v)
            assert server.generation_seq == 0
            dyn.insert_edge(u, v)
            server.set_oracle(HubLabelOracle(dyn.flat(), backend="flat"))
            assert server.generation_seq == 1
            after = server.query(u, v)
            assert after == 1
            assert before > after
            gauge = get_registry().get(SERVE_GENERATION)
            assert gauge is not None and gauge.value == 1

    def test_generation_gauge_is_monotone_across_swaps(self):
        dyn, server = self._dyn_and_server(seed=12)
        script = mutation_script(dyn.graph, 6, seed=12)
        seen = []
        with server:
            registry = get_registry()
            seen.append(registry.get(SERVE_GENERATION).value)
            for op in script:
                dyn.apply(MutationScript(ops=(op,)))
                server.set_oracle(
                    HubLabelOracle(dyn.flat(), backend="flat")
                )
                seen.append(registry.get(SERVE_GENERATION).value)
        assert seen == sorted(seen)
        assert seen[0] == 0 and seen[-1] == len(script)
        assert server.generation_seq == len(script)

    def test_post_swap_queries_never_stale_under_load(self):
        # Clients hammer one pair while the main thread swaps back and
        # forth between two labelings; every answer must belong to one
        # of the two generations (no torn or cached-stale value), and
        # probes issued after a swap must see the new value.
        dyn, server = self._dyn_and_server(seed=13)
        n = dyn.graph.num_vertices
        u, v = max(
            (
                (a, b)
                for a in range(n)
                for b in range(a + 1, n)
                if not dyn.graph.has_edge(a, b)
                and dyn.query(a, b) != INF
            ),
            key=lambda pair: dyn.query(*pair),
        )
        old = dyn.query(u, v)
        legal = {old, 1}
        stop = threading.Event()
        wrong = []

        def hammer():
            while not stop.is_set():
                got = server.query(u, v)
                if got not in legal:
                    wrong.append(got)

        with server:
            threads = [
                threading.Thread(target=hammer) for _ in range(3)
            ]
            for t in threads:
                t.start()
            present = False
            for _ in range(8):
                if present:
                    dyn.delete_edge(u, v)
                else:
                    dyn.insert_edge(u, v)
                present = not present
                server.set_oracle(
                    HubLabelOracle(dyn.flat(), backend="flat")
                )
                want = 1 if present else old
                assert server.query(u, v) == want  # post-swap probe
            stop.set()
            for t in threads:
                t.join()
        assert wrong == []


class TestShardedHotSwap:
    """set_oracle across the multi-process door: fresh segment per
    swap, no stale answers, no /dev/shm leaks."""

    @staticmethod
    def _shm_entries():
        import os

        from repro.perf.shm import SHM_NAME_PREFIX

        try:
            return {
                name
                for name in os.listdir("/dev/shm")
                if name.startswith(SHM_NAME_PREFIX)
            }
        except OSError:  # pragma: no cover - no /dev/shm here
            return set()

    def test_swap_running_fleet_serves_new_answers(self):
        from repro.serve import ShardedQueryServer

        graph = random_sparse_graph(40, seed=17)
        dyn = DynamicHubLabeling(graph)
        n = graph.num_vertices
        u, v = max(
            (
                (a, b)
                for a in range(n)
                for b in range(a + 1, n)
                if not graph.has_edge(a, b) and dyn.query(a, b) != INF
            ),
            key=lambda pair: dyn.query(*pair),
        )
        before_entries = self._shm_entries()
        server = ShardedQueryServer(
            HubLabelOracle(dyn.flat(), backend="flat"), processes=2
        )
        with server:
            old = server.query(u, v)
            assert old == dyn.query(u, v) and old > 1
            dyn.insert_edge(u, v)
            server.set_oracle(HubLabelOracle(dyn.flat(), backend="flat"))
            assert server.generation_seq == 1
            assert server.query(u, v) == 1
            # A batch through the swapped fleet, graded value AND type
            # against a from-scratch rebuild of the mutated graph.
            rebuilt = build_flat_labels(dyn.graph, dyn.order)
            us = list(range(n))
            vs = [(i * 7 + 3) % n for i in range(n)]
            got = server.submit_batch(us, vs).result()
            for a, b, answer in zip(us, vs, got):
                want = rebuilt.query(a, b)
                assert answer == want and type(answer) is type(want), (
                    a, b, answer, want,
                )
            gauge = get_registry().get(SERVE_GENERATION)
            assert gauge is not None and gauge.value == 1
        assert self._shm_entries() == before_entries  # old segment gone

    def test_swap_while_stopped_applies_on_next_start(self):
        from repro.serve import ShardedQueryServer

        graph = random_sparse_graph(30, seed=18)
        dyn = DynamicHubLabeling(graph)
        n = graph.num_vertices
        u, v = next(
            (a, b)
            for a in range(n)
            for b in range(a + 1, n)
            if not graph.has_edge(a, b) and dyn.query(a, b) > 2
        )
        before_entries = self._shm_entries()
        server = ShardedQueryServer(
            HubLabelOracle(dyn.flat(), backend="flat"), processes=1
        )
        dyn.insert_edge(u, v)
        server.set_oracle(HubLabelOracle(dyn.flat(), backend="flat"))
        assert server.generation_seq == 1
        with server:
            assert server.query(u, v) == 1
        assert self._shm_entries() == before_entries  # stop() cleaned up

    def test_swaps_under_concurrent_batches(self):
        from repro.serve import ShardedQueryServer

        graph = random_sparse_graph(36, seed=19)
        dyn = DynamicHubLabeling(graph)
        n = graph.num_vertices
        script = list(mutation_script(graph, 4, seed=19))
        stop = threading.Event()
        failures = []

        def hammer():
            us = list(range(n))
            vs = [(i * 5 + 1) % n for i in range(n)]
            while not stop.is_set():
                try:
                    answers = server.submit_batch(us, vs).result()
                except Exception as exc:  # pragma: no cover - fails test
                    failures.append(exc)
                    return
                if len(answers) != n:
                    failures.append(("short batch", len(answers)))
                    return

        server = ShardedQueryServer(
            HubLabelOracle(dyn.flat(), backend="flat"), processes=2
        )
        with server:
            threads = [threading.Thread(target=hammer) for _ in range(2)]
            for t in threads:
                t.start()
            for op in script:
                dyn.apply(MutationScript(ops=(op,)))
                server.set_oracle(
                    HubLabelOracle(dyn.flat(), backend="flat")
                )
                # Post-swap probe: graded against the repaired labeling.
                probe = server.query(0, n - 1)
                want = dyn.query(0, n - 1)
                assert probe == want and type(probe) is type(want)
            stop.set()
            for t in threads:
                t.join()
        assert failures == []
        assert server.generation_seq == len(script)


class TestLoadgenChurn:
    def test_churn_callable_is_driven_and_counted(self):
        graph = random_sparse_graph(60, seed=14)
        dyn = DynamicHubLabeling(graph)
        script = list(mutation_script(graph, 8, seed=14))
        cursor = iter(script)

        def churn():
            try:
                op, u, v, w = next(cursor)
            except StopIteration:
                return False
            if op == "insert":
                dyn.insert_edge(u, v, w)
            else:
                dyn.delete_edge(u, v)
            server.set_oracle(HubLabelOracle(dyn.flat(), backend="flat"))
            return True

        with QueryServer(
            HubLabelOracle(dyn.flat(), backend="flat")
        ) as server:
            report = run_loadgen(
                server,
                graph.num_vertices,
                clients=2,
                duration=0.4,
                seed=14,
                churn=churn,
                churn_interval=0.005,
            )
        assert report.ok, report.render()
        assert 1 <= report.mutations <= len(script)
        assert "mutations" in report.render()
        _assert_answer_identical(dyn, "post-loadgen")

    def test_churn_exception_fails_the_run(self):
        graph = random_sparse_graph(20, seed=15)

        def churn():
            raise RuntimeError("repair went sideways")

        with QueryServer(HubLabelOracle(pruned_landmark_labeling(graph))) as server:
            with pytest.raises(RuntimeError, match="sideways"):
                run_loadgen(
                    server,
                    graph.num_vertices,
                    clients=2,
                    requests_per_client=50,
                    seed=15,
                    churn=churn,
                )

    def test_churn_false_stops_early(self):
        graph = random_sparse_graph(20, seed=16)
        calls = []

        def churn():
            calls.append(1)
            return False

        with QueryServer(HubLabelOracle(pruned_landmark_labeling(graph))) as server:
            report = run_loadgen(
                server,
                graph.num_vertices,
                clients=2,
                duration=0.2,
                seed=16,
                churn=churn,
                churn_interval=0.001,
            )
        assert report.ok
        assert len(calls) == 1
        assert report.mutations == 0  # a False return mutated nothing


class TestCli:
    def test_mutate_verb_grades_green(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "mutate",
                    "--generator",
                    "sparse:30",
                    "--ops",
                    "8",
                    "--seed",
                    "3",
                    "--verify-sample",
                    "150",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "0 mismatch(es)" in out and "OK" in out

    def test_mutate_verify_each(self, capsys):
        from repro.cli import main

        code = main(
            [
                "mutate",
                "--generator",
                "tree:16",
                "--ops",
                "4",
                "--allow-disconnect",
                "--verify-each",
                "--verify-sample",
                "60",
            ]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_loadgen_churn_runs_green(self, capsys):
        from repro.cli import main

        code = main(
            [
                "loadgen",
                "--generator",
                "sparse:50",
                "--clients",
                "2",
                "--requests",
                "200",
                "--churn",
                "4",
                "--churn-interval",
                "0.002",
            ]
        )
        assert code == 0
        assert "verdict:    OK" in capsys.readouterr().out

    def test_loadgen_churn_rejects_validate(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(
                [
                    "loadgen",
                    "--generator",
                    "sparse:20",
                    "--validate",
                    "--churn",
                    "2",
                ]
            )

    def test_corpus_drift_check_passes(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "gen_mutation_corpus",
            pathlib.Path(__file__).parent.parent
            / "tools"
            / "gen_mutation_corpus.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.main(["--check"]) == 0
        assert module.render().endswith("\n")


def test_inf_answers_survive_repair():
    # Disconnect a leaf, repair, and the INF must be float('inf') with
    # float type -- the exact value the traversal module uses.
    g = Graph(6)
    for v in range(1, 6):
        g.add_edge(v - 1, v)
    dyn = DynamicHubLabeling(g)
    dyn.delete_edge(4, 5)
    got = dyn.query(0, 5)
    assert got == INF and math.isinf(got)
    assert dyn.query(5, 5) == 0
    _assert_answer_identical(dyn, "leaf-cut")
    dyn.insert_edge(4, 5)
    assert dyn.query(0, 5) == 5
    _assert_answer_identical(dyn, "leaf-heal")
