"""Cross-module integration: full pipelines from the paper."""

import pytest

from repro.core import (
    is_valid_cover,
    project_labeling,
    pruned_landmark_labeling,
    reduce_degree,
    rs_hub_labeling,
    sparse_hub_labeling,
)
from repro.graphs import random_sparse_graph, shortest_path_distances
from repro.labeling import DistanceRowScheme, HubEncodedScheme
from repro.lowerbound import (
    audit_labeling,
    build_degree3_instance,
    certificate_for,
)
from repro.oracles import HubLabelOracle, MatrixOracle


class TestTheorem14Pipeline:
    """Sparse graph -> degree reduction -> RS scheme -> projection."""

    def test_full_pipeline(self):
        g = random_sparse_graph(40, seed=13, avg_degree=4.0)
        reduction = reduce_degree(g)
        assert reduction.reduced.max_degree() <= reduction.chunk + 2
        result = rs_hub_labeling(reduction.reduced, threshold=3, seed=5)
        assert is_valid_cover(reduction.reduced, result.labeling)
        projected = project_labeling(reduction, result.labeling)
        assert is_valid_cover(g, projected)
        # Average size in terms of the original n (Theorem 1.4's metric).
        assert projected.average_size() <= result.labeling.average_size() * (
            reduction.reduced.num_vertices / g.num_vertices
        ) * 2 + g.num_vertices


class TestLowerVsUpperOnHardInstance:
    """The paper's two sides meet on G_{b,l}: every real labeling sits
    above the certificate; the constructions still produce valid covers."""

    @pytest.fixture(scope="class")
    def inst(self):
        # (1, 1) keeps the O(n^3) hitting-set scan fast; the benchmark
        # harness exercises (2, 1) and beyond.
        return build_degree3_instance(1, 1)

    @pytest.mark.slow
    def test_large_instance_certificate(self):
        inst = build_degree3_instance(2, 1)
        cert = certificate_for(inst)
        pll = pruned_landmark_labeling(inst.graph)
        assert pll.total_size() >= cert.hub_sum_lower_bound
        assert audit_labeling(inst, pll).all_charged

    def test_all_constructions_respect_certificate(self, inst):
        cert = certificate_for(inst)
        pll = pruned_landmark_labeling(inst.graph)
        sparse = sparse_hub_labeling(inst.graph, radius=2, seed=1).labeling
        for labeling in (pll, sparse):
            assert is_valid_cover(inst.graph, labeling)
            assert labeling.total_size() >= cert.hub_sum_lower_bound
            audit = audit_labeling(inst, labeling)
            assert audit.all_charged

    def test_rs_scheme_on_hard_instance(self, inst):
        result = rs_hub_labeling(inst.graph, threshold=2, seed=3)
        assert is_valid_cover(inst.graph, result.labeling)
        cert = certificate_for(inst)
        assert result.labeling.total_size() >= cert.hub_sum_lower_bound


class TestLabelingToOracleToScheme:
    def test_hub_labeling_three_ways(self):
        g = random_sparse_graph(30, seed=17)
        labeling = pruned_landmark_labeling(g)
        oracle = HubLabelOracle(labeling)
        scheme = HubEncodedScheme(labeling)
        matrix_oracle = MatrixOracle(g)
        for u in range(0, 30, 4):
            for v in range(0, 30, 5):
                truth = matrix_oracle.query(u, v).distance
                assert oracle.query(u, v).distance == truth
                assert scheme.query(u, v) == truth

    def test_bit_schemes_agree(self):
        g = random_sparse_graph(25, seed=19)
        hub_scheme = HubEncodedScheme(pruned_landmark_labeling(g))
        row_scheme = DistanceRowScheme(g)
        for u in range(25):
            for v in range(25):
                assert hub_scheme.query(u, v) == row_scheme.query(u, v)

    def test_hub_labels_much_smaller_than_rows(self):
        g = random_sparse_graph(60, seed=23)
        hub_scheme = HubEncodedScheme(pruned_landmark_labeling(g))
        row_scheme = DistanceRowScheme(g)
        assert (
            hub_scheme.stats().average_bits
            < row_scheme.stats().average_bits
        )


class TestSumIndexOverHardInstance:
    def test_protocol_message_tracks_label_size(self):
        """The reduction inequality: message bits = label bits + index
        bits, so small labels directly mean small Sum-Index messages."""
        from repro.sumindex import (
            GraphLabelingProtocol,
            SumIndexInstance,
            run_protocol,
        )

        proto = GraphLabelingProtocol(2, 1)
        inst = SumIndexInstance(bits=(1, 0), alice_index=0, bob_index=1)
        out, alice_bits, _ = run_protocol(proto, inst)
        assert out == inst.answer
        label_bits = len(proto.alice_message(inst.bits, 0).payload)
        index_bits = proto.alice_message(inst.bits, 0).index_bits
        assert alice_bits == label_bits + index_bits


class TestBigInstanceSampledVerification:
    @pytest.mark.slow
    def test_g22_pll_sampled(self):
        """PLL on the 24k-vertex hard instance, verified on sampled rows."""
        from repro.core import (
            fast_pruned_landmark_labeling,
            verify_cover_sampled,
        )

        inst = build_degree3_instance(2, 2)
        labeling = fast_pruned_landmark_labeling(inst.graph)
        cert = certificate_for(inst)
        assert labeling.total_size() >= cert.hub_sum_lower_bound
        report = verify_cover_sampled(
            inst.graph, labeling, num_sources=16, seed=3
        )
        assert report.ok
