"""The HubLabeling store and query engine."""

import pytest

from repro.core import HubLabeling
from repro.graphs import INF


class TestStore:
    def test_add_and_query(self):
        lab = HubLabeling(3)
        lab.add_hub(0, 2, 5)
        lab.add_hub(1, 2, 3)
        assert lab.query(0, 1) == 8
        assert lab.meet(0, 1) == 2

    def test_no_common_hub_is_inf(self):
        lab = HubLabeling(2)
        lab.add_hub(0, 0, 0)
        lab.add_hub(1, 1, 0)
        assert lab.query(0, 1) == INF
        assert lab.meet(0, 1) is None

    def test_readding_keeps_minimum(self):
        lab = HubLabeling(1)
        lab.add_hub(0, 0, 5)
        lab.add_hub(0, 0, 3)
        lab.add_hub(0, 0, 9)
        assert lab.hub_distance(0, 0) == 3

    def test_negative_distance_rejected(self):
        lab = HubLabeling(1)
        with pytest.raises(ValueError):
            lab.add_hub(0, 0, -1)

    def test_discard(self):
        lab = HubLabeling(2)
        lab.add_hub(0, 1, 4)
        lab.discard_hub(0, 1)
        assert lab.hub_distance(0, 1) is None
        lab.discard_hub(0, 1)  # idempotent

    def test_contains_and_hub_set(self):
        lab = HubLabeling(2)
        lab.add_hubs(0, [(1, 2), (0, 0)])
        assert (0, 1) in lab
        assert (1, 1) not in lab
        assert lab.hub_set(0) == [0, 1]

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            HubLabeling(-1)


class TestAccounting:
    def test_sizes(self):
        lab = HubLabeling(3)
        lab.add_hub(0, 0, 0)
        lab.add_hub(0, 1, 1)
        lab.add_hub(1, 1, 0)
        assert lab.total_size() == 3
        assert lab.average_size() == pytest.approx(1.0)
        assert lab.max_size() == 2
        assert lab.label_size(2) == 0

    def test_empty_average(self):
        assert HubLabeling(0).average_size() == 0.0

    def test_bit_size_formula(self):
        lab = HubLabeling(4)  # id width = 2
        lab.add_hub(0, 3, 6)  # distance width from max=6 -> 3 bits
        lab.add_hub(1, 3, 2)
        assert lab.bit_size() == 2 * (2 + 3)

    def test_bit_size_with_explicit_max(self):
        lab = HubLabeling(2)
        lab.add_hub(0, 1, 1)
        assert lab.bit_size(max_distance=255) == 1 * (1 + 8)


class TestSetOperations:
    def test_union_minimum_wins(self):
        a = HubLabeling(2)
        a.add_hub(0, 1, 5)
        b = HubLabeling(2)
        b.add_hub(0, 1, 3)
        b.add_hub(1, 0, 2)
        merged = a.union(b)
        assert merged.hub_distance(0, 1) == 3
        assert merged.hub_distance(1, 0) == 2

    def test_union_size_mismatch(self):
        with pytest.raises(ValueError):
            HubLabeling(2).union(HubLabeling(3))

    def test_copy_independent(self):
        a = HubLabeling(1)
        a.add_hub(0, 0, 0)
        b = a.copy()
        b.add_hub(0, 0, 0)
        b_labels = b.hubs(0)
        b_labels[0] = 7  # mutate the copy's dict directly
        assert a.hub_distance(0, 0) == 0

    def test_repr(self):
        lab = HubLabeling(2)
        lab.add_hub(0, 0, 0)
        assert "n=2" in repr(lab)


class TestDistributionViews:
    def test_histogram(self):
        from repro.core import label_size_histogram

        lab = HubLabeling(4)
        lab.add_hub(0, 0, 0)
        lab.add_hub(1, 0, 1)
        lab.add_hub(1, 1, 0)
        hist = label_size_histogram(lab)
        assert hist == [2, 1, 1]  # two empty, one single, one double

    def test_quantiles(self):
        from repro.core import label_size_quantiles

        lab = HubLabeling(10)
        for v in range(10):
            for h in range(v + 1):
                lab.add_hub(v, h, abs(v - h))
        q = label_size_quantiles(lab, quantiles=(0.0, 0.5, 0.9))
        assert q[0.0] == 1
        assert q[0.5] == 6
        assert q[0.9] == 10

    def test_empty(self):
        from repro.core import label_size_histogram, label_size_quantiles

        lab = HubLabeling(0)
        assert label_size_histogram(lab) == [0]
        assert label_size_quantiles(lab) == {0.5: 0, 0.9: 0, 0.99: 0}
