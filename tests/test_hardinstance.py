"""Theorem 2.1 claim (iii): certificates and the charging audit."""

import pytest

from repro.core import pruned_landmark_labeling, sparse_hub_labeling
from repro.lowerbound import (
    audit_labeling,
    build_degree3_instance,
    certificate_for,
    midpoint_triplets,
)


@pytest.fixture(scope="module")
def inst():
    return build_degree3_instance(2, 1)


@pytest.fixture(scope="module")
def pll(inst):
    return pruned_landmark_labeling(inst.graph)


class TestCertificate:
    def test_certificate_values(self, inst):
        cert = certificate_for(inst)
        # b=2, l=1: s=4, triplets = 4 * 2 = 8, distortion = 4*16*4.
        assert cert.triplet_count == 8
        assert cert.distortion == 256
        assert cert.hub_sum_lower_bound == pytest.approx(8 / 256)
        assert cert.average_lower_bound > 0

    def test_triplet_enumeration_matches_count(self, inst):
        cert = certificate_for(inst)
        triplets = list(midpoint_triplets(inst))
        assert len(triplets) == cert.triplet_count
        for x, y, z in triplets:
            assert all(2 * yk == xk + zk for xk, yk, zk in zip(x, y, z))

    def test_measured_respects_certificate(self, inst, pll):
        cert = certificate_for(inst)
        assert pll.total_size() >= cert.hub_sum_lower_bound


class TestAudit:
    def test_audit_pll_all_charged(self, inst, pll):
        audit = audit_labeling(inst, pll)
        assert audit.all_charged
        assert audit.charge_total == audit.num_triplets

    def test_audit_sparse_scheme_all_charged(self):
        # The (1, 1) instance keeps the monotone closure of the (large)
        # threshold-scheme labeling cheap; E4 covers bigger instances.
        small = build_degree3_instance(1, 1)
        result = sparse_hub_labeling(small.graph, radius=2, seed=1)
        audit = audit_labeling(small, result.labeling)
        assert audit.all_charged

    def test_closure_dominates_charges(self, inst, pll):
        # Distinct triplets charge distinct (endpoint, hub) slots.
        audit = audit_labeling(inst, pll)
        assert audit.closure_total >= audit.charge_total

    def test_audit_catches_broken_labeling(self, inst):
        from repro.core import HubLabeling

        empty = HubLabeling(inst.graph.num_vertices)
        audit = audit_labeling(inst, empty)
        assert not audit.all_charged
        assert audit.uncharged

    def test_closure_within_distortion(self, inst, pll):
        # |S*_v| <= distortion * |S_v| summed -- Eq. (1) on real data.
        cert = certificate_for(inst)
        audit = audit_labeling(inst, pll)
        assert audit.closure_total <= cert.distortion * audit.labeling_total


class TestScaling:
    @pytest.mark.parametrize("b,ell", [(1, 1), (2, 1)])
    def test_certificate_positive_all_sizes(self, b, ell):
        inst = build_degree3_instance(b, ell)
        cert = certificate_for(inst)
        assert cert.hub_sum_lower_bound > 0
        assert cert.num_vertices == inst.graph.num_vertices

    def test_bound_grows_with_b(self):
        # The certificate scales as s^{2l-2} / poly(l): flat at l = 1,
        # strictly growing in b once l >= 2.
        small = certificate_for(build_degree3_instance(1, 2))
        large = certificate_for(build_degree3_instance(2, 2))
        assert large.hub_sum_lower_bound > small.hub_sum_lower_bound
