"""Failure injection: corrupted inputs must be *detected*, not absorbed.

A labeling store is only trustworthy if its checkers catch sabotage:
wrong distances, deleted hubs, truncated serializations, foreign
labels.  Each test corrupts a healthy artifact and asserts the library
reports the problem instead of silently returning wrong answers.

The chaos suite at the bottom is the acceptance gate for the resilient
runtime: hundreds of seeded faults across all four fault families, and
every graded query must either raise a typed ``ReproError`` or return
the exact ground-truth distance via fallback.
"""

import random

import pytest

from repro.core import (
    HubLabeling,
    is_valid_cover,
    labeling_from_bytes,
    labeling_to_bytes,
    pruned_landmark_labeling,
    verify_cover,
    verify_cover_sampled,
)
from repro.core.io import ARTIFACT_MAGIC
from repro.graphs import (
    all_pairs_distances,
    barabasi_albert,
    grid_2d,
    powerlaw_configuration,
    random_sparse_graph,
    road_network,
    watts_strogatz,
)
from repro.labeling import BitReader, DistanceRowScheme, HubEncodedScheme
from repro.runtime import (
    FAULT_KINDS,
    ArtifactCorruptError,
    ChaosReport,
    DomainError,
    FaultInjector,
    IntegrityError,
    QueryBudgetExceeded,
    ReproError,
    ResilientOracle,
    chaos_sweep,
)


@pytest.fixture
def healthy():
    graph = random_sparse_graph(40, seed=6)
    return graph, pruned_landmark_labeling(graph)


class TestCoverChecker:
    def test_deleted_hub_detected(self, healthy):
        graph, labeling = healthy
        sabotaged = labeling.copy()
        # Remove the globally most-used hub from a few labels.
        rng = random.Random(1)
        victims = rng.sample(range(40), 10)
        top_hub = max(
            range(40),
            key=lambda h: sum(
                1 for v in range(40) if labeling.hub_distance(v, h) is not None
            ),
        )
        for v in victims:
            sabotaged.discard_hub(v, top_hub)
        report = verify_cover(graph, sabotaged)
        assert not report.ok
        assert report.violations

    def test_inflated_distance_detected(self, healthy):
        graph, labeling = healthy
        sabotaged = labeling.copy()
        v = 5
        hubs = sabotaged.hub_set(v)
        target = hubs[-1]
        sabotaged.discard_hub(v, target)
        old = labeling.hub_distance(v, target)
        sabotaged.add_hub(v, target, old + 3)
        # Inflation can only surface as an over-estimate somewhere...
        report = verify_cover(graph, sabotaged)
        # ...unless another hub still certifies every pair -- then the
        # labeling is still correct.  Either way, no crash and the
        # verdict matches a recomputation.
        assert report.num_pairs > 0

    def test_sampled_checker_catches_empty_labels(self, healthy):
        graph, _ = healthy
        empty = HubLabeling(graph.num_vertices)
        report = verify_cover_sampled(graph, empty, num_sources=5, seed=2)
        assert not report.ok

    def test_sampled_checker_passes_healthy(self, healthy):
        graph, labeling = healthy
        report = verify_cover_sampled(graph, labeling, num_sources=8, seed=3)
        assert report.ok

    def test_vertex_count_mismatch_is_domain_error(self, healthy):
        graph, _ = healthy
        with pytest.raises(DomainError):
            verify_cover(graph, HubLabeling(graph.num_vertices + 1))
        with pytest.raises(ValueError):  # taxonomy keeps old contract
            verify_cover_sampled(graph, HubLabeling(1))


class TestErrorTaxonomy:
    def test_all_errors_descend_from_repro_error(self):
        from repro.runtime import (
            ArtifactCorruptError,
            DomainError,
            FormatError,
            IntegrityError,
            QueryBudgetExceeded,
        )

        for cls in (
            ArtifactCorruptError,
            FormatError,
            IntegrityError,
            QueryBudgetExceeded,
            DomainError,
        ):
            assert issubclass(cls, ReproError)

    def test_data_errors_remain_value_errors(self):
        from repro.runtime import FormatError

        assert issubclass(ArtifactCorruptError, ValueError)
        assert issubclass(FormatError, ValueError)
        assert issubclass(DomainError, ValueError)

    def test_exit_codes_are_distinct_and_nonzero(self):
        from repro.runtime import FormatError

        codes = [
            cls.exit_code
            for cls in (
                ReproError,
                ArtifactCorruptError,
                FormatError,
                IntegrityError,
                QueryBudgetExceeded,
                DomainError,
            )
        ]
        assert len(set(codes)) == len(codes)
        assert all(code not in (0, 1, 2) for code in codes)

    def test_diagnostic_is_one_line(self):
        error = ArtifactCorruptError("boom", offset=7)
        assert "\n" not in error.diagnostic()
        assert "ArtifactCorruptError" in error.diagnostic()
        assert error.offset == 7


class TestEnvelope:
    def test_round_trip_is_enveloped(self, healthy):
        _, labeling = healthy
        blob = labeling_to_bytes(labeling)
        assert blob[:4] == ARTIFACT_MAGIC
        restored = labeling_from_bytes(blob)
        assert restored.num_vertices == labeling.num_vertices
        assert all(
            dict(restored.hubs(v)) == dict(labeling.hubs(v))
            for v in range(labeling.num_vertices)
        )

    def test_legacy_stream_still_loads(self, healthy):
        _, labeling = healthy
        legacy = labeling_to_bytes(labeling, envelope=False)
        assert legacy[:1] == b"\x00"  # pre-envelope blobs start 0x00
        restored = labeling_from_bytes(legacy)
        assert all(
            dict(restored.hubs(v)) == dict(labeling.hubs(v))
            for v in range(labeling.num_vertices)
        )

    def test_empty_blob_rejected(self):
        with pytest.raises(ArtifactCorruptError):
            labeling_from_bytes(b"")

    def test_unrecognized_header_rejected(self):
        with pytest.raises(ArtifactCorruptError):
            labeling_from_bytes(b"\x7fELF garbage that is neither format")

    def test_header_truncation_has_offset(self, healthy):
        _, labeling = healthy
        blob = labeling_to_bytes(labeling)
        with pytest.raises(ArtifactCorruptError) as excinfo:
            labeling_from_bytes(blob[:10])
        assert excinfo.value.offset is not None

    def test_payload_truncation_detected(self, healthy):
        _, labeling = healthy
        blob = labeling_to_bytes(labeling)
        for cut in (len(blob) - 1, len(blob) // 2, 30):
            with pytest.raises(ArtifactCorruptError):
                labeling_from_bytes(blob[:cut])

    def test_trailing_bytes_detected(self, healthy):
        _, labeling = healthy
        blob = labeling_to_bytes(labeling)
        with pytest.raises(ArtifactCorruptError):
            labeling_from_bytes(blob + b"\x00\x01")

    def test_crc_catches_payload_flip(self, healthy):
        _, labeling = healthy
        blob = bytearray(labeling_to_bytes(labeling))
        blob[-3] ^= 0x10
        with pytest.raises(ArtifactCorruptError) as excinfo:
            labeling_from_bytes(bytes(blob))
        assert "CRC32" in str(excinfo.value)

    def test_bad_version_rejected(self, healthy):
        _, labeling = healthy
        blob = bytearray(labeling_to_bytes(labeling))
        blob[4] = 99
        with pytest.raises(ArtifactCorruptError):
            labeling_from_bytes(bytes(blob))

    def test_vertex_count_header_cross_checked(self, healthy):
        _, labeling = healthy
        blob = bytearray(labeling_to_bytes(labeling))
        # Header n and CRC-protected payload disagree: bump header n and
        # recompute nothing -- the CRC still matches (payload untouched),
        # so the cross-check must fire.
        blob[12] ^= 0x01
        with pytest.raises(ArtifactCorruptError):
            labeling_from_bytes(bytes(blob))

    def test_legacy_hub_id_overrun_detected(self):
        # A legacy stream whose gap coding walks past n must be refused,
        # not absorbed into an out-of-range dict key.
        labeling = HubLabeling(3)
        labeling.add_hub(0, 2, 1)
        legacy = bytearray(labeling_to_bytes(labeling, envelope=False))
        corrupted = None
        for position in range(64, 8 * len(legacy)):
            mangled = bytearray(legacy)
            mangled[position // 8] ^= 0x80 >> (position % 8)
            try:
                decoded = labeling_from_bytes(bytes(mangled))
            except ArtifactCorruptError:
                corrupted = True
                continue
            for v in range(decoded.num_vertices):
                assert all(
                    0 <= hub < decoded.num_vertices
                    for hub in decoded.hubs(v)
                )
        assert corrupted  # at least one flip was structurally fatal


class TestSerializationCorruption:
    def test_truncated_blob_raises(self, healthy):
        _, labeling = healthy
        blob = labeling_to_bytes(labeling)
        with pytest.raises((EOFError, ValueError, IndexError)):
            labeling_from_bytes(blob[: len(blob) // 2])

    def test_bit_flip_changes_or_raises(self, healthy):
        graph, labeling = healthy
        blob = bytearray(labeling_to_bytes(labeling))
        blob[20] ^= 0xFF
        try:
            mangled = labeling_from_bytes(bytes(blob))
        except (EOFError, ValueError):
            return  # detected structurally -- fine
        # If it parses, the decoded labeling must differ (the flip can
        # not be silently absorbed).
        differs = any(
            dict(mangled.hubs(v)) != dict(labeling.hubs(v))
            for v in range(min(mangled.num_vertices, labeling.num_vertices))
        ) or mangled.num_vertices != labeling.num_vertices
        assert differs

    def test_every_single_byte_flip_is_caught(self, healthy):
        """With the envelope, *any* one-byte corruption is detected."""
        _, labeling = healthy
        blob = labeling_to_bytes(labeling)
        rng = random.Random(9)
        for _ in range(60):
            position = rng.randrange(len(blob))
            mangled = bytearray(blob)
            mangled[position] ^= rng.randint(1, 255)
            with pytest.raises(ArtifactCorruptError):
                labeling_from_bytes(bytes(mangled))


class TestResilientOracle:
    def test_healthy_labeling_serves_from_labels(self, healthy):
        graph, labeling = healthy
        oracle = ResilientOracle(
            graph, labeling, verify_sample=graph.num_vertices
        )
        assert oracle.health.healthy
        outcome = oracle.query(0, 39)
        assert outcome.source == "label"
        assert oracle.health.fallbacks == 0

    def test_admission_quarantines_sabotaged_vertices(self, healthy):
        graph, labeling = healthy
        sabotaged = labeling.copy()
        for hub in list(sabotaged.hubs(5)):
            sabotaged.discard_hub(5, hub)
        oracle = ResilientOracle(
            graph, sabotaged, verify_sample=graph.num_vertices
        )
        assert 5 in oracle.quarantined
        assert not oracle.health.healthy

    def test_fallback_answers_are_exact(self, healthy):
        graph, labeling = healthy
        sabotaged = labeling.copy()
        for hub in list(sabotaged.hubs(7)):
            sabotaged.discard_hub(7, hub)
        oracle = ResilientOracle(
            graph, sabotaged, verify_sample=graph.num_vertices
        )
        truth = all_pairs_distances(graph)
        for v in range(graph.num_vertices):
            assert oracle.query(7, v).distance == truth[7][v]
        assert oracle.health.fallbacks > 0

    def test_no_fallback_raises_integrity_error(self, healthy):
        graph, labeling = healthy
        sabotaged = labeling.copy()
        for hub in list(sabotaged.hubs(3)):
            sabotaged.discard_hub(3, hub)
        with pytest.raises(IntegrityError):
            ResilientOracle(
                graph,
                sabotaged,
                fallback=False,
                verify_sample=graph.num_vertices,
            )

    def test_budget_exhaustion_degrades_or_raises(self, healthy):
        graph, labeling = healthy
        degrading = ResilientOracle(graph, labeling, operation_budget=1)
        truth = all_pairs_distances(graph)
        outcome = degrading.query(0, 39)
        assert outcome.distance == truth[0][39]
        assert degrading.health.budget_exhaustions >= 0
        strict = ResilientOracle(
            graph, labeling, fallback=False, operation_budget=1
        )
        raised = False
        for v in range(1, graph.num_vertices):
            try:
                strict.query(0, v)
            except QueryBudgetExceeded as exc:
                assert exc.cost > exc.budget
                raised = True
                break
        assert raised

    def test_out_of_range_vertices_rejected(self, healthy):
        graph, labeling = healthy
        oracle = ResilientOracle(graph, labeling)
        for pair in [(-1, 0), (0, -1), (0, graph.num_vertices), (10**6, 0)]:
            with pytest.raises(DomainError):
                oracle.query(*pair)

    def test_inf_claims_are_cross_checked(self, healthy):
        graph, labeling = healthy
        sabotaged = labeling.copy()
        # Wipe vertex 11's label entirely: its queries claim INF.
        for hub in list(sabotaged.hubs(11)):
            sabotaged.discard_hub(11, hub)
        oracle = ResilientOracle(graph, sabotaged)  # no admission check
        truth = all_pairs_distances(graph)
        outcome = oracle.query(11, 0)
        assert outcome.distance == truth[11][0]
        assert outcome.source == "fallback"
        assert oracle.health.integrity_failures >= 1
        assert 11 in oracle.quarantined

    def test_mismatched_labeling_rejected(self, healthy):
        graph, _ = healthy
        with pytest.raises(IntegrityError):
            ResilientOracle(graph, HubLabeling(graph.num_vertices + 3))

    def test_health_report_counts(self, healthy):
        graph, labeling = healthy
        oracle = ResilientOracle(graph, labeling)
        for v in range(10):
            oracle.query(0, v)
        assert oracle.health.queries == 10
        snapshot = oracle.health.as_dict()
        assert snapshot["queries"] == 10
        assert snapshot["label_answers"] + snapshot["fallbacks"] >= 10


class TestSchemeMisuse:
    def test_mixed_scheme_labels_rejected(self):
        g1 = grid_2d(3, 3)
        g2 = grid_2d(4, 4)
        s1 = DistanceRowScheme(g1)
        s2 = DistanceRowScheme(g2)
        label_a = s1.label(0)
        label_b = s2.label(0)
        with pytest.raises((ValueError, EOFError)):
            # Different id/distance widths -> structural mismatch.
            result = s1.decode(label_a, label_b)
            # Same widths by coincidence: force the error by checking
            # the distance against both graphs.
            if result not in (0,):
                raise ValueError("inconsistent decode")

    def test_hub_scheme_garbage_label(self, healthy):
        _, labeling = healthy
        scheme = HubEncodedScheme(labeling)
        good = scheme.label(0)
        garbage = tuple([1] * 5)
        with pytest.raises((EOFError, ValueError)):
            scheme.decode(good, garbage)

    def test_reader_overrun_raises(self):
        reader = BitReader((1, 0, 1))
        reader.read_fixed(3)
        with pytest.raises(EOFError):
            reader.read_fixed(1)


class TestChaosSweep:
    """The acceptance gate: no fault ever produces a silent wrong answer."""

    @pytest.fixture(scope="class")
    def swept(self):
        graph = random_sparse_graph(26, seed=11)
        labeling = pruned_landmark_labeling(graph)
        assert is_valid_cover(graph, labeling)
        report = chaos_sweep(
            graph,
            labeling,
            trials_per_kind=50,
            queries_per_trial=8,
            seed=2026,
        )
        return report

    def test_at_least_200_injections_across_all_kinds(self, swept):
        assert swept.num_injections >= 200
        assert set(swept.by_kind()) == set(FAULT_KINDS)

    def test_zero_silently_wrong_answers(self, swept):
        assert swept.ok
        assert all(outcome.wrong == 0 for outcome in swept.outcomes)

    def test_byte_faults_detected_at_load(self, swept):
        summary = swept.by_kind()
        for kind in ("bit-flip", "truncate"):
            assert summary[kind]["detected_at_load"] == summary[kind][
                "injections"
            ]

    def test_label_faults_served_exactly(self, swept):
        summary = swept.by_kind()
        for kind in ("drop-hub", "perturb"):
            assert summary[kind]["queries"] > 0
            assert summary[kind]["wrong"] == 0

    def test_sweep_is_deterministic(self):
        graph = random_sparse_graph(18, seed=4)
        labeling = pruned_landmark_labeling(graph)
        first = chaos_sweep(
            graph, labeling, trials_per_kind=5, queries_per_trial=4, seed=7
        )
        second = chaos_sweep(
            graph, labeling, trials_per_kind=5, queries_per_trial=4, seed=7
        )
        assert first.outcomes == second.outcomes

    def test_flat_backend_grades_identically(self):
        # The flat store changes layout, not answers: the same sweep
        # served through backend="flat" must produce the same outcomes,
        # fault for fault, including zero wrong answers.
        graph = random_sparse_graph(18, seed=4)
        labeling = pruned_landmark_labeling(graph)
        dict_report = chaos_sweep(
            graph, labeling, trials_per_kind=5, queries_per_trial=4, seed=7
        )
        flat_report = chaos_sweep(
            graph,
            labeling,
            trials_per_kind=5,
            queries_per_trial=4,
            seed=7,
            backend="flat",
        )
        assert flat_report.ok
        assert flat_report.outcomes == dict_report.outcomes

    def test_render_mentions_verdict(self, swept):
        text = swept.render()
        assert "zero wrong answers" in text
        assert "bit-flip" in text

    def test_rejects_unknown_kind(self, healthy):
        graph, labeling = healthy
        with pytest.raises(ValueError):
            chaos_sweep(graph, labeling, kinds=("gamma-ray",))

    def test_legacy_artifacts_still_load_after_sweep(self, healthy):
        # The acceptance criterion's compatibility clause: pre-envelope
        # blobs written by old code keep loading bit-exactly.
        _, labeling = healthy
        legacy = labeling_to_bytes(labeling, envelope=False)
        restored = labeling_from_bytes(legacy)
        assert all(
            dict(restored.hubs(v)) == dict(labeling.hubs(v))
            for v in range(labeling.num_vertices)
        )

    def test_empty_report_is_ok(self):
        assert ChaosReport().ok
        assert ChaosReport().num_injections == 0


class TestChaosAcrossTheZoo:
    """The sweep holds on every zoo family, not just the sparse stock.

    Each family stresses a different code path: BA's high-degree hubs
    dominate labels, the configuration model is (often) disconnected so
    fallback must reproduce INF, small-world rings have fat girth,
    road grids are near-planar.  Zero silent wrong answers everywhere.
    """

    @pytest.mark.parametrize(
        "family,build",
        [
            ("ba", lambda: barabasi_albert(24, 2, seed=13)),
            ("powerlaw", lambda: powerlaw_configuration(24, seed=13)),
            ("smallworld", lambda: watts_strogatz(24, 4, 0.2, seed=13)),
            ("road", lambda: road_network(5, 5, seed=13)),
        ],
    )
    def test_zoo_family_sweeps_clean(self, family, build):
        graph = build()
        labeling = pruned_landmark_labeling(graph)
        assert is_valid_cover(graph, labeling)
        report = chaos_sweep(
            graph,
            labeling,
            trials_per_kind=8,
            queries_per_trial=4,
            seed=2026,
        )
        assert report.ok, (family, report.by_kind())
        assert set(report.by_kind()) == set(FAULT_KINDS)
        assert all(outcome.wrong == 0 for outcome in report.outcomes)

    def test_disconnected_family_grades_inf_correctly(self):
        """A multi-component configuration graph: INF pairs must survive
        quarantine + fallback without being absorbed into finite lies."""
        from repro.graphs import connected_components

        graph = None
        for seed in range(40):
            candidate = powerlaw_configuration(20, seed=seed)
            if len(connected_components(candidate)) > 1:
                graph = candidate
                break
        assert graph is not None, "no disconnected powerlaw draw in 40 seeds"
        labeling = pruned_landmark_labeling(graph)
        report = chaos_sweep(
            graph,
            labeling,
            trials_per_kind=6,
            queries_per_trial=6,
            seed=77,
        )
        assert report.ok
