"""Failure injection: corrupted inputs must be *detected*, not absorbed.

A labeling store is only trustworthy if its checkers catch sabotage:
wrong distances, deleted hubs, truncated serializations, foreign
labels.  Each test corrupts a healthy artifact and asserts the library
reports the problem instead of silently returning wrong answers.
"""

import random

import pytest

from repro.core import (
    HubLabeling,
    is_valid_cover,
    labeling_from_bytes,
    labeling_to_bytes,
    pruned_landmark_labeling,
    verify_cover,
    verify_cover_sampled,
)
from repro.graphs import grid_2d, random_sparse_graph
from repro.labeling import BitReader, DistanceRowScheme, HubEncodedScheme


@pytest.fixture
def healthy():
    graph = random_sparse_graph(40, seed=6)
    return graph, pruned_landmark_labeling(graph)


class TestCoverChecker:
    def test_deleted_hub_detected(self, healthy):
        graph, labeling = healthy
        sabotaged = labeling.copy()
        # Remove the globally most-used hub from a few labels.
        rng = random.Random(1)
        victims = rng.sample(range(40), 10)
        top_hub = max(
            range(40),
            key=lambda h: sum(
                1 for v in range(40) if labeling.hub_distance(v, h) is not None
            ),
        )
        for v in victims:
            sabotaged.discard_hub(v, top_hub)
        report = verify_cover(graph, sabotaged)
        assert not report.ok
        assert report.violations

    def test_inflated_distance_detected(self, healthy):
        graph, labeling = healthy
        sabotaged = labeling.copy()
        v = 5
        hubs = sabotaged.hub_set(v)
        target = hubs[-1]
        sabotaged.discard_hub(v, target)
        old = labeling.hub_distance(v, target)
        sabotaged.add_hub(v, target, old + 3)
        # Inflation can only surface as an over-estimate somewhere...
        report = verify_cover(graph, sabotaged)
        # ...unless another hub still certifies every pair -- then the
        # labeling is still correct.  Either way, no crash and the
        # verdict matches a recomputation.
        assert report.num_pairs > 0

    def test_sampled_checker_catches_empty_labels(self, healthy):
        graph, _ = healthy
        empty = HubLabeling(graph.num_vertices)
        report = verify_cover_sampled(graph, empty, num_sources=5, seed=2)
        assert not report.ok

    def test_sampled_checker_passes_healthy(self, healthy):
        graph, labeling = healthy
        report = verify_cover_sampled(graph, labeling, num_sources=8, seed=3)
        assert report.ok


class TestSerializationCorruption:
    def test_truncated_blob_raises(self, healthy):
        _, labeling = healthy
        blob = labeling_to_bytes(labeling)
        with pytest.raises((EOFError, ValueError, IndexError)):
            labeling_from_bytes(blob[: len(blob) // 2])

    def test_bit_flip_changes_or_raises(self, healthy):
        graph, labeling = healthy
        blob = bytearray(labeling_to_bytes(labeling))
        blob[20] ^= 0xFF
        try:
            mangled = labeling_from_bytes(bytes(blob))
        except (EOFError, ValueError):
            return  # detected structurally -- fine
        # If it parses, the decoded labeling must differ (the flip can
        # not be silently absorbed).
        differs = any(
            dict(mangled.hubs(v)) != dict(labeling.hubs(v))
            for v in range(min(mangled.num_vertices, labeling.num_vertices))
        ) or mangled.num_vertices != labeling.num_vertices
        assert differs


class TestSchemeMisuse:
    def test_mixed_scheme_labels_rejected(self):
        g1 = grid_2d(3, 3)
        g2 = grid_2d(4, 4)
        s1 = DistanceRowScheme(g1)
        s2 = DistanceRowScheme(g2)
        label_a = s1.label(0)
        label_b = s2.label(0)
        with pytest.raises((ValueError, EOFError)):
            # Different id/distance widths -> structural mismatch.
            result = s1.decode(label_a, label_b)
            # Same widths by coincidence: force the error by checking
            # the distance against both graphs.
            if result not in (0,):
                raise ValueError("inconsistent decode")

    def test_hub_scheme_garbage_label(self, healthy):
        _, labeling = healthy
        scheme = HubEncodedScheme(labeling)
        good = scheme.label(0)
        garbage = tuple([1] * 5)
        with pytest.raises((EOFError, ValueError)):
            scheme.decode(good, garbage)

    def test_reader_overrun_raises(self):
        reader = BitReader((1, 0, 1))
        reader.read_fixed(3)
        with pytest.raises(EOFError):
            reader.read_fixed(1)
