"""The shift function and its Sum-Index extraction (Section 1.2)."""

from repro.sumindex import (
    GraphLabelingProtocol,
    TrivialProtocol,
    cyclic_shift,
    protocol_for_shift_bit,
    shift_output_bit_as_sumindex,
)


class TestShiftFunction:
    def test_shift_basic(self):
        assert cyclic_shift((1, 0, 0, 1), 1) == (0, 0, 1, 1)
        assert cyclic_shift((1, 0, 0, 1), 0) == (1, 0, 0, 1)
        assert cyclic_shift((1, 0, 0, 1), 4) == (1, 0, 0, 1)

    def test_shift_negative_and_large(self):
        bits = (1, 1, 0, 0)
        assert cyclic_shift(bits, -1) == cyclic_shift(bits, 3)
        assert cyclic_shift(bits, 9) == cyclic_shift(bits, 1)

    def test_empty(self):
        assert cyclic_shift((), 3) == ()


class TestExtraction:
    def test_output_bit_equals_sumindex_answer(self):
        bits = (1, 0, 1, 1, 0, 0, 1, 0)
        for k in range(8):
            shifted = cyclic_shift(bits, k)
            for i in range(8):
                inst = shift_output_bit_as_sumindex(bits, i, k)
                assert inst.answer == shifted[i]

    def test_shift_through_trivial_protocol(self):
        bits = (1, 0, 1, 0)
        protocol = TrivialProtocol(4)
        for k in range(4):
            shifted = cyclic_shift(bits, k)
            for i in range(4):
                out, _, _ = protocol_for_shift_bit(protocol, bits, i, k)
                assert out == shifted[i]

    def test_shift_through_graph_protocol(self):
        bits = (1, 0)
        protocol = GraphLabelingProtocol(2, 1)
        for k in range(2):
            shifted = cyclic_shift(bits, k)
            for i in range(2):
                out, _, _ = protocol_for_shift_bit(protocol, bits, i, k)
                assert out == shifted[i]
