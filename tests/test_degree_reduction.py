"""Degree reduction by vertex splitting (end of Section 4)."""

import math

import pytest

from repro.core import (
    is_valid_cover,
    project_labeling,
    pruned_landmark_labeling,
    reduce_degree,
)
from repro.graphs import (
    Graph,
    shortest_path_distances,
    star_graph,
    random_sparse_graph,
    complete_graph,
)


class TestReduction:
    def test_star_split(self):
        g = star_graph(10)  # center degree 9
        reduction = reduce_degree(g, chunk=3)
        assert reduction.reduced.max_degree() <= 3 + 2
        # Center splits into ceil(9/3) = 3 copies.
        center_copies = [
            v for v in reduction.reduced.vertices()
            if reduction.origin[v] == 0
        ]
        assert len(center_copies) == 3

    def test_default_chunk_is_average_degree(self):
        g = random_sparse_graph(40, seed=1, avg_degree=4.0)
        reduction = reduce_degree(g)
        expected = max(1, math.ceil(g.num_edges / g.num_vertices))
        assert reduction.chunk == expected
        assert reduction.reduced.max_degree() <= expected + 2

    def test_distances_preserved(self):
        g = random_sparse_graph(30, seed=2, avg_degree=5.0)
        reduction = reduce_degree(g, chunk=2)
        for u in range(0, 30, 5):
            dist_orig, _ = shortest_path_distances(g, u)
            dist_red, _ = shortest_path_distances(
                reduction.reduced, reduction.representative[u]
            )
            for v in range(30):
                assert dist_orig[v] == dist_red[reduction.representative[v]]

    def test_copies_at_distance_zero(self):
        g = complete_graph(8)
        reduction = reduce_degree(g, chunk=2)
        copies = {}
        for v in reduction.reduced.vertices():
            copies.setdefault(reduction.origin[v], []).append(v)
        for group in copies.values():
            dist, _ = shortest_path_distances(reduction.reduced, group[0])
            assert all(dist[c] == 0 for c in group)

    def test_edge_weights_preserved(self):
        g = Graph(3)
        g.add_edge(0, 1, 4)
        g.add_edge(1, 2, 6)
        reduction = reduce_degree(g, chunk=1)
        dist, _ = shortest_path_distances(
            reduction.reduced, reduction.representative[0]
        )
        assert dist[reduction.representative[2]] == 10

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            reduce_degree(star_graph(4), chunk=0)

    def test_vertex_counts(self):
        g = star_graph(7)
        reduction = reduce_degree(g, chunk=2)
        # Leaves stay single; center (degree 6) gets 3 copies.
        assert reduction.reduced.num_vertices == 6 + 3

    def test_empty_graph(self):
        reduction = reduce_degree(Graph())
        assert reduction.reduced.num_vertices == 0


class TestProjection:
    def test_projected_labeling_is_valid(self):
        g = random_sparse_graph(30, seed=3, avg_degree=5.0)
        reduction = reduce_degree(g, chunk=2)
        reduced_labeling = pruned_landmark_labeling(reduction.reduced)
        assert is_valid_cover(reduction.reduced, reduced_labeling)
        projected = project_labeling(reduction, reduced_labeling)
        assert is_valid_cover(g, projected)

    def test_projection_size_never_larger(self):
        g = random_sparse_graph(25, seed=4, avg_degree=5.0)
        reduction = reduce_degree(g, chunk=2)
        reduced_labeling = pruned_landmark_labeling(reduction.reduced)
        projected = project_labeling(reduction, reduced_labeling)
        for v in range(25):
            rep = reduction.representative[v]
            assert projected.label_size(v) <= reduced_labeling.label_size(rep)

    def test_size_mismatch_rejected(self):
        from repro.core import HubLabeling

        g = star_graph(5)
        reduction = reduce_degree(g, chunk=2)
        with pytest.raises(ValueError):
            project_labeling(reduction, HubLabeling(3))
