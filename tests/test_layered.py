"""The weighted layered graph H_{b,l} and Lemma 2.2."""

import pytest

from repro.graphs import (
    count_shortest_paths,
    shortest_path,
    shortest_path_distances,
)
from repro.lowerbound import LayeredGraph


class TestStructure:
    @pytest.mark.parametrize("b,ell", [(1, 1), (1, 2), (2, 1), (2, 2)])
    def test_vertex_count(self, b, ell):
        lay = LayeredGraph(b, ell)
        s = 2 ** b
        assert lay.graph.num_vertices == (2 * ell + 1) * s ** ell

    @pytest.mark.parametrize("b,ell", [(1, 1), (2, 1), (1, 2)])
    def test_interior_degree_is_2s(self, b, ell):
        lay = LayeredGraph(b, ell)
        s = 2 ** b
        for vector in lay.vectors():
            v = lay.vertex(1, vector) if ell >= 1 else None
            assert lay.graph.degree(v) == 2 * s
        # Boundary levels have degree s.
        for vector in lay.vectors():
            assert lay.graph.degree(lay.vertex(0, vector)) == s

    def test_active_coordinate_mirrored(self):
        lay = LayeredGraph(1, 3)
        ups = [lay.active_coordinate(i) for i in range(3)]
        downs = [lay.active_coordinate(i) for i in range(3, 6)]
        assert ups == [0, 1, 2]
        assert downs == [2, 1, 0]

    def test_active_coordinate_out_of_range(self):
        lay = LayeredGraph(1, 1)
        with pytest.raises(ValueError):
            lay.active_coordinate(2)

    def test_edge_weights(self):
        lay = LayeredGraph(2, 1)
        # A = 3 * 1 * 16 = 48; change by 3 costs 48 + 9.
        v0 = lay.vertex(0, (0,))
        v1 = lay.vertex(1, (3,))
        assert lay.graph.edge_weight(v0, v1) == 48 + 9
        same = lay.vertex(1, (0,))
        assert lay.graph.edge_weight(v0, same) == 48

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LayeredGraph(0, 1)
        with pytest.raises(ValueError):
            LayeredGraph(1, 0)


class TestLemma22:
    @pytest.mark.parametrize("b,ell", [(1, 1), (2, 1), (1, 2)])
    def test_uniqueness_and_midpoint_exhaustive(self, b, ell):
        lay = LayeredGraph(b, ell)
        top = 2 * ell
        for x, z in lay.lemma_pairs():
            vx = lay.vertex(0, x)
            vz = lay.vertex(top, z)
            dist, count = count_shortest_paths(lay.graph, vx)
            assert count[vz] == 1, f"not unique for {x} -> {z}"
            assert dist[vz] == lay.unique_path_length(x, z)
            path = shortest_path(lay.graph, vx, vz)
            assert lay.vertex(ell, lay.midpoint(x, z)) in path

    def test_unique_path_vertices_is_the_shortest_path(self):
        lay = LayeredGraph(2, 2)
        x, z = (1, 0), (3, 2)
        claimed = lay.unique_path_vertices(x, z)
        actual = shortest_path(lay.graph, claimed[0], claimed[-1])
        assert claimed == actual

    def test_point_symmetry_of_deltas(self):
        lay = LayeredGraph(2, 2)
        x, z = (0, 2), (2, 0)
        mid = lay.midpoint(x, z)
        assert mid == (1, 1)
        path = lay.unique_path_vertices(x, z)
        assert path[lay.ell] == lay.vertex(lay.ell, mid)

    def test_non_lemma_pair_rejected(self):
        lay = LayeredGraph(2, 1)
        with pytest.raises(ValueError):
            lay.midpoint((0,), (1,))
        with pytest.raises(ValueError):
            lay.unique_path_length((0,), (3,))

    def test_triplet_count(self):
        lay = LayeredGraph(2, 2)
        assert lay.midpoint_triplet_count() == 16 * 4
        assert sum(1 for _ in lay.lemma_pairs()) == 16 * 4

    def test_odd_gap_pairs_can_tie(self):
        # Sanity: the lemma premise matters -- for odd gaps no claim is
        # made, and ties genuinely appear.
        lay = LayeredGraph(1, 1)  # s = 2: gap 1 is odd
        vx = lay.vertex(0, (0,))
        vz = lay.vertex(2, (1,))
        dist, count = count_shortest_paths(lay.graph, vx)
        assert count[vz] == 2  # split (0,1) and (1,0) tie


class TestFigure1:
    """Figure 1 shows H_{2,2}: blue path length 4A + 4, red 4A + 8."""

    def test_blue_path(self):
        lay = LayeredGraph(2, 2)
        a = lay.base_weight
        assert a == 96
        x, z = (1, 0), (3, 2)
        assert lay.unique_path_length(x, z) == 4 * a + 4
        assert lay.midpoint(x, z) == (2, 1)
        dist, _ = shortest_path_distances(lay.graph, lay.vertex(0, x))
        assert dist[lay.vertex(4, z)] == 4 * a + 4

    def test_red_path_costs_4a_plus_8(self):
        # The uneven split (delta, delta') = (2, 0) per coordinate.
        lay = LayeredGraph(2, 2)
        a = lay.base_weight
        x, z = (1, 0), (3, 2)
        red = [
            lay.vertex(0, (1, 0)),
            lay.vertex(1, (3, 0)),  # coord 0 jumps by 2: A + 4
            lay.vertex(2, (3, 2)),  # coord 1 jumps by 2: A + 4
            lay.vertex(3, (3, 2)),  # A
            lay.vertex(4, (3, 2)),  # A
        ]
        from repro.graphs import path_weight

        assert path_weight(lay.graph, red) == 4 * a + 8
