"""The command-line interface."""

import pytest

from repro.cli import main


class TestInstance:
    def test_instance_command(self, capsys):
        assert main(["instance", "--b", "1", "--l", "1"]) == 0
        out = capsys.readouterr().out
        assert "Degree3Instance" in out
        assert "certificate" in out


class TestLabelAndQuery:
    def test_label_generator_verify(self, capsys):
        assert (
            main(
                [
                    "label",
                    "--generator",
                    "sparse:40",
                    "--method",
                    "pll",
                    "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "valid 2-hop cover: True" in out

    def test_label_save_and_query(self, tmp_path, capsys):
        target = tmp_path / "labels.bin"
        assert (
            main(
                [
                    "label",
                    "--generator",
                    "grid:36",
                    "--save",
                    str(target),
                ]
            )
            == 0
        )
        assert target.exists()
        capsys.readouterr()
        assert main(["query", str(target), "0", "35"]) == 0
        out = capsys.readouterr().out
        assert "dist(0, 35) = 10" in out

    def test_label_from_edgelist_file(self, tmp_path, capsys):
        graph_file = tmp_path / "g.txt"
        graph_file.write_text("3 2\n0 1 1\n1 2 1\n")
        assert main(["label", "--graph", str(graph_file), "--verify"]) == 0
        assert "True" in capsys.readouterr().out

    def test_unknown_generator(self):
        with pytest.raises(SystemExit):
            main(["label", "--generator", "nope:10"])

    def test_no_graph_source(self):
        with pytest.raises(SystemExit):
            main(["label"])

    def test_odd_query_vertices(self, tmp_path):
        target = tmp_path / "labels.bin"
        main(["label", "--generator", "tree:10", "--save", str(target)])
        with pytest.raises(SystemExit):
            main(["query", str(target), "0", "1", "2"])

    @pytest.mark.parametrize("method", ["greedy", "sparse", "rs"])
    def test_all_methods(self, method, capsys):
        assert (
            main(
                [
                    "label",
                    "--generator",
                    "tree:20",
                    "--method",
                    method,
                    "--verify",
                ]
            )
            == 0
        )
        assert "valid 2-hop cover: True" in capsys.readouterr().out


class TestBuildCommand:
    def test_build_without_cache(self, capsys):
        assert main(["build", "--generator", "grid:36"]) == 0
        out = capsys.readouterr().out
        assert "cache: off" in out
        assert "label entries" in out

    def test_build_miss_then_hit(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(
            ["build", "--generator", "grid:36", "--cache-dir", cache]
        ) == 0
        assert "cache: miss" in capsys.readouterr().out
        assert main(
            ["build", "--generator", "grid:36", "--cache-dir", cache]
        ) == 0
        assert "cache: hit" in capsys.readouterr().out

    def test_build_save_artifact(self, tmp_path, capsys):
        target = tmp_path / "labels.rhl"
        assert main(
            ["build", "--generator", "tree:12", "--save", str(target)]
        ) == 0
        assert target.exists()
        capsys.readouterr()
        # The saved flat artifact is queryable like any labeling file.
        assert main(["query", str(target), "0", "0"]) == 0
        assert "dist(0, 0) = 0" in capsys.readouterr().out

    def test_build_needs_graph_source(self):
        with pytest.raises(SystemExit):
            main(["build"])


class TestQueryFromCache:
    def test_warm_query_skips_construction(self, tmp_path, capsys):
        import json

        from repro.obs.registry import Registry, use_registry

        cache = str(tmp_path / "cache")
        # Run the cold build under a throwaway registry so the warm
        # query's snapshot below starts clean.
        with use_registry(Registry()):
            assert main(
                ["build", "--generator", "grid:36", "--cache-dir", cache]
            ) == 0
        capsys.readouterr()
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "query",
                    "0",
                    "35",
                    "--generator",
                    "grid:36",
                    "--cache-dir",
                    cache,
                    "--metrics-out",
                    str(metrics),
                ]
            )
            == 0
        )
        assert "dist(0, 35) = 10" in capsys.readouterr().out
        snapshot = json.loads(metrics.read_text())
        by_name = {}
        for metric in snapshot["metrics"]:
            by_name.setdefault(metric["name"], []).append(metric)
        assert by_name["build.cache_hits"][0]["value"] == 1
        assert by_name["build.cache_misses"][0]["value"] == 0
        # The warm run did no construction: no build.flat span at all.
        spans = {
            tuple(sorted(m.get("labels", {}).items()))
            for m in by_name.get("span.duration_seconds", [])
        }
        assert (("span", "build.flat"),) not in spans

    def test_cache_dir_needs_graph(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["query", "0", "1", "--cache-dir", str(tmp_path)])

    def test_cache_dir_rejects_labeling_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    "labels.bin",
                    "0",
                    "1",
                    "--generator",
                    "grid:36",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )

    def test_query_without_labeling_or_cache(self, capsys):
        # Without --cache-dir the first positional is the labeling file.
        assert main(["query", "0", "1"]) == 74
        assert "error:" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["query"])

    def test_cached_query_through_runtime(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert (
            main(
                [
                    "query",
                    "0",
                    "35",
                    "--generator",
                    "grid:36",
                    "--cache-dir",
                    cache,
                    "--verify-sample",
                    "8",
                ]
            )
            == 0
        )
        assert "dist(0, 35) = 10" in capsys.readouterr().out


class TestChaosFromCache:
    def test_chaos_reuses_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = [
            "chaos",
            "--generator",
            "tree:15",
            "--trials",
            "2",
            "--queries",
            "3",
            "--cache-dir",
            cache,
        ]
        assert main(args) == 0
        assert main(args) == 0
        assert "zero wrong answers" in capsys.readouterr().out

    def test_chaos_cache_requires_pll(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "chaos",
                    "--generator",
                    "tree:15",
                    "--method",
                    "greedy",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )


class TestExperiments:
    def test_fast_subset(self, capsys):
        assert main(["experiments", "--only", "E1,E8", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "RS graphs" in out

    def test_e10(self, capsys):
        assert main(["experiments", "--only", "E10"]) == 0
        assert "degree reduction" in capsys.readouterr().out


class TestExperimentsWrite:
    def test_write_file(self, tmp_path, capsys):
        target = tmp_path / "tables.md"
        assert (
            main(
                [
                    "experiments",
                    "--only",
                    "E1,E10",
                    "--fast",
                    "--write",
                    str(target),
                ]
            )
            == 0
        )
        content = target.read_text()
        assert "Figure 1" in content
        assert "degree reduction" in content

    def test_new_experiment_ids(self, capsys):
        assert main(["experiments", "--only", "E14", "--fast"]) == 0
        assert "bits per label" in capsys.readouterr().out


class TestResilientQuery:
    def _save(self, tmp_path, generator="grid:36"):
        target = tmp_path / "labels.bin"
        assert main(
            ["label", "--generator", generator, "--save", str(target)]
        ) == 0
        return target

    def test_query_through_runtime(self, tmp_path, capsys):
        target = self._save(tmp_path)
        capsys.readouterr()
        assert (
            main(
                [
                    "query",
                    str(target),
                    "0",
                    "35",
                    "--generator",
                    "grid:36",
                    "--verify-sample",
                    "36",
                ]
            )
            == 0
        )
        assert "dist(0, 35) = 10" in capsys.readouterr().out

    def test_fallback_needs_graph(self, tmp_path):
        target = self._save(tmp_path)
        with pytest.raises(SystemExit):
            main(["query", str(target), "0", "1", "--fallback"])
        with pytest.raises(SystemExit):
            main(["query", str(target), "0", "1", "--verify-sample", "4"])

    def test_mismatched_graph_is_integrity_error(self, tmp_path, capsys):
        target = self._save(tmp_path, generator="tree:10")
        assert (
            main(
                ["query", str(target), "0", "1", "--generator", "grid:36"]
            )
            == 67
        )
        assert "IntegrityError" in capsys.readouterr().err


class TestErrorExitCodes:
    def test_corrupt_artifact_exits_65(self, tmp_path, capsys):
        target = tmp_path / "labels.bin"
        main(["label", "--generator", "tree:12", "--save", str(target)])
        blob = bytearray(target.read_bytes())
        blob[-2] ^= 0xFF
        target.write_bytes(bytes(blob))
        capsys.readouterr()
        assert main(["query", str(target), "0", "1"]) == 65
        err = capsys.readouterr().err
        assert "ArtifactCorruptError" in err
        assert "\n" not in err.strip()  # one-line diagnostic, no traceback

    def test_malformed_edgelist_exits_66(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("2 1\n0 nope 1\n")
        assert main(["label", "--graph", str(bad)]) == 66
        assert "line 2" in capsys.readouterr().err

    def test_out_of_range_query_exits_69(self, tmp_path, capsys):
        target = tmp_path / "labels.bin"
        main(["label", "--generator", "tree:12", "--save", str(target)])
        capsys.readouterr()
        assert main(["query", str(target), "0", "99"]) == 69
        assert "DomainError" in capsys.readouterr().err

    def test_missing_file_exits_74(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "nope.bin"), "0", "1"]) == 74
        assert "error:" in capsys.readouterr().err


class TestChaosCommand:
    def test_sweep_reports_zero_wrong(self, capsys):
        assert (
            main(
                [
                    "chaos",
                    "--generator",
                    "sparse:20",
                    "--trials",
                    "4",
                    "--queries",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "zero wrong answers" in out
        for kind in ("bit-flip", "truncate", "drop-hub", "perturb"):
            assert kind in out

    def test_fault_subset(self, capsys):
        assert (
            main(
                [
                    "chaos",
                    "--generator",
                    "tree:15",
                    "--trials",
                    "3",
                    "--faults",
                    "bit-flip,truncate",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bit-flip" in out
        assert "drop-hub" not in out

    def test_unknown_fault_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--faults", "cosmic-ray"])


class TestBench:
    def test_quick_bench_writes_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_perf.json"
        assert (
            main(
                [
                    "bench",
                    "--quick",
                    "--out",
                    str(out),
                    "--sources",
                    "2",
                    "--repeats",
                    "1",
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "batch_speedup" in text
        assert str(out) in text
        results = json.loads(out.read_text())
        assert results["backend_consistency"]["value"] == 0
        for row in results.values():
            assert {"metric", "value", "unit", "instance", "seed"} <= set(
                row
            )


class TestServeCommand:
    def test_serve_self_test_grades_clean(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--generator",
                    "sparse:60",
                    "--clients",
                    "4",
                    "--requests",
                    "50",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wrong:      0" in out
        assert "verdict:    OK" in out
        assert "batches:" in out

    def test_serve_resilient_path(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--generator",
                    "sparse:40",
                    "--clients",
                    "2",
                    "--requests",
                    "25",
                    "--resilient",
                    "--verify-sample",
                    "8",
                ]
            )
            == 0
        )
        assert "ResilientOracle" in capsys.readouterr().out

    def test_serve_reuses_label_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "labels")
        assert main(["build", "--generator", "sparse:60", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "serve",
                    "--generator",
                    "sparse:60",
                    "--cache-dir",
                    cache_dir,
                    "--clients",
                    "2",
                    "--requests",
                    "20",
                ]
            )
            == 0
        )
        assert "verdict:    OK" in capsys.readouterr().out

    def test_serve_writes_metrics_dump(self, tmp_path, capsys):
        import json

        dump = tmp_path / "serve_metrics.json"
        assert (
            main(
                [
                    "serve",
                    "--generator",
                    "sparse:40",
                    "--clients",
                    "2",
                    "--requests",
                    "20",
                    "--metrics-out",
                    str(dump),
                ]
            )
            == 0
        )
        names = {m["name"] for m in json.loads(dump.read_text())["metrics"]}
        assert "serve.requests" in names
        assert "serve.batches" in names


class TestLoadgenCommand:
    def test_loadgen_throughput_mode(self, capsys):
        assert (
            main(
                [
                    "loadgen",
                    "--generator",
                    "sparse:60",
                    "--clients",
                    "2",
                    "--requests",
                    "100",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "throughput:" in out
        assert "verdict:    OK" in out

    def test_loadgen_validate_grades(self, capsys):
        assert (
            main(
                [
                    "loadgen",
                    "--generator",
                    "sparse:40",
                    "--clients",
                    "2",
                    "--requests",
                    "50",
                    "--validate",
                ]
            )
            == 0
        )
        assert "wrong:      0" in capsys.readouterr().out


class TestZooGeneratorKinds:
    @pytest.mark.parametrize("kind", ["ba", "powerlaw", "smallworld", "road"])
    def test_label_accepts_zoo_kind(self, kind, capsys):
        assert (
            main(
                ["label", "--generator", f"{kind}:40", "--verify"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "valid 2-hop cover: True" in out

    def test_unknown_kind_still_rejected(self):
        with pytest.raises(SystemExit):
            main(["label", "--generator", "smallwrld:40"])


class TestLoadgenDistributions:
    @pytest.mark.parametrize("distribution", ["zipf", "hotspot"])
    def test_skewed_loadgen_grades_clean(self, distribution, capsys):
        assert (
            main(
                [
                    "loadgen",
                    "--generator",
                    "sparse:50",
                    "--clients",
                    "2",
                    "--requests",
                    "40",
                    "--distribution",
                    distribution,
                    "--validate",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wrong:      0" in out
        assert "verdict:    OK" in out

    def test_hotspot_flags_accepted_by_serve(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--generator",
                    "smallworld:40",
                    "--clients",
                    "2",
                    "--requests",
                    "30",
                    "--distribution",
                    "hotspot",
                    "--hot-pairs",
                    "4",
                    "--hot-fraction",
                    "0.8",
                ]
            )
            == 0
        )
        assert "verdict:    OK" in capsys.readouterr().out

    def test_unknown_distribution_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "loadgen",
                    "--generator",
                    "sparse:30",
                    "--distribution",
                    "pareto",
                ]
            )


class TestBenchZooSuite:
    def test_zoo_suite_merges_without_clobbering_core(self, tmp_path,
                                                      capsys):
        import json

        out = tmp_path / "BENCH_perf.json"
        # Seed the file with a fake committed core entry...
        core_row = {
            "metric": "speedup",
            "value": 2.8,
            "unit": "x",
            "instance": "G(2,1)",
            "seed": 7,
        }
        out.write_text(json.dumps({"batch_speedup": core_row}))
        assert (
            main(
                [
                    "bench",
                    "--quick",
                    "--suite",
                    "graph_zoo",
                    "--sources",
                    "2",
                    "--repeats",
                    "1",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "graph_zoo.road.consistency" in text
        results = json.loads(out.read_text())
        # ...the zoo merge keeps it byte-identical.
        assert results["batch_speedup"] == core_row
        zoo = [k for k in results if k.startswith("graph_zoo.")]
        assert len(zoo) >= 4 * 4  # >= 4 suites for >= 4 families
        for name in zoo:
            assert {"metric", "value", "unit", "instance", "seed",
                    "family", "n"} <= set(results[name])
        for family in ("ba", "powerlaw", "smallworld", "road"):
            assert results[f"graph_zoo.{family}.consistency"]["value"] == 0
