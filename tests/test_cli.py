"""The command-line interface."""

import pytest

from repro.cli import main


class TestInstance:
    def test_instance_command(self, capsys):
        assert main(["instance", "--b", "1", "--l", "1"]) == 0
        out = capsys.readouterr().out
        assert "Degree3Instance" in out
        assert "certificate" in out


class TestLabelAndQuery:
    def test_label_generator_verify(self, capsys):
        assert (
            main(
                [
                    "label",
                    "--generator",
                    "sparse:40",
                    "--method",
                    "pll",
                    "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "valid 2-hop cover: True" in out

    def test_label_save_and_query(self, tmp_path, capsys):
        target = tmp_path / "labels.bin"
        assert (
            main(
                [
                    "label",
                    "--generator",
                    "grid:36",
                    "--save",
                    str(target),
                ]
            )
            == 0
        )
        assert target.exists()
        capsys.readouterr()
        assert main(["query", str(target), "0", "35"]) == 0
        out = capsys.readouterr().out
        assert "dist(0, 35) = 10" in out

    def test_label_from_edgelist_file(self, tmp_path, capsys):
        graph_file = tmp_path / "g.txt"
        graph_file.write_text("3 2\n0 1 1\n1 2 1\n")
        assert main(["label", "--graph", str(graph_file), "--verify"]) == 0
        assert "True" in capsys.readouterr().out

    def test_unknown_generator(self):
        with pytest.raises(SystemExit):
            main(["label", "--generator", "nope:10"])

    def test_no_graph_source(self):
        with pytest.raises(SystemExit):
            main(["label"])

    def test_odd_query_vertices(self, tmp_path):
        target = tmp_path / "labels.bin"
        main(["label", "--generator", "tree:10", "--save", str(target)])
        with pytest.raises(SystemExit):
            main(["query", str(target), "0", "1", "2"])

    @pytest.mark.parametrize("method", ["greedy", "sparse", "rs"])
    def test_all_methods(self, method, capsys):
        assert (
            main(
                [
                    "label",
                    "--generator",
                    "tree:20",
                    "--method",
                    method,
                    "--verify",
                ]
            )
            == 0
        )
        assert "valid 2-hop cover: True" in capsys.readouterr().out


class TestExperiments:
    def test_fast_subset(self, capsys):
        assert main(["experiments", "--only", "E1,E8", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "RS graphs" in out

    def test_e10(self, capsys):
        assert main(["experiments", "--only", "E10"]) == 0
        assert "degree reduction" in capsys.readouterr().out


class TestExperimentsWrite:
    def test_write_file(self, tmp_path, capsys):
        target = tmp_path / "tables.md"
        assert (
            main(
                [
                    "experiments",
                    "--only",
                    "E1,E10",
                    "--fast",
                    "--write",
                    str(target),
                ]
            )
            == 0
        )
        content = target.read_text()
        assert "Figure 1" in content
        assert "degree reduction" in content

    def test_new_experiment_ids(self, capsys):
        assert main(["experiments", "--only", "E14", "--fast"]) == 0
        assert "bits per label" in capsys.readouterr().out
