"""Sum-Index instances and the base-(s/2) vector encoding."""

import pytest

from repro.sumindex import (
    SumIndexInstance,
    index_to_vector,
    random_bitstring,
    vector_to_index,
)


class TestEncoding:
    def test_bijection_on_sub_box(self):
        half, dim = 4, 3
        seen = set()
        from itertools import product

        for vec in product(range(half), repeat=dim):
            idx = vector_to_index(vec, half)
            assert index_to_vector(idx, half, dim) == vec
            seen.add(idx)
        assert seen == set(range(half ** dim))

    def test_linearity_mod_m(self):
        # repr(x + z) == (repr(x) + repr(z)) mod m for any vectors.
        half, dim = 4, 2
        m = half ** dim
        from itertools import product

        for x in product(range(2 * half), repeat=dim):
            for z in product(range(half), repeat=dim):
                summed = tuple(a + b for a, b in zip(x, z))
                assert vector_to_index(summed, half) == (
                    vector_to_index(x, half) + vector_to_index(z, half)
                ) % m

    def test_every_value_has_2_to_l_preimages(self):
        # Over the full [0, s-1]^l box each index value appears 2^l times.
        half, dim = 2, 2  # s = 4
        from collections import Counter
        from itertools import product

        counts = Counter(
            vector_to_index(vec, half)
            for vec in product(range(2 * half), repeat=dim)
        )
        assert all(c == 2 ** dim for c in counts.values())

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            index_to_vector(100, 2, 2)
        with pytest.raises(ValueError):
            index_to_vector(-1, 2, 2)

    def test_invalid_half_side(self):
        with pytest.raises(ValueError):
            vector_to_index((0,), 0)


class TestInstance:
    def test_answer(self):
        inst = SumIndexInstance(bits=(1, 0, 1, 0), alice_index=1, bob_index=2)
        assert inst.answer == 0  # S[3]
        inst2 = SumIndexInstance(bits=(1, 0, 1, 0), alice_index=3, bob_index=3)
        assert inst2.answer == 1  # S[(3+3) mod 4] = S[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            SumIndexInstance(bits=(), alice_index=0, bob_index=0)
        with pytest.raises(ValueError):
            SumIndexInstance(bits=(0, 2), alice_index=0, bob_index=0)
        with pytest.raises(ValueError):
            SumIndexInstance(bits=(0, 1), alice_index=2, bob_index=0)

    def test_random_bitstring_deterministic(self):
        assert random_bitstring(16, seed=1) == random_bitstring(16, seed=1)
        assert random_bitstring(16, seed=1) != random_bitstring(16, seed=2)
        assert all(b in (0, 1) for b in random_bitstring(32, seed=3))
