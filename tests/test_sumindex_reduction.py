"""G'_{b,l}: middle-layer pruning and Observation 3.1."""

import itertools

import pytest

from repro.graphs import INF
from repro.sumindex import (
    build_sumindex_graph,
    decode_membership,
    index_to_vector,
)


class TestConstruction:
    def test_wrong_bit_count_rejected(self):
        with pytest.raises(ValueError):
            build_sumindex_graph(2, 1, (1,))  # needs m = 2
        with pytest.raises(ValueError):
            build_sumindex_graph(2, 1, (1, 2))

    def test_all_ones_removes_nothing(self):
        pruned = build_sumindex_graph(2, 1, (1, 1))
        assert pruned.num_removed == 0
        assert (
            pruned.graph.num_vertices
            == pruned.instance.graph.num_vertices
        )

    def test_all_zeros_removes_whole_layer(self):
        pruned = build_sumindex_graph(2, 1, (0, 0))
        assert pruned.num_removed == 4  # all s = 4 middle vectors

    def test_each_bit_controls_2_to_l_vectors(self):
        pruned = build_sumindex_graph(2, 1, (0, 1))
        assert pruned.num_removed == 2  # 2^l = 2 vectors per bit

    def test_max_degree_still_three(self):
        pruned = build_sumindex_graph(2, 1, (1, 0))
        assert pruned.graph.max_degree() <= 3

    def test_predicate_matches_bits(self):
        bits = (1, 0)
        pruned = build_sumindex_graph(2, 1, bits)
        for vector in pruned.instance.layered.vectors():
            level_key = (1, vector)
            present = level_key in pruned.core_index
            assert present == pruned.predicate(vector)


class TestObservation31:
    @pytest.mark.parametrize("bits", list(itertools.product([0, 1], repeat=2)))
    def test_distance_reveals_the_bit(self, bits):
        b, ell = 2, 1
        pruned = build_sumindex_graph(b, ell, bits)
        half = pruned.half_side
        for a in range(pruned.modulus):
            for bb in range(pruned.modulus):
                x = tuple(2 * d for d in index_to_vector(a, half, ell))
                z = tuple(2 * d for d in index_to_vector(bb, half, ell))
                expected = pruned.expected_distance(x, z)
                measured = pruned.endpoint_distance(x, z)
                decoded = decode_membership(expected, measured)
                assert decoded == bits[(a + bb) % pruned.modulus]

    def test_removed_midpoint_strictly_longer(self):
        pruned = build_sumindex_graph(2, 1, (0, 1))
        # Find a pair whose midpoint bit is 0.

        half = pruned.half_side
        a = bb = 0  # midpoint index 0, bit 0
        x = tuple(2 * d for d in index_to_vector(a, half, 1))
        z = tuple(2 * d for d in index_to_vector(bb, half, 1))
        expected = pruned.expected_distance(x, z)
        measured = pruned.endpoint_distance(x, z)
        assert measured > expected

    def test_intact_midpoint_exact(self):
        pruned = build_sumindex_graph(2, 1, (1, 0))

        half = pruned.half_side
        x = tuple(2 * d for d in index_to_vector(0, half, 1))
        z = tuple(2 * d for d in index_to_vector(0, half, 1))
        assert pruned.endpoint_distance(x, z) == pruned.expected_distance(x, z)

    def test_all_zeros_can_disconnect(self):
        pruned = build_sumindex_graph(2, 1, (0, 0))

        half = pruned.half_side
        x = tuple(2 * d for d in index_to_vector(0, half, 1))
        z = tuple(2 * d for d in index_to_vector(1, half, 1))
        assert pruned.endpoint_distance(x, z) == INF
        assert decode_membership(pruned.expected_distance(x, z), INF) == 0

    def test_decode_membership_basics(self):
        assert decode_membership(10, 10) == 1
        assert decode_membership(10, 12) == 0
        assert decode_membership(10, INF) == 0
