#!/usr/bin/env python3
"""Regenerate the seed-pinned differential corpus (``tests/data/``).

Each case is a small graph drawn from a pinned seed (sparse, tree,
forest, weighted, and one hard-instance slice), its query pairs, and
the ground-truth distances from exact BFS/Dijkstra with ``null``
standing in for +inf.  ``tests/test_differential_backends.py`` replays
every case through both oracle backends and asserts byte-identical
answers -- the corpus makes a backend behavior change show up as a
reviewable test diff even when property testing misses it.

The corpus is committed; rerun this script only when the case list
itself is meant to change::

    python tools/gen_differential_corpus.py
"""

from __future__ import annotations

import json
import math
import os
import random
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

OUT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..",
    "tests",
    "data",
    "differential_corpus.json",
)


def _sparse_case(name, n, extra_edges, seed, weighted=False):
    from repro.graphs import Graph

    rng = random.Random(seed)
    graph = Graph(n)
    # A random spanning tree keeps most cases connected...
    for v in range(1, n):
        graph.add_edge(rng.randrange(v), v, rng.randint(1, 9) if weighted else 1)
    for _ in range(extra_edges):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v, rng.randint(1, 9) if weighted else 1)
    return name, seed, graph


def _forest_case(name, n, seed):
    from repro.graphs import Graph

    rng = random.Random(seed)
    graph = Graph(n)
    # ...and dropping edges with probability 1/3 guarantees INF pairs.
    for v in range(1, n):
        if rng.random() < 2 / 3:
            graph.add_edge(rng.randrange(v), v)
    return name, seed, graph


def _hard_case(name, b, ell, seed):
    from repro.lowerbound import build_degree3_instance

    return name, seed, build_degree3_instance(b, ell).graph


def build_cases():
    cases = []
    specs = [
        _sparse_case("sparse-12", 12, 6, seed=101),
        _sparse_case("sparse-20", 20, 12, seed=202),
        _sparse_case("weighted-10", 10, 8, seed=303, weighted=True),
        _sparse_case("weighted-16", 16, 10, seed=404, weighted=True),
        _forest_case("forest-14", 14, seed=505),
        _forest_case("forest-9", 9, seed=606),
        _hard_case("degree3-G11", 1, 1, seed=707),
    ]
    from repro.graphs.traversal import shortest_path_distances

    for name, seed, graph in specs:
        n = graph.num_vertices
        rng = random.Random(seed)
        if n <= 20:
            pairs = [(u, v) for u in range(n) for v in range(n)]
        else:
            pairs = [
                (rng.randrange(n), rng.randrange(n)) for _ in range(200)
            ]
        rows = {}
        expected = []
        for u, v in pairs:
            if u not in rows:
                rows[u] = shortest_path_distances(graph, u)[0]
            d = rows[u][v]
            expected.append(None if math.isinf(d) else d)
        edges = sorted(
            (u, v, w)
            for u in range(n)
            for v, w in graph.neighbors(u)
            if u < v
        )
        cases.append(
            {
                "name": name,
                "seed": seed,
                "n": n,
                "edges": edges,
                "pairs": [list(pair) for pair in pairs],
                "expected": expected,
            }
        )
    return cases


def main() -> int:
    corpus = {"version": 1, "cases": build_cases()}
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w") as handle:
        json.dump(corpus, handle, indent=1)
        handle.write("\n")
    total_pairs = sum(len(case["pairs"]) for case in corpus["cases"])
    print(
        f"wrote {OUT_PATH}: {len(corpus['cases'])} cases, "
        f"{total_pairs} pinned pairs"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
