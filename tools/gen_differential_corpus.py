#!/usr/bin/env python3
"""Regenerate the seed-pinned differential corpus (``tests/data/``).

Each case is a small graph drawn from a pinned seed, its query pairs,
and the ground-truth distances from exact BFS/Dijkstra with ``null``
standing in for +inf.  ``tests/test_differential_backends.py`` replays
every case through both oracle backends and asserts byte-identical
answers -- the corpus makes a backend behavior change show up as a
reviewable test diff even when property testing misses it.

Version 2 organizes the corpus by graph *family*.  The original
hand-picked cases (sparse, weighted, forest, degree3) keep their names;
on top of them every zoo family from :mod:`repro.graphs.generators` --
Barabasi-Albert (``ba``), power-law configuration (``powerlaw``),
Watts-Strogatz small-world (``smallworld``), and road-network grids
(``road``) -- contributes :data:`CASES_PER_ZOO_FAMILY` seed-swept cases,
so each family's structural quirks (hubs, disconnection, rewired rings,
deleted grid edges) are pinned against all three backends.

The corpus is committed; rerun this script only when the case list
itself is meant to change::

    python tools/gen_differential_corpus.py

CI guards against drift (a hand-edited JSON or a generator change
without regeneration) with::

    python tools/gen_differential_corpus.py --check
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

OUT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..",
    "tests",
    "data",
    "differential_corpus.json",
)

#: Seed-swept cases pinned for every zoo family.
CASES_PER_ZOO_FAMILY = 30

#: The zoo families added in corpus version 2.
ZOO_FAMILIES = ("ba", "powerlaw", "smallworld", "road")


def _sparse_case(name, n, extra_edges, seed, weighted=False):
    from repro.graphs import Graph

    rng = random.Random(seed)
    graph = Graph(n)
    # A random spanning tree keeps most cases connected...
    for v in range(1, n):
        graph.add_edge(rng.randrange(v), v, rng.randint(1, 9) if weighted else 1)
    for _ in range(extra_edges):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v, rng.randint(1, 9) if weighted else 1)
    family = "weighted" if weighted else "sparse"
    return name, family, seed, graph


def _forest_case(name, n, seed):
    from repro.graphs import Graph

    rng = random.Random(seed)
    graph = Graph(n)
    # ...and dropping edges with probability 1/3 guarantees INF pairs.
    for v in range(1, n):
        if rng.random() < 2 / 3:
            graph.add_edge(rng.randrange(v), v)
    return name, "forest", seed, graph


def _hard_case(name, b, ell, seed):
    from repro.lowerbound import build_degree3_instance

    return name, "degree3", seed, build_degree3_instance(b, ell).graph


def _zoo_case(family, index):
    """One seed-swept case of a zoo family; sizes cycle with ``index``."""
    from repro.graphs import (
        barabasi_albert,
        powerlaw_configuration,
        road_network,
        watts_strogatz,
    )

    seed = 10_000 + 1000 * ZOO_FAMILIES.index(family) + index
    if family == "ba":
        n = 8 + (index % 9)  # 8..16
        graph = barabasi_albert(n, 2, seed=seed)
    elif family == "powerlaw":
        n = 8 + (index % 9)
        graph = powerlaw_configuration(n, seed=seed)
    elif family == "smallworld":
        n = 8 + (index % 9)
        graph = watts_strogatz(n, 4, 0.2, seed=seed)
    elif family == "road":
        rows = 2 + (index % 3)  # 2..4
        cols = 3 + (index % 3)  # 3..5
        graph = road_network(rows, cols, seed=seed)
        n = graph.num_vertices
    else:  # pragma: no cover - guarded by ZOO_FAMILIES
        raise ValueError(f"unknown family {family!r}")
    return f"{family}-{n}-s{seed}", family, seed, graph


def build_cases():
    specs = [
        _sparse_case("sparse-12", 12, 6, seed=101),
        _sparse_case("sparse-20", 20, 12, seed=202),
        _sparse_case("weighted-10", 10, 8, seed=303, weighted=True),
        _sparse_case("weighted-16", 16, 10, seed=404, weighted=True),
        _forest_case("forest-14", 14, seed=505),
        _forest_case("forest-9", 9, seed=606),
        _hard_case("degree3-G11", 1, 1, seed=707),
    ]
    for family in ZOO_FAMILIES:
        for index in range(CASES_PER_ZOO_FAMILY):
            specs.append(_zoo_case(family, index))
    from repro.graphs.traversal import shortest_path_distances

    cases = []
    for name, family, seed, graph in specs:
        n = graph.num_vertices
        rng = random.Random(seed)
        if n <= 20:
            pairs = [(u, v) for u in range(n) for v in range(n)]
        else:
            pairs = [
                (rng.randrange(n), rng.randrange(n)) for _ in range(200)
            ]
        rows = {}
        expected = []
        for u, v in pairs:
            if u not in rows:
                rows[u] = shortest_path_distances(graph, u)[0]
            d = rows[u][v]
            expected.append(None if math.isinf(d) else d)
        edges = sorted(
            (u, v, w)
            for u in range(n)
            for v, w in graph.neighbors(u)
            if u < v
        )
        cases.append(
            {
                "name": name,
                "family": family,
                "seed": seed,
                "n": n,
                "edges": edges,
                "pairs": [list(pair) for pair in pairs],
                "expected": expected,
            }
        )
    return cases


def render() -> str:
    corpus = {"version": 2, "cases": build_cases()}
    return json.dumps(corpus, indent=1) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="regenerate in memory and fail if the committed corpus "
        "differs (CI drift guard); writes nothing",
    )
    args = parser.parse_args(argv)
    text = render()
    if args.check:
        try:
            with open(OUT_PATH) as handle:
                committed = handle.read()
        except OSError:
            print(f"drift check FAILED: {OUT_PATH} is missing")
            return 1
        if committed != text:
            print(
                f"drift check FAILED: {OUT_PATH} does not match its "
                "generators; rerun python tools/gen_differential_corpus.py"
            )
            return 1
        print(f"drift check OK: {OUT_PATH} matches its generators")
        return 0
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w") as handle:
        handle.write(text)
    corpus = json.loads(text)
    total_pairs = sum(len(case["pairs"]) for case in corpus["cases"])
    families = {}
    for case in corpus["cases"]:
        families[case["family"]] = families.get(case["family"], 0) + 1
    print(
        f"wrote {OUT_PATH}: {len(corpus['cases'])} cases, "
        f"{total_pairs} pinned pairs, families "
        + ", ".join(f"{k}={v}" for k, v in sorted(families.items()))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
