#!/usr/bin/env python3
"""Benchmark regression gate over ``BENCH_perf.json`` files.

Compares a current result file (written by ``python -m repro bench``)
against a committed baseline with the same schema (``suite -> {metric,
value, unit, instance, seed}``) and exits non-zero when:

* any throughput suite regressed by more than ``--max-regression``
  (default 20%) relative to the baseline -- this covers the query-side
  rates *and* the construction-side ``build_throughput`` /
  ``build_speedup`` suites, so a slower builder fails the gate exactly
  like a slower query path, or
* the ``backend_consistency`` suite reports mismatches (the flat and
  dict stores must answer identically -- a fast wrong answer is not a
  performance win), or
* the ``build_consistency`` suite reports mismatching vertices (the
  fast direct-to-flat builder must reproduce the reference labeling
  exactly), or
* the ``serving_consistency`` suite reports mismatches (answers that
  crossed the concurrent QueryServer -- queueing, coalescing,
  deduplication -- must stay byte-identical to the dict store's), or
* any ``graph_zoo.<family>.consistency`` suite reports mismatches --
  the per-family zoo sweep (``python -m repro bench --suite
  graph_zoo``) holds every family to the same dict-vs-flat-vs-served
  agreement contract as the pinned instance, or
* the ``serving_speedup`` suite measured on the full ``G(2,2)``
  instance falls below the hard floor ``--min-serving-speedup``
  (default 5.0): the batch-native serving path must beat the dict
  scalar loop by that factor outright, not merely hold its ratio to
  the previous baseline (quick-instance runs are exempt -- on
  ``G(2,1)`` the kernel itself is only ~2.8x the dict loop, so the
  floor would be unsatisfiable; they stay gated by the baseline
  ratio), or
* the ``sharded_consistency`` suite reports mismatches (answers that
  crossed a worker-process boundary as raw float64 frames must stay
  byte-identical to the dict store's), or
* the ``churn_consistency`` suite reports mismatches (after the churn
  round, the incrementally repaired labeling must answer the full
  workload identically -- value and type -- to a from-scratch
  rebuild; a fast repair that drifts is a wrong oracle, not a
  performance win), or
* the ``serving_throughput_sharded`` suite measured on the full
  ``G(2,2)`` instance falls below ``--min-sharded-ratio`` (default
  2.0) times the same file's ``serving_batch_throughput``: four
  worker processes over the shared-memory store must beat the
  single-process batch door by that factor outright, or the
  process fan-out is not paying for its IPC.  Two principled
  exemptions mirror the serving floor's: quick-instance runs (on
  ``G(2,1)`` the frames are too small to amortize the pipe round
  trip) and machines whose ``cores`` field is below the worker
  count (process fan-out cannot beat one process without cores to
  fan out onto; the entry still records the honest rate), or
* the ``obs_overhead`` suite reports an instrumented/uninstrumented
  ratio above ``1 + --max-overhead`` (default 10%): the observability
  layer must stay out of the dict-backend query path's way.

The consistency and overhead checks are *self-checks* on the current
file alone and run even without a baseline.  Suites present on only
one side are reported but never fail the gate (so the suite list can
grow without re-baselining), and a missing baseline file skips only
the regression comparison -- that is how the very first CI run
bootstraps.

Usage::

    python tools/bench_gate.py --current BENCH_perf.json \
        --baseline benchmarks/baselines/BENCH_quick.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Suites whose ``value`` is a rate (higher is better) and gated.
THROUGHPUT_METRICS = ("throughput", "speedup")


def load(path: str) -> dict:
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a suite -> entry mapping")
    return data


#: ``serving_speedup`` hard floor, applied only on this instance.
FLOOR_INSTANCE = "G(2,2)"


#: ``serving_throughput_sharded`` must be at least this multiple of the
#: same file's ``serving_batch_throughput`` on :data:`FLOOR_INSTANCE`.
MIN_SHARDED_RATIO = 2.0


def self_check(
    current: dict,
    max_overhead: float,
    min_serving_speedup: float = 5.0,
    min_sharded_ratio: float = MIN_SHARDED_RATIO,
) -> list:
    """Checks needing only the current file (no baseline)."""
    failures = []
    consistency = current.get("backend_consistency")
    if consistency and consistency.get("value"):
        failures.append(
            f"backend_consistency: {consistency['value']} mismatching "
            "pair(s) between flat and dict backends"
        )
    build = current.get("build_consistency")
    if build and build.get("value"):
        failures.append(
            f"build_consistency: {build['value']} vertex label row(s) "
            "differ between the direct builder and the reference"
        )
    serving = current.get("serving_consistency")
    if serving and serving.get("value"):
        failures.append(
            f"serving_consistency: {serving['value']} answer(s) served "
            "through QueryServer differ from the dict store"
        )
    sharded = current.get("sharded_consistency")
    if sharded and sharded.get("value"):
        failures.append(
            f"sharded_consistency: {sharded['value']} answer(s) served "
            "through ShardedQueryServer differ from the dict store"
        )
    churn = current.get("churn_consistency")
    if churn and churn.get("value"):
        failures.append(
            f"churn_consistency: {churn['value']} answer(s) from the "
            "incrementally repaired labeling differ from a from-scratch "
            "rebuild after churn"
        )
    for suite in sorted(current):
        if not suite.startswith("graph_zoo."):
            continue
        row = current[suite]
        if row.get("metric") == "mismatches" and row.get("value"):
            failures.append(
                f"{suite}: {row['value']} answer(s) disagree across the "
                "dict, flat, and served paths on the "
                f"{row.get('family', '?')} family"
            )
    speedup = current.get("serving_speedup")
    if (
        speedup is not None
        and speedup.get("instance") == FLOOR_INSTANCE
        and min_serving_speedup > 0
    ):
        value = float(speedup.get("value") or 0.0)
        if value < min_serving_speedup:
            failures.append(
                f"serving_speedup: {value:.2f}x on {FLOOR_INSTANCE} is "
                f"below the hard floor {min_serving_speedup:.1f}x (the "
                "batch-native serving path must beat the dict scalar "
                "loop outright)"
            )
    sharded_rate = current.get("serving_throughput_sharded")
    single_rate = current.get("serving_batch_throughput")
    if (
        sharded_rate is not None
        and single_rate is not None
        and sharded_rate.get("instance") == FLOOR_INSTANCE
        and single_rate.get("instance") == FLOOR_INSTANCE
        and min_sharded_ratio > 0
    ):
        workers = int(sharded_rate.get("workers") or 0)
        cores = int(sharded_rate.get("cores") or 0)
        if workers and cores and cores < workers:
            print(
                f"note: serving_throughput_sharded ran {workers} "
                f"workers on {cores} core(s); ratio floor not "
                "applicable without cores to fan out onto"
            )
        else:
            sharded_qps = float(sharded_rate.get("value") or 0.0)
            single_qps = float(single_rate.get("value") or 0.0)
            if single_qps > 0:
                ratio = sharded_qps / single_qps
                if ratio < min_sharded_ratio:
                    failures.append(
                        f"serving_throughput_sharded: {sharded_qps:.1f} "
                        f"q/s is only {ratio:.2f}x the single-process "
                        f"batch door ({single_qps:.1f} q/s) on "
                        f"{FLOOR_INSTANCE}; the floor is "
                        f"{min_sharded_ratio:.1f}x"
                    )
    overhead = current.get("obs_overhead")
    if overhead is not None:
        ratio = float(overhead.get("value") or 0.0)
        ceiling = 1.0 + max_overhead
        if ratio > ceiling:
            failures.append(
                f"obs_overhead: instrumented query path is {ratio:.4f}x "
                f"the uninstrumented one (allowed {ceiling:.2f}x)"
            )
    return failures


def compare(
    current: dict, baseline: dict, max_regression: float
) -> list:
    """Return a list of human-readable regression strings."""
    failures = []
    for suite in sorted(set(current) & set(baseline)):
        cur, base = current[suite], baseline[suite]
        if cur.get("metric") not in THROUGHPUT_METRICS:
            continue
        if cur.get("instance") != base.get("instance"):
            print(
                f"note: {suite} measured on {cur.get('instance')} vs "
                f"baseline {base.get('instance')}; skipping"
            )
            continue
        base_value = float(base.get("value") or 0.0)
        cur_value = float(cur.get("value") or 0.0)
        if base_value <= 0:
            continue
        floor = base_value * (1.0 - max_regression)
        if cur_value < floor:
            drop = 100.0 * (1.0 - cur_value / base_value)
            failures.append(
                f"{suite}: {cur_value:.1f} {cur.get('unit', '')} is "
                f"{drop:.1f}% below baseline {base_value:.1f} "
                f"(allowed {100 * max_regression:.0f}%)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", default="BENCH_perf.json", help="fresh result file"
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/baselines/BENCH_quick.json",
        help="committed baseline (missing file skips the gate)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed fractional throughput drop (default 0.20)",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.10,
        help="allowed fractional instrumentation overhead (default 0.10)",
    )
    parser.add_argument(
        "--min-serving-speedup",
        type=float,
        default=5.0,
        help="hard serving_speedup floor on the full instance "
        f"({FLOOR_INSTANCE} only; 0 disables; default 5.0)",
    )
    parser.add_argument(
        "--min-sharded-ratio",
        type=float,
        default=MIN_SHARDED_RATIO,
        help="hard serving_throughput_sharded / serving_batch_throughput "
        f"floor ({FLOOR_INSTANCE} only; 0 disables; default "
        f"{MIN_SHARDED_RATIO})",
    )
    args = parser.parse_args(argv)
    if not os.path.exists(args.current):
        print(f"bench gate: no current results at {args.current}; skipping")
        return 0
    current = load(args.current)
    failures = self_check(
        current,
        args.max_overhead,
        args.min_serving_speedup,
        args.min_sharded_ratio,
    )
    gated = 0
    if os.path.exists(args.baseline):
        baseline = load(args.baseline)
        failures.extend(compare(current, baseline, args.max_regression))
        for suite in sorted(set(current) ^ set(baseline)):
            side = "baseline" if suite in baseline else "current"
            print(f"note: suite {suite!r} only in {side}; not gated")
        gated = sum(
            1
            for suite in set(current) & set(baseline)
            if current[suite].get("metric") in THROUGHPUT_METRICS
        )
    else:
        print(
            f"bench gate: no baseline at {args.baseline}; "
            "self-checks only"
        )
    if failures:
        print("bench gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"bench gate OK ({gated} throughput suite(s) within bounds)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
