#!/usr/bin/env python3
"""Regenerate the seed-pinned mutation corpus (``tests/data/``).

Corpus v3 extends the differential-corpus idea to *dynamic* graphs.
Each case is a small zoo graph drawn from a pinned seed, a seeded
insert/delete :class:`~repro.dynamic.mutations.MutationScript` against
it, and the ground-truth *post-mutation* distances from exact
BFS/Dijkstra with ``null`` standing in for +inf.
``tests/test_dynamic.py`` replays every case through
:class:`~repro.dynamic.DynamicHubLabeling`'s incremental repair and
asserts the repaired labeling answers every pinned pair identically
(value AND type) -- and, all-pairs, identically to a from-scratch
rebuild on the same pinned order.  A repair-algorithm change shows up
as a reviewable test diff even when property testing misses it.

Every zoo family (``ba``, ``powerlaw``, ``smallworld``, ``road``)
contributes :data:`SCRIPTS_PER_FAMILY` seed-swept scripts, alternating
kept-connected and disconnecting variants, so both the finite-distance
repair path and the ``INF`` answer path are pinned.

The corpus is committed; rerun this script only when the case list
itself is meant to change::

    python tools/gen_mutation_corpus.py

CI guards against drift (a hand-edited JSON or a generator change
without regeneration) with::

    python tools/gen_mutation_corpus.py --check
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

OUT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..",
    "tests",
    "data",
    "mutation_corpus.json",
)

#: Seed-swept mutation scripts pinned for every zoo family.
SCRIPTS_PER_FAMILY = 10

#: The zoo families the mutation corpus sweeps.
ZOO_FAMILIES = ("ba", "powerlaw", "smallworld", "road")


def _zoo_graph(family, index, seed):
    """One small zoo graph; sizes cycle with ``index``."""
    from repro.graphs import (
        barabasi_albert,
        powerlaw_configuration,
        road_network,
        watts_strogatz,
    )

    if family == "ba":
        return barabasi_albert(8 + (index % 9), 2, seed=seed)
    if family == "powerlaw":
        return powerlaw_configuration(8 + (index % 9), seed=seed)
    if family == "smallworld":
        return watts_strogatz(8 + (index % 9), 4, 0.2, seed=seed)
    if family == "road":
        rows = 2 + (index % 3)  # 2..4
        cols = 3 + (index % 3)  # 3..5
        return road_network(rows, cols, seed=seed)
    raise ValueError(f"unknown family {family!r}")


def build_cases():
    from repro.dynamic import apply_script, mutation_script
    from repro.graphs.traversal import shortest_path_distances

    cases = []
    for family in ZOO_FAMILIES:
        for index in range(SCRIPTS_PER_FAMILY):
            seed = 30_000 + 1000 * ZOO_FAMILIES.index(family) + index
            graph = _zoo_graph(family, index, seed)
            n = graph.num_vertices
            # Even indices keep every component intact; odd indices may
            # disconnect, pinning the INF answer path too.
            keep_connected = index % 2 == 0
            script = mutation_script(
                graph,
                6 + (index % 5),  # 6..10 ops
                seed=seed,
                keep_connected=keep_connected,
            )
            mutated = graph.copy()
            apply_script(mutated, script)
            pairs = [(u, v) for u in range(n) for v in range(n)]
            expected = []
            rows = {}
            for u, v in pairs:
                if u not in rows:
                    rows[u] = shortest_path_distances(mutated, u)[0]
                d = rows[u][v]
                expected.append(None if math.isinf(d) else d)
            edges = sorted(
                (u, v, w)
                for u in range(n)
                for v, w in graph.neighbors(u)
                if u < v
            )
            cases.append(
                {
                    "name": f"{family}-{n}-s{seed}"
                    + ("" if keep_connected else "-disc"),
                    "family": family,
                    "seed": seed,
                    "n": n,
                    "keep_connected": keep_connected,
                    "edges": edges,
                    "ops": [list(op) for op in script.ops],
                    "pairs": [list(pair) for pair in pairs],
                    "expected": expected,
                }
            )
    return cases


def render() -> str:
    corpus = {"version": 3, "cases": build_cases()}
    return json.dumps(corpus, indent=1) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="regenerate in memory and fail if the committed corpus "
        "differs (CI drift guard); writes nothing",
    )
    args = parser.parse_args(argv)
    text = render()
    if args.check:
        try:
            with open(OUT_PATH) as handle:
                committed = handle.read()
        except OSError:
            print(f"drift check FAILED: {OUT_PATH} is missing")
            return 1
        if committed != text:
            print(
                f"drift check FAILED: {OUT_PATH} does not match its "
                "generators; rerun python tools/gen_mutation_corpus.py"
            )
            return 1
        print(f"drift check OK: {OUT_PATH} matches its generators")
        return 0
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w") as handle:
        handle.write(text)
    corpus = json.loads(text)
    total_ops = sum(len(case["ops"]) for case in corpus["cases"])
    total_pairs = sum(len(case["pairs"]) for case in corpus["cases"])
    families = {}
    for case in corpus["cases"]:
        families[case["family"]] = families.get(case["family"], 0) + 1
    print(
        f"wrote {OUT_PATH}: {len(corpus['cases'])} cases, "
        f"{total_ops} mutations, {total_pairs} pinned pairs, families "
        + ", ".join(f"{k}={v}" for k, v in sorted(families.items()))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
