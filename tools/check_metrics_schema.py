#!/usr/bin/env python3
"""Gate against metric-name drift: catalogue vs schema vs emission.

Three checks, any failure exits non-zero:

1. the in-code catalogue (``repro.obs.catalog.CATALOG``) matches the
   committed ``docs/metrics_schema.json`` -- names, instrument kinds,
   and label keys (rename a metric without regenerating the schema and
   CI fails);
2. a workload touching every instrumented subsystem (labeling builds,
   both oracle backends, the resilient runtime, a chaos sweep, the
   concurrent query server, dynamic label repair with a hot swap)
   emits only catalogued names -- stray string literals cannot sneak
   in;
3. every catalogued name is actually emitted by that workload, except
   for an explicit allowlist of bench-only metrics -- the catalogue
   cannot grow dead entries.

Regenerate the schema after an intentional catalogue change with::

    python tools/check_metrics_schema.py --write

CI's bench job and ``tests/test_obs_integration.py`` both run this.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..",
    "docs",
    "metrics_schema.json",
)

#: Catalogued names the check workload does not emit (bench-only).
BENCH_ONLY = {"bench.suite_duration_seconds"}


def build_schema() -> dict:
    """The schema document derived from the in-code catalogue."""
    from repro.obs.catalog import CATALOG

    return {
        "version": 1,
        "metrics": {
            name: {"kind": spec.kind, "labels": list(spec.labels)}
            for name, spec in sorted(CATALOG.items())
        },
    }


def run_workload() -> set:
    """Emit metrics from every instrumented subsystem; return the names."""
    import tempfile
    import threading

    from repro.core import pruned_landmark_labeling
    from repro.core.hitting import build_hitting_set
    from repro.core.orders import degree_order
    from repro.graphs import random_sparse_graph
    from repro.obs.registry import Registry, use_registry
    from repro.oracles.oracle import HubLabelOracle
    from repro.perf.cache import LabelCache, cache_key
    from repro.runtime import ResilientOracle, chaos_sweep
    from repro.runtime.errors import ServerOverloadError
    from repro.serve import QueryServer

    registry = Registry()
    with use_registry(registry):
        graph = random_sparse_graph(24, seed=3)
        labeling = pruned_landmark_labeling(graph)
        build_hitting_set(graph, 3)
        # Fast builder + persistent cache: cold miss (build + store),
        # warm hit, then a corrupted artifact (invalidation + rebuild).
        with tempfile.TemporaryDirectory() as tmp:
            cache = LabelCache(tmp)
            cache.load_or_build(graph)
            cache.load_or_build(graph)
            artifact = cache.path_for(cache_key(graph, degree_order(graph)))
            blob = bytearray(artifact.read_bytes())
            blob[-1] ^= 0xFF
            artifact.write_bytes(bytes(blob))
            cache.load_or_build(graph)
        pairs = [(u, v) for u in range(8) for v in range(8)]
        for backend in ("dict", "flat"):
            oracle = HubLabelOracle(labeling, backend=backend)
            for u, v in pairs[:20]:
                oracle.query(u, v)
            oracle.batch_query(pairs)
        resilient = ResilientOracle(
            graph, labeling, fallback=True, verify_sample=4
        )
        resilient.query(0, 5)
        resilient.batch_query(pairs[:6])
        chaos_sweep(
            graph, labeling, trials_per_kind=1, queries_per_trial=2, seed=0
        )

        # Serving layer: stall the oracle so submissions back the tiny
        # admission queue up until one overflows (serve.overloads),
        # then release the gate so the drain emits the batch / latency
        # metrics and a repeated pair scores a cache hit.
        class _Stall:
            def __init__(self, inner):
                self.inner = inner
                self.gate = threading.Event()

            @property
            def labeling(self):
                return self.inner.labeling

            def query(self, u, v):
                self.gate.wait()
                return self.inner.query(u, v)

        stalled = _Stall(HubLabelOracle(labeling))
        server = QueryServer(stalled, max_queue=2, max_batch=1)
        server.start()
        futures = []
        try:
            for u in range(16):
                try:
                    futures.append(server.submit(u, (u + 1) % 24))
                except ServerOverloadError:
                    break
            else:
                raise RuntimeError(
                    "serve workload never overflowed the admission queue"
                )
        finally:
            stalled.gate.set()
        for future in futures:
            future.result(timeout=10)
        server.query(0, 1)  # already cached -> serve.cache_hits
        # The batch-native door: one ticket -> serve.batch_submissions.
        server.submit_batch([0, 2], [2, 3]).result(timeout=10)

        # Dynamic churn: one insert, one delete, and a forced full
        # rebuild (rebuild_fraction=0) emit the dynamic.* family; the
        # hot swap through set_oracle bumps serve.generation past the
        # zero the server start emitted.
        from repro.dynamic import DynamicHubLabeling

        def non_edge(g):
            return next(
                (u, v)
                for u in range(g.num_vertices)
                for v in range(u + 1, g.num_vertices)
                if g.edge_weight(u, v) is None
            )

        dyn = DynamicHubLabeling(random_sparse_graph(16, seed=5))
        u, v = non_edge(dyn.graph)
        dyn.insert_edge(u, v)
        dyn.delete_edge(u, v)
        forced = DynamicHubLabeling(
            random_sparse_graph(16, seed=6), rebuild_fraction=0.01
        )
        forced.insert_edge(*non_edge(forced.graph))
        server.set_oracle(HubLabelOracle(dyn.flat(), backend="flat"))
        server.query(0, 9)
        server.stop()

        # Zero-copy label stores: export the flat store into a shared
        # memory segment, attach a second reader, and verify it
        # (shm.attaches / shm.bytes_mapped / shm.crc_checks with
        # source=shm), then mmap the same envelope from disk
        # (source=mmap).
        from repro.core.io import flat_labeling_to_bytes
        from repro.perf.flat import FlatHubLabeling
        from repro.perf.shm import MappedLabelStore, SharedLabelStore
        from repro.serve import ShardedQueryServer

        flat = FlatHubLabeling.from_labeling(labeling)
        store = SharedLabelStore.create(flat)
        try:
            reader = SharedLabelStore.attach(store.name)
            reader.verify()
            reader.close()
        finally:
            store.close()
        with tempfile.TemporaryDirectory() as tmp:
            artifact = os.path.join(tmp, "labels.bin")
            with open(artifact, "wb") as handle:
                handle.write(flat_labeling_to_bytes(flat))
            mapped = MappedLabelStore(artifact)
            mapped.verify()
            mapped.close()

        # The sharded door: one batch through a one-worker fleet emits
        # serve.worker_batches / serve.workers_alive in the parent
        # (serve.worker_restarts is pre-created at zero on start).
        sharded = ShardedQueryServer(
            HubLabelOracle(flat, backend="flat"), processes=1
        )
        sharded.start()
        try:
            sharded.submit_batch([0, 2], [2, 3]).result(timeout=10)
        finally:
            sharded.stop()
    return {metric.name for metric in registry.metrics()}


def check(schema_path: str = SCHEMA_PATH) -> list:
    """Return a list of human-readable failure strings."""
    from repro.obs.catalog import CATALOG

    failures = []
    expected = build_schema()
    try:
        with open(schema_path) as handle:
            committed = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"cannot read {schema_path}: {exc}"]
    if committed != expected:
        committed_names = set(committed.get("metrics", {}))
        catalog_names_set = set(expected["metrics"])
        for name in sorted(catalog_names_set - committed_names):
            failures.append(f"catalogued but missing from schema: {name}")
        for name in sorted(committed_names - catalog_names_set):
            failures.append(f"in schema but not catalogued: {name}")
        for name in sorted(committed_names & catalog_names_set):
            if committed["metrics"][name] != expected["metrics"][name]:
                failures.append(
                    f"schema disagrees with catalogue for {name}: "
                    f"{committed['metrics'][name]} != "
                    f"{expected['metrics'][name]}"
                )
        if not failures:
            failures.append(
                "schema file differs from the catalogue "
                "(regenerate with --write)"
            )
    emitted = run_workload()
    for name in sorted(emitted - set(CATALOG)):
        failures.append(f"emitted but not catalogued: {name}")
    silent = set(CATALOG) - emitted - BENCH_ONLY
    for name in sorted(silent):
        failures.append(
            f"catalogued but never emitted by the check workload: {name}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write",
        action="store_true",
        help="regenerate docs/metrics_schema.json from the catalogue",
    )
    parser.add_argument("--schema", default=SCHEMA_PATH)
    args = parser.parse_args(argv)
    if args.write:
        with open(args.schema, "w") as handle:
            json.dump(build_schema(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.schema}")
        return 0
    failures = check(args.schema)
    if failures:
        print("metrics schema check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "metrics schema check OK "
        f"({len(json.load(open(args.schema))['metrics'])} metrics)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
