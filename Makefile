# Convenience targets.  The environment is offline: editable installs go
# through setup.cfg (legacy path), never an isolated PEP-517 build.

.PHONY: install test test-slow soak bench bench-full bench-tables build-bench serve-smoke shm-bench churn-bench experiments examples coverage chaos stats schema corpus-check zoo-bench clean

install:
	pip install -e .

test:
	pytest tests/

test-slow:
	pytest tests/ --run-slow

# Long-running mixed-load soak against a chaos-corrupted resilient
# oracle behind the query server; excluded from tier-1.  Trim the
# budget with REPRO_SOAK_SECONDS=5 for a quick pass.
REPRO_SOAK_SECONDS ?= 60
soak:
	REPRO_SOAK_SECONDS=$(REPRO_SOAK_SECONDS) pytest tests/test_soak.py --run-soak

bench:
	python -m repro bench --quick
	python tools/bench_gate.py --current BENCH_perf.json

bench-full:
	python -m repro bench

# Per-family graph-zoo sweep at the quick scale; merges into
# BENCH_perf.json next to the core suites and re-runs the gate.
zoo-bench:
	python -m repro bench --quick --suite graph_zoo
	python tools/bench_gate.py --current BENCH_perf.json

# Full-scale zoo sweep (what the committed BENCH_perf.json carries).
zoo-bench-full:
	python -m repro bench --suite graph_zoo
	python tools/bench_gate.py --current BENCH_perf.json

build-bench:
	python -m repro build --generator sparse:200 --cache-dir .labelcache
	python -m repro build --generator sparse:200 --cache-dir .labelcache | tee build-warm.log
	grep -q "cache: hit" build-warm.log
	rm -f build-warm.log

serve-smoke:
	python -m repro serve --generator sparse:200 --clients 8 --requests 100
	python -m repro loadgen --generator sparse:200 --clients 4 --requests 500 --validate

# Sharded serving over the zero-copy shared-memory store: a validated
# multi-process loadgen run, then the shm/sharded test files and a
# /dev/shm leak check (the grep must find nothing).
shm-bench:
	python -m repro loadgen --generator sparse:300 --processes 2 --batch 64 --validate
	pytest tests/test_shm.py tests/test_sharded.py
	@if ls /dev/shm 2>/dev/null | grep -q '^repro_labels_'; then \
		echo "leaked repro_labels_* segments in /dev/shm"; exit 1; \
	else echo "/dev/shm clean"; fi

bench-tables:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro experiments

chaos:
	python -m repro chaos --generator sparse:40 --trials 50

coverage:
	pytest tests/ --cov=repro --cov-report=term-missing --cov-fail-under=75

stats:
	python -m repro stats --generator sparse:100 --pairs 10000

schema:
	python tools/check_metrics_schema.py

# The committed differential corpus must match its generators exactly.
corpus-check:
	python tools/gen_differential_corpus.py --check
	python tools/gen_mutation_corpus.py --check

# Dynamic-labeling churn: incremental repair graded against a full
# rebuild (offline and per-op), then mutations hot-swapped into a
# sharded server under live load, then the dynamic test file.
churn-bench:
	python -m repro mutate --generator sparse:100 --ops 16 --verify-each
	python -m repro loadgen --generator sparse:200 --clients 4 --requests 400 --churn 16 --processes 2
	pytest tests/test_dynamic.py

examples:
	python examples/quickstart.py
	python examples/road_network.py
	python examples/sumindex_protocol.py
	python examples/hardness_explorer.py
	python examples/build_dependencies.py

artifacts:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
