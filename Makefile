# Convenience targets.  The environment is offline: editable installs go
# through setup.cfg (legacy path), never an isolated PEP-517 build.

.PHONY: install test bench bench-full bench-tables build-bench experiments examples coverage chaos stats schema clean

install:
	pip install -e .

test:
	pytest tests/

test-slow:
	pytest tests/ --run-slow

bench:
	python -m repro bench --quick
	python tools/bench_gate.py --current BENCH_perf.json

bench-full:
	python -m repro bench

build-bench:
	python -m repro build --generator sparse:200 --cache-dir .labelcache
	python -m repro build --generator sparse:200 --cache-dir .labelcache | tee build-warm.log
	grep -q "cache: hit" build-warm.log
	rm -f build-warm.log

bench-tables:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro experiments

chaos:
	python -m repro chaos --generator sparse:40 --trials 50

coverage:
	pytest tests/ --cov=repro --cov-report=term-missing --cov-fail-under=70

stats:
	python -m repro stats --generator sparse:100 --pairs 10000

schema:
	python tools/check_metrics_schema.py

examples:
	python examples/quickstart.py
	python examples/road_network.py
	python examples/sumindex_protocol.py
	python examples/hardness_explorer.py
	python examples/build_dependencies.py

artifacts:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
