"""Performance layer: flat-array labels, parallel sweeps, benchmarks.

Three pieces (see docs/performance.md):

* :class:`~repro.perf.flat.FlatHubLabeling` -- immutable CSR-style
  label store with pointer-merge queries and a vectorized
  ``batch_query`` (:mod:`repro.perf.kernels`), selectable on the
  oracles via ``backend="flat"``;
* :mod:`repro.perf.parallel` -- process-pool fan-out for per-root
  BFS/Dijkstra sweeps, behind the ``workers=`` knob on
  ``build_hitting_set`` / ``LandmarkOracle`` / ``verify_cover_sampled``;
* :mod:`repro.perf.bench` -- the pinned benchmark suite behind
  ``python -m repro bench`` (imported lazily: it is a CLI surface, not
  a library dependency).
"""

from .flat import FlatHubLabeling
from .kernels import HAVE_NUMPY
from .parallel import resolve_workers, shortest_path_rows

__all__ = [
    "FlatHubLabeling",
    "HAVE_NUMPY",
    "resolve_workers",
    "shortest_path_rows",
]
