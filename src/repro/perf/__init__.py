"""Performance layer: flat labels, fast construction, caching, benches.

The pieces (see docs/performance.md):

* :class:`~repro.perf.flat.FlatHubLabeling` -- immutable CSR-style
  label store with pointer-merge queries and a vectorized
  ``batch_query`` (:mod:`repro.perf.kernels`), selectable on the
  oracles via ``backend="flat"``;
* :func:`~repro.perf.build.build_flat_labels` -- the bit-parallel
  multi-root PLL builder emitting the canonical labeling straight to
  the flat layout (no dict intermediate, no conversion pass);
* :class:`~repro.perf.cache.LabelCache` -- persistent on-disk label
  cache keyed by (graph, order, builder version), behind ``repro
  build`` and the ``--cache-dir`` CLI flag;
* :mod:`repro.perf.parallel` -- process-pool fan-out for per-root
  BFS/Dijkstra sweeps, behind the ``workers=`` knob on
  ``build_hitting_set`` / ``LandmarkOracle`` / ``verify_cover_sampled``;
* :mod:`repro.perf.bench` -- the pinned benchmark suite behind
  ``python -m repro bench`` (imported lazily: it is a CLI surface, not
  a library dependency).
"""

from .build import BUILDER_VERSION, bitparallel_available, build_flat_labels
from .cache import LabelCache, cache_key
from .flat import FlatHubLabeling
from .kernels import HAVE_NUMPY
from .parallel import resolve_workers, shortest_path_rows

__all__ = [
    "BUILDER_VERSION",
    "FlatHubLabeling",
    "HAVE_NUMPY",
    "LabelCache",
    "bitparallel_available",
    "build_flat_labels",
    "cache_key",
    "resolve_workers",
    "shortest_path_rows",
]
