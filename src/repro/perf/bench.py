"""The ``repro bench`` suite: pinned instances, machine-readable results.

Runs a fixed set of performance suites on a pinned hard instance
``G_{b,l}`` (the paper's degree-3 lower-bound graph) and writes
``BENCH_perf.json`` with the schema ``suite -> {metric, value, unit,
instance, seed}``.  The suites:

* ``pll_construction``      -- PLL build time on the pinned instance;
* ``build_throughput``      -- label entries/s of the direct-to-flat
  bit-parallel builder (:func:`repro.perf.build.build_flat_labels`);
* ``build_speedup``         -- reference PLL build time / direct build
  time (the acceptance gate wants >= 3.0x on ``G(2,2)``);
* ``build_consistency``     -- vertices whose direct-built label rows
  differ from the reference labeling's (must be 0: the fast builder
  reproduces the canonical hierarchical labeling exactly);
* ``flat_conversion``       -- dict -> :class:`FlatHubLabeling` time
  (the entry also carries ``direct_s``, the direct-to-flat build time,
  so the conversion detour and the direct path can be compared);
* ``cache_store`` / ``cache_hit_latency`` -- persisting a built
  labeling through :class:`repro.perf.cache.LabelCache` and reloading
  it on a warm hit (``cache_dir`` pins the directory; default is a
  temp dir).  The hit entry splits the cost two ways:
  ``deserialize_s`` is the eager byte-copy load (parse + CRC + array
  adoption) and ``mmap_s`` is the zero-copy ``LabelCache(mmap=True)``
  path (header validation only, pages fault in on demand) -- the
  ``value`` stays the deserialize time so baselines keep comparing
  like with like;
* ``batch_throughput_dict`` -- scalar ``query`` loop throughput on a
  subsample of the workload (the dict store has no batch engine to
  amortize with -- that is the point of the comparison);
* ``batch_throughput_flat`` -- ``batch_query`` throughput over the full
  workload through the public oracle API;
* ``batch_speedup``         -- flat / dict throughput ratio;
* ``backend_consistency``   -- mismatching answers between the two
  backends over the *full* workload (must be 0);
* ``serving_throughput``    -- the subsampled workload fired through a
  :class:`~repro.serve.server.QueryServer` by concurrent client
  threads using per-pair ``submit`` (admission + coalescing + batch
  dispatch, result cache off);
* ``serving_batch_throughput`` -- the *full* workload fired through
  the batch-native ``submit_batch`` door by the same client count, one
  :class:`~repro.serve.server.BatchTicket` per window (the fast path
  ``run_loadgen`` and the CLIs default to);
* ``serving_speedup``       -- served batch-native throughput / dict
  scalar-loop throughput (the ratio committed to the baseline;
  ``tools/bench_gate.py`` enforces a hard >= 5.0 floor on ``G(2,2)``);
* ``serving_consistency``   -- every answer of the last per-pair round
  AND the last batch round graded against the dict store, value AND
  type (must be 0; ``tools/bench_gate.py`` fails on any mismatch);
* ``serving_throughput_sharded`` -- the same batch windows through a
  :class:`~repro.serve.sharded.ShardedQueryServer`: four worker
  processes, each running the batch door over one zero-copy
  shared-memory label store, raw pair-array frames over pipes.  The
  fleet starts outside the timed region (process spawn is cold-start
  cost); ``tools/bench_gate.py`` requires the sharded rate to be at
  least 2x ``serving_batch_throughput`` on ``G(2,2)``.  The entry
  records the CPU cores the run could actually use (``cores``) --
  process fan-out cannot beat one process on a one-core box, so the
  gate applies the floor only when ``cores >= workers``;
* ``sharded_consistency``   -- every sharded answer graded against the
  dict store, value AND type (must be 0: the byte-identical contract
  has to survive the cross-process float64 frame round trip);
* ``label_memory_dict`` / ``label_memory_flat`` -- store sizes in words;
* ``sssp_rows``             -- per-root traversal throughput through
  :func:`repro.perf.parallel.shortest_path_rows` (exercises the
  ``workers=`` fan-out when requested);
* ``obs_overhead``          -- instrumented / uninstrumented wall-time
  ratio of the dict-backend ``HubLabelOracle.query`` loop (the
  uninstrumented side runs under a disabled
  :class:`~repro.obs.registry.NullRegistry`); ``tools/bench_gate.py``
  fails the gate above 1.10;
* ``update_latency``         -- insert/delete round trips through
  :class:`~repro.dynamic.DynamicHubLabeling`'s incremental repair on a
  scratch copy of the instance (budgets opened wide, so the number is
  pure repair, never the rebuild fallback);
* ``qps_under_churn``        -- a concurrent loadgen round against a
  ``QueryServer`` while a churn thread mutates the graph and hot-swaps
  the repaired labeling in via ``set_oracle`` (the row carries the
  mutation count that landed inside the timed window);
* ``churn_consistency``      -- after the churn traffic, the
  incrementally maintained labeling graded against a from-scratch
  ``build_flat_labels`` rebuild over the full workload, value AND type
  (must be 0; ``tools/bench_gate.py`` fails on any mismatch).

The workload is source-rooted -- ``num_sources`` sampled roots paired
with every vertex -- matching how verification and construction actually
consume queries.  Timings take the best of ``repeats`` runs so a noisy
neighbor cannot fail the gate; the consistency check runs once and is
exact.  ``tools/bench_gate.py`` compares two result files and fails on
throughput regressions.

Every timing is measured through a ``bench.<suite>`` tracing span, and
the number written to BENCH_perf.json is copied into the
``bench.suite_duration_seconds{suite=...}`` gauge -- the JSON file and
the metrics registry report the *same* measurement, so the two views
cannot drift (``tests/test_perf_bench.py`` asserts it).

:func:`run_zoo_bench` is the second suite family: instead of one
pinned hard instance it sweeps the graph zoo (Barabasi-Albert,
power-law configuration, Watts-Strogatz small-world, road-network
grid, Erdos-Renyi ``G(n, 3/n)``, and the sparse reference family)
and emits per-family entries
keyed ``graph_zoo.<family>.<suite>`` -- ``label_memory``,
``batch_speedup``, ``serving_batch_throughput``, and ``consistency``
(dict vs flat vs served answers; must be 0) -- into the same result
file, so ``tools/bench_gate.py`` ratio-gates each family
independently.  ``python -m repro bench --suite graph_zoo`` merges
these entries into an existing ``BENCH_perf.json`` without disturbing
the core ``G(b,l)`` rows.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.catalog import BENCH_SUITE_DURATION_SECONDS
from ..obs.registry import NullRegistry, get_registry, set_registry
from ..obs.spans import span

__all__ = [
    "run_bench",
    "run_zoo_bench",
    "render_results",
    "write_results",
    "DEFAULT_OUT",
    "ZOO_FAMILIES",
]

#: Default output path for the machine-readable results.
DEFAULT_OUT = "BENCH_perf.json"

#: Pinned instances: the acceptance instance and the CI-sized one.
FULL_INSTANCE = (2, 2)  # n = 24400
QUICK_INSTANCE = (2, 1)  # n = 1516

#: The zoo families ``run_zoo_bench`` sweeps, in emission order.
ZOO_FAMILIES = ("ba", "powerlaw", "smallworld", "road", "erdos", "sparse")

#: Vertex-count targets for the zoo (road uses the nearest square).
ZOO_FULL_SCALE = 2000
ZOO_QUICK_SCALE = 240


def _instance_name(b: int, ell: int) -> str:
    return f"G({b},{ell})"


def _available_cores() -> int:
    """CPU cores this process may schedule on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_time(fn, repeats: int, suite: Optional[str] = None) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` (noise-robust).

    With ``suite`` set, every repeat is measured through a
    ``bench.<suite>`` span, so the returned best is exactly the minimum
    of that span's duration histogram.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        if suite is None:
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        else:
            with span(f"bench.{suite}") as timer:
                fn()
            best = min(best, timer.duration)
    return best


def _workload(
    n: int, num_sources: int, seed: int
) -> Tuple[List[int], List[Tuple[int, int]]]:
    """Source-rooted pairs: sampled roots x every vertex."""
    rng = random.Random(seed)
    k = min(num_sources, n)
    sources = sorted(rng.sample(range(n), k))
    pairs = [(s, t) for s in sources for t in range(n)]
    return sources, pairs


def run_bench(
    *,
    quick: bool = False,
    seed: int = 7,
    num_sources: int = 64,
    repeats: int = 3,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict[str, Dict[str, object]]:
    """Run every suite and return ``suite -> entry`` (the JSON schema).

    ``quick`` swaps the acceptance instance ``G(2,2)`` for the small
    ``G(2,1)`` (seconds instead of minutes -- what CI runs).  ``seed``
    pins the workload sample; ``workers`` is forwarded to the traversal
    fan-out suite only; ``cache_dir`` pins where the cache suites
    store their artifact (default: a throwaway temp directory).
    """
    from ..core import pruned_landmark_labeling
    from ..core.orders import degree_order
    from ..lowerbound import build_degree3_instance
    from ..oracles.oracle import HubLabelOracle
    from .build import build_flat_labels
    from .cache import LabelCache
    from .flat import FlatHubLabeling
    from .parallel import shortest_path_rows

    b, ell = QUICK_INSTANCE if quick else FULL_INSTANCE
    instance = _instance_name(b, ell)

    def entry(metric: str, value, unit: str, **extra):
        row = {
            "metric": metric,
            "value": value,
            "unit": unit,
            "instance": instance,
            "seed": seed,
        }
        row.update(extra)
        return row

    results: Dict[str, Dict[str, object]] = {}

    graph = build_degree3_instance(b, ell).graph
    n = graph.num_vertices

    with span("bench.pll_construction") as build_timer:
        labeling = pruned_landmark_labeling(graph)
    build_time = build_timer.duration
    results["pll_construction"] = entry(
        "build_time", round(build_time, 6), "s", n=n
    )

    # Direct-to-flat construction: the bit-parallel builder emits the
    # same canonical labeling straight into CSR arrays.
    order = degree_order(graph)
    direct_holder: Dict[str, FlatHubLabeling] = {}

    def direct_build():
        direct_holder["flat"] = build_flat_labels(graph, order)

    direct_time = _best_time(direct_build, repeats, suite="build_throughput")
    direct_flat = direct_holder["flat"]
    direct_rate = (
        direct_flat.total_size() / direct_time if direct_time > 0 else 0.0
    )
    results["build_throughput"] = entry(
        "throughput",
        round(direct_rate, 1),
        "labels/s",
        entries=direct_flat.total_size(),
    )
    results["build_speedup"] = entry(
        "speedup",
        round(build_time / direct_time, 2) if direct_time > 0 else 0.0,
        "x",
    )

    convert_time = _best_time(
        lambda: FlatHubLabeling.from_labeling(labeling),
        repeats,
        suite="flat_conversion",
    )
    flat = FlatHubLabeling.from_labeling(labeling)
    results["flat_conversion"] = entry(
        "convert_time",
        round(convert_time, 6),
        "s",
        entries=flat.total_size(),
        direct_s=round(direct_time, 6),
    )

    # Exact agreement with the reference labeling, per vertex: the
    # direct builder must reproduce the canonical hierarchical label
    # rows byte for byte.
    mismatch_vertices = sum(
        1 for v in range(n) if direct_flat.hubs(v) != flat.hubs(v)
    )
    results["build_consistency"] = entry(
        "mismatches", mismatch_vertices, "vertices", vertices=n
    )

    # Persistent cache round trip: store the built labeling, then time
    # a warm hit (load + checksum + array adoption, no construction).
    tmp_ctx = None
    cache_root = cache_dir
    if cache_root is None:
        tmp_ctx = tempfile.TemporaryDirectory(prefix="repro-bench-cache-")
        cache_root = tmp_ctx.name
    try:
        cache = LabelCache(cache_root)
        store_time = _best_time(
            lambda: cache.store(graph, order, direct_flat),
            repeats,
            suite="cache_store",
        )
        hit_holder: Dict[str, Optional[FlatHubLabeling]] = {}

        def cache_hit():
            hit_holder["flat"] = cache.load(graph, order)

        hit_time = _best_time(cache_hit, repeats, suite="cache_hit_latency")
        hit_ok = hit_holder["flat"] is not None

        # Same artifact through the zero-copy door: header validation
        # and an mmap, no payload copy, no CRC (that is deferred to
        # verify()).  Timed without a span -- the suite's gauge must
        # keep mirroring the deserialize time that backs ``value``.
        mapped_cache = LabelCache(cache_root, mmap=True)
        mmap_holder: Dict[str, Optional[FlatHubLabeling]] = {}

        def mmap_hit():
            mmap_holder["flat"] = mapped_cache.load(graph, order)

        mmap_time = _best_time(mmap_hit, repeats)
        mmap_ok = mmap_holder["flat"] is not None
    finally:
        if tmp_ctx is not None:
            tmp_ctx.cleanup()
    results["cache_store"] = entry("time", round(store_time, 6), "s")
    results["cache_hit_latency"] = entry(
        "time",
        round(hit_time, 6),
        "s",
        hit=int(hit_ok),
        deserialize_s=round(hit_time, 6),
        mmap_s=round(mmap_time, 6),
        mmap_hit=int(mmap_ok),
    )

    dict_oracle = HubLabelOracle(labeling, backend="dict")
    flat_oracle = HubLabelOracle(labeling, backend="flat")
    # Dict store: logical words (one id + one distance per entry).  Flat
    # store: the actual backing-array footprint in 8-byte words (arrays
    # carry no per-entry object overhead, unlike the dicts).
    results["label_memory_dict"] = entry(
        "space", dict_oracle.space_words(), "words"
    )
    results["label_memory_flat"] = entry(
        "space",
        flat.space_bytes() // 8,
        "words",
        bytes=flat.space_bytes(),
    )

    sources, pairs = _workload(n, num_sources, seed)

    # Dict throughput: scalar loop on a strided subsample (cost per query
    # is ordering-independent, so the stride keeps it representative).
    dict_target = 20_000
    stride = max(1, len(pairs) // dict_target)
    dict_pairs = pairs[::stride]

    def dict_loop():
        query = labeling.query
        for u, v in dict_pairs:
            query(u, v)

    dict_time = _best_time(dict_loop, repeats, suite="batch_throughput_dict")
    dict_qps = len(dict_pairs) / dict_time if dict_time > 0 else 0.0
    results["batch_throughput_dict"] = entry(
        "throughput", round(dict_qps, 1), "queries/s", pairs=len(dict_pairs)
    )

    flat_time = _best_time(
        lambda: flat_oracle.batch_query(pairs),
        repeats,
        suite="batch_throughput_flat",
    )
    flat_qps = len(pairs) / flat_time if flat_time > 0 else 0.0
    results["batch_throughput_flat"] = entry(
        "throughput", round(flat_qps, 1), "queries/s", pairs=len(pairs)
    )

    speedup = flat_qps / dict_qps if dict_qps > 0 else 0.0
    results["batch_speedup"] = entry("speedup", round(speedup, 2), "x")

    # Consistency: the full workload, once, exact equality (INF included).
    flat_answers = flat_oracle.batch_query(pairs)
    query = labeling.query
    mismatches = sum(
        1
        for (u, v), got in zip(pairs, flat_answers)
        if query(u, v) != got
    )
    results["backend_consistency"] = entry(
        "mismatches", mismatches, "pairs", pairs=len(pairs)
    )

    # Serving throughput: the same subsampled workload fired through
    # the QueryServer by concurrent client threads -- admission,
    # coalescing, and batch dispatch included, result cache disabled so
    # every request pays the full path.  Clients submit in bounded
    # windows (well under max_queue) so the benchmark measures
    # throughput, not backpressure.
    from ..serve import QueryServer

    serve_clients = 4
    serve_window = 256
    serve_slices = [dict_pairs[i::serve_clients] for i in range(serve_clients)]
    serve_holder: Dict[str, List[List[float]]] = {}

    def serving_round():
        collected: List[List[float]] = [[] for _ in range(serve_clients)]

        def client(index: int) -> None:
            chunk = serve_slices[index]
            out = collected[index]
            for begin in range(0, len(chunk), serve_window):
                futures = [
                    server.submit(u, v)
                    for u, v in chunk[begin : begin + serve_window]
                ]
                out.extend(future.result() for future in futures)

        with QueryServer(
            flat_oracle,
            max_queue=4 * serve_clients * serve_window,
            max_batch=serve_window,
            max_delay=0.001,
            cache_size=0,
        ) as server:
            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(serve_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        serve_holder["answers"] = collected

    serve_time = _best_time(serving_round, repeats, suite="serving_throughput")
    serve_qps = len(dict_pairs) / serve_time if serve_time > 0 else 0.0
    results["serving_throughput"] = entry(
        "throughput",
        round(serve_qps, 1),
        "queries/s",
        pairs=len(dict_pairs),
        clients=serve_clients,
    )
    # Batch-native serving: the full workload through submit_batch, one
    # BatchTicket per window per client -- the amortized fast path.
    # Windows (numpy us/vs arrays when available) are cut outside the
    # timed region; the timed region is admission, dedup, one kernel
    # call per ticket, and the fancy-indexed result scatter.
    try:
        import numpy as _np
    except ImportError:
        _np = None
    batch_window = 4096
    batch_slices: List[List[Tuple[object, object, List[Tuple[int, int]]]]] = []
    for index in range(serve_clients):
        chunk = pairs[index::serve_clients]
        windows = []
        for begin in range(0, len(chunk), batch_window):
            part = chunk[begin : begin + batch_window]
            us = [u for u, _ in part]
            vs = [v for _, v in part]
            if _np is not None:
                us = _np.asarray(us, dtype=_np.int64)
                vs = _np.asarray(vs, dtype=_np.int64)
            windows.append((us, vs, part))
        batch_slices.append(windows)
    batch_holder: Dict[str, List[List[float]]] = {}

    def serving_batch_round():
        collected: List[List[float]] = [[] for _ in range(serve_clients)]

        def client(index: int) -> None:
            out = collected[index]
            for us, vs, _ in batch_slices[index]:
                out.extend(server.submit_batch(us, vs).result())

        with QueryServer(
            flat_oracle,
            max_queue=4 * serve_clients * batch_window,
            max_batch=serve_window,
            max_delay=0.001,
            cache_size=0,
        ) as server:
            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(serve_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        batch_holder["answers"] = collected

    serve_batch_time = _best_time(
        serving_batch_round, repeats, suite="serving_batch_throughput"
    )
    serve_batch_qps = (
        len(pairs) / serve_batch_time if serve_batch_time > 0 else 0.0
    )
    results["serving_batch_throughput"] = entry(
        "throughput",
        round(serve_batch_qps, 1),
        "queries/s",
        pairs=len(pairs),
        clients=serve_clients,
    )
    # The headline serving ratio is the batch-native door -- the path
    # production clients take; the per-pair rate stays reported above.
    results["serving_speedup"] = entry(
        "speedup",
        round(serve_batch_qps / dict_qps, 2) if dict_qps > 0 else 0.0,
        "x",
    )

    # Consistency: every answer of the last per-pair round AND the last
    # batch round, graded against the dict store serially (value AND
    # type -- the byte-identical contract survives the concurrent path
    # or the gate fails).
    served_wrong = 0
    for index, chunk in enumerate(serve_slices):
        for (u, v), got in zip(chunk, serve_holder["answers"][index]):
            want = query(u, v)
            if got != want or type(got) is not type(want):
                served_wrong += 1
    for index, windows in enumerate(batch_slices):
        answers = iter(batch_holder["answers"][index])
        for _, _, part in windows:
            for (u, v), got in zip(part, answers):
                want = query(u, v)
                if got != want or type(got) is not type(want):
                    served_wrong += 1
    results["serving_consistency"] = entry(
        "mismatches",
        served_wrong,
        "pairs",
        pairs=len(dict_pairs) + len(pairs),
    )

    # Multi-process sharded serving: the same batch windows through a
    # ShardedQueryServer -- worker processes each running the batch
    # door over one zero-copy shared-memory label store, raw
    # pair-array frames over pipes.  The fleet starts outside the
    # timed region (process spawn + segment export is cold-start cost,
    # accounted by the cache suites); the timed region is admission,
    # frame encode, the IPC round trips, and the parent-side decode
    # back to Python values.
    from ..serve import ShardedQueryServer

    sharded_workers = 4
    sharded_holder: Dict[str, List[List[float]]] = {}
    sharded_server = ShardedQueryServer(
        flat_oracle,
        processes=sharded_workers,
        max_queue=4 * serve_clients * batch_window,
        max_batch=serve_window,
        max_delay=0.001,
        cache_size=0,
    )
    sharded_server.start()
    try:

        def sharded_round():
            collected: List[List[float]] = [
                [] for _ in range(serve_clients)
            ]

            def client(index: int) -> None:
                out = collected[index]
                for us, vs, _ in batch_slices[index]:
                    out.extend(
                        sharded_server.submit_batch(us, vs).result()
                    )

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(serve_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            sharded_holder["answers"] = collected

        sharded_time = _best_time(
            sharded_round, repeats, suite="serving_throughput_sharded"
        )
    finally:
        sharded_server.stop()
    sharded_qps = len(pairs) / sharded_time if sharded_time > 0 else 0.0
    results["serving_throughput_sharded"] = entry(
        "throughput",
        round(sharded_qps, 1),
        "queries/s",
        pairs=len(pairs),
        clients=serve_clients,
        workers=sharded_workers,
        cores=_available_cores(),
        single_process_qps=round(serve_batch_qps, 1),
    )

    # Sharded consistency: every answer of the last sharded round
    # graded against the dict store -- value AND type.  The answers
    # crossed a process boundary as raw float64 frames; the
    # byte-identical contract must survive that round trip.
    sharded_wrong = 0
    for index, windows in enumerate(batch_slices):
        answers = iter(sharded_holder["answers"][index])
        for _, _, part in windows:
            for (u, v), got in zip(part, answers):
                want = query(u, v)
                if got != want or type(got) is not type(want):
                    sharded_wrong += 1
    results["sharded_consistency"] = entry(
        "mismatches", sharded_wrong, "pairs", pairs=len(pairs)
    )

    roots = sources[: max(1, min(len(sources), 8 if quick else 16))]
    rows_time = _best_time(
        lambda: shortest_path_rows(graph, roots, workers=workers),
        1 if not quick else repeats,
        suite="sssp_rows",
    )
    rows_rps = len(roots) / rows_time if rows_time > 0 else 0.0
    results["sssp_rows"] = entry(
        "throughput",
        round(rows_rps, 3),
        "rows/s",
        roots=len(roots),
        workers=workers,
    )

    # Observability overhead: the same scalar loop through the public
    # oracle (instrumented) vs under a disabled NullRegistry.  The gate
    # in tools/bench_gate.py caps the ratio at 1.10.  Both sides get a
    # warm-up pass first (instrument binding, caches, branch history) --
    # this suite is the first to drive the oracle's scalar path, and a
    # cold first side would be charged as instrumentation cost.
    def oracle_loop():
        query = dict_oracle.query
        for u, v in dict_pairs:
            query(u, v)

    # Repeats are interleaved (instrumented, bare, instrumented, ...)
    # so a load spike hits both sides instead of masquerading as
    # instrumentation cost; best-of each series is then compared.
    overhead_repeats = max(repeats, 5)
    null_registry = NullRegistry()
    oracle_loop()
    instrumented_time = bare_time = float("inf")
    for _ in range(overhead_repeats):
        with span("bench.obs_overhead") as timer:
            oracle_loop()
        instrumented_time = min(instrumented_time, timer.duration)
        previous = set_registry(null_registry)
        try:
            start = time.perf_counter()
            oracle_loop()
            bare = time.perf_counter() - start
        finally:
            set_registry(previous)
        bare_time = min(bare_time, bare)
    overhead = instrumented_time / bare_time if bare_time > 0 else 1.0
    results["obs_overhead"] = entry(
        "overhead", round(overhead, 4), "x", pairs=len(dict_pairs)
    )

    # Dynamic label repair: an insert/delete round trip on a scratch
    # copy of the pinned instance through DynamicHubLabeling.  The
    # edge is a distance-2 shortcut (so the affected-root set is
    # realistic, not the whole graph) and deleting it restores the
    # original graph, which makes the round trip repeatable.  The
    # budgets are opened wide so the suite times *incremental repair*,
    # never the full-rebuild fallback.
    from ..dynamic import DynamicHubLabeling
    from ..serve import run_loadgen

    dyn = DynamicHubLabeling(
        graph.copy(),
        order=order,
        rebuild_fraction=1.0,
        staleness_budget=float("inf"),
    )
    cu, cv = next(
        (u, b)
        for u in range(n)
        for a, _ in graph.neighbors(u)
        for b, _ in graph.neighbors(a)
        if b != u and graph.edge_weight(u, b) is None
    )

    def update_round_trip():
        dyn.insert_edge(cu, cv)
        dyn.delete_edge(cu, cv)

    update_time = _best_time(update_round_trip, repeats, suite="update_latency")
    update_rate = 2.0 / update_time if update_time > 0 else 0.0
    results["update_latency"] = entry(
        "throughput",
        round(update_rate, 1),
        "updates/s",
        ops=2,
        edge=[cu, cv],
    )

    # Serving throughput while the graph churns underneath: a loadgen
    # round against a QueryServer whose labeling is mutated and
    # hot-swapped (set_oracle) by the churn thread -- admission,
    # batching, generation-keyed cache rekeying, and the swap cost all
    # land inside the timed region.
    churn_state = {"present": False}
    churn_holder: Dict[str, object] = {}

    def serving_churn_round():
        with QueryServer(
            HubLabelOracle(dyn.flat(), backend="flat"),
            max_queue=4 * serve_clients * serve_window,
            max_batch=serve_window,
            max_delay=0.001,
            cache_size=0,
        ) as churn_server:

            def churn():
                if churn_state["present"]:
                    dyn.delete_edge(cu, cv)
                else:
                    dyn.insert_edge(cu, cv)
                churn_state["present"] = not churn_state["present"]
                churn_server.set_oracle(
                    HubLabelOracle(dyn.flat(), backend="flat")
                )
                return True

            churn_holder["report"] = run_loadgen(
                churn_server,
                n,
                clients=serve_clients,
                requests_per_client=max(1, len(dict_pairs) // serve_clients),
                seed=seed,
                batch_size=serve_window,
                churn=churn,
                churn_interval=0.0,
            )

    churn_time = _best_time(serving_churn_round, 1, suite="qps_under_churn")
    churn_report = churn_holder["report"]
    churn_qps = churn_report.requests / churn_time if churn_time > 0 else 0.0
    results["qps_under_churn"] = entry(
        "throughput",
        round(churn_qps, 1),
        "queries/s",
        pairs=churn_report.requests,
        clients=serve_clients,
        mutations=churn_report.mutations,
        dropped=churn_report.dropped,
    )
    if churn_state["present"]:  # leave the scratch graph at the original
        dyn.delete_edge(cu, cv)

    # Churn consistency: after all that repair traffic, the
    # incrementally maintained labeling must still answer the full
    # workload identically (value AND type) to a from-scratch rebuild
    # on the same pinned order -- tools/bench_gate.py fails on any
    # mismatch, exactly like the other consistency rows.
    rebuilt = build_flat_labels(dyn.graph, list(order))
    dyn_query = dyn.query
    churn_wrong = sum(
        1
        for u, v in pairs
        if dyn_query(u, v) != rebuilt.query(u, v)
        or type(dyn_query(u, v)) is not type(rebuilt.query(u, v))
    )
    results["churn_consistency"] = entry(
        "mismatches",
        churn_wrong,
        "pairs",
        pairs=len(pairs),
        mutations=dyn.mutations,
    )

    # Mirror every timing that backs a JSON value into the registry --
    # same floats, so the two views cannot disagree.
    registry = get_registry()
    if registry.enabled:
        durations = {
            "pll_construction": build_time,
            "build_throughput": direct_time,
            "flat_conversion": convert_time,
            "cache_store": store_time,
            "cache_hit_latency": hit_time,
            "batch_throughput_dict": dict_time,
            "batch_throughput_flat": flat_time,
            "serving_throughput": serve_time,
            "serving_batch_throughput": serve_batch_time,
            "serving_throughput_sharded": sharded_time,
            "sssp_rows": rows_time,
            "obs_overhead": instrumented_time,
            "update_latency": update_time,
            "qps_under_churn": churn_time,
        }
        for suite_name, duration in durations.items():
            registry.gauge(
                BENCH_SUITE_DURATION_SECONDS, suite=suite_name
            ).set(duration)
    return results


def run_zoo_bench(
    *,
    quick: bool = False,
    seed: int = 7,
    num_sources: int = 64,
    repeats: int = 3,
    scale: Optional[int] = None,
) -> Dict[str, Dict[str, object]]:
    """Sweep the graph zoo; return ``graph_zoo.<family>.<suite>`` entries.

    Each family in :data:`ZOO_FAMILIES` is generated at ``scale``
    vertices (default :data:`ZOO_FULL_SCALE`, or :data:`ZOO_QUICK_SCALE`
    with ``quick``; the road family rounds to the nearest square grid),
    labeled with the reference PLL, and measured on the same
    source-rooted workload shape as :func:`run_bench`:

    * ``label_memory``  -- flat-store footprint in 8-byte words (the
      entry also carries ``bytes``, ``dict_words``, and ``edges`` so
      the family's sparsity can be read off the row);
    * ``batch_speedup`` -- flat ``batch_query`` throughput over the
      dict scalar loop (``dict_qps`` / ``flat_qps`` ride along);
    * ``serving_batch_throughput`` -- the full workload through a
      :class:`~repro.serve.server.QueryServer`'s batch-native
      ``submit_batch`` door, concurrent clients, result cache off;
    * ``consistency``   -- every flat batch answer AND every served
      answer graded against the dict store, value and type (must be 0;
      disconnected families make this exercise the ``inf`` contract).

    Entries carry ``family`` and ``n`` fields and an instance name like
    ``ba(n=2000)``, so :mod:`tools.bench_gate` ratio-compares each
    family against its committed baseline and skips nothing silently.
    Timings run through ``bench.graph_zoo.<family>.<suite>`` spans and
    are mirrored into ``bench.suite_duration_seconds`` gauges exactly
    like the core suites.
    """
    from math import isqrt

    from ..core import pruned_landmark_labeling
    from ..graphs import (
        barabasi_albert,
        erdos_renyi,
        powerlaw_configuration,
        random_sparse_graph,
        road_network,
        watts_strogatz,
    )
    from ..oracles.oracle import HubLabelOracle
    from ..serve import QueryServer
    from .flat import FlatHubLabeling

    if scale is None:
        scale = ZOO_QUICK_SCALE if quick else ZOO_FULL_SCALE
    if scale < 16:
        raise ValueError("scale must be at least 16")
    side = max(2, isqrt(scale))
    builders = {
        "ba": lambda: barabasi_albert(scale, 2, seed=seed),
        "powerlaw": lambda: powerlaw_configuration(scale, seed=seed),
        "smallworld": lambda: watts_strogatz(scale, 4, 0.1, seed=seed),
        "road": lambda: road_network(side, side, seed=seed),
        "erdos": lambda: erdos_renyi(scale, 3.0 / scale, seed=seed),
        "sparse": lambda: random_sparse_graph(scale, seed=seed),
    }

    results: Dict[str, Dict[str, object]] = {}
    registry = get_registry()
    for family in ZOO_FAMILIES:
        graph = builders[family]()
        n = graph.num_vertices
        instance = f"{family}(n={n})"

        def entry(metric: str, value, unit: str, **extra):
            row = {
                "metric": metric,
                "value": value,
                "unit": unit,
                "instance": instance,
                "seed": seed,
                "family": family,
                "n": n,
            }
            row.update(extra)
            return row

        labeling = pruned_landmark_labeling(graph)
        flat = FlatHubLabeling.from_labeling(labeling)
        dict_oracle = HubLabelOracle(labeling, backend="dict")
        flat_oracle = HubLabelOracle(labeling, backend="flat")
        results[f"graph_zoo.{family}.label_memory"] = entry(
            "space",
            flat.space_bytes() // 8,
            "words",
            bytes=flat.space_bytes(),
            dict_words=dict_oracle.space_words(),
            edges=graph.num_edges,
        )

        _, pairs = _workload(n, num_sources, seed)
        stride = max(1, len(pairs) // 20_000)
        dict_pairs = pairs[::stride]

        def dict_loop():
            query = labeling.query
            for u, v in dict_pairs:
                query(u, v)

        dict_time = _best_time(
            dict_loop,
            repeats,
            suite=f"graph_zoo.{family}.batch_throughput_dict",
        )
        dict_qps = len(dict_pairs) / dict_time if dict_time > 0 else 0.0
        flat_time = _best_time(
            lambda: flat_oracle.batch_query(pairs),
            repeats,
            suite=f"graph_zoo.{family}.batch_throughput_flat",
        )
        flat_qps = len(pairs) / flat_time if flat_time > 0 else 0.0
        results[f"graph_zoo.{family}.batch_speedup"] = entry(
            "speedup",
            round(flat_qps / dict_qps, 2) if dict_qps > 0 else 0.0,
            "x",
            dict_qps=round(dict_qps, 1),
            flat_qps=round(flat_qps, 1),
            pairs=len(pairs),
        )

        # Batch-native serving: the full workload split across client
        # threads, one submit_batch ticket per window, cache off.
        clients = 2
        window = min(1024, max(1, len(pairs) // clients))
        slices: List[List[List[Tuple[int, int]]]] = []
        for index in range(clients):
            chunk = pairs[index::clients]
            slices.append(
                [
                    chunk[begin : begin + window]
                    for begin in range(0, len(chunk), window)
                ]
            )
        served_holder: Dict[str, List[List[float]]] = {}

        def serving_batch_round():
            collected: List[List[float]] = [[] for _ in range(clients)]

            def client(index: int) -> None:
                out = collected[index]
                for part in slices[index]:
                    us = [u for u, _ in part]
                    vs = [v for _, v in part]
                    out.extend(server.submit_batch(us, vs).result())

            with QueryServer(
                flat_oracle,
                max_queue=4 * clients * window,
                max_batch=256,
                max_delay=0.001,
                cache_size=0,
            ) as server:
                threads = [
                    threading.Thread(target=client, args=(index,))
                    for index in range(clients)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            served_holder["answers"] = collected

        serve_time = _best_time(
            serving_batch_round,
            repeats,
            suite=f"graph_zoo.{family}.serving_batch_throughput",
        )
        serve_qps = len(pairs) / serve_time if serve_time > 0 else 0.0
        results[f"graph_zoo.{family}.serving_batch_throughput"] = entry(
            "throughput",
            round(serve_qps, 1),
            "queries/s",
            pairs=len(pairs),
            clients=clients,
        )

        # Consistency: the full flat batch AND the last served round,
        # graded against the dict store -- value and type, inf included.
        query = labeling.query
        wrong = 0
        for (u, v), got in zip(pairs, flat_oracle.batch_query(pairs)):
            want = query(u, v)
            if got != want or type(got) is not type(want):
                wrong += 1
        for index in range(clients):
            answers = iter(served_holder["answers"][index])
            for part in slices[index]:
                for (u, v), got in zip(part, answers):
                    want = query(u, v)
                    if got != want or type(got) is not type(want):
                        wrong += 1
        results[f"graph_zoo.{family}.consistency"] = entry(
            "mismatches", wrong, "pairs", pairs=2 * len(pairs)
        )

        if registry.enabled:
            for suite_name, duration in (
                (f"graph_zoo.{family}.batch_throughput_dict", dict_time),
                (f"graph_zoo.{family}.batch_throughput_flat", flat_time),
                (f"graph_zoo.{family}.serving_batch_throughput", serve_time),
            ):
                registry.gauge(
                    BENCH_SUITE_DURATION_SECONDS, suite=suite_name
                ).set(duration)
    return results


def render_results(results: Dict[str, Dict[str, object]]) -> str:
    """Human-readable table of a result mapping."""
    width = max(len(name) for name in results)
    lines = [f"{'suite':<{width}}  {'metric':<12} {'value':>14} unit"]
    lines.append("-" * len(lines[0]))
    for name, row in results.items():
        lines.append(
            f"{name:<{width}}  {row['metric']:<12} "
            f"{row['value']:>14} {row['unit']}"
        )
    return "\n".join(lines)


def write_results(
    results: Dict[str, Dict[str, object]], path: str = DEFAULT_OUT
) -> None:
    """Write the ``suite -> entry`` mapping as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
