"""Vectorized batch-query kernels behind :meth:`FlatHubLabeling.batch_query`.

Everything here is optional: importing NumPy is attempted once, and
:func:`build_accelerator` returns ``None`` whenever the environment or
the labeling does not qualify, in which case the flat store answers
through its pure-Python merge loop.  A labeling qualifies when every
stored distance is a non-negative integer small enough to pack (true
for all the unweighted ``G_{b,l}`` hard instances; weighted or
fault-perturbed labelings fall back automatically).

Two exact kernels, picked per batch by the shape of the query list:

* **One-to-many rows** -- when many pairs share a source ``u`` (the
  shape of verification sweeps and distance-matrix rows), scatter
  ``S(u)`` into a dense ``hub -> distance`` vector once, and every
  target ``v`` is answered by one gather + add + segmented-min pass
  over ``S(v)``: ``min_h dense[h] + dist(v, h)``.  About three linear
  passes over the touched label entries, no per-pair alignment at all.
* **Sort-free pair merge** -- for scattered pairs, gather each
  endpoint's label run tagged with ``pair_index << hub_bits | hub``.
  The two tagged arrays are *already globally sorted* (pair-major,
  hub-ascending inside each run), so the per-pair label intersection
  collapses into a single ``np.searchsorted`` of one side into the
  other (NumPy's guess-based binary search is near-linear for sorted
  needles) plus a segmented ``minimum.reduceat`` over the matched sums.

Both return exactly what the dict store would, INF for non-intersecting
pairs included.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..graphs.traversal import INF

try:  # NumPy is an optional accelerator, never a hard dependency.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

__all__ = ["HAVE_NUMPY", "build_accelerator", "BatchAccelerator"]

HAVE_NUMPY = _np is not None

#: "absent" marker in the dense source vector; valid sums must stay
#: below it, so the kernels require ``2 * max_distance < _SENTINEL``
#: (and ``_SENTINEL + max_distance`` must fit uint16, which it does).
_SENTINEL = 32000

#: Pairs sharing a source switch to the one-to-many row kernel once the
#: group is big enough to amortize the dense scatter/reset.
_ROW_THRESHOLD = 8

#: Pairs per merge-kernel chunk are additionally capped so batch
#: scratch (a few hundred label entries per pair) stays in memory.
_MAX_CHUNK = 32768


def build_accelerator(offsets, hubs, dists, num_vertices):
    """A :class:`BatchAccelerator` for the flat arrays, or ``None``.

    ``None`` means "use the pure-Python path": NumPy missing, an empty
    labeling, non-integer distances, or distances too large to pack.
    """
    if _np is None or num_vertices == 0 or len(hubs) == 0:
        return None
    dist_arr = _np.asarray(dists, dtype=_np.float64)
    int_dists = dist_arr.astype(_np.int64)
    if not (int_dists == dist_arr).all() or (int_dists < 0).any():
        return None
    max_dist = int(int_dists.max())
    if 2 * max_dist >= _SENTINEL:
        return None
    return BatchAccelerator(
        _np.asarray(offsets, dtype=_np.int64),
        _np.asarray(hubs, dtype=_np.int64),
        int_dists,
        num_vertices,
        max_dist,
    )


class BatchAccelerator:
    """Precomputed NumPy views + scratch for one flat labeling."""

    def __init__(self, offsets, hubs, dists, num_vertices, max_dist):
        np = _np
        self._n = num_vertices
        self._offsets = offsets
        self._lens = np.diff(offsets)
        self._hubs = hubs.astype(np.int32)
        self._dists = dists.astype(np.uint16)
        # Reusable dense source vector for the row kernel.
        self._dense = np.full(num_vertices, _SENTINEL, dtype=np.uint16)
        # Tagged merge keys are ``pair_index << hub_bits | hub``; chunk
        # the batch so they stay positive int32.
        hub_bits = max(1, int(num_vertices - 1).bit_length())
        self._hub_bits = hub_bits
        pair_bits = 31 - hub_bits
        self._chunk = (
            min(_MAX_CHUNK, 1 << pair_bits) if pair_bits >= 1 else 1
        )
        self._index_dtype = (
            np.int32 if len(self._hubs) < 2**31 else np.int64
        )
        # Smallest value meaning "no meeting hub" (any valid sum is
        # at most ``2 * max_dist``); masked to INF on output.
        self._big = 2 * max_dist + 1

    # ------------------------------------------------------------------
    # One-to-many row kernel
    # ------------------------------------------------------------------
    def query_row(self, source: int, targets=None):
        """``d(source, v)`` for each target, as an int64 array.

        ``targets=None`` means every vertex.  Entries without a meeting
        hub hold ``self._big`` (callers mask to INF).
        """
        np = _np
        offsets, lens = self._offsets, self._lens
        s0, s1 = offsets[source], offsets[source + 1]
        source_hubs = self._hubs[s0:s1]
        dense = self._dense
        dense[source_hubs] = self._dists[s0:s1]
        try:
            if targets is None:
                vals = dense[self._hubs] + self._dists
                nz = lens > 0
                out = np.full(self._n, self._big, dtype=np.int64)
                out[nz] = np.minimum.reduceat(vals, offsets[:-1][nz])
            else:
                targets = np.asarray(targets, dtype=np.int64)
                tlens = lens[targets]
                total = int(tlens.sum())
                if 2 * total >= len(self._hubs):
                    # Dense target set: one pass over the whole store
                    # plus a gather beats assembling per-target runs.
                    vals = dense[self._hubs] + self._dists
                    nz = lens > 0
                    row = np.full(self._n, self._big, dtype=np.int64)
                    row[nz] = np.minimum.reduceat(vals, offsets[:-1][nz])
                    out = row[targets]
                else:
                    out = np.full(len(targets), self._big, dtype=np.int64)
                    if total:
                        it = _seg_indices(
                            offsets[targets], tlens, total, self._index_dtype
                        )
                        vals = dense[self._hubs[it]] + self._dists[it]
                        starts = np.zeros(len(targets), dtype=np.int64)
                        np.cumsum(tlens[:-1], out=starts[1:])
                        nz = tlens > 0
                        out[nz] = np.minimum.reduceat(vals, starts[nz])
        finally:
            dense[source_hubs] = _SENTINEL
        out[out > self._big] = self._big
        return out

    # ------------------------------------------------------------------
    # Batch entry point
    # ------------------------------------------------------------------
    def batch_query(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[float]:
        np = _np
        pair_arr = np.asarray(pairs, dtype=np.int64).reshape(len(pairs), 2)
        us = pair_arr[:, 0]
        vs = pair_arr[:, 1]
        m = len(pairs)
        best = np.full(m, self._big, dtype=np.int64)

        # Route source-heavy groups through the row kernel.
        uniq, inverse, counts = np.unique(
            us, return_inverse=True, return_counts=True
        )
        rowable = counts[inverse] >= _ROW_THRESHOLD
        if rowable.any():
            row_idx = np.flatnonzero(rowable)
            order = row_idx[np.argsort(us[row_idx], kind="stable")]
            group_sources = us[order]
            bounds = np.flatnonzero(np.diff(group_sources)) + 1
            for segment in np.split(order, bounds):
                best[segment] = self.query_row(
                    int(us[segment[0]]), vs[segment]
                )
            scattered = np.flatnonzero(~rowable)
        else:
            scattered = np.arange(m)

        for start in range(0, len(scattered), self._chunk):
            idx = scattered[start : start + self._chunk]
            self._merge_chunk(us[idx], vs[idx], best, idx)

        # tolist() restores Python ints, matching the dict backend's
        # answers exactly (see flat._dedouble); INF is patched after.
        out: List[float] = best.tolist()
        for index in np.flatnonzero(best >= self._big):
            out[index] = INF
        return out

    # ------------------------------------------------------------------
    # Scattered-pair merge kernel
    # ------------------------------------------------------------------
    def _merge_chunk(self, us, vs, best, idx) -> None:
        np = _np
        m = len(us)
        if m == 0:
            return
        lens_u = self._lens[us]
        lens_v = self._lens[vs]
        total_u = int(lens_u.sum())
        total_v = int(lens_v.sum())
        if total_u == 0 or total_v == 0:
            return
        hub_bits = self._hub_bits
        tags = np.arange(m, dtype=np.int32) << hub_bits
        iu = _seg_indices(
            self._offsets[us], lens_u, total_u, self._index_dtype
        )
        iv = _seg_indices(
            self._offsets[vs], lens_v, total_v, self._index_dtype
        )
        keys_u = np.repeat(tags, lens_u)
        keys_u |= self._hubs[iu]
        keys_v = np.repeat(tags, lens_v)
        keys_v |= self._hubs[iv]
        # Both key arrays are globally ascending by construction:
        # pair-major order, hub-ascending within each run.
        pos = np.searchsorted(keys_v, keys_u)
        pos_c = np.minimum(pos, total_v - 1)
        match = keys_v[pos_c] == keys_u
        if not match.any():
            return
        cand = (
            self._dists[iu[match]].astype(np.int64)
            + self._dists[iv[pos_c[match]]]
        )
        cand_pair = keys_u[match] >> hub_bits
        # cand_pair ascends; reduce each pair's run of candidates.
        starts = np.searchsorted(cand_pair, np.arange(m, dtype=np.int32))
        chunk_counts = np.diff(np.append(starts, len(cand_pair)))
        nz = chunk_counts > 0
        if not nz.any():
            return
        sub = idx[nz]
        # best[sub] is a copy (fancy index); assign, don't use out=.
        best[sub] = np.minimum(
            best[sub], np.minimum.reduceat(cand, starts[nz])
        )


def _seg_indices(starts, lens, total, dtype):
    """Gather indices for concatenated slices ``starts[i]:starts[i]+lens[i]``.

    The classic ones-and-jumps cumsum trick, hardened for zero-length
    segments (their heads coincide with the next segment's and must not
    be written).
    """
    np = _np
    nz = lens > 0
    s = starts[nz].astype(dtype)
    ln = lens[nz].astype(dtype)
    heads = np.zeros(len(ln), dtype=dtype)
    np.cumsum(ln[:-1], out=heads[1:])
    out = np.ones(total, dtype=dtype)
    out[0] = s[0]
    out[heads[1:]] = s[1:] - (s[:-1] + ln[:-1] - 1)
    return np.cumsum(out)
