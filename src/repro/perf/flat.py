"""Flat-array hub-label store: the query-side half of ``repro.perf``.

:class:`~repro.core.hublabel.HubLabeling` keeps one ``dict`` per vertex,
which is the right shape while a construction is still *adding* hubs but
a poor one for serving queries: every probe is a hash lookup, every
label a separate object graph.  The labeling literature serves queries
from flat sorted arrays instead -- Gawrychowski-Kosowski-Uznanski
(*Sublinear-Space Distance Labeling using Hubs*) and Goldberg et al.
(*Separating Hierarchical and General Hub Labelings*) both store labels
as id-sorted runs so that a query is a linear pointer merge.

:class:`FlatHubLabeling` is that layout: one CSR-style triple

* ``offsets[v] : offsets[v + 1]`` slices the per-vertex run,
* ``hubs``      -- ``array('l')`` hub ids, ascending within each run,
* ``dists``     -- ``array('d')`` distances, parallel to ``hubs``

over the whole labeling.  The store is immutable; build with
:meth:`from_labeling` and convert back with :meth:`to_labeling`.

The backing triple does not have to be ``array.array``:
:meth:`from_buffers` adopts NumPy views over *any* readable buffer --
an ``mmap`` of the version-2 artifact envelope, a
``multiprocessing.shared_memory`` segment (see :mod:`repro.perf.shm`)
-- without copying a byte, which is what lets N worker processes serve
one label store.  Every accessor narrows NumPy scalars back to Python
``int`` / ``float`` so both backings answer byte-identically.

``query`` is an ascending two-pointer merge of the two runs.
``batch_query`` amortizes attribute lookups over a list of pairs and,
when NumPy is importable and the labeling is integer-valued, dispatches
to the vectorized kernel in :mod:`repro.perf.kernels` -- that path is
what makes the ``>= 5x`` throughput target of ``repro bench`` reachable
in pure CPython.  Both paths return exactly the values the dict store
would (INF for non-intersecting pairs included).
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.hublabel import HubLabeling
from ..graphs.traversal import INF
from ..runtime.errors import DomainError

__all__ = ["FlatHubLabeling"]


class FlatHubLabeling:
    """An immutable flat-array (CSR) view of a hub labeling.

    Duck-type compatible with the read side of
    :class:`~repro.core.hublabel.HubLabeling` (``query``, ``meet``,
    ``hubs``, ``label_size``, ``total_size``, ...), so
    :class:`~repro.oracles.oracle.HubLabelOracle` and
    :class:`~repro.core.fastquery.SortedHubIndex` can consume either
    store.  Mutation methods are deliberately absent: convert back to
    :class:`HubLabeling` to edit.
    """

    __slots__ = ("_offsets", "_hubs", "_dists", "_accel")

    #: ``batch_query`` natively consumes an ``(m, 2)`` int64 ndarray --
    #: batch producers (the serving layer) may skip tuple-list packing.
    accepts_pair_arrays = True

    def __init__(
        self,
        offsets: Sequence[int],
        hubs: Sequence[int],
        dists: Sequence[float],
    ) -> None:
        if len(offsets) < 1 or offsets[0] != 0:
            raise ValueError("offsets must start at 0")
        if offsets[-1] != len(hubs) or len(hubs) != len(dists):
            raise ValueError("offsets/hubs/dists lengths are inconsistent")
        self._offsets = array("l", offsets)
        self._hubs = array("l", hubs)
        self._dists = array("d", dists)
        for v in range(len(self._offsets) - 1):
            run = self._hubs[self._offsets[v] : self._offsets[v + 1]]
            if any(run[i] >= run[i + 1] for i in range(len(run) - 1)):
                raise ValueError(
                    f"hub ids of vertex {v} are not strictly ascending"
                )
        self._accel = None  # built lazily by batch_query

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        offsets: Sequence[int],
        hubs: Sequence[int],
        dists: Sequence[float],
        *,
        validate: bool = True,
    ) -> "FlatHubLabeling":
        """Adopt already-flat CSR arrays without the per-entry loop.

        The fast-construction entry point: NumPy arrays are adopted via
        a single buffer copy, so a multi-million-entry labeling loads in
        milliseconds (``__init__`` walks every run in Python).  With
        ``validate=True`` the structural invariants -- offsets start at
        0 and are non-decreasing, lengths agree, hub ids in range and
        strictly ascending within each run -- are still checked
        (vectorized when NumPy is available); trusted producers such as
        :func:`repro.perf.build.build_flat_labels` pass ``False``.
        """
        flat = cls.__new__(cls)
        flat._offsets = _as_array("l", offsets)
        flat._hubs = _as_array("l", hubs)
        flat._dists = _as_array("d", dists)
        flat._accel = None
        if validate:
            flat._validate()
        return flat

    def _validate(self) -> None:
        offsets, hubs, dists = self._offsets, self._hubs, self._dists
        if len(offsets) < 1 or offsets[0] != 0:
            raise ValueError("offsets must start at 0")
        if offsets[-1] != len(hubs) or len(hubs) != len(dists):
            raise ValueError("offsets/hubs/dists lengths are inconsistent")
        n = len(offsets) - 1
        try:
            import numpy as np
        except ImportError:
            np = None
        if np is not None:
            int_kind = np.dtype(f"i{offsets.itemsize}")
            off = np.frombuffer(memoryview(offsets), dtype=int_kind)
            if off.size > 1 and (np.diff(off) < 0).any():
                raise ValueError("offsets must be non-decreasing")
            run = np.frombuffer(memoryview(hubs), dtype=int_kind)
            if run.size:
                if int(run.min()) < 0 or int(run.max()) >= n:
                    raise ValueError(f"hub id out of range for {n} vertices")
                starts = np.zeros(run.size, dtype=bool)
                interior = off[:-1][off[:-1] < run.size]
                starts[interior] = True
                bad = (run[1:] <= run[:-1]) & ~starts[1:]
                if bad.any():
                    at = int(np.flatnonzero(bad)[0]) + 1
                    v = int(np.searchsorted(off, at, side="right")) - 1
                    raise ValueError(
                        f"hub ids of vertex {v} are not strictly ascending"
                    )
            return
        previous = 0
        for v in range(n):
            start, end = offsets[v], offsets[v + 1]
            if start < previous:
                raise ValueError("offsets must be non-decreasing")
            previous = start
            for i in range(start, end):
                if not 0 <= hubs[i] < n:
                    raise ValueError(f"hub id out of range for {n} vertices")
                if i > start and hubs[i - 1] >= hubs[i]:
                    raise ValueError(
                        f"hub ids of vertex {v} are not strictly ascending"
                    )

    @classmethod
    def from_buffers(
        cls,
        offsets,
        hubs,
        dists,
        *,
        validate: bool = True,
    ) -> "FlatHubLabeling":
        """Adopt readable buffers as int64/float64 views -- zero copy.

        Unlike :meth:`from_arrays` (one buffer copy into ``array``),
        this wraps ``offsets`` / ``hubs`` / ``dists`` in read-only
        NumPy views over whatever memory backs them -- a ``bytes``
        payload, an ``mmap`` of the version-2 envelope, or a
        ``multiprocessing.shared_memory`` buffer.  The store's lifetime
        keeps the underlying buffer alive (NumPy holds the reference),
        so a mapped file stays mapped exactly as long as someone can
        still query it.

        ``validate=False`` skips the structural walk so that opening a
        mapped artifact touches only the pages it reads -- O(page-in),
        not O(entries); producers that skip it are expected to have
        header-checked the envelope (see
        :func:`repro.core.io.flat_labeling_view`).  Requires NumPy.
        """
        import numpy as np

        flat = cls.__new__(cls)
        flat._offsets = _as_view(np, offsets, np.int64)
        flat._hubs = _as_view(np, hubs, np.int64)
        flat._dists = _as_view(np, dists, np.float64)
        flat._accel = None
        if validate:
            flat._validate()
        else:
            offs = flat._offsets
            if offs.size < 1 or int(offs[0]) != 0:
                raise ValueError("offsets must start at 0")
            if (
                int(offs[-1]) != flat._hubs.size
                or flat._hubs.size != flat._dists.size
            ):
                raise ValueError(
                    "offsets/hubs/dists lengths are inconsistent"
                )
        return flat

    @classmethod
    def from_labeling(cls, labeling: HubLabeling) -> "FlatHubLabeling":
        """Freeze a dict-based labeling into the flat layout.

        Well-defined because :meth:`HubLabeling.add_hub` keeps the
        minimum distance per ``(vertex, hub)`` -- each pair occurs at
        most once.
        """
        n = labeling.num_vertices
        offsets = array("l", [0] * (n + 1))
        total = labeling.total_size()
        hubs = array("l", [0] * total)
        dists = array("d", [0.0] * total)
        cursor = 0
        for v in range(n):
            for hub, dist in sorted(labeling.hubs(v).items()):
                hubs[cursor] = hub
                dists[cursor] = dist
                cursor += 1
            offsets[v + 1] = cursor
        flat = cls.__new__(cls)
        flat._offsets = offsets
        flat._hubs = hubs
        flat._dists = dists
        flat._accel = None
        return flat

    def to_labeling(self) -> "HubLabeling":
        """Thaw back into a mutable dict-based :class:`HubLabeling`."""
        labeling = HubLabeling(self.num_vertices)
        offsets, hubs, dists = self._offsets, self._hubs, self._dists
        for v in range(self.num_vertices):
            for i in range(offsets[v], offsets[v + 1]):
                labeling.add_hub(v, int(hubs[i]), _dedouble(dists[i]))
        return labeling

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _check_vertex(self, vertex: int) -> None:
        n = self.num_vertices
        if not 0 <= vertex < n:
            raise DomainError(f"vertex {vertex} outside 0..{n - 1}")

    def query(self, u: int, v: int) -> float:
        """Two-pointer merge over the id-sorted runs of ``u`` and ``v``."""
        self._check_vertex(u)
        self._check_vertex(v)
        offsets, hubs, dists = self._offsets, self._hubs, self._dists
        i, end_i = offsets[u], offsets[u + 1]
        j, end_j = offsets[v], offsets[v + 1]
        best = INF
        while i < end_i and j < end_j:
            hi = hubs[i]
            hj = hubs[j]
            if hi == hj:
                candidate = dists[i] + dists[j]
                if candidate < best:
                    best = candidate
                i += 1
                j += 1
            elif hi < hj:
                i += 1
            else:
                j += 1
        return _dedouble(best)

    def meet(self, u: int, v: int) -> Optional[int]:
        """A hub realizing :meth:`query`'s minimum, or None."""
        self._check_vertex(u)
        self._check_vertex(v)
        offsets, hubs, dists = self._offsets, self._hubs, self._dists
        i, end_i = offsets[u], offsets[u + 1]
        j, end_j = offsets[v], offsets[v + 1]
        best = INF
        best_hub: Optional[int] = None
        while i < end_i and j < end_j:
            hi = hubs[i]
            hj = hubs[j]
            if hi == hj:
                candidate = dists[i] + dists[j]
                if candidate < best:
                    best = candidate
                    best_hub = hi
                i += 1
                j += 1
            elif hi < hj:
                i += 1
            else:
                j += 1
        return None if best_hub is None else int(best_hub)

    def batch_query(self, pairs: Sequence[Tuple[int, int]]) -> List[float]:
        """Distances for many pairs at once.

        Validates every vertex id up front (:class:`DomainError` before
        any work), then answers through the NumPy kernels when available
        (see :mod:`repro.perf.kernels`) or a tight merge loop otherwise.
        Results match ``[self.query(u, v) for u, v in pairs]`` exactly.
        """
        if not len(pairs):
            return []
        self._check_pairs(pairs)
        accel = self._accelerator()
        if accel is not None:
            return accel.batch_query(pairs)
        return self._batch_query_merge(pairs)

    def batch_query_from(
        self, source: int, targets: Optional[Sequence[int]] = None
    ) -> List[float]:
        """Distances from one source to many targets (``None`` = all).

        The source-rooted special case of :meth:`batch_query` -- the
        shape of verification sweeps and distance-matrix rows -- served
        by the one-to-many kernel when NumPy is available.
        """
        self._check_vertex(source)
        n = self.num_vertices
        if targets is None:
            target_list: Sequence[int] = range(n)
        else:
            for t in targets:
                if not 0 <= t < n:
                    raise DomainError(f"vertex {t} outside 0..{n - 1}")
            target_list = targets
        accel = self._accelerator()
        if accel is not None:
            row = accel.query_row(
                source, None if targets is None else targets
            )
            big = accel._big
            return [
                INF if value >= big else value for value in row.tolist()
            ]
        return self._batch_query_merge([(source, t) for t in target_list])

    def _check_pairs(self, pairs: Sequence[Tuple[int, int]]) -> None:
        n = self.num_vertices
        try:
            import numpy as np

            arr = np.asarray(pairs, dtype=np.int64)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise ValueError
            if (arr < 0).any() or (arr >= n).any():
                bad = int(arr[(arr < 0) | (arr >= n)][0])
                raise DomainError(f"vertex {bad} outside 0..{n - 1}")
            return
        except (ImportError, ValueError, TypeError, OverflowError):
            pass
        for u, v in pairs:
            if not 0 <= u < n or not 0 <= v < n:
                bad = u if not 0 <= u < n else v
                raise DomainError(f"vertex {bad} outside 0..{n - 1}")

    def _batch_query_merge(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[float]:
        # Pure-Python fallback: same merge as query() with the attribute
        # lookups hoisted out of the per-pair loop.
        offsets, hubs, dists = self._offsets, self._hubs, self._dists
        out: List[float] = []
        append = out.append
        for u, v in pairs:
            i, end_i = offsets[u], offsets[u + 1]
            j, end_j = offsets[v], offsets[v + 1]
            best = INF
            while i < end_i and j < end_j:
                hi = hubs[i]
                hj = hubs[j]
                if hi == hj:
                    candidate = dists[i] + dists[j]
                    if candidate < best:
                        best = candidate
                    i += 1
                    j += 1
                elif hi < hj:
                    i += 1
                else:
                    j += 1
            append(_dedouble(best))
        return out

    def _accelerator(self):
        """The cached NumPy kernel index, or None when not applicable."""
        if self._accel is None:
            from .kernels import build_accelerator

            built = build_accelerator(
                self._offsets, self._hubs, self._dists, self.num_vertices
            )
            # False = "tried, not applicable"; cache either outcome.
            self._accel = built if built is not None else False
        return self._accel or None

    # ------------------------------------------------------------------
    # Read accessors (HubLabeling-compatible)
    # ------------------------------------------------------------------
    def hubs(self, vertex: int) -> Dict[int, float]:
        """A fresh ``hub -> distance`` dict for ``vertex``.

        Materialized per call (the flat store has no dicts); use the
        array accessors in hot loops.
        """
        self._check_vertex(vertex)
        start, end = self._offsets[vertex], self._offsets[vertex + 1]
        return {
            int(self._hubs[i]): _dedouble(self._dists[i])
            for i in range(start, end)
        }

    def hub_set(self, vertex: int) -> List[int]:
        self._check_vertex(vertex)
        start, end = self._offsets[vertex], self._offsets[vertex + 1]
        return self._hubs[start:end].tolist()

    def hub_distance(self, vertex: int, hub: int) -> Optional[float]:
        self._check_vertex(vertex)
        start, end = self._offsets[vertex], self._offsets[vertex + 1]
        lo, hi = start, end
        while lo < hi:  # binary search in the sorted run
            mid = (lo + hi) // 2
            if self._hubs[mid] < hub:
                lo = mid + 1
            else:
                hi = mid
        if lo < end and self._hubs[lo] == hub:
            return _dedouble(self._dists[lo])
        return None

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        vertex, hub = pair
        return self.hub_distance(vertex, hub) is not None

    def items(self) -> Iterator[Tuple[int, Dict[int, float]]]:
        for v in range(self.num_vertices):
            yield v, self.hubs(v)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._offsets) - 1

    def label_size(self, vertex: int) -> int:
        return int(self._offsets[vertex + 1] - self._offsets[vertex])

    def total_size(self) -> int:
        return len(self._hubs)

    def average_size(self) -> float:
        n = self.num_vertices
        return len(self._hubs) / n if n else 0.0

    def max_size(self) -> int:
        offsets = self._offsets
        return int(
            max(
                (
                    offsets[v + 1] - offsets[v]
                    for v in range(self.num_vertices)
                ),
                default=0,
            )
        )

    def space_bytes(self) -> int:
        """Actual resident bytes of the three backing arrays."""
        return (
            len(self._offsets) * self._offsets.itemsize
            + len(self._hubs) * self._hubs.itemsize
            + len(self._dists) * self._dists.itemsize
        )

    def __repr__(self) -> str:
        return (
            f"FlatHubLabeling(n={self.num_vertices}, "
            f"total={self.total_size()}, avg={self.average_size():.2f})"
        )


def _as_array(typecode: str, values) -> array:
    """Coerce ``values`` to ``array(typecode)``, by buffer copy if flat.

    NumPy arrays of the matching width are adopted via ``frombytes``
    (one memcpy); anything else goes through the element-wise
    constructor.
    """
    if isinstance(values, array) and values.typecode == typecode:
        return values
    out = array(typecode)
    try:
        import numpy as np
    except ImportError:
        np = None
    if np is not None and isinstance(values, np.ndarray):
        wanted = (
            np.dtype(f"i{out.itemsize}") if typecode == "l" else np.float64
        )
        out.frombytes(
            np.ascontiguousarray(values, dtype=wanted).tobytes()
        )
        return out
    out.extend(int(v) if typecode == "l" else float(v) for v in values)
    return out


def _as_view(np, values, dtype):
    """A C-contiguous NumPy view of ``values`` in ``dtype``, no copy.

    NumPy arrays of the right dtype pass through; anything else
    exposing the buffer protocol is wrapped with ``np.frombuffer``
    (read-only by construction).  A dtype mismatch is a hard error --
    silently reinterpreting bytes would serve garbage distances.
    """
    if isinstance(values, np.ndarray):
        if values.dtype != dtype or not values.flags["C_CONTIGUOUS"]:
            raise ValueError(
                f"expected a contiguous {np.dtype(dtype).name} array, "
                f"got {values.dtype.name}"
            )
        return values
    view = memoryview(values)
    if view.nbytes % np.dtype(dtype).itemsize:
        raise ValueError(
            f"buffer of {view.nbytes} bytes is not a whole number of "
            f"{np.dtype(dtype).name} items"
        )
    return np.frombuffer(view, dtype=dtype)


def _dedouble(value: float) -> float:
    """Return integral doubles as Python ints, mirroring the dict store.

    ``HubLabeling`` stores whatever the construction added -- for
    unweighted graphs that is ``int`` -- and its ``query`` propagates
    the type.  The ``array('d')`` backing store widens everything to
    float; narrowing integral values back keeps the two backends'
    answers indistinguishable (``0`` vs ``0.0`` matters to ``repr`` and
    to exact-equality golden files).  NumPy-backed stores hand in
    ``np.float64`` scalars; those are narrowed to plain ``float`` for
    the same reason.
    """
    if value == INF:
        return INF
    as_int = int(value)
    return as_int if as_int == value else float(value)
