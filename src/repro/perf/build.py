"""Fast label construction: bit-parallel PLL, emitted straight to CSR.

:func:`repro.core.pll.pruned_landmark_labeling` is the reference
builder: one pruned BFS per root, labels accumulated in per-vertex
dicts, then a separate dict->:class:`FlatHubLabeling` conversion for
the serving layout.  On the pinned G(2,2) bench instance that costs
~25s of build plus ~0.9s of conversion -- the construction side is the
bottleneck now that queries are served from flat arrays.

:func:`build_flat_labels` replaces that pipeline with the multi-root
batching trick from the PLL literature (Akiba-Iwata-Yoshida style
bit-parallel batching, widened):

* roots are processed ``_BATCH`` at a time in rank order; one
  level-synchronous BFS carries all the batch frontiers at once, so
  frontier expansion, visit extraction (a sort over packed
  ``vertex * _BATCH + slot`` keys) and the pruning tests are a handful
  of NumPy array operations per level instead of millions of
  interpreter steps;
* labels accumulate directly in a CSR store of hub *ranks* (ascending
  within each run by construction), merged once per batch with a
  vectorized scatter into recycled ping-pong buffers; the finished
  store is emitted as a :class:`FlatHubLabeling` without ever
  materializing the per-vertex dict -- the conversion step disappears;
* the output is **identical** to the reference builder's canonical
  hierarchical labeling (tests assert byte equality over the
  differential corpus).  Within a batch the pruning test must see
  exactly the entries sequential PLL would have committed: lower-slot
  in-flight entries are consulted through a dense in-flight distance
  matrix keyed by discovered root-to-root pairs, and the only same-level
  interaction -- a lower-rank root reaching a higher-rank root's
  vertex -- is resolved by a vectorized mirror-key fix-up restricted
  to visits landing on batch-root vertices (see ``_bitparallel_flat``).

The NumPy path is gated: weighted graphs and NumPy-less interpreters
fall back to the pure-Python array builder
(:func:`repro.core.pll_fast.fast_pruned_landmark_labeling`) followed by
:meth:`FlatHubLabeling.from_labeling` -- same output, no new
dependencies.  Builds report a ``build.flat`` tracing span, the
``build.duration_seconds{builder=...}`` gauge and a
``build.bitparallel_passes`` counter (created even when the fallback
runs, so snapshots always carry it).  ``BUILDER_VERSION`` participates
in the persistent cache key (:mod:`repro.perf.cache`): bump it whenever
the emitted labeling could change for the same (graph, order).
"""

from __future__ import annotations

from typing import List, Optional

from ..graphs.csr import CSRGraph
from ..graphs.graph import Graph
from ..obs.catalog import (
    BUILD_BITPARALLEL_PASSES,
    BUILD_DURATION_SECONDS,
)
from ..obs.registry import get_registry
from ..obs.spans import span
from .flat import FlatHubLabeling

try:  # NumPy is optional everywhere in repro.perf
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

__all__ = ["BUILDER_VERSION", "build_flat_labels", "bitparallel_available"]

#: Version of the construction algorithm; part of the label-cache key.
#: Bump on any change that could alter the emitted labeling.
BUILDER_VERSION = 1

#: "Unreached" sentinel for batched distances.  Small enough that two
#: sentinels sum without overflowing int32, large enough to exceed any
#: real BFS distance.
_UNREACHED = 1 << 29

#: Roots per pass (power of two).  Wider batches amortize the
#: per-level NumPy dispatch overhead over more frontiers -- the
#: in-flight coverage test is sparse, so widening does not blow up the
#: per-visit work.  Tests shrink this to exercise batch boundaries on
#: small graphs.
_BATCH = 512


def bitparallel_available(graph: Graph) -> bool:
    """True when ``build_flat_labels`` will take the bit-parallel path."""
    return _np is not None and not graph.is_weighted


def build_flat_labels(
    graph: Graph, order: Optional[List[int]] = None
) -> FlatHubLabeling:
    """Build the canonical hierarchical labeling, emitted as flat CSR.

    Same output as ``FlatHubLabeling.from_labeling(
    pruned_landmark_labeling(graph, order))`` -- the identity is
    asserted by the differential tests -- produced by the bit-parallel
    batched builder when NumPy is available and the graph is
    unweighted, and by the pure-Python fallback otherwise.

    Reports a ``build.flat`` span plus the build metrics from the
    module docstring; :mod:`repro.perf.cache` relies on the span being
    absent on cache hits to prove construction was skipped.
    """
    if order is None:
        from ..core.orders import degree_order

        order = degree_order(graph)
    if sorted(order) != list(graph.vertices()):
        raise ValueError("order must be a permutation of the vertices")

    registry = get_registry()
    passes = (
        registry.counter(BUILD_BITPARALLEL_PASSES)
        if registry.enabled
        else None
    )
    with span("build.flat") as build_span:
        if bitparallel_available(graph) and graph.num_vertices:
            builder = "bitparallel"
            flat = _bitparallel_flat(graph, order, passes)
        else:
            builder = "fallback"
            from ..core.pll_fast import fast_pruned_landmark_labeling

            flat = FlatHubLabeling.from_labeling(
                fast_pruned_landmark_labeling(graph, order)
            )
    if registry.enabled:
        registry.gauge(BUILD_DURATION_SECONDS, builder=builder).set(
            build_span.duration
        )
    from ..core.pll import _report_build_rate

    _report_build_rate("flat-" + builder, flat, build_span.duration)
    return flat


# ----------------------------------------------------------------------
# Bit-parallel batched construction (NumPy path)
# ----------------------------------------------------------------------
def _seg_indices(starts, lens, total):
    """Concatenated ``[starts[i], starts[i] + lens[i])`` ranges.

    The ones-and-jumps cumsum gather; zero-length segments are allowed.
    """
    np = _np
    if total == 0:
        return np.empty(0, dtype=np.int64)
    nz = lens > 0
    s = starts[nz].astype(np.int64)
    l = lens[nz].astype(np.int64)
    ends = np.cumsum(l)
    out = np.ones(total, dtype=np.int64)
    out[0] = s[0]
    if s.size > 1:
        out[ends[:-1]] = s[1:] - (s[:-1] + l[:-1]) + 1
    return np.cumsum(out)


def _grouped_runs(sorted_v):
    """Group starts, distinct values and counts of a sorted array."""
    np = _np
    c = sorted_v.size
    boundary = np.empty(c, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_v[1:], sorted_v[:-1], out=boundary[1:])
    gpos = np.flatnonzero(boundary)
    cnts = np.empty(gpos.size, dtype=np.int64)
    cnts[:-1] = gpos[1:] - gpos[:-1]
    cnts[-1] = c - gpos[-1]
    return gpos, sorted_v[gpos], cnts


def _bitparallel_flat(
    graph: Graph, order: List[int], passes
) -> FlatHubLabeling:
    """``_BATCH`` roots per pass, one level-synchronous BFS per pass.

    Labels accumulate as (hub *rank*, distance) CSR runs -- ascending
    ranks within each run by construction, because every batch appends
    strictly higher ranks, so the whole batch merges into the store
    with one vectorized scatter per pass.  In-flight entries of the
    current batch live in a dense distance matrix (``dinf``) consulted
    through per-slot rows of known lower roots (``jcol``/``jdist``) by
    the coverage tests; the finished store is converted to id-sorted
    hub arrays once at the end.
    """
    np = _np
    n = graph.num_vertices
    K = max(1, _BATCH)
    # Slot bits of the packed (vertex, slot) keys: the next power of
    # two >= K, so any batch width works, not just powers of two.
    kshift = (K - 1).bit_length()
    kmask = (1 << kshift) - 1
    csr = CSRGraph(graph)
    adj_off = np.asarray(csr.offsets, dtype=np.int64)
    adj_tgt = np.asarray(csr.targets, dtype=np.int64)
    deg = np.diff(adj_off)
    order_arr = np.asarray(order, dtype=np.int64)
    ar_n = np.arange(n, dtype=np.int64)

    # Committed labels over all finished batches, CSR over vertices.
    # store_hub holds hub RANKS (strictly ascending within each run).
    lab_off = np.zeros(n + 1, dtype=np.int64)
    lab_len = np.zeros(n, dtype=np.int64)
    # Views into ping-pong buffers (see the merge at the batch end);
    # zero-length slices so ``.base`` is valid from the first merge on.
    store_hub = np.empty(0, dtype=np.int32)[:0]
    store_dist = np.empty(0, dtype=np.int32)[:0]

    # Dense scratch, reused across batches (flat layouts back the
    # pre-multiplied index gathers in the coverage tests -- measurably
    # faster than 2-D fancy indexing):
    #   drootf[i*n + h] -- committed distance from batch root i to hub-rank h
    #   dinf[j*n + v]   -- in-flight distance from batch root j to vertex v
    #   seen[v*K + s]   -- 1 when slot s already visited vertex v
    #   root_index[v]   -- batch slot of v when v is a batch root, else -1
    # The in-flight coverage test iterates per visiting slot r over its
    # row J(r) of *known* lower roots j < r (those with a discovered
    # root-to-root distance): jcol/jdist hold the (j*n, distance) pairs,
    # K slots per row -- a row can never exceed K-1 entries, so the rows
    # need no growth logic.
    droot = np.full((K, n), _UNREACHED, dtype=np.int32)
    drootf = droot.ravel()
    dinf = np.full(n * K, _UNREACHED, dtype=np.int32)
    jlen = np.zeros(K, dtype=np.int64)
    jcol = np.empty(K * K, dtype=np.int64)
    jdist = np.empty(K * K, dtype=np.int32)
    seen = np.zeros(n << kshift, dtype=np.uint8)
    root_index = np.full(n, -1, dtype=np.int64)
    slots_all = np.arange(K, dtype=np.int64)
    iota = np.arange(max(n, 1), dtype=np.int64)

    # Spare ping-pong pair for the committed-store merge: scattering
    # into a recycled buffer beats page-faulting a fresh allocation of
    # the same tens of MB on every pass.
    sp_hub = np.empty(0, dtype=np.int32)
    sp_dist = np.empty(0, dtype=np.int32)

    for batch_start in range(0, n, K):
        roots = order_arr[batch_start : batch_start + K]
        k = roots.size
        if passes is not None:
            passes.inc()
        slots = slots_all[:k]

        # Scatter the roots' committed runs into the dense droot rows
        # (undone by scattering the same positions back at batch end).
        rl = lab_len[roots]
        rtot = int(rl.sum())
        if rtot:
            ri = _seg_indices(lab_off[roots], rl, rtot)
            rrow = np.repeat(slots, rl)
            rhub = store_hub[ri].astype(np.int64)
            droot[rrow, rhub] = store_dist[ri]
        root_index[roots] = slots

        # Level 0: every root commits (root, root, 0) -- a self-entry
        # is never covered (no lower-rank hub is at distance 0).
        root_keys = (roots << kshift) | slots
        seen[root_keys] = 1
        fresh_keys = [root_keys]
        dinf[slots * n + roots] = 0
        commit_vs = [roots]
        commit_ss = [slots]
        level_sizes = [k]
        level_ds = [0]
        commit_v = roots
        commit_s = slots
        d = 0
        while True:
            # Propagate the committed frontier one level: pack each
            # (target, slot) edge into one sortable key, then sort +
            # dedup + drop already-seen pairs.  The surviving keys are
            # this level's visits, vertex-major.
            degs = deg[commit_v]
            E = int(degs.sum())
            if E == 0:
                break
            ei = _seg_indices(adj_off[commit_v], degs, E)
            keys = (adj_tgt[ei] << kshift) | np.repeat(commit_s, degs)
            keys.sort()
            if E > 1:
                uniq = np.empty(E, dtype=bool)
                uniq[0] = True
                np.not_equal(keys[1:], keys[:-1], out=uniq[1:])
                keys = keys[uniq]
            keys = keys[seen[keys] == 0]
            m = keys.size
            if m == 0:
                break
            d += 1
            seen[keys] = 1
            fresh_keys.append(keys)
            visit_v = keys >> kshift
            rb = keys & kmask

            # Coverage against committed labels of earlier batches:
            # merge each visit vertex's run with its root's dense row.
            lens = lab_len[visit_v]
            G = int(lens.sum())
            prior = np.full(m, _UNREACHED, dtype=np.int32)
            if G:
                li = _seg_indices(lab_off[visit_v], lens, G)
                gi = np.repeat(rb * n, lens) + store_hub[li]
                vals = drootf[gi] + store_dist[li]
                gs = np.zeros(m, dtype=np.int64)
                np.cumsum(lens[:-1], out=gs[1:])
                nz = lens > 0
                prior[nz] = np.minimum.reduceat(vals, gs[nz])

            # Coverage against this batch's own commits (levels < d):
            # min over the visiting slot's known lower roots j of the
            # root-to-root distance plus the in-flight distance from
            # root j to the visit vertex.  Rows only ever hold j < r
            # entries, and a j that never reached v reads _UNREACHED
            # from dinf -- no masking needed in either direction.
            jl = jlen[rb]
            IG = int(jl.sum())
            inb = np.full(m, _UNREACHED, dtype=np.int32)
            if IG:
                ji = _seg_indices(rb * K, jl, IG)
                ivals = dinf[jcol[ji] + np.repeat(visit_v, jl)] + jdist[ji]
                gs2 = np.zeros(m, dtype=np.int64)
                np.cumsum(jl[:-1], out=gs2[1:])
                nz2 = jl > 0
                inb[nz2] = np.minimum.reduceat(ivals, gs2[nz2])
            cov = np.minimum(prior, inb) <= d

            # Same-level fix-up: the only entries invisible to the
            # vectorized tests are commits made *this* level by lower
            # slots.  Sequential replay shows they can only cover a
            # visit landing on a batch-root vertex, and only through a
            # zero-distance leg -- i.e. when two batch roots reach
            # *each other* at this very level.  So among the surviving
            # root-vertex visits, a visit of slot r at root iv's vertex
            # is covered exactly when its mirror (slot iv at root r's
            # vertex) also survived and iv < r (the lower-slot mirror
            # commits first in rank order); everything else commits.
            fx = np.flatnonzero((root_index[visit_v] >= 0) & ~cov)
            if fx.size:
                ivs = root_index[visit_v[fx]]
                rs = rb[fx]
                key_own = ivs * K + rs
                key_mirror = rs * K + ivs
                own_sorted = np.sort(key_own)
                pos = np.searchsorted(own_sorted, key_mirror)
                pos_c = np.minimum(pos, own_sorted.size - 1)
                mirrored = (own_sorted[pos_c] == key_mirror) & (ivs < rs)
                cov[fx[mirrored]] = True
                # Append the discovered root-to-root distance to the
                # *higher* slot's J row (the coverage test only ever
                # consults lower roots j < r, so the other direction
                # would be dead).  Equal ivs values are contiguous --
                # the visits are vertex-major -- so the grouped-runs
                # ordinals land the appends of one row back to back.
                lo = ~mirrored & (rs < ivs)
                rows = ivs[lo]
                if rows.size:
                    cols = rs[lo]
                    gp2, urow, cnt2 = _grouped_runs(rows)
                    if rows.size > iota.size:
                        iota = np.arange(rows.size, dtype=np.int64)
                    dst = (
                        rows * K
                        + jlen[rows]
                        + iota[: rows.size]
                        - np.repeat(gp2, cnt2)
                    )
                    jcol[dst] = cols * n
                    jdist[dst] = d
                    jlen[urow] += cnt2

            keep = ~cov
            commit_v = visit_v[keep]
            commit_s = rb[keep]
            c = commit_v.size
            if c == 0:
                break
            commit_vs.append(commit_v)
            commit_ss.append(commit_s)
            level_sizes.append(c)
            level_ds.append(d)
            dinf[commit_s * n + commit_v] = d

        # Reset per-batch scratch touched this batch.
        if rtot:
            droot[rrow, rhub] = _UNREACHED
        root_index[roots] = -1
        seen[np.concatenate(fresh_keys)] = 0
        allv = np.concatenate(commit_vs)
        alls = np.concatenate(commit_ss)
        dinf[alls * n + allv] = _UNREACHED
        jlen[:] = 0

        # Merge the batch's commits into the committed CSR: every new
        # entry has a higher rank than everything stored, so each
        # vertex's additions are appended to its run in one pass.
        dlev = np.repeat(
            np.asarray(level_ds, dtype=np.int64),
            np.asarray(level_sizes, dtype=np.int64),
        )
        k2 = (allv << kshift) | alls
        srt = np.argsort(k2)
        sk = k2[srt]
        v_new = sk >> kshift
        j_new = sk & kmask
        d_new = dlev[srt]
        h_new = batch_start + j_new
        A = sk.size
        gpos, uvn, cnts = _grouped_runs(v_new)
        if A > iota.size:
            iota = np.arange(A, dtype=np.int64)
        ordinal = iota[:A] - np.repeat(gpos, cnts)
        counts = np.zeros(n, dtype=np.int64)
        counts[uvn] = cnts
        prefix = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=prefix[1:])
        new_off = lab_off + prefix
        old_total = store_hub.size
        need = old_total + A
        if sp_hub.size < need:
            sp_hub = np.empty(need * 2, dtype=np.int32)
            sp_dist = np.empty(need * 2, dtype=np.int32)
        merged_hub = sp_hub[:need]
        merged_dist = sp_dist[:need]
        if old_total:
            if old_total > iota.size:
                iota = np.arange(old_total, dtype=np.int64)
            dest_old = iota[:old_total] + np.repeat(prefix[:n], lab_len)
            merged_hub[dest_old] = store_hub
            merged_dist[dest_old] = store_dist
        dest_new = new_off[v_new] + lab_len[v_new] + ordinal
        merged_hub[dest_new] = h_new
        merged_dist[dest_new] = d_new
        # The buffers backing the outgoing store become next batch's
        # scatter target; the merged views become the store.
        sp_hub, sp_dist = store_hub.base, store_dist.base
        store_hub, store_dist = merged_hub, merged_dist
        lab_off = new_off
        lab_len = lab_len + counts

    # Ranks -> vertex ids, each run re-sorted by hub id for the flat
    # store's merge invariant (stable argsort on vertex-major keys).
    hub_ids = order_arr[store_hub]
    owner = np.repeat(ar_n, lab_len)
    perm = np.argsort(owner * n + hub_ids, kind="stable")
    return FlatHubLabeling.from_arrays(
        lab_off,
        hub_ids[perm],
        store_dist[perm].astype(np.float64),
        validate=False,
    )
