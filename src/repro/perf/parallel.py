"""Process-pool fan-out for embarrassingly-parallel per-root traversals.

The expensive half of every scheme in this repo is the same loop: one
BFS/Dijkstra per root vertex (APSP for the hitting-set scheme, one row
per landmark for :class:`~repro.oracles.oracle.LandmarkOracle`, one row
per sampled source for verification).  The rows are independent, so the
loop parallelizes trivially -- except that shipping a ``Graph`` of
tuple-lists to every task would drown the win in pickling.

:func:`shortest_path_rows` therefore ships a *CSR payload* (five plain
lists) **once per worker** via the pool initializer; each task then only
carries its chunk of root ids.  Distances are bit-identical to the
serial :func:`~repro.graphs.traversal.shortest_path_distances` engine:
BFS and Dijkstra distances are unique regardless of traversal order, so
``workers=8`` and ``workers=1`` return the same rows.

``workers=None`` (or ``<= 1``) stays fully serial -- no pool, no fork --
which keeps tests deterministic and single-CPU machines honest.  The
knob is plumbed through ``build_hitting_set``, ``LandmarkOracle`` and
``verify_cover_sampled``.
"""

from __future__ import annotations

import heapq
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..graphs.csr import CSRGraph
from ..graphs.graph import Graph
from ..graphs.traversal import INF, shortest_path_distances

__all__ = ["resolve_workers", "shortest_path_rows"]

#: CSR payload shipped to each worker: (n, offsets, targets, weights,
#: is_weighted) -- plain picklable lists, no Graph objects.
_Payload = Tuple[int, List[int], List[int], List[int], bool]

#: Per-process payload installed by the pool initializer.
_WORKER_PAYLOAD: Optional[_Payload] = None


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers=`` knob: ``None``/0/1 mean serial."""
    if workers is None:
        return 1
    if workers < 0:
        raise ValueError("workers must be >= 0")
    return max(1, workers)


def _csr_payload(graph: Graph) -> _Payload:
    csr = CSRGraph(graph)
    return (
        csr.num_vertices,
        list(csr.offsets),
        list(csr.targets),
        list(csr.weights),
        csr.is_weighted,
    )


def _init_worker(payload: _Payload) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


def _csr_bfs(payload: _Payload, source: int) -> List[float]:
    n, offsets, targets, _weights, _ = payload
    dist: List[float] = [INF] * n
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        next_dist = dist[u] + 1
        for i in range(offsets[u], offsets[u + 1]):
            v = targets[i]
            if dist[v] == INF:
                dist[v] = next_dist
                queue.append(v)
    return dist


def _csr_dijkstra(payload: _Payload, source: int) -> List[float]:
    n, offsets, targets, weights, _ = payload
    dist: List[float] = [INF] * n
    dist[source] = 0
    heap: List[Tuple[int, int]] = [(0, source)]
    while heap:
        du, u = heapq.heappop(heap)
        if du > dist[u]:
            continue
        for i in range(offsets[u], offsets[u + 1]):
            v = targets[i]
            nd = du + weights[i]
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def _rows_for_chunk(roots: Sequence[int]) -> List[List[float]]:
    """Task body: distance rows for a chunk of roots (worker payload)."""
    payload = _WORKER_PAYLOAD
    assert payload is not None, "worker initialized without a CSR payload"
    engine = _csr_dijkstra if payload[4] else _csr_bfs
    return [engine(payload, root) for root in roots]


def _chunk(roots: Sequence[int], num_chunks: int) -> List[List[int]]:
    """Split roots into at most ``num_chunks`` contiguous, balanced runs."""
    num_chunks = min(num_chunks, len(roots))
    size, extra = divmod(len(roots), num_chunks)
    chunks: List[List[int]] = []
    cursor = 0
    for index in range(num_chunks):
        width = size + (1 if index < extra else 0)
        chunks.append(list(roots[cursor : cursor + width]))
        cursor += width
    return chunks


def shortest_path_rows(
    graph: Graph,
    roots: Optional[Sequence[int]] = None,
    *,
    workers: Optional[int] = None,
) -> List[List[float]]:
    """Distance rows ``[dist(root, .) for root in roots]``.

    ``roots=None`` means every vertex (APSP).  With ``workers > 1`` the
    rows are computed by a :class:`ProcessPoolExecutor` over a CSR
    payload shipped once per worker; results are returned in root order
    and are identical to the serial engine's.
    """
    if roots is None:
        roots = range(graph.num_vertices)
    roots = list(roots)
    n = graph.num_vertices
    for root in roots:
        if not 0 <= root < n:
            raise ValueError(f"root {root} outside 0..{n - 1}")
    if not roots:
        return []
    effective = resolve_workers(workers)
    if effective <= 1 or len(roots) <= 1:
        return [
            shortest_path_distances(graph, root)[0] for root in roots
        ]
    payload = _csr_payload(graph)
    # ~4 chunks per worker keeps stragglers short without re-pickling
    # the graph (the payload rides the initializer, not the tasks).
    chunks = _chunk(roots, effective * 4)
    rows: List[List[float]] = []
    with ProcessPoolExecutor(
        max_workers=effective,
        initializer=_init_worker,
        initargs=(payload,),
    ) as pool:
        for chunk_rows in pool.map(_rows_for_chunk, chunks):
            rows.extend(chunk_rows)
    return rows
