"""Persistent label cache: build once, reload in milliseconds.

Constructing labels dominates every CLI invocation now that queries are
served from flat arrays -- and the labels for a fixed (graph, order)
never change, so rebuilding them per process is pure waste.
:class:`LabelCache` persists finished
:class:`~repro.perf.flat.FlatHubLabeling` stores on disk, keyed by a
fingerprint of everything the labeling depends on:

* the **graph** (vertex count, weightedness, the sorted edge multiset);
* the **order** (the exact rank permutation used);
* the **builder version** (:data:`repro.perf.build.BUILDER_VERSION`)
  and the artifact format version, so algorithm or format changes
  invalidate old entries instead of serving stale labels.

Artifacts are the checksummed version-2 envelope of
:mod:`repro.core.io` (raw little-endian CSR arrays), written atomically
(temp file + ``os.replace``) so a crashed writer can never leave a
half-written entry behind.  A corrupt or truncated artifact is detected
at load (:class:`~repro.runtime.errors.ArtifactCorruptError`), counted,
deleted, and transparently rebuilt -- the cache can only ever make runs
faster, never wrong.

Observability: every lookup increments ``build.cache_hits`` or
``build.cache_misses``; every discarded artifact increments
``build.cache_invalidations``.  A cache hit performs **no**
construction, so the ``build.flat`` tracing span is absent from hit
paths -- tests and the CI smoke step use exactly that to prove the warm
run skipped the build.

With ``LabelCache(directory, mmap=True)`` a hit does not even
deserialize: the artifact is opened through
:class:`~repro.perf.shm.MappedLabelStore`, so the returned labeling's
CSR arrays are zero-copy views over the mapped file.  The envelope
header is still validated eagerly (truncation and version skew
invalidate as usual) but the CRC is deferred, making a warm start
O(page-in) instead of O(deserialize); such hits additionally count
``shm.attaches{source=mmap}``.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import List, Optional, Union

from ..graphs.graph import Graph
from ..obs.catalog import (
    BUILD_CACHE_HITS,
    BUILD_CACHE_INVALIDATIONS,
    BUILD_CACHE_MISSES,
)
from ..obs.registry import get_registry
from ..runtime.errors import ArtifactCorruptError
from .build import BUILDER_VERSION, build_flat_labels
from .flat import FlatHubLabeling

__all__ = ["LabelCache", "cache_key"]


def cache_key(graph: Graph, order: List[int]) -> str:
    """The sha256 hex fingerprint naming a (graph, order) cache entry.

    Hashes the canonical edge list (sorted endpoint pairs plus
    weights), the order permutation, and the builder/format versions.
    Any difference in any of them yields a different key, so entries
    are immutable once written.
    """
    from ..core.io import FLAT_ARTIFACT_VERSION

    hasher = hashlib.sha256()
    hasher.update(
        f"v{BUILDER_VERSION}:f{FLAT_ARTIFACT_VERSION}:"
        f"n{graph.num_vertices}:m{graph.num_edges}:"
        f"w{int(graph.is_weighted)}".encode()
    )
    for u, v, w in sorted(
        (min(u, v), max(u, v), w) for u, v, w in graph.edges()
    ):
        hasher.update(f";{u},{v},{w}".encode())
    hasher.update(b"|order|")
    hasher.update(",".join(map(str, order)).encode())
    return hasher.hexdigest()


class LabelCache:
    """A directory of persisted flat labelings, one file per key.

    ``load`` / ``store`` are the primitive halves; ``load_or_build``
    is the everyday entry point (and what ``--cache-dir`` wires into
    the CLI): return the cached labeling when present and intact,
    otherwise build, persist, and return it.
    """

    def __init__(
        self, directory: Union[str, Path], *, mmap: bool = False
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.mmap = mmap
        registry = get_registry()
        if registry.enabled:
            # Create the counters at 0 up front so snapshots always
            # carry all three, hit or miss.
            self._hits = registry.counter(BUILD_CACHE_HITS)
            self._misses = registry.counter(BUILD_CACHE_MISSES)
            self._invalidations = registry.counter(BUILD_CACHE_INVALIDATIONS)
        else:
            self._hits = self._misses = self._invalidations = None

    def path_for(self, key: str) -> Path:
        """Where the artifact for ``key`` lives (whether or not it exists)."""
        return self.directory / f"labels-{key[:40]}.rhl"

    # ------------------------------------------------------------------
    def load(
        self, graph: Graph, order: List[int]
    ) -> Optional[FlatHubLabeling]:
        """The cached labeling for (graph, order), or None.

        Counts a hit or a miss; a corrupt artifact counts an
        invalidation, is deleted, and reports as a miss (the caller
        rebuilds).  With ``mmap=True`` the artifact is mapped instead
        of deserialized (header validated now, CRC deferred) and the
        labeling's arrays view the file directly.
        """
        path = self.path_for(cache_key(graph, order))
        if not path.exists():
            if self._misses is not None:
                self._misses.inc()
            return None
        flat = (
            self._load_mapped(path) if self.mmap else self._load_bytes(path)
        )
        if flat is None or flat.num_vertices != graph.num_vertices:
            # Corrupt envelope, or a key collision so drastic the
            # entry is garbage either way: drop it and rebuild.
            if self._invalidations is not None:
                self._invalidations.inc()
            path.unlink(missing_ok=True)
            if self._misses is not None:
                self._misses.inc()
            return None
        if self._hits is not None:
            self._hits.inc()
        return flat

    def _load_bytes(self, path: Path) -> Optional[FlatHubLabeling]:
        """Fully deserialize ``path`` (CRC checked now), None if corrupt."""
        from ..core.io import flat_labeling_from_bytes

        try:
            return flat_labeling_from_bytes(path.read_bytes())
        except (ArtifactCorruptError, FileNotFoundError):
            return None

    def _load_mapped(self, path: Path) -> Optional[FlatHubLabeling]:
        """Map ``path`` zero-copy (CRC deferred), None if the header lies."""
        from .shm import MappedLabelStore

        try:
            store = MappedLabelStore(path)
        except (ArtifactCorruptError, FileNotFoundError, ValueError,
                OSError):
            # ValueError covers mmap of an empty (zero-length) file.
            return None
        return store.flat

    def store(
        self, graph: Graph, order: List[int], flat: FlatHubLabeling
    ) -> Path:
        """Persist ``flat`` for (graph, order); returns the artifact path.

        Atomic: the envelope is written to a temp file in the same
        directory and moved into place with ``os.replace``, so readers
        only ever see absent or complete artifacts.
        """
        from ..core.io import flat_labeling_to_bytes

        path = self.path_for(cache_key(graph, order))
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(flat_labeling_to_bytes(flat))
        os.replace(tmp, path)
        return path

    def load_or_build(
        self, graph: Graph, order: Optional[List[int]] = None
    ) -> FlatHubLabeling:
        """Serve from the cache, building and persisting on a miss.

        ``order=None`` resolves to the canonical degree order first so
        the key always names the order actually used.  On a hit no
        construction runs at all (no ``build.flat`` span is emitted).
        """
        if order is None:
            from ..core.orders import degree_order

            order = degree_order(graph)
        flat = self.load(graph, order)
        if flat is not None:
            return flat
        flat = build_flat_labels(graph, order)
        self.store(graph, order, flat)
        return flat
