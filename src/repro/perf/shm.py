"""Zero-copy label-store sources: shared memory and mapped artifacts.

A hub labeling is built once and then read forever; the serving tier
wants N worker processes answering queries over *one* copy of the CSR
arrays.  This module provides the two operating-system primitives that
make that free:

* :class:`SharedLabelStore` -- the version-2 artifact envelope
  (:mod:`repro.core.io`) copied once into a
  ``multiprocessing.shared_memory`` segment.  The parent creates and
  owns the segment; each worker attaches by name and builds a
  :class:`~repro.perf.flat.FlatHubLabeling` view straight over the
  shared pages.  ``close`` / ``unlink`` follow the usual
  attach-vs-own split, and attached stores deliberately bypass
  Python's ``resource_tracker`` (the parent is the single owner; a
  tracked attach would double-unlink and warn on worker exit).

* :class:`MappedLabelStore` -- an ``mmap`` view of an artifact file
  (what :class:`~repro.perf.cache.LabelCache` writes).  Opening costs
  a header check, not a deserialize: the kernel pages label data in on
  first touch and shares those pages between every process mapping the
  same file, so a warm cold-start is O(page-in) and a fleet of workers
  still holds one physical copy.

Both sources defer the envelope CRC (:meth:`verify` runs it on demand
-- the lazy half of the open) and emit the ``shm.*`` metrics:
``shm.attaches`` per store opened (labelled by source), the
``shm.bytes_mapped`` gauge, and ``shm.crc_checks`` per deferred
verification (labelled by outcome).
"""

from __future__ import annotations

import mmap
import os
import secrets
from typing import Optional, Union

from ..core.io import (
    _HEADER_SIZE,
    flat_labeling_to_bytes,
    flat_labeling_view,
    verify_envelope_crc,
)
from ..obs.catalog import SHM_ATTACHES, SHM_BYTES_MAPPED, SHM_CRC_CHECKS
from ..obs.registry import get_registry
from ..runtime.errors import ArtifactCorruptError
from .flat import FlatHubLabeling

__all__ = ["SharedLabelStore", "MappedLabelStore", "SHM_NAME_PREFIX"]

#: Leading characters of every segment this module creates -- the CI
#: leak check greps ``/dev/shm`` for exactly this prefix.
SHM_NAME_PREFIX = "repro_labels_"

#: Tracker-registered names created by this process (or inherited over
#: ``fork``).  Attaches to these share the creator's resource tracker,
#: so the untracked-attach fallback must *not* unregister them -- that
#: would clobber the owner's registration and make the eventual
#: ``unlink`` warn about an unknown resource.
_CREATED_HERE: set = set()


def _record_open(source: str, nbytes: int) -> None:
    registry = get_registry()
    if registry.enabled:
        registry.counter(SHM_ATTACHES, source=source).inc()
        registry.gauge(SHM_BYTES_MAPPED, source=source).set(nbytes)


def _record_crc(outcome: str) -> None:
    registry = get_registry()
    if registry.enabled:
        registry.counter(SHM_CRC_CHECKS, outcome=outcome).inc()


def _checked_verify(buffer) -> None:
    """CRC the envelope, counting the outcome either way."""
    try:
        verify_envelope_crc(_exact_envelope(buffer))
    except ArtifactCorruptError:
        _record_crc("corrupt")
        raise
    _record_crc("ok")


def _exact_envelope(buffer) -> memoryview:
    """Trim page-rounding slack off a shared segment's envelope.

    ``shared_memory`` rounds segment sizes up to a page; the envelope
    header declares the true payload length, so the view is cut to
    exactly header + payload before validation (a short buffer is left
    alone -- the header check reports the truncation properly).
    """
    view = memoryview(buffer)
    if len(view) >= _HEADER_SIZE:
        declared = _HEADER_SIZE + int.from_bytes(view[13:21], "big")
        if len(view) > declared:
            view = view[:declared]
    return view


class SharedLabelStore:
    """One labeling's artifact envelope living in a shared segment.

    Create with :meth:`create` (parent side, owns the segment) or
    :meth:`attach` (worker side, by name).  ``self.flat`` is a
    :class:`FlatHubLabeling` whose arrays view the shared pages
    directly -- no per-process copy exists anywhere.
    """

    def __init__(self, shm, flat: FlatHubLabeling, *, owner: bool) -> None:
        self._shm = shm
        self.flat = flat
        self.owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, flat: FlatHubLabeling) -> "SharedLabelStore":
        """Copy ``flat``'s envelope into a fresh owned segment.

        The one copy this design ever makes: store bytes -> shared
        pages.  Every subsequent reader (this process included -- the
        returned store's ``flat`` already views the segment) is free.
        """
        from multiprocessing import shared_memory

        blob = flat_labeling_to_bytes(flat)
        name = f"{SHM_NAME_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=len(blob)
        )
        _CREATED_HERE.add(shm._name)
        shm.buf[: len(blob)] = blob
        # SharedMemory may round the size up to a page; the envelope's
        # declared payload length keeps the view exact regardless.
        view = flat_labeling_view(shm.buf[: len(blob)])
        _record_open("shm", len(blob))
        return cls(shm, view, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedLabelStore":
        """Attach to an existing segment by name (worker side).

        The attach is *untracked*: the creating process owns the
        segment's lifetime, and letting the worker's resource tracker
        register it would unlink it out from under the fleet (and warn
        about "leaked" memory) when the first worker exits.
        """
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13 registers every attach
            shm = shared_memory.SharedMemory(name=name)
            # A forked worker (or a same-process attach) shares the
            # creator's tracker, whose registration the owner's unlink
            # consumes -- unregistering here would double-remove it.
            # Only a genuinely foreign tracker (spawn) needs the fixup.
            if shm._name not in _CREATED_HERE:
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(
                        shm._name, "shared_memory"
                    )
                except Exception:  # pragma: no cover - best effort
                    pass
        view = flat_labeling_view(_exact_envelope(shm.buf))
        _record_open("shm", shm.size)
        return cls(shm, view, owner=False)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def size(self) -> int:
        return self._shm.size

    def verify(self) -> None:
        """Run the deferred CRC over the shared envelope now."""
        _checked_verify(self._shm.buf)

    def close(self) -> None:
        """Drop this process's mapping; owners also unlink the segment."""
        if self._closed:
            return
        self._closed = True
        # Release the numpy views first: SharedMemory.close() refuses
        # (BufferError) while exported memoryviews are alive.
        self.flat = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - lingering view holders
            pass
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedLabelStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        role = "owner" if self.owner else "attached"
        return (
            f"SharedLabelStore({self.name!r}, {self.size} bytes, {role})"
        )


class MappedLabelStore:
    """A flat label store served from an mmap'ed artifact file.

    ``path`` must hold a version-2 envelope (what
    :meth:`LabelCache.store <repro.perf.cache.LabelCache.store>` and
    ``repro build --save`` write).  The header is validated eagerly;
    the CRC is deferred to :meth:`verify`; label pages fault in as
    queries touch them.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)
        with open(self.path, "rb") as handle:
            self._map = mmap.mmap(
                handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        try:
            self.flat: Optional[FlatHubLabeling] = flat_labeling_view(
                self._map
            )
        except Exception:
            try:
                self._map.close()
            except BufferError:
                # The in-flight exception's traceback still references
                # views over the map; GC unmaps once it is released.
                pass
            raise
        _record_open("mmap", len(self._map))
        self._closed = False

    def verify(self) -> None:
        """Run the deferred CRC over the mapped file now."""
        _checked_verify(self._map)

    def close(self) -> None:
        """Unmap; the store's arrays must no longer be in use."""
        if self._closed:
            return
        self._closed = True
        self.flat = None
        try:
            self._map.close()
        except BufferError:  # pragma: no cover - lingering view holders
            pass

    def __enter__(self) -> "MappedLabelStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"MappedLabelStore({self.path!r}, {len(self._map)} bytes)"
