"""Bit-level codecs for distance labels.

Distance labeling is measured in *bits per label* (the paper's unit), so
the schemes in this package serialize to honest bitstrings through the
writer/reader here.  Provided codes:

* fixed-width unsigned integers;
* unary;
* Elias gamma and delta (self-delimiting, used for distance lists where
  values are usually small).
"""

from __future__ import annotations

from typing import Iterable, List

__all__ = ["BitWriter", "BitReader", "elias_gamma_length", "elias_delta_length"]


class BitWriter:
    """Append-only bit buffer."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    def __len__(self) -> int:
        return len(self._bits)

    def write_bit(self, bit: int) -> None:
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        self._bits.append(bit)

    def write_fixed(self, value: int, width: int) -> None:
        """``value`` as exactly ``width`` bits, most significant first."""
        if value < 0 or (width < 64 and value >= (1 << width)):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """``value`` zeros followed by a one."""
        if value < 0:
            raise ValueError("unary cannot encode negatives")
        self._bits.extend([0] * value)
        self._bits.append(1)

    def write_gamma(self, value: int) -> None:
        """Elias gamma for ``value >= 1``."""
        if value < 1:
            raise ValueError("gamma encodes positive integers")
        width = value.bit_length()
        self.write_unary(width - 1)
        self.write_fixed(value - (1 << (width - 1)), width - 1)

    def write_delta(self, value: int) -> None:
        """Elias delta for ``value >= 1``."""
        if value < 1:
            raise ValueError("delta encodes positive integers")
        width = value.bit_length()
        self.write_gamma(width)
        self.write_fixed(value - (1 << (width - 1)), width - 1)

    def getvalue(self) -> "Bits":
        return Bits(tuple(self._bits))


class Bits(tuple):
    """An immutable bitstring (tuple of 0/1) with a length in bits."""

    @property
    def num_bits(self) -> int:
        return len(self)


class BitReader:
    """Sequential reader over a bitstring."""

    def __init__(self, bits: Iterable[int]) -> None:
        self._bits = tuple(bits)
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._bits) - self._pos

    def read_bit(self) -> int:
        if self._pos >= len(self._bits):
            raise EOFError("bitstring exhausted")
        bit = self._bits[self._pos]
        self._pos += 1
        return bit

    def read_fixed(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        count = 0
        while self.read_bit() == 0:
            count += 1
        return count

    def read_gamma(self) -> int:
        width = self.read_unary() + 1
        if width == 1:
            return 1
        return (1 << (width - 1)) | self.read_fixed(width - 1)

    def read_delta(self) -> int:
        width = self.read_gamma()
        if width == 1:
            return 1
        return (1 << (width - 1)) | self.read_fixed(width - 1)


def elias_gamma_length(value: int) -> int:
    """The bit length of the gamma code of ``value >= 1``."""
    if value < 1:
        raise ValueError("gamma encodes positive integers")
    return 2 * value.bit_length() - 1


def elias_delta_length(value: int) -> int:
    """The bit length of the delta code of ``value >= 1``."""
    if value < 1:
        raise ValueError("delta encodes positive integers")
    width = value.bit_length()
    return elias_gamma_length(width) + width - 1
