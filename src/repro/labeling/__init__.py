"""Distance labeling substrate: bit codecs and concrete schemes.

Distance labeling generalizes hub labeling (Section 1 of the paper);
this package provides the bit-accounted schemes the benchmarks compare:

* :class:`DistanceRowScheme` -- trivial ``O(n log diam)`` bits;
* :class:`HubEncodedScheme` -- any hub labeling, gap/gamma encoded;
* :func:`tree_centroid_labeling` -- the ``O(log^2 n)``-bit tree scheme;
* :class:`IncrementalRowScheme` -- the ``O(n)``-bit general scheme.
"""

from .bits import (
    BitReader,
    Bits,
    BitWriter,
    elias_delta_length,
    elias_gamma_length,
)
from .scheme import DistanceLabelingScheme, DistanceRowScheme, LabelingStats
from .hub_encoding import HubEncodedScheme
from .tree_scheme import find_centroid, tree_centroid_labeling
from .general_scheme import IncrementalRowScheme, dfs_order

__all__ = [
    "BitReader",
    "Bits",
    "BitWriter",
    "elias_delta_length",
    "elias_gamma_length",
    "DistanceLabelingScheme",
    "DistanceRowScheme",
    "LabelingStats",
    "HubEncodedScheme",
    "find_centroid",
    "tree_centroid_labeling",
    "IncrementalRowScheme",
    "dfs_order",
]
