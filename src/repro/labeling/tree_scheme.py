"""Separator-based distance labeling for trees [Pel00, AGHP16b].

The classic recursion (Section 1.1 of the paper): pick the centroid
``c`` of the tree, let every vertex store its distance to ``c``, and
recurse into the components of ``T - c``.  Each vertex collects one
(centroid, distance) pair per level of the centroid decomposition --
``O(log n)`` hubs, hence ``O(log^2 n)`` label bits -- and any pair's
shortest path passes through the first centroid that separates them, so
the hub property holds.

:func:`tree_centroid_labeling` returns the construction as a
:class:`~repro.core.HubLabeling` (hub count is what the paper's tables
compare); wrap it in
:class:`~repro.labeling.hub_encoding.HubEncodedScheme` for a bit-level
distance labeling.
"""

from __future__ import annotations

from typing import List, Set

from ..core.hublabel import HubLabeling
from ..graphs.graph import Graph
from ..graphs.traversal import shortest_path_distances

__all__ = ["tree_centroid_labeling", "find_centroid"]


def _component_vertices(
    graph: Graph, start: int, blocked: Set[int]
) -> List[int]:
    """The connected component of ``start`` avoiding ``blocked``."""
    stack = [start]
    seen = {start}
    while stack:
        u = stack.pop()
        for v, _ in graph.neighbors(u):
            if v not in seen and v not in blocked:
                seen.add(v)
                stack.append(v)
    return list(seen)


def find_centroid(graph: Graph, component: List[int], blocked: Set[int]) -> int:
    """A centroid of the subtree ``component``: removing it leaves parts
    of size at most ``|component| / 2``."""
    members = set(component)
    half = len(component) / 2.0
    # Subtree sizes via iterative post-order from an arbitrary root.
    root = component[0]
    parent = {root: None}
    order = [root]
    stack = [root]
    while stack:
        u = stack.pop()
        for v, _ in graph.neighbors(u):
            if v in members and v not in parent and v not in blocked:
                parent[v] = u
                order.append(v)
                stack.append(v)
    size = {v: 1 for v in order}
    for v in reversed(order[1:]):
        size[parent[v]] += size[v]
    total = len(order)
    for v in order:
        biggest = total - size[v]
        for w, _ in graph.neighbors(v):
            if w in members and parent.get(w) == v:
                biggest = max(biggest, size[w])
        if biggest <= half:
            return v
    raise AssertionError("a tree always has a centroid")


def tree_centroid_labeling(graph: Graph) -> HubLabeling:
    """The centroid-decomposition hub labeling of a tree.

    Raises ``ValueError`` when the graph is not a tree (cycle or
    disconnected components are both rejected via the edge count and a
    reachability check during the recursion).
    """
    n = graph.num_vertices
    if n == 0:
        return HubLabeling(0)
    if graph.num_edges != n - 1:
        raise ValueError("tree labeling requires exactly n - 1 edges")
    labeling = HubLabeling(n)
    blocked: Set[int] = set()
    stack: List[List[int]] = [list(range(n))]
    covered = 0
    while stack:
        component = stack.pop()
        if not component:
            continue
        if len(component) == 1:
            v = component[0]
            labeling.add_hub(v, v, 0)
            blocked.add(v)
            covered += 1
            continue
        centroid = find_centroid(graph, component, blocked)
        dist, _ = shortest_path_distances(graph, centroid)
        members = set(component)
        for v in component:
            labeling.add_hub(v, centroid, dist[v])
        blocked.add(centroid)
        covered += 1
        remaining = members - {centroid}
        while remaining:
            start = next(iter(remaining))
            part = _component_vertices(graph, start, blocked)
            part_set = set(part)
            if not part_set <= members:
                raise ValueError("graph is not connected as a single tree")
            stack.append(part)
            remaining -= part_set
    if covered != n:
        raise ValueError("graph is not connected as a single tree")
    return labeling
