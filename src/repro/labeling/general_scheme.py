"""An ``O(n)``-bit distance labeling for general unweighted graphs.

The Graham-Pollak line of work ([GP72] ... [AGHP16a], Section 1 of the
paper) gives general graphs labels of ``log2(3)/2 * n + o(n)`` bits.
This module implements the clean textbook ``O(n)``-bit variant those
results refine: fix a DFS ordering ``v_1 .. v_n``; vertex ``v_k`` stores
its distance to ``v_1`` plus, for ``i = 2 .. n``, the *increment*
``dist(v_k, v_i) - dist(v_k, v_{i-1})``.

Consecutive DFS vertices are at distance at most ``diam`` apart but --
key point -- along a DFS of a *connected* graph, consecutive order
positions are adjacent-or-ancestor-linked so increments lie in a small
range; we encode each increment with gamma codes after shifting by the
observed minimum.  The label decodes the full distance row of its
vertex, so two labels decode the pair distance trivially.

The per-label bit count is ``Theta(n)`` on bounded-degree graphs
(increments in ``{-1, 0, +1}`` would give exactly ``2n`` bits via a
ternary code; gamma on shifted increments is within a constant), which
the benchmarks compare against the ``log2(3)/2 * n`` reference curve.
"""

from __future__ import annotations

from typing import Dict, List

from ..graphs.graph import Graph
from ..graphs.traversal import INF, shortest_path_distances
from .bits import BitReader, Bits, BitWriter
from .scheme import DistanceLabelingScheme

__all__ = ["IncrementalRowScheme", "dfs_order"]


def dfs_order(graph: Graph, root: int = 0) -> List[int]:
    """A DFS order of the component of ``root`` (then other components)."""
    seen = [False] * graph.num_vertices
    order: List[int] = []
    for start in [root] + list(graph.vertices()):
        if seen[start]:
            continue
        stack = [start]
        while stack:
            u = stack.pop()
            if seen[u]:
                continue
            seen[u] = True
            order.append(u)
            for v, _ in reversed(graph.neighbors(u)):
                if not seen[v]:
                    stack.append(v)
    return order


class IncrementalRowScheme(DistanceLabelingScheme):
    """Distance rows, delta-encoded along a shared DFS order.

    Requires a connected unweighted graph (increments must be finite).
    The DFS order itself is public scheme state -- in labeling terms it
    is part of the decoder, not of the labels -- mirroring how published
    schemes fix a vertex enumeration up front.
    """

    def __init__(self, graph: Graph, *, root: int = 0) -> None:
        if graph.is_weighted:
            raise ValueError("the incremental scheme expects unit weights")
        self._graph = graph
        self._order = dfs_order(graph, root)
        self._position = {v: i for i, v in enumerate(self._order)}
        self._cache: Dict[int, Bits] = {}

    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def order(self) -> List[int]:
        return list(self._order)

    def label(self, vertex: int) -> Bits:
        cached = self._cache.get(vertex)
        if cached is not None:
            return cached
        dist, _ = shortest_path_distances(self._graph, vertex)
        row = [dist[v] for v in self._order]
        if any(d == INF for d in row):
            raise ValueError("the incremental scheme requires connectivity")
        increments = [
            int(row[i] - row[i - 1]) for i in range(1, len(row))
        ]
        shift = max(0, -min(increments)) if increments else 0
        writer = BitWriter()
        writer.write_gamma(int(row[0]) + 1)
        writer.write_gamma(shift + 1)
        for inc in increments:
            writer.write_gamma(inc + shift + 1)
        bits = writer.getvalue()
        self._cache[vertex] = bits
        return bits

    def _decode_row(self, label: Bits) -> List[int]:
        reader = BitReader(label)
        first = reader.read_gamma() - 1
        shift = reader.read_gamma() - 1
        row = [first]
        while reader.remaining > 0:
            row.append(row[-1] + reader.read_gamma() - 1 - shift)
        return row

    def position_of(self, vertex: int) -> int:
        return self._position[vertex]

    def decode_pair(self, label_u: Bits, v_position: int) -> float:
        """Distance from the label's vertex to order position ``v_position``."""
        return self._decode_row(label_u)[v_position]

    def decode(self, label_u: Bits, label_v: Bits) -> float:
        """Decode using the rows' mutual consistency.

        Labels do not carry the vertex id, but the two rows cross at the
        owner positions: ``row_u[pos(v)] == row_v[pos(u)]`` and
        ``row_u[pos(u)] == 0``.  We find positions where each row is 0
        (its own slot) and read the other row there.
        """
        row_u = self._decode_row(label_u)
        row_v = self._decode_row(label_v)
        zeros_v = [i for i, d in enumerate(row_v) if d == 0]
        if len(zeros_v) == 1:
            return row_u[zeros_v[0]]
        # Several zeros can only happen for the owner itself plus
        # duplicates at distance 0 -- impossible with positive weights --
        # so a single zero is guaranteed for simple connected graphs.
        zeros_u = [i for i, d in enumerate(row_u) if d == 0]
        candidates = {row_u[j] for j in zeros_v} & {row_v[i] for i in zeros_u}
        if len(candidates) == 1:
            return candidates.pop()
        raise ValueError("ambiguous labels; graph may have 0-weight edges")
