"""Serializing hub labelings into distance labels.

Section 1.1 of the paper: "for most existing graph classes, the best
known distance labelling constructions are based on hub labeling
schemes", via some encoding of (hub id, distance) lists.  This module is
that bridge: it turns any :class:`~repro.core.HubLabeling` into a
self-contained :class:`~repro.labeling.scheme.DistanceLabelingScheme`.

Label layout: 8-bit id width; gamma-coded hub count + 1; then the hub
list sorted by id, with ids delta-encoded as gamma-coded gaps + 1 and
distances gamma-coded as value + 1.  Gap encoding keeps labels near the
information-theoretic ``|S_v| (log(n / |S_v|) + log diam)`` rather than
the naive ``|S_v| (log n + log diam)`` -- the "careful encoding"
[GKU16] use to shave a loglog factor.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.hublabel import HubLabeling
from ..graphs.traversal import INF
from .bits import BitReader, Bits, BitWriter
from .scheme import DistanceLabelingScheme

__all__ = ["HubEncodedScheme"]


class HubEncodedScheme(DistanceLabelingScheme):
    """A :class:`HubLabeling` exposed as a bit-label distance scheme."""

    def __init__(self, labeling: HubLabeling) -> None:
        self._labeling = labeling
        n = labeling.num_vertices
        self._id_width = max(1, max(n - 1, 1).bit_length())
        self._cache: Dict[int, Bits] = {}

    def num_vertices(self) -> int:
        return self._labeling.num_vertices

    def label(self, vertex: int) -> Bits:
        cached = self._cache.get(vertex)
        if cached is not None:
            return cached
        hubs: List[Tuple[int, float]] = sorted(
            self._labeling.hubs(vertex).items()
        )
        writer = BitWriter()
        writer.write_fixed(self._id_width, 8)
        writer.write_gamma(len(hubs) + 1)
        previous = -1
        for hub, distance in hubs:
            writer.write_gamma(hub - previous)  # gap >= 1
            writer.write_gamma(int(distance) + 1)
            previous = hub
        bits = writer.getvalue()
        self._cache[vertex] = bits
        return bits

    @staticmethod
    def _parse(label: Bits) -> Dict[int, int]:
        reader = BitReader(label)
        reader.read_fixed(8)  # id width (layout compatibility)
        count = reader.read_gamma() - 1
        hubs: Dict[int, int] = {}
        current = -1
        for _ in range(count):
            current += reader.read_gamma()
            hubs[current] = reader.read_gamma() - 1
        return hubs

    def decode(self, label_u: Bits, label_v: Bits) -> float:
        # Deliberately self-free: decoding is pure bit manipulation, so a
        # referee holding only the two labels can run it (Theorem 1.6).
        hubs_u = HubEncodedScheme._parse(label_u)
        hubs_v = HubEncodedScheme._parse(label_v)
        if len(hubs_u) > len(hubs_v):
            hubs_u, hubs_v = hubs_v, hubs_u
        best = INF
        for hub, du in hubs_u.items():
            dv = hubs_v.get(hub)
            if dv is not None and du + dv < best:
                best = du + dv
        return best
