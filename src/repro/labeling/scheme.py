"""The distance-labeling interface.

A distance labeling scheme assigns a bitstring ``label(v)`` to every
vertex such that ``decode(label(u), label(v))`` equals the exact graph
distance (the paper's definition; INF for disconnected pairs).  The
*decoder is part of the scheme* and may not consult the graph -- tests
enforce this by decoding through bitstrings alone.

Concrete schemes in this package:

* :class:`DistanceRowScheme` -- the trivial ``O(n log diam)`` bits/label
  scheme (every vertex stores its distance row);
* :mod:`.hub_encoding` -- any :class:`~repro.core.HubLabeling` serialized
  to bits (the route all state-of-the-art constructions take,
  Section 1.1);
* :mod:`.tree_scheme` -- the ``O(log^2 n)``-bit separator scheme for
  trees [Pel00].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..graphs.graph import Graph
from ..graphs.traversal import INF, shortest_path_distances
from .bits import BitReader, Bits, BitWriter

__all__ = ["DistanceLabelingScheme", "LabelingStats", "DistanceRowScheme"]


@dataclass(frozen=True)
class LabelingStats:
    """Bit-size statistics of a concrete labeling."""

    num_vertices: int
    total_bits: int
    max_bits: int

    @property
    def average_bits(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.total_bits / self.num_vertices


class DistanceLabelingScheme:
    """Base class: subclasses implement :meth:`label` and :meth:`decode`."""

    def label(self, vertex: int) -> Bits:
        raise NotImplementedError

    def decode(self, label_u: Bits, label_v: Bits) -> float:
        raise NotImplementedError

    def num_vertices(self) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def query(self, u: int, v: int) -> float:
        """Convenience: label both endpoints and decode."""
        return self.decode(self.label(u), self.label(v))

    def stats(self, sample: Optional[Sequence[int]] = None) -> LabelingStats:
        """Bit statistics over all vertices (or a sample)."""
        vertices = sample if sample is not None else range(self.num_vertices())
        total = 0
        biggest = 0
        count = 0
        for v in vertices:
            size = len(self.label(v))
            total += size
            biggest = max(biggest, size)
            count += 1
        return LabelingStats(
            num_vertices=count, total_bits=total, max_bits=biggest
        )


class DistanceRowScheme(DistanceLabelingScheme):
    """The trivial exact scheme: ``label(v)`` is ``v``'s distance row.

    Label layout (all fixed width): 8-bit id width, 8-bit distance
    width, the vertex id, then ``n`` distance slots where the all-ones
    pattern means unreachable.  ``O(n log diam)`` bits per label -- the
    upper end of the spectrum every sublinear scheme is measured
    against, and computable lazily (one traversal per labeled vertex),
    which lets the Sum-Index protocol run on instances far beyond APSP
    reach.
    """

    def __init__(self, graph: Graph, *, distance_width: Optional[int] = None):
        self._graph = graph
        n = graph.num_vertices
        self._id_width = max(1, max(n - 1, 1).bit_length())
        if distance_width is None:
            # A safe upper bound on any finite distance: the total edge
            # weight (in unweighted graphs, the number of edges).
            bound = max(2, graph.total_weight() + graph.num_edges + 1)
            distance_width = max(2, bound.bit_length() + 1)
        if distance_width > 255 or self._id_width > 255:
            raise ValueError("widths beyond 255 bits are not supported")
        self._distance_width = distance_width
        self._cache: Dict[int, Bits] = {}

    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def unreachable_pattern(self) -> int:
        return (1 << self._distance_width) - 1

    def label(self, vertex: int) -> Bits:
        cached = self._cache.get(vertex)
        if cached is not None:
            return cached
        dist, _ = shortest_path_distances(self._graph, vertex)
        writer = BitWriter()
        writer.write_fixed(self._id_width, 8)
        writer.write_fixed(self._distance_width, 8)
        writer.write_fixed(vertex, self._id_width)
        for d in dist:
            if d == INF:
                writer.write_fixed(
                    self.unreachable_pattern, self._distance_width
                )
            else:
                value = int(d)
                if value >= self.unreachable_pattern:
                    raise ValueError("distance exceeds the encoding width")
                writer.write_fixed(value, self._distance_width)
        bits = writer.getvalue()
        self._cache[vertex] = bits
        return bits

    def decode(self, label_u: Bits, label_v: Bits) -> float:
        reader_u = BitReader(label_u)
        id_width = reader_u.read_fixed(8)
        distance_width = reader_u.read_fixed(8)
        reader_u.read_fixed(id_width)  # u's own id is not needed
        reader_v = BitReader(label_v)
        if reader_v.read_fixed(8) != id_width:
            raise ValueError("labels come from different schemes")
        if reader_v.read_fixed(8) != distance_width:
            raise ValueError("labels come from different schemes")
        v_id = reader_v.read_fixed(id_width)
        # Skip to slot v_id of u's row.
        for _ in range(v_id):
            reader_u.read_fixed(distance_width)
        value = reader_u.read_fixed(distance_width)
        if value == (1 << distance_width) - 1:
            return INF
        return value
