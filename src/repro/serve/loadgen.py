"""Multi-threaded load generation against a :class:`QueryServer`.

The serving layer's correctness claims are concurrency claims, so they
need a concurrent workload to mean anything.  :func:`run_loadgen`
spawns ``clients`` threads, each with its own seeded RNG, firing random
``(u, v)`` queries through :meth:`QueryServer.submit` -- or, with
``batch_size`` set, through the batch-native
:meth:`QueryServer.submit_batch` fast path, one ticket per window:

* **overloads** are handled the way a well-behaved client would --
  back off briefly and retry (up to ``max_retries``); a request that
  still cannot be admitted is tallied as *dropped*, which the soak test
  requires to be zero;
* with ``expected`` (a ``(u, v) -> distance`` callable), every answer
  is graded against ground truth -- value *and* type, matching the
  byte-identical contract the differential tests enforce -- and
  mismatches are tallied as *wrong*;
* ``requests_per_client`` runs a fixed-size workload (benchmarks),
  ``duration`` runs a wall-clock-bounded one (the soak test);
* ``distribution`` shapes the query-pair stream: ``"uniform"``
  (independent endpoints), ``"zipf"`` (endpoints drawn from a Zipf
  popularity ranking -- the few-hot-vertices skew of real traffic), or
  ``"hotspot"`` (a handful of hot *pairs* gets ``hot_fraction`` of all
  requests -- the result cache's best case).  All three are built by
  :func:`make_pair_sampler`, which is public so tests and benchmarks
  can sample the same streams without a server.

Everything lands in a :class:`LoadReport`; ``report.ok`` is the single
bit CI cares about: no wrong answers, no drops, no unexpected errors.
"""

from __future__ import annotations

import bisect
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..runtime.errors import ServerOverloadError
from .server import QueryServer

__all__ = ["LoadReport", "PAIR_DISTRIBUTIONS", "make_pair_sampler", "run_loadgen"]

#: The query-pair distributions ``run_loadgen`` (and the CLIs) accept.
PAIR_DISTRIBUTIONS = ("uniform", "zipf", "hotspot")


def make_pair_sampler(
    num_vertices: int,
    distribution: str = "uniform",
    *,
    seed: int = 0,
    zipf_s: float = 1.1,
    hot_pairs: int = 16,
    hot_fraction: float = 0.9,
) -> Callable[[random.Random], Tuple[int, int]]:
    """Build a ``sampler(rng) -> (u, v)`` for one workload shape.

    The sampler's *shape* (the Zipf popularity ranking, the hot-pair
    set) is pinned by ``seed`` via its own ``random.Random(seed)``, so
    every client thread sees the same skew; the per-call randomness
    comes from the ``rng`` each caller passes in, which keeps
    multi-threaded runs deterministic per client.

    * ``"uniform"``  -- both endpoints independent uniform;
    * ``"zipf"``     -- each endpoint is the vertex of rank ``r`` with
      probability proportional to ``r ** -zipf_s`` over a seeded
      random ranking (``zipf_s > 0``);
    * ``"hotspot"``  -- with probability ``hot_fraction`` the pair is
      one of ``hot_pairs`` fixed hot pairs, otherwise uniform.
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be positive")
    if distribution == "uniform":

        def uniform_sampler(rng: random.Random) -> Tuple[int, int]:
            return rng.randrange(num_vertices), rng.randrange(num_vertices)

        return uniform_sampler
    shape_rng = random.Random(seed)
    if distribution == "zipf":
        if zipf_s <= 0:
            raise ValueError("zipf_s must be positive")
        ranking = list(range(num_vertices))
        shape_rng.shuffle(ranking)
        cumulative: List[float] = []
        acc = 0.0
        for rank in range(1, num_vertices + 1):
            acc += rank ** -zipf_s
            cumulative.append(acc)
        total = cumulative[-1]

        def pick(rng: random.Random) -> int:
            return ranking[
                bisect.bisect_left(cumulative, rng.random() * total)
            ]

        def zipf_sampler(rng: random.Random) -> Tuple[int, int]:
            return pick(rng), pick(rng)

        return zipf_sampler
    if distribution == "hotspot":
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if hot_pairs < 1:
            raise ValueError("hot_pairs must be positive")
        hot = [
            (
                shape_rng.randrange(num_vertices),
                shape_rng.randrange(num_vertices),
            )
            for _ in range(hot_pairs)
        ]

        def hotspot_sampler(rng: random.Random) -> Tuple[int, int]:
            if rng.random() < hot_fraction:
                return hot[rng.randrange(len(hot))]
            return rng.randrange(num_vertices), rng.randrange(num_vertices)

        return hotspot_sampler
    raise ValueError(
        f"unknown distribution {distribution!r}; pick from "
        f"{', '.join(PAIR_DISTRIBUTIONS)}"
    )


@dataclass
class LoadReport:
    """Aggregated outcome of one load-generation run."""

    clients: int = 0
    requests: int = 0          # answers received
    wrong: int = 0             # answers disagreeing with ground truth
    dropped: int = 0           # requests rejected even after retries
    retries: int = 0           # overload retries that eventually succeeded
    errors: int = 0            # queries resolved with an exception
    mutations: int = 0         # churn mutations applied during the run
    duration_s: float = 0.0
    mismatches: List[Tuple[int, int, object, object]] = field(
        default_factory=list
    )

    @property
    def throughput(self) -> float:
        """Answered requests per second of wall time."""
        return self.requests / self.duration_s if self.duration_s else 0.0

    @property
    def ok(self) -> bool:
        """True iff nothing was wrong, dropped, or errored."""
        return not (self.wrong or self.dropped or self.errors)

    def render(self) -> str:
        lines = [
            f"clients:    {self.clients}",
            f"requests:   {self.requests}",
            f"throughput: {self.throughput:,.0f} req/s",
            f"duration:   {self.duration_s:.3f}s",
            f"retries:    {self.retries}",
            f"dropped:    {self.dropped}",
            f"errors:     {self.errors}",
            f"mutations:  {self.mutations}",
            f"wrong:      {self.wrong}",
            f"verdict:    {'OK' if self.ok else 'FAILED'}",
        ]
        for u, v, got, want in self.mismatches[:5]:
            lines.append(f"  mismatch: dist({u},{v}) = {got!r}, want {want!r}")
        return "\n".join(lines)


def run_loadgen(
    server: QueryServer,
    num_vertices: int,
    *,
    clients: int = 4,
    requests_per_client: int = 250,
    duration: Optional[float] = None,
    seed: int = 0,
    expected: Optional[Callable[[int, int], object]] = None,
    max_retries: int = 50,
    backoff: float = 0.002,
    batch_size: Optional[int] = None,
    distribution: str = "uniform",
    sampler: Optional[Callable[[random.Random], Tuple[int, int]]] = None,
    zipf_s: float = 1.1,
    hot_pairs: int = 16,
    hot_fraction: float = 0.9,
    churn: Optional[Callable[[], object]] = None,
    churn_interval: float = 0.01,
) -> LoadReport:
    """Fire a concurrent random-pair workload at ``server``.

    With ``duration`` set, every client loops until the deadline
    instead of counting to ``requests_per_client``.  ``expected`` turns
    the run into a graded sweep (value AND type must match).

    ``batch_size`` switches the clients from per-pair
    :meth:`QueryServer.submit` to the batch-native
    :meth:`QueryServer.submit_batch` door, firing that many pairs per
    ticket (the final window of a fixed-size run may be narrower).
    Overload, grading, and tally semantics are identical -- a rejected
    or failed ticket tallies every pair it carried.

    ``distribution`` (with its ``zipf_s`` / ``hot_pairs`` /
    ``hot_fraction`` knobs) selects the pair stream via
    :func:`make_pair_sampler`; passing an explicit ``sampler`` callable
    overrides it entirely.

    ``churn`` turns the run into a live-mutation harness: the callable
    is invoked repeatedly (every ``churn_interval`` seconds) from one
    dedicated mutator thread while the client threads fire.  Each call
    is expected to perform one graph mutation and hot-swap the repaired
    labeling into ``server`` via ``set_oracle``; returning ``False``
    stops the churn early (such a call is treated as having mutated
    nothing), any other return keeps it going until the clients
    finish.  Mutating calls are tallied in
    ``LoadReport.mutations``; an exception from the callable fails the
    whole run loudly (it re-raises after the clients drain).  Note that
    a static ``expected`` callable grades stale under churn -- grade
    from inside the churn callable (probe after the swap) or hand in a
    generation-aware one.
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be positive")
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be positive when set")
    if sampler is None:
        sampler = make_pair_sampler(
            num_vertices,
            distribution,
            seed=seed,
            zipf_s=zipf_s,
            hot_pairs=hot_pairs,
            hot_fraction=hot_fraction,
        )
    report = LoadReport(clients=clients)
    lock = threading.Lock()

    def client(index: int) -> None:
        rng = random.Random(seed * 1_000_003 + index)
        answered = wrong = dropped = retries = errors = 0
        mismatches: List[Tuple[int, int, object, object]] = []
        deadline = (
            time.perf_counter() + duration if duration is not None else None
        )
        count = 0
        while True:
            if deadline is not None:
                if time.perf_counter() >= deadline:
                    break
            elif count >= requests_per_client:
                break
            if batch_size is None:
                count += 1
                u, v = sampler(rng)
                future = None
                for attempt in range(max_retries + 1):
                    try:
                        future = server.submit(u, v)
                        retries += attempt
                        break
                    except ServerOverloadError:
                        time.sleep(backoff * (1 + (attempt % 8)))
                if future is None:
                    dropped += 1
                    continue
                try:
                    got = future.result()
                except Exception:
                    errors += 1
                    continue
                answered += 1
                if expected is not None:
                    want = expected(u, v)
                    if got != want or type(got) is not type(want):
                        wrong += 1
                        if len(mismatches) < 5:
                            mismatches.append((u, v, got, want))
                continue
            width = batch_size
            if deadline is None:
                width = min(width, requests_per_client - count)
            count += width
            window = [sampler(rng) for _ in range(width)]
            us = [u for u, _ in window]
            vs = [v for _, v in window]
            ticket = None
            for attempt in range(max_retries + 1):
                try:
                    ticket = server.submit_batch(us, vs)
                    retries += attempt
                    break
                except ServerOverloadError:
                    time.sleep(backoff * (1 + (attempt % 8)))
            if ticket is None:
                dropped += width
                continue
            try:
                got_all = ticket.result()
            except Exception:
                errors += width
                continue
            answered += width
            if expected is not None:
                for u, v, got in zip(us, vs, got_all):
                    want = expected(u, v)
                    if got != want or type(got) is not type(want):
                        wrong += 1
                        if len(mismatches) < 5:
                            mismatches.append((u, v, got, want))
        with lock:
            report.requests += answered
            report.wrong += wrong
            report.dropped += dropped
            report.retries += retries
            report.errors += errors
            report.mismatches.extend(mismatches)

    threads = [
        threading.Thread(target=client, args=(i,), name=f"loadgen-{i}")
        for i in range(clients)
    ]
    stop_churn = threading.Event()
    churn_failure: List[BaseException] = []

    def mutator() -> None:
        while not stop_churn.is_set():
            try:
                more = churn()
            except BaseException as exc:  # re-raised after the drain
                churn_failure.append(exc)
                return
            if more is False:  # "no more work": nothing mutated this call
                return
            with lock:
                report.mutations += 1
            stop_churn.wait(churn_interval)

    mutator_thread = (
        threading.Thread(target=mutator, name="loadgen-churn")
        if churn is not None
        else None
    )
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    if mutator_thread is not None:
        mutator_thread.start()
    for thread in threads:
        thread.join()
    if mutator_thread is not None:
        stop_churn.set()
        mutator_thread.join()
    report.duration_s = time.perf_counter() - start
    if churn_failure:
        raise churn_failure[0]
    return report
