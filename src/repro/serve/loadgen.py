"""Multi-threaded load generation against a :class:`QueryServer`.

The serving layer's correctness claims are concurrency claims, so they
need a concurrent workload to mean anything.  :func:`run_loadgen`
spawns ``clients`` threads, each with its own seeded RNG, firing random
``(u, v)`` queries through :meth:`QueryServer.submit` -- or, with
``batch_size`` set, through the batch-native
:meth:`QueryServer.submit_batch` fast path, one ticket per window:

* **overloads** are handled the way a well-behaved client would --
  back off briefly and retry (up to ``max_retries``); a request that
  still cannot be admitted is tallied as *dropped*, which the soak test
  requires to be zero;
* with ``expected`` (a ``(u, v) -> distance`` callable), every answer
  is graded against ground truth -- value *and* type, matching the
  byte-identical contract the differential tests enforce -- and
  mismatches are tallied as *wrong*;
* ``requests_per_client`` runs a fixed-size workload (benchmarks),
  ``duration`` runs a wall-clock-bounded one (the soak test).

Everything lands in a :class:`LoadReport`; ``report.ok`` is the single
bit CI cares about: no wrong answers, no drops, no unexpected errors.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..runtime.errors import ServerOverloadError
from .server import QueryServer

__all__ = ["LoadReport", "run_loadgen"]


@dataclass
class LoadReport:
    """Aggregated outcome of one load-generation run."""

    clients: int = 0
    requests: int = 0          # answers received
    wrong: int = 0             # answers disagreeing with ground truth
    dropped: int = 0           # requests rejected even after retries
    retries: int = 0           # overload retries that eventually succeeded
    errors: int = 0            # queries resolved with an exception
    duration_s: float = 0.0
    mismatches: List[Tuple[int, int, object, object]] = field(
        default_factory=list
    )

    @property
    def throughput(self) -> float:
        """Answered requests per second of wall time."""
        return self.requests / self.duration_s if self.duration_s else 0.0

    @property
    def ok(self) -> bool:
        """True iff nothing was wrong, dropped, or errored."""
        return not (self.wrong or self.dropped or self.errors)

    def render(self) -> str:
        lines = [
            f"clients:    {self.clients}",
            f"requests:   {self.requests}",
            f"throughput: {self.throughput:,.0f} req/s",
            f"duration:   {self.duration_s:.3f}s",
            f"retries:    {self.retries}",
            f"dropped:    {self.dropped}",
            f"errors:     {self.errors}",
            f"wrong:      {self.wrong}",
            f"verdict:    {'OK' if self.ok else 'FAILED'}",
        ]
        for u, v, got, want in self.mismatches[:5]:
            lines.append(f"  mismatch: dist({u},{v}) = {got!r}, want {want!r}")
        return "\n".join(lines)


def run_loadgen(
    server: QueryServer,
    num_vertices: int,
    *,
    clients: int = 4,
    requests_per_client: int = 250,
    duration: Optional[float] = None,
    seed: int = 0,
    expected: Optional[Callable[[int, int], object]] = None,
    max_retries: int = 50,
    backoff: float = 0.002,
    batch_size: Optional[int] = None,
) -> LoadReport:
    """Fire a concurrent random-pair workload at ``server``.

    With ``duration`` set, every client loops until the deadline
    instead of counting to ``requests_per_client``.  ``expected`` turns
    the run into a graded sweep (value AND type must match).

    ``batch_size`` switches the clients from per-pair
    :meth:`QueryServer.submit` to the batch-native
    :meth:`QueryServer.submit_batch` door, firing that many pairs per
    ticket (the final window of a fixed-size run may be narrower).
    Overload, grading, and tally semantics are identical -- a rejected
    or failed ticket tallies every pair it carried.
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be positive")
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be positive when set")
    report = LoadReport(clients=clients)
    lock = threading.Lock()

    def client(index: int) -> None:
        rng = random.Random(seed * 1_000_003 + index)
        answered = wrong = dropped = retries = errors = 0
        mismatches: List[Tuple[int, int, object, object]] = []
        deadline = (
            time.perf_counter() + duration if duration is not None else None
        )
        count = 0
        while True:
            if deadline is not None:
                if time.perf_counter() >= deadline:
                    break
            elif count >= requests_per_client:
                break
            if batch_size is None:
                count += 1
                u = rng.randrange(num_vertices)
                v = rng.randrange(num_vertices)
                future = None
                for attempt in range(max_retries + 1):
                    try:
                        future = server.submit(u, v)
                        retries += attempt
                        break
                    except ServerOverloadError:
                        time.sleep(backoff * (1 + (attempt % 8)))
                if future is None:
                    dropped += 1
                    continue
                try:
                    got = future.result()
                except Exception:
                    errors += 1
                    continue
                answered += 1
                if expected is not None:
                    want = expected(u, v)
                    if got != want or type(got) is not type(want):
                        wrong += 1
                        if len(mismatches) < 5:
                            mismatches.append((u, v, got, want))
                continue
            width = batch_size
            if deadline is None:
                width = min(width, requests_per_client - count)
            count += width
            us = [rng.randrange(num_vertices) for _ in range(width)]
            vs = [rng.randrange(num_vertices) for _ in range(width)]
            ticket = None
            for attempt in range(max_retries + 1):
                try:
                    ticket = server.submit_batch(us, vs)
                    retries += attempt
                    break
                except ServerOverloadError:
                    time.sleep(backoff * (1 + (attempt % 8)))
            if ticket is None:
                dropped += width
                continue
            try:
                got_all = ticket.result()
            except Exception:
                errors += width
                continue
            answered += width
            if expected is not None:
                for u, v, got in zip(us, vs, got_all):
                    want = expected(u, v)
                    if got != want or type(got) is not type(want):
                        wrong += 1
                        if len(mismatches) < 5:
                            mismatches.append((u, v, got, want))
        with lock:
            report.requests += answered
            report.wrong += wrong
            report.dropped += dropped
            report.retries += retries
            report.errors += errors
            report.mismatches.extend(mismatches)

    threads = [
        threading.Thread(target=client, args=(i,), name=f"loadgen-{i}")
        for i in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.duration_s = time.perf_counter() - start
    return report
