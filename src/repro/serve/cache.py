"""Thread-safe LRU result cache, scoped to one label generation.

Distance answers are immutable for a fixed labeling, so repeat queries
are pure cache fodder -- but *only* for a fixed labeling.  The cache is
therefore keyed by a **generation token** derived from the labeling's
content digest (:func:`labeling_digest`):

* :meth:`ResultCache.put` carries the generation the answer was
  computed under and is dropped silently if the server has re-keyed in
  the meantime -- an in-flight batch from the previous oracle can never
  poison the cache after :meth:`~repro.serve.server.QueryServer.set_oracle`;
* :meth:`ResultCache.rekey` clears everything when the generation
  actually changed, and keeps the warm entries when a swap re-installed
  a labeling with the identical digest (dict vs flat backends answer
  byte-identically, so the digest deliberately covers label *content*,
  not store layout).

Everything mutates under one lock; ``get`` / ``put`` are O(1) via
``OrderedDict`` recency moves.  ``capacity == 0`` disables caching
entirely (every ``get`` misses, every ``put`` is dropped) -- what the
benchmarks use to measure the uncached serving path.
"""

from __future__ import annotations

import hashlib
import threading
from array import array
from collections import OrderedDict
from typing import Hashable, List, Optional, Sequence, Tuple

__all__ = ["ResultCache", "labeling_digest", "MISS"]

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISS = object()


def labeling_digest(store) -> str:
    """A sha256 hex digest of a label store's *content*.

    Accepts either label store (:class:`~repro.core.hublabel.HubLabeling`
    dicts or :class:`~repro.perf.flat.FlatHubLabeling` CSR arrays) and
    hashes the same canonical byte stream for both -- the CSR triple
    ``offsets | hubs | dists`` with hubs ascending per run and distances
    as doubles -- so the two layouts of one labeling share a digest,
    mirroring their byte-identical query contract.  The flat store's
    arrays are hashed as raw buffers (three ``update`` calls total);
    the dict store is canonicalized into the same triple first, which
    keeps a server swap O(labels) in C rather than O(labels) in Python
    string formatting.
    """
    offsets = getattr(store, "_offsets", None)
    if offsets is None:
        # Dict store: build the canonical CSR triple the flat layout
        # already holds, then hash the identical bytes.
        offsets = array("l", [0])
        hubs = array("l")
        dists = array("d")
        for vertex in range(store.num_vertices):
            entries = sorted(store.hubs(vertex).items())
            hubs.extend(entry[0] for entry in entries)
            dists.extend(float(entry[1]) for entry in entries)
            offsets.append(len(hubs))
    else:
        hubs, dists = store._hubs, store._dists
    hasher = hashlib.sha256()
    hasher.update(f"csr1:n{store.num_vertices}:".encode())
    hasher.update(offsets.tobytes())
    hasher.update(hubs.tobytes())
    hasher.update(dists.tobytes())
    return hasher.hexdigest()


class ResultCache:
    """A bounded, generation-scoped LRU map of query results."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._generation: Optional[str] = None
        self._lock = threading.Lock()

    @property
    def generation(self) -> Optional[str]:
        return self._generation

    def rekey(self, generation: str) -> bool:
        """Adopt ``generation``; clear if it differs.  True if cleared."""
        with self._lock:
            changed = generation != self._generation
            self._generation = generation
            if changed:
                self._entries.clear()
            return changed

    def get(self, key: Hashable):
        """The cached value for ``key`` (freshened), or :data:`MISS`."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                return MISS
            self._entries.move_to_end(key)
            return value

    def put(self, key: Hashable, value, generation: Optional[str] = None) -> bool:
        """Store ``key -> value``; True if it was accepted.

        A ``generation`` that no longer matches the cache's (the oracle
        was swapped while the answer was in flight) drops the put --
        that is the staleness guard, not an error.
        """
        with self._lock:
            if self.capacity == 0:
                return False
            if generation is not None and generation != self._generation:
                return False
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return True

    def get_many(self, keys: Sequence[Hashable]) -> List[object]:
        """Cached values for ``keys`` under one lock; :data:`MISS` gaps.

        The batch-path counterpart of :meth:`get`: one lock round-trip
        probes a whole submitted batch.  Hits are freshened exactly as
        single gets are.
        """
        with self._lock:
            entries = self._entries
            out = []
            for key in keys:
                try:
                    value = entries[key]
                except KeyError:
                    out.append(MISS)
                else:
                    entries.move_to_end(key)
                    out.append(value)
            return out

    def put_many(
        self,
        keys: Sequence[Hashable],
        values: Sequence[object],
        generation: Optional[str] = None,
    ) -> bool:
        """Store ``keys[i] -> values[i]`` under one lock; True if accepted.

        The whole batch shares one generation check (the answers were
        computed under one oracle hold), so a swap mid-flight drops the
        batch atomically -- never a half-stale cache.
        """
        with self._lock:
            if self.capacity == 0:
                return False
            if generation is not None and generation != self._generation:
                return False
            entries = self._entries
            for key, value in zip(keys, values):
                entries[key] = value
                entries.move_to_end(key)
            while len(entries) > self.capacity:
                entries.popitem(last=False)
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> Tuple[Hashable, ...]:
        """Current keys, least- to most-recently used (for tests)."""
        with self._lock:
            return tuple(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ResultCache(size={len(self)}, capacity={self.capacity}, "
            f"generation={str(self._generation)[:12]!r})"
        )
