"""Concurrent serving layer over the distance oracles.

The oracles answer one caller at a time; this package puts them behind
a thread-based :class:`~repro.serve.server.QueryServer` that admits
concurrent requests through a bounded queue, coalesces them into the
micro-batches the flat backend is fast at, caches repeat answers in a
generation-keyed LRU, and rejects overload loudly
(:class:`~repro.runtime.errors.ServerOverloadError`) instead of
degrading silently.  :class:`~repro.serve.sharded.ShardedQueryServer`
lifts the single-process ceiling: N worker processes run that same
batch door over one zero-copy shared-memory (or mmap'ed) label store,
speaking raw pair-array frames.  ``python -m repro serve`` runs a
self-test server; ``python -m repro loadgen`` drives one for
throughput numbers (``--processes N`` selects the sharded door).

See ``docs/serving.md`` for the architecture walk-through.
"""

from .cache import MISS, ResultCache, labeling_digest
from .coalesce import MicroBatcher
from .loadgen import (
    PAIR_DISTRIBUTIONS,
    LoadReport,
    make_pair_sampler,
    run_loadgen,
)
from .server import BatchTicket, QueryServer, ServerStats
from .sharded import FleetHealth, ShardedQueryServer, ShardedTicket

__all__ = [
    "MISS",
    "PAIR_DISTRIBUTIONS",
    "BatchTicket",
    "FleetHealth",
    "LoadReport",
    "MicroBatcher",
    "QueryServer",
    "ResultCache",
    "ServerStats",
    "ShardedQueryServer",
    "ShardedTicket",
    "labeling_digest",
    "make_pair_sampler",
    "run_loadgen",
]
