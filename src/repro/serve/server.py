"""``QueryServer``: concurrent request serving over any distance oracle.

Every oracle in this repository answers one caller at a time; the
ROADMAP's north star is a system serving heavy traffic.  This module is
the bridge: a thread-based server that accepts a stream of concurrent
``(u, v)`` requests and turns them into the shapes the oracles are fast
at, while degrading *predictably* -- never silently -- under load.

The pipeline, request by request:

1. **Admission** -- :meth:`QueryServer.submit` consults the LRU result
   cache (:class:`~repro.serve.cache.ResultCache`, keyed by the
   labeling's content digest); a hit resolves inline.  A miss enqueues
   onto a *bounded* queue; when the queue is full the request is
   rejected with :class:`~repro.runtime.errors.ServerOverloadError`
   (backpressure -- the caller backs off, nothing is dropped silently).
2. **Coalescing** -- a single dispatcher thread packs queued requests
   into micro-batches (:class:`~repro.serve.coalesce.MicroBatcher`),
   flushing on size (``max_batch``) or deadline (``max_delay``), so a
   flood of scalar requests is served through the flat backend's
   vectorized ``batch_query`` kernels instead of one merge at a time.
3. **Dispatch** -- duplicate pairs inside one batch collapse to a
   single backend query; oracles without a batch engine fall back to
   the scalar path.  A failing batch is retried pair-by-pair so one bad
   request cannot poison its batch-mates; per-request errors travel
   through the request's future.
4. **Shutdown** -- :meth:`stop` (or leaving the context manager) stops
   admissions, then *drains*: everything already accepted is served
   before the dispatcher exits.  ``drain=False`` cancels the backlog
   instead (every pending future reports cancelled -- still never
   silent).

The oracle is only ever invoked from the dispatcher thread (under the
swap lock), so stateful oracles such as
:class:`~repro.runtime.resilient.ResilientOracle` need no internal
locking.  :meth:`set_oracle` swaps the oracle atomically and re-keys
the result cache by the new labeling's digest -- in-flight answers from
the old generation are discarded by the cache, never served stale.

Metrics (``serve.*`` in ``repro.obs.catalog``): request/overload/cache
counters, a queue-depth gauge, a coalesce-width histogram, and a
submit-to-response latency histogram.
"""

from __future__ import annotations

import itertools
import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.catalog import (
    SERVE_BATCHES,
    SERVE_CACHE_HITS,
    SERVE_CACHE_MISSES,
    SERVE_COALESCE_WIDTH,
    SERVE_OVERLOADS,
    SERVE_QUEUE_DEPTH,
    SERVE_REQUESTS,
    SERVE_REQUEST_LATENCY_SECONDS,
)
from ..obs.registry import get_registry as _get_registry
from ..runtime.errors import ServerOverloadError
from .cache import MISS, ResultCache, labeling_digest
from .coalesce import MicroBatcher

__all__ = ["QueryServer", "ServerStats", "WIDTH_BUCKETS"]

#: Bucket upper edges for the coalesce-width histogram (requests per
#: flushed micro-batch, not seconds).
WIDTH_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)

#: Sentinel the dispatcher recognizes as "stop after draining".
_STOP = object()

#: Distinguishes oracles without a labeling digest; each swap of such
#: an oracle gets a fresh generation token (cache always cold).
_ANON = itertools.count()


class _Request:
    __slots__ = ("u", "v", "future", "enqueued")

    def __init__(self, u: int, v: int, enqueued: float) -> None:
        self.u = u
        self.v = v
        self.future: Future = Future()
        self.enqueued = enqueued


@dataclass(frozen=True)
class ServerStats:
    """A consistent snapshot of the server's own tallies.

    ``responses`` counts resolved futures (cache hits included);
    ``requests - responses - errors`` pending requests.  ``coalesced``
    is the number of requests served through micro-batches, so
    ``coalesced / batches`` is the realized mean batch width.
    """

    requests: int = 0
    responses: int = 0
    errors: int = 0
    cache_hits: int = 0
    overloads: int = 0
    batches: int = 0
    coalesced: int = 0

    @property
    def mean_batch_width(self) -> float:
        return self.coalesced / self.batches if self.batches else 0.0


def _generation_for(oracle) -> str:
    """The cache-generation token for ``oracle``.

    Labeling-backed oracles key by class name + content digest, so two
    oracles of the same kind serving byte-identical labels share a warm
    cache across :meth:`QueryServer.set_oracle`.  Oracles without an
    exposed labeling get a unique token per swap (cold cache, safe).
    """
    store = getattr(oracle, "labeling", None)
    if store is not None:
        return f"{type(oracle).__name__}:{labeling_digest(store)}"
    return f"{type(oracle).__name__}:anon-{next(_ANON)}"


class QueryServer:
    """A bounded, coalescing, caching front-end over a distance oracle.

    ``oracle`` needs ``query(u, v)`` returning an outcome with a
    ``.distance`` (or the distance itself); a ``batch_query(pairs)``
    method is used when present.  Answers are exactly the oracle's --
    the server adds concurrency, never arithmetic.
    """

    def __init__(
        self,
        oracle,
        *,
        max_queue: int = 1024,
        max_batch: int = 64,
        max_delay: float = 0.002,
        cache_size: int = 4096,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue)
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._oracle = oracle
        self._oracle_lock = threading.Lock()
        self._generation = _generation_for(oracle)
        self._cache = ResultCache(cache_size)
        self._cache.rekey(self._generation)
        self._accepting = False
        self._thread: Optional[threading.Thread] = None
        self._lifecycle = threading.Lock()
        self._stats_lock = threading.Lock()
        self._stats: Dict[str, int] = {
            "requests": 0,
            "responses": 0,
            "errors": 0,
            "cache_hits": 0,
            "overloads": 0,
            "batches": 0,
            "coalesced": 0,
        }
        self._obs_registry = None
        self._obs: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryServer":
        with self._lifecycle:
            if self._thread is not None:
                return self
            self._accepting = True
            self._thread = threading.Thread(
                target=self._run, name="repro-query-server", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Stop admissions, then drain (default) or cancel the backlog.

        Idempotent.  After it returns every accepted request has been
        resolved (``drain=True``) or cancelled (``drain=False``).
        """
        with self._lifecycle:
            self._accepting = False
            thread = self._thread
            if thread is not None:
                self._drain_requested = drain
                self._queue.put(_STOP)  # blocking put: always lands
                thread.join()
                self._thread = None
            # Catch submits that raced the accepting flag: with the
            # dispatcher gone, serve (or cancel) them inline.
            leftovers = self._take_all()
            if leftovers:
                if drain:
                    self._serve_batch(leftovers)
                else:
                    for request in leftovers:
                        request.future.cancel()

    @property
    def running(self) -> bool:
        return self._accepting and self._thread is not None

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, u: int, v: int) -> Future:
        """Enqueue one query; returns a future resolving to its distance.

        Raises :class:`ServerOverloadError` when the admission queue is
        full -- the request was *not* accepted, back off and retry.
        Raises :class:`RuntimeError` when the server is not running.
        """
        if not self._accepting:
            raise RuntimeError("QueryServer is not running (call start())")
        obs = self._bind_obs()
        key = (u, v)
        hit = self._cache.get(key)
        if hit is not MISS:
            future: Future = Future()
            future.set_result(hit)
            with self._stats_lock:
                self._stats["requests"] += 1
                self._stats["cache_hits"] += 1
                self._stats["responses"] += 1
            if obs is not None:
                obs.requests.inc()
                obs.cache_hits.inc()
            return future
        request = _Request(u, v, perf_counter())
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            with self._stats_lock:
                self._stats["overloads"] += 1
            if obs is not None:
                obs.overloads.inc()
            raise ServerOverloadError(
                f"admission queue is full; request ({u}, {v}) rejected",
                capacity=self.max_queue,
            )
        with self._stats_lock:
            self._stats["requests"] += 1
        if obs is not None:
            obs.requests.inc()
            obs.cache_misses.inc()
            obs.queue_depth.set(self._queue.qsize())
        return request.future

    def query(self, u: int, v: int, timeout: Optional[float] = None):
        """Blocking convenience: submit and wait for the distance."""
        return self.submit(u, v).result(timeout=timeout)

    def batch(
        self, pairs: Sequence[Tuple[int, int]], timeout: Optional[float] = None
    ) -> List[float]:
        """Submit many pairs and gather their answers, in order."""
        futures = [self.submit(u, v) for u, v in pairs]
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------
    # Oracle management
    # ------------------------------------------------------------------
    @property
    def oracle(self):
        return self._oracle

    @property
    def generation(self) -> str:
        """The result cache's current generation token."""
        return self._generation

    def set_oracle(self, oracle) -> bool:
        """Swap the serving oracle; True if the result cache was cleared.

        The cache survives the swap only when the new oracle serves a
        labeling with the identical content digest; any other swap
        re-keys it, and answers still in flight from the old oracle are
        dropped by the generation guard rather than cached stale.
        """
        generation = _generation_for(oracle)
        with self._oracle_lock:
            self._oracle = oracle
            self._generation = generation
            return self._cache.rekey(generation)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> ServerStats:
        with self._stats_lock:
            return ServerStats(**self._stats)

    @property
    def cache(self) -> ResultCache:
        return self._cache

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"QueryServer({state}, oracle={type(self._oracle).__name__}, "
            f"queue={self._queue.qsize()}/{self.max_queue}, "
            f"max_batch={self.max_batch})"
        )

    # ------------------------------------------------------------------
    # Dispatcher internals
    # ------------------------------------------------------------------
    def _bind_obs(self) -> Optional["_ServeInstruments"]:
        registry = _get_registry()
        if registry is not self._obs_registry:
            obs = _ServeInstruments(registry) if registry.enabled else None
            # Publish instruments before the registry marker (submit is
            # called concurrently; a reader seeing the marker match must
            # never pick up a stale instrument set).
            self._obs = obs
            self._obs_registry = registry
            return obs
        return self._obs

    def _run(self) -> None:
        batcher: MicroBatcher = MicroBatcher(self.max_batch, self.max_delay)
        while True:
            if len(batcher):
                timeout = max(0.0, batcher.deadline - perf_counter())
            else:
                timeout = None  # park until a request or _STOP arrives
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                batch = batcher.poll(perf_counter())
                if batch:
                    self._serve_batch(batch)
                continue
            if item is _STOP:
                batch = batcher.flush()
                if batch:
                    self._serve_batch(batch)
                drain = getattr(self, "_drain_requested", True)
                leftovers = self._take_all()
                if leftovers:
                    if drain:
                        self._serve_batch(leftovers)
                    else:
                        for request in leftovers:
                            request.future.cancel()
                return
            batch = batcher.add(item, perf_counter())
            if batch:
                self._serve_batch(batch)

    def _take_all(self) -> List[_Request]:
        requests: List[_Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return requests
            if item is not _STOP:
                requests.append(item)

    def _serve_batch(self, requests: List[_Request]) -> None:
        obs = self._bind_obs()
        # Collapse duplicate pairs: one backend query answers them all.
        order: List[Tuple[int, int]] = []
        groups: Dict[Tuple[int, int], List[_Request]] = {}
        for request in requests:
            key = (request.u, request.v)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(request)
        answers: Dict[Tuple[int, int], object] = {}
        failures: Dict[Tuple[int, int], BaseException] = {}
        with self._oracle_lock:
            oracle = self._oracle
            generation = self._generation
            batch_fn = getattr(oracle, "batch_query", None)
            if batch_fn is not None:
                try:
                    values = batch_fn(order)
                    answers = dict(zip(order, values))
                except Exception:
                    # One bad pair fails a whole batch call; isolate it
                    # below so its batch-mates still get answers.
                    batch_fn = None
            if batch_fn is None:
                for key in order:
                    try:
                        outcome = oracle.query(*key)
                        answers[key] = getattr(outcome, "distance", outcome)
                    except Exception as exc:
                        failures[key] = exc
        done = perf_counter()
        errors = 0
        for key in order:
            if key in failures:
                exc = failures[key]
                errors += len(groups[key])
                for request in groups[key]:
                    _resolve(request.future, exc=exc)
            else:
                value = answers[key]
                self._cache.put(key, value, generation)
                for request in groups[key]:
                    _resolve(request.future, value=value)
        with self._stats_lock:
            self._stats["batches"] += 1
            self._stats["coalesced"] += len(requests)
            self._stats["responses"] += len(requests) - errors
            self._stats["errors"] += errors
        if obs is not None:
            obs.batches.inc()
            obs.coalesce_width.observe(float(len(requests)))
            obs.queue_depth.set(self._queue.qsize())
            for request in requests:
                obs.request_latency.observe(done - request.enqueued)


class _ServeInstruments:
    """The ``serve.*`` instruments, pre-bound against one registry."""

    __slots__ = (
        "requests",
        "request_latency",
        "queue_depth",
        "batches",
        "coalesce_width",
        "cache_hits",
        "cache_misses",
        "overloads",
    )

    def __init__(self, registry) -> None:
        self.requests = registry.counter(SERVE_REQUESTS)
        self.request_latency = registry.histogram(
            SERVE_REQUEST_LATENCY_SECONDS
        )
        self.queue_depth = registry.gauge(SERVE_QUEUE_DEPTH)
        self.batches = registry.counter(SERVE_BATCHES)
        self.coalesce_width = registry.histogram(
            SERVE_COALESCE_WIDTH, buckets=WIDTH_BUCKETS
        )
        self.cache_hits = registry.counter(SERVE_CACHE_HITS)
        self.cache_misses = registry.counter(SERVE_CACHE_MISSES)
        self.overloads = registry.counter(SERVE_OVERLOADS)


def _resolve(future: Future, value=None, exc=None) -> None:
    """Resolve a future, tolerating a concurrent cancellation."""
    try:
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(value)
    except Exception:
        pass  # cancelled by a non-draining stop; nothing to deliver
