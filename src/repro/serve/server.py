"""``QueryServer``: concurrent request serving over any distance oracle.

Every oracle in this repository answers one caller at a time; the
ROADMAP's north star is a system serving heavy traffic.  This module is
the bridge: a thread-based server that accepts a stream of concurrent
requests and turns them into the shapes the oracles are fast at, while
degrading *predictably* -- never silently -- under load.

Two front doors share one pipeline:

* :meth:`QueryServer.submit` -- one ``(u, v)`` pair, one
  ``concurrent.futures.Future``.  Misses are coalesced into
  micro-batches (:class:`~repro.serve.coalesce.MicroBatcher`) by the
  dispatcher, so a flood of scalar requests still reaches the flat
  backend's vectorized kernels.
* :meth:`QueryServer.submit_batch` -- whole ``us`` / ``vs`` pair
  arrays, one :class:`BatchTicket`.  The batch is deduplicated and
  cache-probed *vectorized* at submit time, travels the admission path
  as a single item, is served by one kernel call, and completes with
  one event -- results scatter back through a fancy-indexed inverse
  map, never through per-pair ``Future.set_result``.  This is the fast
  path ``run_loadgen``, the CLIs, and the serving benchmarks use.

The pipeline, item by item:

1. **Admission** -- the bounded queue is *sharded*: ``shards`` striped
   deques, each with its own lock and capacity slice of ``max_queue``,
   and per-thread shard affinity so concurrent clients rarely contend
   on the same lock.  A full shard rejects with
   :class:`~repro.runtime.errors.ServerOverloadError` (backpressure --
   the caller backs off, nothing is dropped silently).  Cache hits
   resolve inline and never enqueue.
2. **Dispatch** -- ``dispatchers`` threads (default one) partition the
   shards and drain them in bulk: scalar requests feed a
   :class:`MicroBatcher`; tickets are served directly (they are already
   batch-shaped).  Duplicate pairs collapse to one backend query; a
   failing batch call is retried pair-by-pair so one bad request cannot
   poison its batch-mates.
3. **Completion** -- one event per micro-batch / ticket; answers are
   cached in bulk (``put_many``) under the generation captured with the
   oracle, so a swap mid-flight can never publish stale entries.
4. **Shutdown** -- :meth:`stop` (or leaving the context manager) stops
   admissions, then *drains*: everything already accepted is served
   before the dispatchers exit.  ``drain=False`` cancels the backlog
   instead (pending futures report cancelled, pending tickets raise
   ``CancelledError`` -- still never silent).

The oracle is only ever invoked under the swap lock, so stateful
oracles such as :class:`~repro.runtime.resilient.ResilientOracle` need
no internal locking even with several dispatchers.  :meth:`set_oracle`
swaps the oracle atomically; the cache generation is computed *once
per swap* (content digest when the cache is enabled, a throwaway token
when it is off) and cache keys are packed integers ``u * n + v`` --
cheap to compute vectorized and cheap to hash.

Metrics (``serve.*`` in ``repro.obs.catalog``): request / overload /
cache / batch-submission counters, queue-depth and per-shard depth
gauges, a coalesce-width histogram, and a submit-to-response latency
histogram (one observation per micro-batch or ticket).
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import CancelledError, Future
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via both import paths in CI images
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from ..obs.catalog import (
    SERVE_BATCH_SUBMISSIONS,
    SERVE_BATCHES,
    SERVE_CACHE_HITS,
    SERVE_CACHE_MISSES,
    SERVE_COALESCE_WIDTH,
    SERVE_GENERATION,
    SERVE_OVERLOADS,
    SERVE_QUEUE_DEPTH,
    SERVE_REQUESTS,
    SERVE_REQUEST_LATENCY_SECONDS,
    SERVE_SHARD_DEPTH,
)
from ..obs.registry import Histogram
from ..obs.registry import get_registry as _get_registry
from ..runtime.errors import DomainError, ServerOverloadError
from .cache import MISS, ResultCache, labeling_digest
from .coalesce import MicroBatcher

__all__ = [
    "BatchTicket",
    "QueryServer",
    "ServerStats",
    "DEFAULT_SHARDS",
    "WIDTH_BUCKETS",
]

#: Bucket upper edges for the coalesce-width histogram (requests per
#: flushed micro-batch, not seconds).
WIDTH_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)

#: Admission shards when the caller does not choose (capped at
#: ``max_queue`` so every shard keeps a positive capacity slice).
DEFAULT_SHARDS = 4

#: Distinguishes oracles without a content generation; each swap of
#: such an oracle gets a fresh token (cache always cold, never stale).
_ANON = itertools.count()


class _Request:
    __slots__ = ("u", "v", "key", "future", "enqueued")

    def __init__(self, u: int, v: int, key, enqueued: float) -> None:
        self.u = u
        self.v = v
        self.key = key
        self.future: Future = Future()
        self.enqueued = enqueued


class BatchTicket:
    """One waitable unit for a whole submitted pair batch.

    Returned by :meth:`QueryServer.submit_batch`; :meth:`result` blocks
    on a single event and returns the distances in submission order
    (duplicates included -- deduplication is internal).  Error
    granularity is the ticket: an oracle failure fails the whole batch
    (use :meth:`QueryServer.submit` when per-pair isolation matters),
    and a non-draining stop raises ``CancelledError``.
    """

    __slots__ = (
        "width", "enqueued",
        "_event", "_results", "_error",
        "_keys", "_pairs", "_values", "_need", "_scatter",
    )

    def __init__(self, width, enqueued, keys, pairs, values, need, scatter):
        self.width = width
        self.enqueued = enqueued
        self._event = threading.Event()
        self._results: Optional[List[object]] = None
        self._error: Optional[BaseException] = None
        self._keys = keys        # cache keys, one per unique pair
        self._pairs = pairs      # unique (u, v) tuples
        self._values = values    # per-unique answers (MISS = pending)
        self._need = need        # unique indices the oracle must answer
        self._scatter = scatter  # submission index -> unique index

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> List[object]:
        """The distances, in submission order (blocks until served)."""
        if not self._event.wait(timeout):
            raise TimeoutError("BatchTicket not resolved in time")
        if self._error is not None:
            raise self._error
        return self._results

    def _resolve(self, results: List[object]) -> None:
        self._results = results
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()

    def _scatter_and_resolve(self) -> None:
        values = self._values
        scatter = self._scatter
        if np is not None and isinstance(scatter, np.ndarray):
            # Fancy-indexed scatter over an object array keeps every
            # answer's Python type intact (int vs float, inf included).
            results = np.asarray(values, dtype=object)[scatter].tolist()
        else:
            results = [values[j] for j in scatter]
        self._resolve(results)

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"BatchTicket(width={self.width}, {state})"


class _Shard:
    """One admission stripe: a lock, a swap-out list, a pair count."""

    __slots__ = ("index", "lock", "items", "pairs", "capacity", "event")

    def __init__(self, index: int, capacity: int, event) -> None:
        self.index = index
        self.lock = threading.Lock()
        self.items: List[object] = []
        self.pairs = 0
        self.capacity = capacity
        self.event = event


@dataclass(frozen=True)
class ServerStats:
    """A consistent snapshot of the server's own tallies.

    ``responses`` counts answered pairs (cache hits included);
    ``requests - responses - errors`` pending pairs.  ``coalesced`` is
    the number of pairs served through micro-batches or tickets, so
    ``coalesced / batches`` is the realized mean batch width --
    ``batch_width_p50`` / ``batch_width_p95`` report the width
    *distribution* from the server's own histogram, which a mean alone
    cannot (one giant ticket hides a thousand singleton flushes).
    """

    requests: int = 0
    responses: int = 0
    errors: int = 0
    cache_hits: int = 0
    overloads: int = 0
    batches: int = 0
    coalesced: int = 0
    batch_width_p50: float = 0.0
    batch_width_p95: float = 0.0

    @property
    def mean_batch_width(self) -> float:
        return self.coalesced / self.batches if self.batches else 0.0


def _generation_for(oracle, *, content: bool) -> str:
    """The cache-generation token for ``oracle``, computed once per swap.

    With ``content`` (the result cache is enabled), labeling-backed
    oracles key by class name + content digest, so two oracles of the
    same kind serving byte-identical labels share a warm cache across
    :meth:`QueryServer.set_oracle`.  With the cache disabled, staleness
    is moot and the digest pass is skipped entirely -- a throwaway
    token keeps swaps O(1) instead of O(labels).
    """
    store = getattr(oracle, "labeling", None)
    if content and store is not None:
        return f"{type(oracle).__name__}:{labeling_digest(store)}"
    return f"{type(oracle).__name__}:anon-{next(_ANON)}"


def _key_base_for(oracle) -> Optional[int]:
    """``n`` for packed ``u * n + v`` cache keys, or None (tuple keys)."""
    store = getattr(oracle, "labeling", None)
    n = getattr(store, "num_vertices", None) if store is not None else None
    return n if isinstance(n, int) and n > 0 else None


class QueryServer:
    """A bounded, coalescing, caching front-end over a distance oracle.

    ``oracle`` needs ``query(u, v)`` returning an outcome with a
    ``.distance`` (or the distance itself); a ``batch_query(pairs)``
    method is used when present.  Answers are exactly the oracle's --
    the server adds concurrency, never arithmetic.

    ``shards`` stripes the admission queue (default ``min(4,
    max_queue)``); ``dispatchers`` fans the stripes out over that many
    dispatcher threads (default 1 -- oracle calls are serialized under
    the swap lock either way).
    """

    def __init__(
        self,
        oracle,
        *,
        max_queue: int = 1024,
        max_batch: int = 64,
        max_delay: float = 0.002,
        cache_size: int = 4096,
        shards: Optional[int] = None,
        dispatchers: int = 1,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if shards is not None and shards < 1:
            raise ValueError("shards must be at least 1")
        if dispatchers < 1:
            raise ValueError("dispatchers must be at least 1")
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.max_delay = max_delay
        # Every shard must own a positive slice of max_queue, or a
        # thread pinned to a zero-capacity stripe could never submit.
        self.shards = min(shards or DEFAULT_SHARDS, max_queue)
        self.dispatchers = min(dispatchers, self.shards)
        self._events = [threading.Event() for _ in range(self.dispatchers)]
        base, extra = divmod(max_queue, self.shards)
        self._shards = [
            _Shard(
                index,
                base + (1 if index < extra else 0),
                self._events[index % self.dispatchers],
            )
            for index in range(self.shards)
        ]
        self._local = threading.local()
        self._spin = itertools.count()
        self._oracle_lock = threading.Lock()
        self._cache = ResultCache(cache_size)
        self._cache_on = cache_size > 0
        self._oracle = oracle
        self._generation = _generation_for(oracle, content=self._cache_on)
        self._key_base = _key_base_for(oracle)
        self._pairs_native = np is not None and bool(
            getattr(oracle, "accepts_pair_arrays", False)
        )
        self._generation_seq = 0
        self._cache.rekey(self._generation)
        self._accepting = False
        self._stopping = False
        self._drain_requested = True
        self._threads: Optional[List[threading.Thread]] = None
        self._lifecycle = threading.Lock()
        self._stats_lock = threading.Lock()
        self._stats: Dict[str, int] = {
            "requests": 0,
            "responses": 0,
            "errors": 0,
            "cache_hits": 0,
            "overloads": 0,
            "batches": 0,
            "coalesced": 0,
        }
        self._width_hist = Histogram(SERVE_COALESCE_WIDTH, (), WIDTH_BUCKETS)
        self._obs_registry = None
        self._obs: Optional["_ServeInstruments"] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryServer":
        with self._lifecycle:
            if self._threads is not None:
                return self
            self._accepting = True
            self._stopping = False
            self._threads = [
                threading.Thread(
                    target=self._run,
                    args=(index,),
                    name=f"repro-query-server-{index}",
                    daemon=True,
                )
                for index in range(self.dispatchers)
            ]
            for thread in self._threads:
                thread.start()
            obs = self._bind_obs()
            if obs is not None:
                obs.generation.set(self._generation_seq)
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Stop admissions, then drain (default) or cancel the backlog.

        Idempotent.  After it returns every accepted request has been
        resolved (``drain=True``) or cancelled (``drain=False``).
        """
        with self._lifecycle:
            self._accepting = False
            threads = self._threads
            if threads is not None:
                self._drain_requested = drain
                self._stopping = True
                for event in self._events:
                    event.set()
                for thread in threads:
                    thread.join()
                self._threads = None
                self._stopping = False
            # Catch submits that raced the accepting flag: with the
            # dispatchers gone, serve (or cancel) them inline.
            leftovers = self._take_all()
            if leftovers:
                requests = [x for x in leftovers if type(x) is _Request]
                tickets = [x for x in leftovers if type(x) is not _Request]
                if drain:
                    if requests:
                        self._serve_batch(requests)
                    for ticket in tickets:
                        self._serve_ticket(ticket)
                else:
                    for request in requests:
                        request.future.cancel()
                    for ticket in tickets:
                        ticket._fail(CancelledError())

    @property
    def running(self) -> bool:
        return self._accepting and self._threads is not None

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _key(self, u: int, v: int):
        """The cache key for one pair: packed int in-domain, else tuple.

        Out-of-domain coordinates must never pack (they could alias a
        valid pair's integer); they keep tuple keys, which are only
        ever probed, never stored (the oracle rejects the pair).
        """
        base = self._key_base
        if base is not None and 0 <= u < base and 0 <= v < base:
            return u * base + v
        return (u, v)

    def _shard_for_thread(self) -> _Shard:
        try:
            return self._local.shard
        except AttributeError:
            shard = self._shards[next(self._spin) % self.shards]
            self._local.shard = shard
            return shard

    def _admit(self, item, pairs: int) -> Optional[_Shard]:
        """Enqueue ``item`` (``pairs`` queued pairs) on the caller's
        home shard, overflowing to the other stripes when it is full --
        a submit is rejected only when *every* shard is at capacity, so
        total admission capacity stays ``max_queue`` under any client
        mix (a single bursty client is not confined to one stripe).
        """
        home = self._shard_for_thread().index
        shards = self._shards
        for attempt in range(self.shards):
            shard = shards[(home + attempt) % self.shards]
            with shard.lock:
                if shard.pairs < shard.capacity:
                    shard.items.append(item)
                    shard.pairs += pairs
                    event = shard.event
                    if not event.is_set():
                        event.set()
                    return shard
        return None

    def submit(self, u: int, v: int) -> Future:
        """Enqueue one query; returns a future resolving to its distance.

        Raises :class:`ServerOverloadError` when the caller's admission
        shard is full -- the request was *not* accepted, back off and
        retry.  Raises :class:`RuntimeError` when the server is not
        running.
        """
        if not self._accepting:
            raise RuntimeError("QueryServer is not running (call start())")
        obs = self._bind_obs()
        key = self._key(u, v)
        if self._cache_on:
            hit = self._cache.get(key)
            if hit is not MISS:
                future: Future = Future()
                future.set_result(hit)
                with self._stats_lock:
                    self._stats["requests"] += 1
                    self._stats["cache_hits"] += 1
                    self._stats["responses"] += 1
                if obs is not None:
                    obs.requests.inc()
                    obs.cache_hits.inc()
                return future
        request = _Request(u, v, key, perf_counter())
        shard = self._admit(request, 1)
        if shard is None:
            with self._stats_lock:
                self._stats["overloads"] += 1
            if obs is not None:
                obs.overloads.inc()
            raise ServerOverloadError(
                f"admission queue is full; request ({u}, {v}) rejected",
                capacity=self.max_queue,
            )
        with self._stats_lock:
            self._stats["requests"] += 1
        if obs is not None:
            obs.requests.inc()
            obs.cache_misses.inc()
            obs.queue_depth.set(self.queue_depth())
            obs.shard_depth(shard.index).set(shard.pairs)
        return request.future

    def submit_batch(self, us, vs) -> BatchTicket:
        """Enqueue a whole pair batch; returns one :class:`BatchTicket`.

        ``us`` / ``vs`` are equal-length sequences (numpy arrays ride
        the vectorized path: packed-key dedup, bulk cache probe, fancy
        -indexed result scatter).  The batch is admitted whole or
        rejected whole with :class:`ServerOverloadError`; out-of-domain
        vertices are rejected up front with :class:`DomainError` when
        the oracle's vertex count is known.
        """
        if not self._accepting:
            raise RuntimeError("QueryServer is not running (call start())")
        obs = self._bind_obs()
        keys, pairs, scatter = self._dedup_pairs(us, vs)
        width = len(scatter)
        enqueued = perf_counter()
        if width == 0:
            ticket = BatchTicket(0, enqueued, keys, pairs, [], [], scatter)
            ticket._resolve([])
            return ticket
        values: List[object] = [MISS] * len(pairs)
        if self._cache_on:
            need = []
            for index, value in enumerate(self._cache.get_many(keys)):
                if value is MISS:
                    need.append(index)
                else:
                    values[index] = value
        else:
            need = list(range(len(pairs)))
        ticket = BatchTicket(width, enqueued, keys, pairs, values, need, scatter)
        if not need:
            # Fully answered from cache: resolve inline, never enqueue.
            ticket._scatter_and_resolve()
            with self._stats_lock:
                self._stats["requests"] += width
                self._stats["cache_hits"] += width
                self._stats["responses"] += width
            if obs is not None:
                obs.requests.inc(width)
                obs.cache_hits.inc(width)
            return ticket
        hit_pairs = 0
        if len(need) < len(pairs):
            needed = set(need)
            hit_pairs = sum(
                1
                for unique_index in (
                    scatter.tolist()
                    if np is not None and isinstance(scatter, np.ndarray)
                    else scatter
                )
                if unique_index not in needed
            )
        shard = self._admit(ticket, len(need))
        if shard is None:
            with self._stats_lock:
                self._stats["overloads"] += 1
            if obs is not None:
                obs.overloads.inc()
            raise ServerOverloadError(
                f"admission queue is full; batch of {width} pair(s) rejected",
                capacity=self.max_queue,
            )
        with self._stats_lock:
            self._stats["requests"] += width
            self._stats["cache_hits"] += hit_pairs
        if obs is not None:
            obs.requests.inc(width)
            obs.batch_submissions.inc()
            if hit_pairs:
                obs.cache_hits.inc(hit_pairs)
            obs.cache_misses.inc(width - hit_pairs)
            obs.queue_depth.set(self.queue_depth())
            obs.shard_depth(shard.index).set(shard.pairs)
        return ticket

    def _dedup_pairs(self, us, vs):
        """Unique cache keys + pairs and the submission->unique scatter map."""
        base = self._key_base
        if np is not None:
            us_arr = np.asarray(us, dtype=np.int64).reshape(-1)
            vs_arr = np.asarray(vs, dtype=np.int64).reshape(-1)
            if us_arr.shape != vs_arr.shape:
                raise ValueError("us and vs must be the same length")
            if base is not None:
                if us_arr.size and (
                    int(us_arr.min()) < 0
                    or int(us_arr.max()) >= base
                    or int(vs_arr.min()) < 0
                    or int(vs_arr.max()) >= base
                ):
                    raise DomainError(
                        f"batch contains a vertex outside [0, {base})"
                    )
                packed = us_arr * base + vs_arr
                unique, first, scatter = np.unique(
                    packed, return_index=True, return_inverse=True
                )
                if self._pairs_native:
                    # The oracle consumes (m, 2) arrays directly: skip
                    # the tuple-list round trip on the hot path.
                    pairs = np.column_stack((us_arr[first], vs_arr[first]))
                else:
                    pairs = list(
                        zip(us_arr[first].tolist(), vs_arr[first].tolist())
                    )
                return unique.tolist(), pairs, scatter.reshape(-1)
            us_list, vs_list = us_arr.tolist(), vs_arr.tolist()
        else:
            us_list = [int(u) for u in us]
            vs_list = [int(v) for v in vs]
            if len(us_list) != len(vs_list):
                raise ValueError("us and vs must be the same length")
            if base is not None:
                for u, v in zip(us_list, vs_list):
                    if not (0 <= u < base and 0 <= v < base):
                        raise DomainError(
                            f"batch contains a vertex outside [0, {base})"
                        )
        slots: Dict[object, int] = {}
        keys: List[object] = []
        pairs = []
        scatter = []
        for u, v in zip(us_list, vs_list):
            key = u * base + v if base is not None else (u, v)
            slot = slots.get(key)
            if slot is None:
                slot = len(keys)
                slots[key] = slot
                keys.append(key)
                pairs.append((u, v))
            scatter.append(slot)
        return keys, pairs, scatter

    def query(self, u: int, v: int, timeout: Optional[float] = None):
        """Blocking convenience: submit and wait for the distance."""
        return self.submit(u, v).result(timeout=timeout)

    def batch(
        self, pairs: Sequence[Tuple[int, int]], timeout: Optional[float] = None
    ) -> List[float]:
        """Submit many pairs and gather their answers, in order."""
        futures = [self.submit(u, v) for u, v in pairs]
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------
    # Oracle management
    # ------------------------------------------------------------------
    @property
    def oracle(self):
        return self._oracle

    @property
    def generation(self) -> str:
        """The result cache's current generation token."""
        return self._generation

    @property
    def generation_seq(self) -> int:
        """Monotone swap counter: 0 at construction, +1 per set_oracle."""
        return self._generation_seq

    def set_oracle(self, oracle) -> bool:
        """Swap the serving oracle; True if the result cache was cleared.

        The cache survives the swap only when the new oracle serves a
        labeling with the identical content digest; any other swap
        re-keys it, and answers still in flight from the old oracle are
        dropped by the generation guard rather than cached stale.  The
        generation token is computed here, once, outside the swap lock.
        Every swap bumps the monotone ``serve.generation`` gauge (hot
        swaps are observable and provably ordered).
        """
        generation = _generation_for(oracle, content=self._cache_on)
        key_base = _key_base_for(oracle)
        pairs_native = np is not None and bool(
            getattr(oracle, "accepts_pair_arrays", False)
        )
        with self._oracle_lock:
            self._oracle = oracle
            self._generation = generation
            self._key_base = key_base
            self._pairs_native = pairs_native
            self._generation_seq += 1
            seq = self._generation_seq
            cleared = self._cache.rekey(generation)
        obs = self._bind_obs()
        if obs is not None:
            obs.generation.set(seq)
        return cleared

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> ServerStats:
        with self._stats_lock:
            snapshot = dict(self._stats)
        hist = self._width_hist
        return ServerStats(
            batch_width_p50=hist.percentile(0.50) or 0.0,
            batch_width_p95=hist.percentile(0.95) or 0.0,
            **snapshot,
        )

    @property
    def cache(self) -> ResultCache:
        return self._cache

    def queue_depth(self) -> int:
        """Queued pairs across every admission shard."""
        return sum(shard.pairs for shard in self._shards)

    def shard_depths(self) -> Tuple[int, ...]:
        """Per-shard queued pair counts, in shard order."""
        return tuple(shard.pairs for shard in self._shards)

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"QueryServer({state}, oracle={type(self._oracle).__name__}, "
            f"queue={self.queue_depth()}/{self.max_queue}, "
            f"shards={list(self.shard_depths())}, "
            f"dispatchers={self.dispatchers}, max_batch={self.max_batch})"
        )

    # ------------------------------------------------------------------
    # Dispatcher internals
    # ------------------------------------------------------------------
    def _bind_obs(self) -> Optional["_ServeInstruments"]:
        registry = _get_registry()
        if registry is not self._obs_registry:
            obs = (
                _ServeInstruments(registry, self.shards)
                if registry.enabled
                else None
            )
            # Publish instruments before the registry marker (submit is
            # called concurrently; a reader seeing the marker match must
            # never pick up a stale instrument set).
            self._obs = obs
            self._obs_registry = registry
            return obs
        return self._obs

    def _run(self, index: int) -> None:
        batcher: MicroBatcher = MicroBatcher(self.max_batch, self.max_delay)
        event = self._events[index]
        shards = self._shards[index :: self.dispatchers]
        while True:
            event.clear()
            stopping = self._stopping
            drain = self._drain_requested if stopping else True
            progressed = False
            for shard in shards:
                if not shard.items:
                    continue
                with shard.lock:
                    items = shard.items
                    shard.items = []
                    shard.pairs = 0
                progressed = True
                requests: List[_Request] = []
                for item in items:
                    if type(item) is _Request:
                        if drain:
                            requests.append(item)
                        else:
                            item.future.cancel()
                    elif drain:
                        self._serve_ticket(item)
                    else:
                        item._fail(CancelledError())
                if requests:
                    for full in batcher.add_many(requests, perf_counter()):
                        self._serve_batch(full)
            if progressed:
                continue  # new work may have landed while serving
            if stopping:
                final = batcher.flush()
                if final:
                    if drain:
                        self._serve_batch(final)
                    else:
                        for request in final:
                            request.future.cancel()
                return
            if len(batcher):
                remaining = batcher.deadline - perf_counter()
                if remaining <= 0 or not event.wait(remaining):
                    batch = batcher.poll(perf_counter())
                    if batch:
                        self._serve_batch(batch)
            else:
                event.wait()  # park until a submit or stop() wakes us

    def _take_all(self) -> List[object]:
        items: List[object] = []
        for shard in self._shards:
            with shard.lock:
                if shard.items:
                    items.extend(shard.items)
                    shard.items = []
                    shard.pairs = 0
        return items

    def _serve_ticket(self, ticket: BatchTicket) -> None:
        """Serve one batch ticket: one kernel call, one completion event."""
        obs = self._bind_obs()
        need = ticket._need
        pairs = ticket._pairs
        is_array = np is not None and isinstance(pairs, np.ndarray)
        if len(need) == len(pairs):
            keys = ticket._keys
        else:
            pairs = pairs[need] if is_array else [pairs[i] for i in need]
            keys = [ticket._keys[i] for i in need]
        answers: List[object] = []
        error: Optional[BaseException] = None
        with self._oracle_lock:
            oracle = self._oracle
            generation = self._generation
            if is_array and not getattr(oracle, "accepts_pair_arrays", False):
                # A swap installed an oracle without the array fast
                # path while this ticket was in flight: down-convert.
                pairs = list(zip(pairs[:, 0].tolist(), pairs[:, 1].tolist()))
                is_array = False
            batch_fn = getattr(oracle, "batch_query", None)
            if batch_fn is not None:
                try:
                    answers = batch_fn(pairs)
                except Exception:
                    batch_fn = None  # retry pair-by-pair below
            if batch_fn is None:
                answers = []
                for u, v in pairs.tolist() if is_array else pairs:
                    try:
                        outcome = oracle.query(u, v)
                    except Exception as exc:
                        error = exc
                        break
                    answers.append(getattr(outcome, "distance", outcome))
        done = perf_counter()
        if error is not None:
            ticket._fail(error)
            with self._stats_lock:
                self._stats["errors"] += ticket.width
            return
        values = ticket._values
        for unique_index, value in zip(need, answers):
            values[unique_index] = value
        if self._cache_on:
            self._cache.put_many(keys, answers, generation)
        ticket._scatter_and_resolve()
        self._width_hist.observe(float(ticket.width))
        with self._stats_lock:
            self._stats["batches"] += 1
            self._stats["coalesced"] += ticket.width
            self._stats["responses"] += ticket.width
        if obs is not None:
            obs.batches.inc()
            obs.coalesce_width.observe(float(ticket.width))
            obs.request_latency.observe(done - ticket.enqueued)
            obs.queue_depth.set(self.queue_depth())

    def _serve_batch(self, requests: List[_Request]) -> None:
        obs = self._bind_obs()
        # Collapse duplicate pairs: one backend query answers them all.
        order: List[Tuple[int, int]] = []
        keys: List[object] = []
        groups: Dict[object, List[_Request]] = {}
        for request in requests:
            group = groups.get(request.key)
            if group is None:
                groups[request.key] = [request]
                order.append((request.u, request.v))
                keys.append(request.key)
            else:
                group.append(request)
        answers: Dict[object, object] = {}
        failures: Dict[object, BaseException] = {}
        with self._oracle_lock:
            oracle = self._oracle
            generation = self._generation
            batch_fn = getattr(oracle, "batch_query", None)
            if batch_fn is not None:
                try:
                    call_pairs = order
                    if (
                        np is not None
                        and len(order) >= 32
                        and getattr(oracle, "accepts_pair_arrays", False)
                    ):
                        call_pairs = np.asarray(order, dtype=np.int64)
                    values = batch_fn(call_pairs)
                    answers = dict(zip(keys, values))
                except Exception:
                    # One bad pair fails a whole batch call; isolate it
                    # below so its batch-mates still get answers.
                    batch_fn = None
            if batch_fn is None:
                for key, pair in zip(keys, order):
                    try:
                        outcome = oracle.query(*pair)
                        answers[key] = getattr(outcome, "distance", outcome)
                    except Exception as exc:
                        failures[key] = exc
        done = perf_counter()
        if self._cache_on and answers:
            self._cache.put_many(
                list(answers.keys()), list(answers.values()), generation
            )
        errors = 0
        for key in keys:
            if key in failures:
                exc = failures[key]
                errors += len(groups[key])
                for request in groups[key]:
                    _resolve(request.future, exc=exc)
            else:
                value = answers[key]
                for request in groups[key]:
                    _resolve(request.future, value=value)
        self._width_hist.observe(float(len(requests)))
        with self._stats_lock:
            self._stats["batches"] += 1
            self._stats["coalesced"] += len(requests)
            self._stats["responses"] += len(requests) - errors
            self._stats["errors"] += errors
        if obs is not None:
            obs.batches.inc()
            obs.coalesce_width.observe(float(len(requests)))
            obs.queue_depth.set(self.queue_depth())
            # One amortized observation per micro-batch: the oldest
            # waiter's submit-to-response time bounds its batch-mates'.
            oldest = min(request.enqueued for request in requests)
            obs.request_latency.observe(done - oldest)


class _ServeInstruments:
    """The ``serve.*`` instruments, pre-bound against one registry."""

    __slots__ = (
        "requests",
        "request_latency",
        "queue_depth",
        "batches",
        "batch_submissions",
        "coalesce_width",
        "cache_hits",
        "cache_misses",
        "overloads",
        "generation",
        "_shard_gauges",
    )

    def __init__(self, registry, num_shards: int) -> None:
        self.requests = registry.counter(SERVE_REQUESTS)
        self.request_latency = registry.histogram(
            SERVE_REQUEST_LATENCY_SECONDS
        )
        self.queue_depth = registry.gauge(SERVE_QUEUE_DEPTH)
        self.batches = registry.counter(SERVE_BATCHES)
        self.batch_submissions = registry.counter(SERVE_BATCH_SUBMISSIONS)
        self.coalesce_width = registry.histogram(
            SERVE_COALESCE_WIDTH, buckets=WIDTH_BUCKETS
        )
        self.cache_hits = registry.counter(SERVE_CACHE_HITS)
        self.cache_misses = registry.counter(SERVE_CACHE_MISSES)
        self.overloads = registry.counter(SERVE_OVERLOADS)
        self.generation = registry.gauge(SERVE_GENERATION)
        self._shard_gauges = tuple(
            registry.gauge(SERVE_SHARD_DEPTH, shard=str(index))
            for index in range(num_shards)
        )

    def shard_depth(self, index: int):
        return self._shard_gauges[index]


def _resolve(future: Future, value=None, exc=None) -> None:
    """Resolve a future, tolerating a concurrent cancellation."""
    try:
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(value)
    except Exception:
        pass  # cancelled by a non-draining stop; nothing to deliver
