"""``ShardedQueryServer``: N worker processes over one shared label store.

:class:`~repro.serve.server.QueryServer` made one Python process fast;
the GIL makes one process the ceiling.  This module lifts the ceiling
the way the hub-labeling serving literature does -- the label store is
immutable, so shard the *compute*, not the data:

* the parent copies the flat store's artifact envelope into **one**
  ``multiprocessing.shared_memory`` segment (or points workers at a
  cached artifact file to ``mmap``), via :mod:`repro.perf.shm`;
* each of ``processes`` forked workers attaches zero-copy and runs the
  existing batch door -- a full in-process
  :class:`~repro.serve.server.QueryServer` with its own
  generation-keyed result cache -- over the shared pages;
* the parent speaks a **pair-array IPC protocol** to the fleet: raw
  length-prefixed numpy frames (int64 pairs out, float64 distances
  back) over ``multiprocessing`` pipes.  No pickle anywhere on the hot
  path, so a frame costs two ``memcpy``-class writes, not a
  serializer.

Answers keep the byte-identical contract: the float64 wire format is
re-narrowed through the same ``_dedouble`` the flat store uses, so
``int`` distances come back ``int`` and disconnection comes back as
``INF`` -- indistinguishable from the dict store.

Operationally the fleet degrades loudly, like the in-process server:
admission is bounded (:class:`~repro.runtime.errors.ServerOverloadError`
when ``max_queue`` pairs are in flight), a worker that dies is
respawned transparently (the interrupted frame is retried once against
the fresh worker) and surfaced through :meth:`ShardedQueryServer.health`
-- a :class:`~repro.runtime.resilient.HealthReport`-style snapshot --
and shutdown is drain-then-stop: in-flight frames finish, workers get
an explicit shutdown handshake, stragglers are terminated, and the
owned segment is unlinked (nothing left under ``/dev/shm``).

Metrics: ``serve.worker_batches`` per frame (labelled by worker slot),
``serve.worker_restarts`` per respawn, and the ``serve.workers_alive``
gauge, all emitted parent-side (worker-process registries are invisible
to the parent).
"""

from __future__ import annotations

import itertools
import multiprocessing
import struct
import threading
from concurrent.futures import Future
from typing import List, Optional, Tuple

try:  # pragma: no cover - exercised via both import paths in CI images
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from ..obs.catalog import (
    SERVE_COALESCE_WIDTH,
    SERVE_GENERATION,
    SERVE_WORKER_BATCHES,
    SERVE_WORKER_RESTARTS,
    SERVE_WORKERS_ALIVE,
)
from ..obs.registry import Histogram
from ..obs.registry import get_registry as _get_registry
from ..runtime.errors import DomainError, ServerOverloadError
from .server import WIDTH_BUCKETS, ServerStats

__all__ = ["ShardedQueryServer", "ShardedTicket", "FleetHealth"]

# Wire protocol opcodes (first byte of every request frame).
_OP_QUERY = 0
_OP_SHUTDOWN = 1
_OP_STATS = 2

# Response status (first byte of every response frame).
_ST_OK = 0
_ST_ERROR = 1

# Error kinds inside an error response (second byte).
_ERR_GENERIC = 0
_ERR_DOMAIN = 1

#: Fields (and order) of the packed uint64 stats a worker reports.
_STATS_FIELDS = (
    "requests", "responses", "errors", "cache_hits", "overloads",
    "batches", "coalesced",
)
_STATS_PACK = f">{len(_STATS_FIELDS)}Q"

#: Patience for lifecycle handshakes (shutdown ack, worker join).
_LIFECYCLE_TIMEOUT = 5.0


def _encode_query(us, vs) -> bytes:
    """One request frame: opcode, count, then raw int64 pair arrays."""
    m = us.size
    return b"".join((
        bytes((_OP_QUERY,)),
        m.to_bytes(8, "big"),
        us.astype("<i8", copy=False).tobytes(),
        vs.astype("<i8", copy=False).tobytes(),
    ))


def _encode_error(kind: int, message: str) -> bytes:
    return bytes((_ST_ERROR, kind)) + message.encode("utf-8", "replace")


def _worker_main(conn, source_kind: str, source_arg: str, options: dict):
    """One worker process: attach the shared store, serve frames forever.

    Runs the *existing* batch door -- a private
    :class:`~repro.serve.server.QueryServer` whose oracle views the
    shared pages -- so each worker keeps its own generation-keyed
    result cache and micro-batching semantics for free.  Top-level (and
    with picklable arguments) so the fleet also works under the
    ``spawn`` start method.
    """
    from ..oracles.oracle import HubLabelOracle
    from ..perf.shm import MappedLabelStore, SharedLabelStore
    from .server import QueryServer

    if source_kind == "shm":
        store = SharedLabelStore.attach(source_arg)
    else:
        store = MappedLabelStore(source_arg)
    server = QueryServer(
        HubLabelOracle(store.flat, backend="flat"),
        # The worker serves one frame at a time, so admission pressure
        # is the parent's job; a generous bound keeps any frame width
        # admissible here.
        max_queue=max(int(options.get("max_queue", 1024)), 1 << 16),
        max_batch=int(options.get("max_batch", 64)),
        max_delay=float(options.get("max_delay", 0.002)),
        cache_size=int(options.get("cache_size", 4096)),
    )
    server.start()
    try:
        while True:
            try:
                frame = conn.recv_bytes()
            except (EOFError, OSError):
                break  # parent went away; nothing left to serve
            op = frame[0]
            if op == _OP_SHUTDOWN:
                try:
                    conn.send_bytes(bytes((_OP_SHUTDOWN,)))
                except (BrokenPipeError, OSError):
                    pass
                break
            if op == _OP_STATS:
                stats = server.stats()
                packed = struct.pack(
                    _STATS_PACK,
                    *(getattr(stats, name) for name in _STATS_FIELDS),
                )
                conn.send_bytes(bytes((_OP_STATS,)) + packed)
                continue
            m = int.from_bytes(frame[1:9], "big")
            us = np.frombuffer(frame, dtype="<i8", count=m, offset=9)
            vs = np.frombuffer(frame, dtype="<i8", count=m, offset=9 + 8 * m)
            try:
                values = server.submit_batch(us, vs).result()
                payload = np.asarray(values, dtype=np.float64)
            except DomainError as exc:
                conn.send_bytes(_encode_error(_ERR_DOMAIN, str(exc)))
                continue
            except Exception as exc:  # pragma: no cover - defensive
                conn.send_bytes(_encode_error(_ERR_GENERIC, str(exc)))
                continue
            conn.send_bytes(
                bytes((_ST_OK,))
                + m.to_bytes(8, "big")
                + payload.astype("<f8", copy=False).tobytes()
            )
    finally:
        server.stop()
        # The server's oracle holds the last views over the shared
        # pages; release it first or close() cannot drop the mapping
        # (and SharedMemory.__del__ would warn at interpreter exit).
        del server
        store.close()
        conn.close()


class ShardedTicket:
    """A resolved batch ticket from the sharded door.

    The pair-array roundtrip is synchronous in the submitting thread
    (concurrency comes from many client threads fanning over many
    workers), so by the time :meth:`ShardedQueryServer.submit_batch`
    returns, the answers -- or the failure -- are already here.  The
    interface still matches :class:`~repro.serve.server.BatchTicket`
    so ``run_loadgen`` and callers are door-agnostic.
    """

    __slots__ = ("width", "_results", "_error")

    def __init__(self, width, results=None, error=None):
        self.width = width
        self._results = results
        self._error = error

    def done(self) -> bool:
        return True

    def result(self, timeout: Optional[float] = None) -> List[object]:
        if self._error is not None:
            raise self._error
        return self._results

    def __repr__(self) -> str:
        state = "failed" if self._error is not None else "done"
        return f"ShardedTicket(width={self.width}, {state})"


class FleetHealth:
    """A point-in-time health snapshot of the worker fleet.

    The multi-process sibling of
    :class:`~repro.runtime.resilient.HealthReport`: ``ok`` is the one
    bit monitoring alerts on, the counters say why.
    """

    __slots__ = ("processes", "alive", "restarts", "frames")

    def __init__(
        self,
        processes: int,
        alive: int,
        restarts: int,
        frames: Tuple[int, ...],
    ) -> None:
        self.processes = processes
        self.alive = alive
        self.restarts = restarts
        self.frames = frames

    @property
    def ok(self) -> bool:
        """True while every configured worker slot has a live process."""
        return self.alive == self.processes

    def __repr__(self) -> str:
        status = "ok" if self.ok else "degraded"
        return (
            f"FleetHealth({status}, alive={self.alive}/{self.processes}, "
            f"restarts={self.restarts}, frames={list(self.frames)})"
        )


class _Worker:
    """One worker slot: process + pipe + the lock serializing its use."""

    __slots__ = ("process", "conn", "lock", "frames")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        self.frames = 0


def _flat_store_of(source):
    """The :class:`FlatHubLabeling` behind an oracle / labeling / store."""
    from ..perf.flat import FlatHubLabeling

    if isinstance(source, FlatHubLabeling):
        return source
    labeling = getattr(source, "labeling", None)
    if labeling is not None:  # an oracle
        if isinstance(labeling, FlatHubLabeling):
            return labeling
        return FlatHubLabeling.from_labeling(labeling)
    return FlatHubLabeling.from_labeling(source)


class ShardedQueryServer:
    """N worker processes answering pair batches over one label store.

    ``source`` is an oracle, a labeling, or a
    :class:`~repro.perf.flat.FlatHubLabeling`; whatever it is, the flat
    store is extracted once and shared with every worker zero-copy --
    through a fresh shared-memory segment by default, or through an
    ``mmap`` of ``artifact_path`` (a cached v2 envelope, e.g. from
    :class:`~repro.perf.cache.LabelCache`) when given.

    ``max_queue`` bounds in-flight pairs fleet-wide (admission mirrors
    the in-process server: a batch is admitted whole into remaining
    capacity, so one oversized batch cannot livelock).  The remaining
    knobs configure each worker's in-process
    :class:`~repro.serve.server.QueryServer`.
    """

    def __init__(
        self,
        source,
        *,
        processes: int = 4,
        max_queue: int = 1024,
        max_batch: int = 64,
        max_delay: float = 0.002,
        cache_size: int = 4096,
        artifact_path=None,
        mp_context=None,
    ) -> None:
        if np is None:  # pragma: no cover - numpy ships in CI images
            raise RuntimeError(
                "ShardedQueryServer requires numpy for pair-array frames"
            )
        if processes < 1:
            raise ValueError("processes must be at least 1")
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        self.processes = processes
        self.max_queue = max_queue
        self._options = {
            "max_queue": max_queue,
            "max_batch": max_batch,
            "max_delay": max_delay,
            "cache_size": cache_size,
        }
        self._flat = _flat_store_of(source)
        self._oracle = (
            source
            if getattr(source, "labeling", None) is not None
            else None
        )
        self._n = self._flat.num_vertices
        self._artifact_path = artifact_path
        if mp_context is None:
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                mp_context = multiprocessing.get_context()
        self._ctx = mp_context
        self._store = None  # owned SharedLabelStore (shm source only)
        self._workers: List[_Worker] = []
        self._running = False
        self._lifecycle = threading.Lock()
        self._admission = threading.Lock()
        self._inflight = 0
        self._spin = itertools.count()
        self._stats_lock = threading.Lock()
        self._stats = {
            "requests": 0,
            "responses": 0,
            "errors": 0,
            "overloads": 0,
        }
        self._restarts = 0
        self._generation_seq = 0
        self._source: Optional[Tuple[str, str]] = None
        self._final_worker_stats = {name: 0 for name in _STATS_FIELDS}
        self._width_hist = Histogram(
            SERVE_COALESCE_WIDTH, (), WIDTH_BUCKETS
        )
        self._obs_registry = None
        self._obs: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedQueryServer":
        with self._lifecycle:
            if self._running:
                return self
            if self._artifact_path is not None:
                source = ("mmap", str(self._artifact_path))
            else:
                from ..perf.shm import SharedLabelStore

                self._store = SharedLabelStore.create(self._flat)
                source = ("shm", self._store.name)
            self._source = source
            self._workers = [
                self._spawn(source) for _ in range(self.processes)
            ]
            self._running = True
            obs = self._bind_obs()
            if obs is not None:
                obs[1].inc(0)  # restarts visible at 0 from the start
                obs[2].set(self.processes)
                obs[3].set(self._generation_seq)
        return self

    def _spawn(self, source) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, source[0], source[1], self._options),
            name="repro-shard-worker",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def stop(self, *, drain: bool = True) -> None:
        """Shut the fleet down; ``drain`` (default) finishes in-flight
        frames first.

        Every worker gets a shutdown handshake (its in-process server
        drains its own backlog before acking); a worker that does not
        ack in time is terminated.  The owned shared-memory segment is
        closed and unlinked last, so ``/dev/shm`` ends clean.
        """
        with self._lifecycle:
            if not self._running:
                return
            self._running = False
            for worker in self._workers:
                if drain:
                    # The slot lock serializes behind any in-flight
                    # roundtrip: acquiring it *is* the drain.
                    worker.lock.acquire()
                try:
                    # Final stats poll first, so stats() keeps working
                    # (from this snapshot) after the fleet is gone.
                    polled = self._poll_stats_locked(worker)
                    if polled is not None:
                        for name, value in polled.items():
                            self._final_worker_stats[name] += value
                    worker.conn.send_bytes(bytes((_OP_SHUTDOWN,)))
                    if worker.conn.poll(_LIFECYCLE_TIMEOUT):
                        worker.conn.recv_bytes()
                except (BrokenPipeError, EOFError, OSError):
                    pass  # already dead; join/terminate below
                finally:
                    if drain:
                        worker.lock.release()
            for worker in self._workers:
                worker.process.join(_LIFECYCLE_TIMEOUT)
                if worker.process.is_alive():  # pragma: no cover
                    worker.process.terminate()
                    worker.process.join(_LIFECYCLE_TIMEOUT)
                worker.conn.close()
            self._workers = []
            if self._store is not None:
                self._store.close()
                self._store = None
            obs = self._bind_obs()
            if obs is not None:
                obs[2].set(0)

    def set_oracle(self, source) -> None:
        """Hot-swap the fleet onto a new labeling without stale answers.

        ``source`` is anything the constructor accepts (an oracle, a
        labeling, or a flat store).  The new flat store is copied into
        a **fresh** shared-memory segment, then each worker slot is
        replaced one at a time: acquiring the slot lock drains any
        frame in flight on it, the old worker gets the shutdown
        handshake, and a new worker attaches the new segment (the
        slot's lock object survives, so concurrent submitters simply
        queue behind the swap).  The old segment is unlinked last.

        Consistency matches the in-process door: a frame is answered
        entirely by whichever labeling its worker held -- never a mix
        -- and every call admitted after ``set_oracle`` returns is
        answered by the new labeling (each worker's result cache is
        generation-keyed off its store digest, so no cached answer
        crosses the swap).  The monotone ``serve.generation`` gauge
        bumps once per swap.

        When the fleet is not running, the swap just replaces the
        pending store; the next ``start()`` serves it.
        """
        flat = _flat_store_of(source)
        with self._lifecycle:
            self._flat = flat
            self._oracle = (
                source
                if getattr(source, "labeling", None) is not None
                else None
            )
            self._n = flat.num_vertices
            # A swap always serves from a fresh segment; a stale
            # artifact path must not win on a later start()/respawn.
            self._artifact_path = None
            self._generation_seq += 1
            if not self._running:
                return
            from ..perf.shm import SharedLabelStore

            old_store = self._store
            self._store = SharedLabelStore.create(flat)
            wire = ("shm", self._store.name)
            self._source = wire
            for slot in range(len(self._workers)):
                worker = self._workers[slot]
                with worker.lock:  # serializes behind in-flight frames
                    polled = self._poll_stats_locked(worker)
                    if polled is not None:
                        for name, value in polled.items():
                            self._final_worker_stats[name] += value
                    try:
                        worker.conn.send_bytes(bytes((_OP_SHUTDOWN,)))
                        if worker.conn.poll(_LIFECYCLE_TIMEOUT):
                            worker.conn.recv_bytes()
                    except (BrokenPipeError, EOFError, OSError):
                        pass  # already dead; join below
                    worker.process.join(_LIFECYCLE_TIMEOUT)
                    if worker.process.is_alive():  # pragma: no cover
                        worker.process.terminate()
                        worker.process.join(_LIFECYCLE_TIMEOUT)
                    worker.conn.close()
                    fresh = self._spawn(wire)
                    fresh.lock = worker.lock  # held right now, on purpose
                    fresh.frames = worker.frames
                    self._workers[slot] = fresh
            if old_store is not None:
                old_store.close()
            obs = self._bind_obs()
            if obs is not None:
                obs[3].set(self._generation_seq)

    @property
    def generation_seq(self) -> int:
        """Monotone swap counter: 0 at construction, +1 per set_oracle."""
        return self._generation_seq

    @property
    def running(self) -> bool:
        return self._running

    def __enter__(self) -> "ShardedQueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, u: int, v: int) -> Future:
        """One pair through the sharded door; the future is already
        resolved when it returns (the roundtrip is synchronous)."""
        if not self._running:
            raise RuntimeError(
                "ShardedQueryServer is not running (call start())"
            )
        us = np.array([u], dtype=np.int64)
        vs = np.array([v], dtype=np.int64)
        future: Future = Future()
        try:
            values = self._submit_arrays(us, vs)
        except ServerOverloadError:
            # Contract-matching: overload raises at submit, like the
            # in-process door...
            raise
        except Exception as exc:
            # ...while per-pair failures (DomainError, a worker error)
            # resolve through the future, where QueryServer puts them.
            future.set_exception(exc)
            return future
        future.set_result(values[0])
        return future

    def submit_batch(self, us, vs) -> ShardedTicket:
        """A whole pair batch through one worker roundtrip."""
        us_arr = np.asarray(us, dtype=np.int64).reshape(-1)
        vs_arr = np.asarray(vs, dtype=np.int64).reshape(-1)
        if us_arr.shape != vs_arr.shape:
            raise ValueError("us and vs must be the same length")
        if us_arr.size == 0:
            return ShardedTicket(0, results=[])
        values = self._submit_arrays(us_arr, vs_arr)
        return ShardedTicket(us_arr.size, results=values)

    def query(self, u: int, v: int, timeout: Optional[float] = None):
        """Blocking convenience: submit one pair, return its distance."""
        return self.submit(u, v).result(timeout=timeout)

    def _submit_arrays(self, us, vs) -> List[object]:
        if not self._running:
            raise RuntimeError(
                "ShardedQueryServer is not running (call start())"
            )
        # Domain-check parent-side: a bad vertex must reject the batch
        # before it costs a worker roundtrip (and DomainError from
        # submit_batch matches the in-process door's contract).
        if us.size and (
            int(us.min()) < 0 or int(us.max()) >= self._n
            or int(vs.min()) < 0 or int(vs.max()) >= self._n
        ):
            raise DomainError(
                f"batch contains a vertex outside [0, {self._n})"
            )
        width = us.size
        with self._admission:
            # Mirror the in-process shards: admit while *any* capacity
            # remains (an oversized batch still lands when the fleet is
            # idle -- overshoot-by-one, never livelock).
            if self._inflight >= self.max_queue:
                with self._stats_lock:
                    self._stats["overloads"] += 1
                raise ServerOverloadError(
                    f"sharded admission is full; batch of {width} "
                    f"pair(s) rejected",
                    capacity=self.max_queue,
                )
            self._inflight += width
        try:
            with self._stats_lock:
                self._stats["requests"] += width
            payload = _encode_query(us, vs)
            slot, response = self._roundtrip(payload)
            values = self._decode_response(response, width)
        except Exception:
            with self._stats_lock:
                self._stats["errors"] += width
            raise
        finally:
            with self._admission:
                self._inflight -= width
        self._width_hist.observe(float(width))
        with self._stats_lock:
            self._stats["responses"] += width
        obs = self._bind_obs()
        if obs is not None:
            obs[0](slot).inc()
        return values

    def _decode_response(self, frame: bytes, width: int) -> List[object]:
        from ..perf.flat import _dedouble

        if frame[0] == _ST_ERROR:
            message = frame[2:].decode("utf-8", "replace")
            if frame[1] == _ERR_DOMAIN:
                raise DomainError(message)
            raise RuntimeError(f"worker failed a pair batch: {message}")
        m = int.from_bytes(frame[1:9], "big")
        if m != width:  # pragma: no cover - protocol invariant
            raise RuntimeError(
                f"worker answered {m} pair(s) for a {width}-pair frame"
            )
        dists = np.frombuffer(frame, dtype="<f8", count=m, offset=9)
        # Same narrowing the flat store applies: integral distances come
        # back as Python ints, disconnection as INF -- byte-identical to
        # the dict store even across the float64 wire.
        return [_dedouble(value) for value in dists.tolist()]

    # ------------------------------------------------------------------
    # Worker fan-out + respawn
    # ------------------------------------------------------------------
    def _roundtrip(self, payload: bytes) -> Tuple[int, bytes]:
        """Send one frame to a free worker; respawn-and-retry once if
        the chosen worker turns out to be dead."""
        workers = self._workers
        count = len(workers)
        home = next(self._spin) % count
        slot = None
        for attempt in range(count):
            candidate = (home + attempt) % count
            if workers[candidate].lock.acquire(blocking=False):
                slot = candidate
                break
        if slot is None:
            slot = home
            workers[slot].lock.acquire()
        try:
            worker = workers[slot]
            try:
                worker.conn.send_bytes(payload)
                response = worker.conn.recv_bytes()
            except (EOFError, BrokenPipeError, ConnectionResetError,
                    OSError):
                worker = self._respawn(slot)
                worker.conn.send_bytes(payload)
                response = worker.conn.recv_bytes()
            worker.frames += 1
            return slot, response
        finally:
            workers[slot].lock.release()

    def _respawn(self, slot: int) -> _Worker:
        """Replace the (dead) worker in ``slot``; caller holds its lock."""
        old = self._workers[slot]
        try:
            old.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if old.process.is_alive():  # pragma: no cover - racing death
            old.process.terminate()
        old.process.join(_LIFECYCLE_TIMEOUT)
        fresh = self._spawn(self._source)
        fresh.lock = old.lock  # the caller already holds this slot's lock
        fresh.frames = old.frames
        self._workers[slot] = fresh
        with self._stats_lock:
            self._restarts += 1
        obs = self._bind_obs()
        if obs is not None:
            obs[1].inc()
            obs[2].set(self.workers_alive())
        return fresh

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def oracle(self):
        """A parent-side oracle over the same flat store (for display
        and differential checks; queries go to the workers)."""
        if self._oracle is None:
            from ..oracles.oracle import HubLabelOracle

            self._oracle = HubLabelOracle(self._flat, backend="flat")
        return self._oracle

    def workers_alive(self) -> int:
        return sum(
            1 for worker in self._workers if worker.process.is_alive()
        )

    def health(self) -> FleetHealth:
        """Fleet liveness: slot count, live processes, respawns, frames."""
        with self._stats_lock:
            restarts = self._restarts
        return FleetHealth(
            self.processes,
            self.workers_alive(),
            restarts,
            tuple(worker.frames for worker in self._workers),
        )

    def stats(self) -> ServerStats:
        """Fleet-wide :class:`ServerStats`.

        Pair tallies (requests / responses / errors / overloads) and
        the width percentiles are the parent's own; cache hits, batch
        counts, and coalesced pairs are polled from each live worker's
        in-process server and summed (a respawned worker restarts its
        share from zero).
        """
        with self._stats_lock:
            snapshot = dict(self._stats)
        cache_hits = self._final_worker_stats["cache_hits"]
        batches = self._final_worker_stats["batches"]
        coalesced = self._final_worker_stats["coalesced"]
        for worker in self._workers:
            polled = self._poll_stats(worker)
            if polled is not None:
                cache_hits += polled["cache_hits"]
                batches += polled["batches"]
                coalesced += polled["coalesced"]
        hist = self._width_hist
        return ServerStats(
            cache_hits=cache_hits,
            batches=batches,
            coalesced=coalesced,
            batch_width_p50=hist.percentile(0.50) or 0.0,
            batch_width_p95=hist.percentile(0.95) or 0.0,
            **snapshot,
        )

    def _poll_stats(self, worker: _Worker) -> Optional[dict]:
        with worker.lock:
            return self._poll_stats_locked(worker)

    def _poll_stats_locked(self, worker: _Worker) -> Optional[dict]:
        """Poll one worker's tallies; the caller holds its slot lock."""
        try:
            worker.conn.send_bytes(bytes((_OP_STATS,)))
            if not worker.conn.poll(_LIFECYCLE_TIMEOUT):
                return None  # pragma: no cover - wedged worker
            frame = worker.conn.recv_bytes()
        except (EOFError, BrokenPipeError, OSError):
            return None  # dead worker; the next frame respawns it
        unpacked = struct.unpack(_STATS_PACK, frame[1:])
        return dict(zip(_STATS_FIELDS, unpacked))

    def queue_depth(self) -> int:
        """Pairs currently in flight across the fleet."""
        with self._admission:
            return self._inflight

    def _bind_obs(self) -> Optional[tuple]:
        registry = _get_registry()
        if registry is not self._obs_registry:
            if registry.enabled:
                gauges = {}

                def worker_counter(slot: int):
                    counter = gauges.get(slot)
                    if counter is None:
                        counter = registry.counter(
                            SERVE_WORKER_BATCHES, worker=str(slot)
                        )
                        gauges[slot] = counter
                    return counter

                obs = (
                    worker_counter,
                    registry.counter(SERVE_WORKER_RESTARTS),
                    registry.gauge(SERVE_WORKERS_ALIVE),
                    registry.gauge(SERVE_GENERATION),
                )
            else:
                obs = None
            self._obs = obs
            self._obs_registry = registry
            return obs
        return self._obs

    def __repr__(self) -> str:
        state = "running" if self._running else "stopped"
        return (
            f"ShardedQueryServer({state}, processes={self.processes}, "
            f"alive={self.workers_alive()}, "
            f"inflight={self.queue_depth()}/{self.max_queue})"
        )
