"""Micro-batch coalescing: turn a request stream into batch_query calls.

Hub labelings make the online query side cheap, and the flat backend
makes it cheaper still -- but only when queries arrive in batches wide
enough to amortize the kernel dispatch.  A serving layer therefore
wants to *coalesce*: hold an individual ``(u, v)`` request for at most
a flush deadline, and ship everything accumulated so far the moment
either trigger fires:

* **size** -- the batch reached ``max_batch`` requests, or
* **deadline** -- the oldest pending request has waited ``max_delay``
  seconds.

:class:`MicroBatcher` is that policy as a pure data structure: no
threads, no clocks of its own -- callers pass ``now`` explicitly, which
is what makes the property-based tests in ``tests/test_serve_properties.py``
able to drive arbitrary interleavings deterministically.  The
dispatcher thread of :class:`~repro.serve.server.QueryServer` owns one
instance; the class itself is deliberately not thread-safe.

The invariant the tests hammer: every item added is returned by exactly
one flush, in arrival order -- the coalescer never loses, duplicates,
or reorders a request.
"""

from __future__ import annotations

from typing import List, Optional, TypeVar

__all__ = ["MicroBatcher"]

T = TypeVar("T")


class MicroBatcher:
    """Size- and deadline-triggered batch former (single-owner)."""

    __slots__ = ("max_batch", "max_delay", "_pending", "_deadline")

    def __init__(self, max_batch: int, max_delay: float) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._pending: List[T] = []
        self._deadline: Optional[float] = None

    def add(self, item: T, now: float) -> Optional[List[T]]:
        """Accept ``item``; return the full batch if that filled it.

        The flush deadline is anchored to the *first* item of the
        forming batch -- a steady trickle cannot postpone the flush
        forever.
        """
        if not self._pending:
            self._deadline = now + self.max_delay
        self._pending.append(item)
        if len(self._pending) >= self.max_batch:
            return self.flush()
        return None

    def add_many(self, items: List[T], now: float) -> List[List[T]]:
        """Accept many items at once; return every full batch formed.

        Exactly equivalent to calling :meth:`add` per item with the
        same ``now`` (each batch's deadline still anchors to its first
        item), but with the loop kept tight for the dispatcher's bulk
        shard drains.
        """
        full: List[List[T]] = []
        max_batch = self.max_batch
        for item in items:
            pending = self._pending
            if not pending:
                self._deadline = now + self.max_delay
            pending.append(item)
            if len(pending) >= max_batch:
                full.append(self.flush())
        return full

    def poll(self, now: float) -> Optional[List[T]]:
        """The pending batch if its deadline has passed, else None."""
        if self._pending and self._deadline is not None and now >= self._deadline:
            return self.flush()
        return None

    def flush(self) -> List[T]:
        """Unconditionally take whatever is pending (may be empty)."""
        batch = self._pending
        self._pending = []
        self._deadline = None
        return batch

    @property
    def deadline(self) -> Optional[float]:
        """When the pending batch must flush, or None when empty."""
        return self._deadline

    def __len__(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(pending={len(self._pending)}, "
            f"max_batch={self.max_batch}, max_delay={self.max_delay})"
        )
