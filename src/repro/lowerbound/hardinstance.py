"""Certificates and audits for the hub-labeling lower bound (Theorem 2.1).

The proof of claim (iii) runs in three steps, each reproduced here
against *concrete* labelings:

1. **Monotone inflation** (Eq. 1): replace each hub set ``S_v`` by the
   vertex set ``S*_v`` of the minimal subtree of a shortest-path tree
   containing it; ``|S*_v| <= diam * |S_v|`` with the explicit factor
   ``(3l+1) s^2 * 4l``.
2. **Triplet charging**: for each of the ``s^l (s/2)^l`` triplets
   ``(x, y, z)`` with ``y = (x+z)/2``, Lemma 2.2 forces the middle-level
   vertex ``v_{l,y}`` onto the unique shortest path, hence into ``S*`` of
   one endpoint; distinct triplets charge distinct (endpoint, hub) slots
   because ``y`` determines ``z`` from ``x`` and vice versa.
3. **Certificate**: ``sum_v |S_v| >= s^{2l} 2^{-l} / ((3l+1) s^2 4l)``.

:func:`audit_labeling` executes steps 1-2 literally on a given labeling
and reports where each triplet's charge landed, so tests can check the
counting argument itself, not just the final inequality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..core.hublabel import HubLabeling
from ..core.monotone import monotone_closure
from .degree3 import Degree3Instance
from .layered import Vector

__all__ = [
    "LowerBoundCertificate",
    "certificate_for",
    "midpoint_triplets",
    "TripletAudit",
    "audit_labeling",
]


@dataclass(frozen=True)
class LowerBoundCertificate:
    """The explicit-constant lower bound of claim (iii)."""

    b: int
    ell: int
    num_vertices: int
    triplet_count: int
    distortion: int

    @property
    def hub_sum_lower_bound(self) -> float:
        """``sum_v |S_v| >= triplets / distortion``."""
        return self.triplet_count / self.distortion

    @property
    def average_lower_bound(self) -> float:
        return self.hub_sum_lower_bound / self.num_vertices


def certificate_for(instance: Degree3Instance) -> LowerBoundCertificate:
    """The certificate claimed by Theorem 2.1 for this instance."""
    s = instance.side
    ell = instance.ell
    distortion = (3 * ell + 1) * s ** 2 * 4 * ell
    return LowerBoundCertificate(
        b=instance.b,
        ell=instance.ell,
        num_vertices=instance.graph.num_vertices,
        triplet_count=instance.layered.midpoint_triplet_count(),
        distortion=distortion,
    )


def midpoint_triplets(
    instance: Degree3Instance,
) -> Iterator[Tuple[Vector, Vector, Vector]]:
    """All ``(x, y, z)`` with ``y = (x + z) / 2`` componentwise.

    Iterates ``x`` over the full grid and ``y`` over vectors for which
    ``z = 2y - x`` stays inside the grid; equivalently ``z`` ranges over
    the ``(s/2)^l`` vectors congruent to ``x`` mod 2.
    """
    layered = instance.layered
    for x in layered.vectors():
        for z in layered.vectors():
            if layered.is_lemma_pair(x, z):
                yield x, layered.midpoint(x, z), z


@dataclass
class TripletAudit:
    """Where each triplet's forced hub landed (step 2 of the proof)."""

    num_triplets: int
    charged_to_x: int
    charged_to_z: int
    uncharged: List[Tuple[Vector, Vector, Vector]]
    closure_total: int
    labeling_total: int

    @property
    def all_charged(self) -> bool:
        return not self.uncharged

    @property
    def charge_total(self) -> int:
        return self.charged_to_x + self.charged_to_z


def audit_labeling(
    instance: Degree3Instance,
    labeling: HubLabeling,
    *,
    max_uncharged: int = 20,
) -> TripletAudit:
    """Run the proof's charging argument on a concrete labeling.

    Computes the monotone closure ``S*`` (along per-vertex shortest-path
    trees) and checks, for each midpoint triplet, that the middle vertex
    ``v_{l,y}`` lies in ``S*`` of at least one endpoint.  For any correct
    labeling of the instance every triplet must charge (this is exactly
    the proof); the audit returns the split and any violations found.
    """
    closure = monotone_closure(instance.graph, labeling)
    audit = TripletAudit(
        num_triplets=0,
        charged_to_x=0,
        charged_to_z=0,
        uncharged=[],
        closure_total=closure.total_size(),
        labeling_total=labeling.total_size(),
    )
    top = 2 * instance.ell
    for x, y, z in midpoint_triplets(instance):
        audit.num_triplets += 1
        vx = instance.core_vertex(0, x)
        vy = instance.core_vertex(instance.ell, y)
        vz = instance.core_vertex(top, z)
        if closure.hub_distance(vx, vy) is not None:
            audit.charged_to_x += 1
        elif closure.hub_distance(vz, vy) is not None:
            audit.charged_to_z += 1
        elif len(audit.uncharged) < max_uncharged:
            audit.uncharged.append((x, y, z))
    return audit
