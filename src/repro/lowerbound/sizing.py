"""Instance sizing: predict |V(G_{b,l})| and balance parameters.

Section 2 closes by setting ``b = l = sqrt(log N)`` so that the grid
population ``s^l = 2^{b l}`` dominates the gadget overhead
``2^{Theta(b + log l)}`` -- that balance is what turns the certificate
into ``n / 2^{Theta(sqrt(log n))}``.  These helpers make the balance
concrete:

* :func:`predict_size` -- the exact vertex count of ``G_{b,l}``
  *without building it* (closed-form over the construction), split into
  cores / tree nodes / path nodes;
* :func:`balanced_parameters` -- the ``b = l ~ sqrt(log2 N)`` choice
  for a target size, the paper's parameter setting;
* :func:`certificate_preview` -- the certificate value for any
  ``(b, l)``, for sweeping parameter tables cheaply.

``predict_size`` is verified against real instances in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .hardinstance import LowerBoundCertificate

__all__ = [
    "SizePrediction",
    "predict_size",
    "balanced_parameters",
    "certificate_preview",
]


@dataclass(frozen=True)
class SizePrediction:
    b: int
    ell: int
    cores: int
    tree_vertices: int
    path_vertices: int

    @property
    def total(self) -> int:
        return self.cores + self.tree_vertices + self.path_vertices


def predict_size(b: int, ell: int) -> SizePrediction:
    """Closed-form vertex count of ``G_{b,l}``.

    * cores: ``(2l + 1) s^l``;
    * trees: every core except the boundary levels carries two trees of
      ``2s - 1`` nodes; boundary levels carry one;
    * paths: each ``H`` edge of weight ``w`` contributes ``w - 2b - 3``
      interior vertices; summing the weights ``A + (j_c - j'_c)^2`` over
      all level steps gives
      ``2l s^l [ s A + S2 ] - (2b + 3) * 2 l s^{l+1}`` where
      ``S2 = sum_{x,y in [0,s)} (x - y)^2 / s = s(s^2 - 1)/6``...
      computed exactly below without the shortcut.
    """
    if b < 1 or ell < 1:
        raise ValueError("both b and l must be >= 1")
    s = 2 ** b
    levels = 2 * ell + 1
    cores = levels * s ** ell
    tree_nodes_per_tree = 2 * s - 1
    # Interior levels have in+out trees; the two boundary levels one each.
    trees = (levels - 2) * 2 + 2 if levels >= 2 else 0
    tree_vertices = trees * s ** ell * tree_nodes_per_tree
    base = 3 * ell * s ** 2
    # Sum of (x - y)^2 over ordered pairs (x, y) in [0, s)^2.
    square_sum = sum(
        (x - y) ** 2 for x in range(s) for y in range(s)
    )
    # Each level step contributes s^{l-1} * (per-coordinate pair sum):
    # for a fixed active coordinate, each of the s^l source vectors has
    # s outgoing edges -- total s^l * s edges of weights A + delta^2
    # where delta^2 sums to square_sum per s^{l-1} coordinate slices.
    edges_per_step = s ** ell * s
    weight_per_step = s ** ell * s * base + s ** (ell - 1) * square_sum
    total_weight = 2 * ell * weight_per_step
    total_edges = 2 * ell * edges_per_step
    path_vertices = total_weight - (2 * b + 3) * total_edges
    return SizePrediction(
        b=b,
        ell=ell,
        cores=cores,
        tree_vertices=tree_vertices,
        path_vertices=path_vertices,
    )


def balanced_parameters(target_vertices: int) -> Tuple[int, int]:
    """The paper's ``b = l = sqrt(log N)`` balance for a target size.

    Returns the largest ``b = l`` whose predicted instance stays within
    ``target_vertices`` (at least ``(1, 1)``).
    """
    if target_vertices < predict_size(1, 1).total:
        return (1, 1)
    k = 1
    while predict_size(k + 1, k + 1).total <= target_vertices:
        k += 1
    # Allow the rectangle (k+1, k) / (k, k+1) refinements.
    best = (k, k)
    best_size = predict_size(k, k).total
    for b, ell in ((k + 1, k), (k, k + 1)):
        size = predict_size(b, ell).total
        if best_size < size <= target_vertices:
            best = (b, ell)
            best_size = size
    return best


def certificate_preview(b: int, ell: int) -> LowerBoundCertificate:
    """The Theorem 2.1(iii) certificate without building the graph."""
    s = 2 ** b
    prediction = predict_size(b, ell)
    return LowerBoundCertificate(
        b=b,
        ell=ell,
        num_vertices=prediction.total,
        triplet_count=s ** ell * (s // 2) ** ell,
        distortion=(3 * ell + 1) * s ** 2 * 4 * ell,
    )
