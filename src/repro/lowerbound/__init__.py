"""Hard instances and lower-bound machinery (Section 2 of the paper).

* :mod:`.layered` -- the weighted layered graph ``H_{b,l}``;
* :mod:`.degree3` -- its unweighted max-degree-3 simulation ``G_{b,l}``;
* :mod:`.hardinstance` -- the Theorem 2.1 certificate and the literal
  triplet-charging audit;
* :mod:`.counting` -- the classic [GPPR04] counting technique as a
  baseline (and its ``sqrt n`` ceiling for sparse graphs).
"""

from .layered import LayeredGraph, Vector
from .degree3 import Degree3Instance, build_degree3_instance
from .hardinstance import (
    LowerBoundCertificate,
    TripletAudit,
    audit_labeling,
    certificate_for,
    midpoint_triplets,
)
from .sizing import (
    SizePrediction,
    balanced_parameters,
    certificate_preview,
    predict_size,
)
from .counting import (
    counting_bound_bits_per_label,
    shortcut_family_bound,
    shortcut_family_graph,
    terminal_pairs,
)

__all__ = [
    "LayeredGraph",
    "Vector",
    "Degree3Instance",
    "build_degree3_instance",
    "LowerBoundCertificate",
    "TripletAudit",
    "audit_labeling",
    "certificate_for",
    "midpoint_triplets",
    "SizePrediction",
    "balanced_parameters",
    "certificate_preview",
    "predict_size",
    "counting_bound_bits_per_label",
    "shortcut_family_bound",
    "shortcut_family_graph",
    "terminal_pairs",
]
