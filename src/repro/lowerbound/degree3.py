"""The unweighted, max-degree-3 hard instance ``G_{b,l}`` (Theorem 2.1).

``G_{b,l}`` simulates the weighted layered graph ``H_{b,l}`` with unit
edges and degree at most 3:

* every ``H`` vertex ``v`` keeps a *core* vertex joined to the roots of
  two perfectly balanced binary trees ``T_in(v)`` and ``T_out(v)``, each
  with ``s = 2^b`` leaves and depth ``b`` (omitted on the boundary
  levels).  The leaf of ``T_out(v)`` assigned to the ``H``-edge
  ``{v, u}`` is ``v_out_u``; symmetrically for ``T_in``;
* every ``H``-edge ``e = {u, v}`` of weight ``w(e)`` becomes a path of
  ``w(e) - 2b - 2`` unit edges (``w(e) - 2b - 3`` auxiliary vertices)
  from ``u_out_v`` to ``v_in_u``; together with the two tree descents
  (``b`` edges each) and the two root links (1 edge each), the simulated
  edge has length exactly ``w(e)``.

Degrees: core vertices have degree <= 2 (the two root links), tree nodes
degree <= 3 (parent + two children, or parent + leaf link), path vertices
degree 2 -- so ``Delta(G) = 3``.

Distances between core vertices of different levels equal the ``H``
distances (each level is a separating cut, so paths cannot shortcut
through trees), hence Lemma 2.2 transfers: unique shortest paths with
forced midpoints, now in a *sparse unweighted* graph.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..graphs.graph import Graph, GraphBuilder
from .layered import LayeredGraph, Vector

__all__ = ["Degree3Instance", "build_degree3_instance"]


class Degree3Instance:
    """``G_{b,l}`` together with its correspondence to ``H_{b,l}``."""

    def __init__(self, layered: LayeredGraph) -> None:
        self.layered = layered
        self.b = layered.b
        self.ell = layered.ell
        self.side = layered.side
        (
            self.graph,
            self._core_index,
            self.num_tree_vertices,
            self.num_path_vertices,
        ) = self._build()

    # ------------------------------------------------------------------
    def core_vertex(self, level: int, vector: Vector) -> int:
        """The ``G`` index of the core vertex simulating ``v_{level,vec}``."""
        return self._core_index[(level, tuple(vector))]

    @property
    def num_core_vertices(self) -> int:
        return len(self._core_index)

    def _tree_name(self, level: int, vector: Vector, side: str, node: int):
        return ("tree", level, vector, side, node)

    def _build(self) -> Tuple[Graph, Dict, int, int]:
        layered = self.layered
        h = layered.graph
        b = self.b
        s = self.side
        builder = GraphBuilder()
        tree_vertices = 0
        path_vertices = 0

        # Core vertices and their in/out trees.
        for level in range(layered.num_levels):
            for vector in layered.vectors():
                core = ("core", level, vector)
                builder.vertex(core)
                for side_tag, present in (
                    ("in", level > 0),
                    ("out", level < layered.num_levels - 1),
                ):
                    if not present:
                        continue
                    # Heap-indexed perfect binary tree with s leaves:
                    # internal nodes 1 .. s-1, leaves s .. 2s-1.
                    for node in range(1, 2 * s):
                        builder.vertex(
                            self._tree_name(level, vector, side_tag, node)
                        )
                        tree_vertices += 1
                    builder.add_edge(
                        core, self._tree_name(level, vector, side_tag, 1)
                    )
                    for node in range(1, s):
                        for child in (2 * node, 2 * node + 1):
                            builder.add_edge(
                                self._tree_name(level, vector, side_tag, node),
                                self._tree_name(
                                    level, vector, side_tag, child
                                ),
                            )

        # Each H edge becomes a unit path between two dedicated leaves.
        # Leaves are assigned by the neighbor's active-coordinate value,
        # giving a bijection between the s neighbors and the s leaves.
        for level in range(layered.num_levels - 1):
            c = layered.active_coordinate(level)
            for vector in layered.vectors():
                for new_value in range(s):
                    target = list(vector)
                    target[c] = new_value
                    target_vec = tuple(target)
                    weight = layered.edge_weight_between(
                        vector[c], new_value
                    )
                    leaf_out = self._tree_name(
                        level, vector, "out", s + new_value
                    )
                    leaf_in = self._tree_name(
                        level + 1, target_vec, "in", s + vector[c]
                    )
                    interior = weight - 2 * b - 3
                    if interior < 0:
                        raise ValueError(
                            "edge weight too small to subdivide; "
                            "need A >= 2b + 3"
                        )
                    previous = leaf_out
                    for step in range(interior):
                        aux = ("path", level, vector, new_value, step)
                        builder.add_edge(previous, aux)
                        previous = aux
                        path_vertices += 1
                    builder.add_edge(previous, leaf_in)

        graph, index, _ = builder.build()
        core_index = {
            (level, vector): index[("core", level, vector)]
            for level in range(layered.num_levels)
            for vector in layered.vectors()
        }
        return graph, core_index, tree_vertices, path_vertices

    def expected_core_distance(self, x: Vector, z: Vector) -> int:
        """Lemma 2.2 length between ``v_{0,x}`` and ``v_{2l,z}`` cores."""
        return self.layered.unique_path_length(x, z)

    def __repr__(self) -> str:
        return (
            f"Degree3Instance(b={self.b}, l={self.ell}, "
            f"n={self.graph.num_vertices}, m={self.graph.num_edges}, "
            f"max_degree={self.graph.max_degree()})"
        )


def build_degree3_instance(b: int, ell: int) -> Degree3Instance:
    """Construct ``G_{b,l}`` (and its ``H_{b,l}``) for the parameters."""
    return Degree3Instance(LayeredGraph(b, ell))
