"""The weighted layered graph ``H_{b,l}`` (proof of Theorem 2.1).

``H_{b,l}`` has ``2l + 1`` levels ``V_0 .. V_{2l}``; each level is a copy
of the grid ``[0, s-1]^l`` with side ``s = 2^b``.  An edge joins
``v_{i,j}`` and ``v_{i+1,j'}`` when the vectors differ in at most the
single *active coordinate* of level step ``i`` (coordinate ``i + 1``
going up, ``2l - i`` coming down -- so each coordinate is active exactly
once in each half, in mirrored order).  The edge weight is
``A + (j_c - j'_c)^2`` with ``A = 3 l s^2``.

The point of the weights: a path from level 0 to level ``2l`` changes
coordinate ``k`` by ``delta_k`` on the way up and ``delta'_k`` on the way
down with ``delta_k + delta'_k = z_k - x_k`` fixed, and the strictly
convex cost ``delta^2 + delta'^2`` is uniquely minimized at the even
split -- hence a *unique* shortest path passing through the exact
midpoint ``v_{l,(x+z)/2}`` whenever all ``z_k - x_k`` are even
(Lemma 2.2).  That midpoint is forced into the hub set of one endpoint,
which is the whole lower bound.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterator, List, Tuple

from ..graphs.graph import Graph, GraphBuilder

__all__ = ["LayeredGraph", "Vector"]

Vector = Tuple[int, ...]


class LayeredGraph:
    """``H_{b,l}`` with explicit access to its grid structure."""

    def __init__(self, b: int, ell: int) -> None:
        if b < 1 or ell < 1:
            raise ValueError("both b and l must be >= 1")
        self.b = b
        self.ell = ell
        self.side = 2 ** b  # s
        self.base_weight = 3 * ell * self.side ** 2  # A
        self._graph, self._index = self._build()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def num_levels(self) -> int:
        """The number of levels, ``2l + 1``."""
        return 2 * self.ell + 1

    def active_coordinate(self, level: int) -> int:
        """The 0-based coordinate that may change between ``level`` and
        ``level + 1`` (paper's ``c``, shifted to 0-based)."""
        if not 0 <= level < 2 * self.ell:
            raise ValueError(f"level step {level} out of range")
        if level < self.ell:
            return level
        return 2 * self.ell - level - 1

    def vectors(self) -> Iterator[Vector]:
        """All grid vectors of one level, ``[0, s-1]^l``."""
        return product(range(self.side), repeat=self.ell)

    def vertex(self, level: int, vector: Vector) -> int:
        """The graph index of ``v_{level, vector}``."""
        return self._index[(level, tuple(vector))]

    def name_of(self, index: int) -> Tuple[int, Vector]:
        return self._names[index]

    def edge_weight_between(self, value_from: int, value_to: int) -> int:
        """``A + (j_c - j'_c)^2`` for an active-coordinate change."""
        return self.base_weight + (value_from - value_to) ** 2

    def _build(self) -> Tuple[Graph, Dict]:
        builder = GraphBuilder()
        for level in range(self.num_levels):
            for vector in self.vectors():
                builder.vertex((level, vector))
        for level in range(self.num_levels - 1):
            c = self.active_coordinate(level)
            for vector in self.vectors():
                for new_value in range(self.side):
                    target = list(vector)
                    target[c] = new_value
                    builder.add_edge(
                        (level, vector),
                        (level + 1, tuple(target)),
                        self.edge_weight_between(vector[c], new_value),
                    )
        graph, index, names = builder.build()
        self._names = names
        return graph, index

    # ------------------------------------------------------------------
    # Lemma 2.2 quantities
    # ------------------------------------------------------------------
    def is_lemma_pair(self, x: Vector, z: Vector) -> bool:
        """True when every ``z_k - x_k`` is even (the Lemma 2.2 premise)."""
        return all((zk - xk) % 2 == 0 for xk, zk in zip(x, z))

    def midpoint(self, x: Vector, z: Vector) -> Vector:
        """``(x + z) / 2`` -- the forced middle-level vertex."""
        if not self.is_lemma_pair(x, z):
            raise ValueError("midpoint requires all coordinate gaps even")
        return tuple((xk + zk) // 2 for xk, zk in zip(x, z))

    def unique_path_length(self, x: Vector, z: Vector) -> int:
        """The weighted length of the unique shortest path of Lemma 2.2:
        ``2 l A + sum_k (z_k - x_k)^2 / 2``."""
        if not self.is_lemma_pair(x, z):
            raise ValueError("length formula requires all gaps even")
        return 2 * self.ell * self.base_weight + sum(
            (zk - xk) ** 2 // 2 for xk, zk in zip(x, z)
        )

    def unique_path_vertices(self, x: Vector, z: Vector) -> List[int]:
        """The vertex sequence of the unique shortest path (Lemma 2.2):
        each half changes the active coordinate by ``(z_c - x_c) / 2``."""
        mid = self.midpoint(x, z)
        current = list(x)
        path = [self.vertex(0, tuple(current))]
        for level in range(2 * self.ell):
            c = self.active_coordinate(level)
            if level < self.ell:
                current[c] = mid[c]
            else:
                current[c] = z[c]
            path.append(self.vertex(level + 1, tuple(current)))
        return path

    def lemma_pairs(self) -> Iterator[Tuple[Vector, Vector]]:
        """All ``(x, z)`` with componentwise even gaps."""
        for x in self.vectors():
            for z in self.vectors():
                if self.is_lemma_pair(x, z):
                    yield x, z

    def midpoint_triplet_count(self) -> int:
        """``s^l * (s/2)^l`` -- the number of (x, y, z) triplets counted
        in the proof of claim (iii)."""
        return self.side ** self.ell * (self.side // 2) ** self.ell

    def __repr__(self) -> str:
        return (
            f"LayeredGraph(b={self.b}, l={self.ell}, s={self.side}, "
            f"A={self.base_weight}, n={self._graph.num_vertices})"
        )
