"""Counting-technique lower bounds (the [GPPR04] baseline of Section 1.1).

The classic technique: build a family ``F`` of graphs in the class, all
sharing a distinguished vertex set ``V'``, such that the ``|V'|^2``
pairwise distances identify the member.  Total label bits over ``V'``
must then reach ``log2 |F|``, i.e. ``log2 |F| / |V'|`` bits per label.

The paper's whole point is that this technique *cannot* go beyond
``Omega(sqrt n)`` for sparse graphs (Section 1.1, "Lower bounds"), which
is why its Theorems 1.1/1.6 argue via hub structure and communication
complexity instead.  This module provides the baseline for comparison:

* the generic arithmetic (:func:`counting_bound_bits_per_label`);
* a concrete sparse *shortcut family* realizing ``Omega(sqrt n)``:
  ``k`` terminals, one potential shortcut vertex per terminal pair, and
  a fallback hub keeping distances finite -- each of the ``2^(k choose 2)``
  subsets yields distinct terminal distances (3 with the shortcut, 4
  without), on ``Theta(k^2)`` vertices and edges.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Tuple

from ..graphs.graph import Graph

__all__ = [
    "counting_bound_bits_per_label",
    "shortcut_family_graph",
    "shortcut_family_bound",
    "terminal_pairs",
]


def counting_bound_bits_per_label(
    family_size_log2: float, num_distinguished: int
) -> float:
    """``log2 |F| / |V'|`` bits per label."""
    if num_distinguished <= 0:
        raise ValueError("need at least one distinguished vertex")
    return family_size_log2 / num_distinguished


def terminal_pairs(k: int) -> List[Tuple[int, int]]:
    """The ``k choose 2`` unordered terminal pairs."""
    return list(combinations(range(k), 2))


def shortcut_family_graph(
    k: int, subset: FrozenSet[Tuple[int, int]]
) -> Graph:
    """A member of the shortcut family.

    Layout of the ``k + 2 + (k choose 2)`` vertices:

    * ``0 .. k-1``            -- the terminals (the distinguished set);
    * ``k``                   -- a relay adjacent to a pendant per
                                 terminal... realized as: relay ``k`` and
                                 spacer ``k + 1`` with terminal -> spacer
                                 -> relay chains shared pairwise;
    * ``k + 2 + index(pair)`` -- the shortcut vertex of each pair,
                                 present as an *edge pair* only when the
                                 pair is in ``subset``.

    Every terminal connects to the spacer ``k+1`` which connects to the
    relay ``k``; terminal distances are therefore at most 4 through the
    relay path (t -> spacer -> t' gives 2? -- no: all terminals share the
    single spacer, giving distance 2).  To keep the baseline distance
    *above* the shortcut distance, terminals attach to the relay via
    their own pendant chain of length 2: ``t -> pendant_t -> relay``.

    Distances: with the pair's shortcut vertex wired, ``d(t, t') = 2``;
    without, ``d(t, t') = 4`` (via pendant chains through the relay).
    The vertex and edge counts are ``Theta(k^2)``, so ``n = Theta(k^2)``
    and the family certifies ``~ (k-1)/2 = Theta(sqrt n)`` bits/label.
    """
    pairs = terminal_pairs(k)
    index = {pair: i for i, pair in enumerate(pairs)}
    unknown = set(subset) - set(pairs)
    if unknown:
        raise ValueError(f"subset contains non-pairs: {sorted(unknown)}")
    relay = k
    first_pendant = k + 1
    first_shortcut = first_pendant + k
    g = Graph(first_shortcut + len(pairs))
    for t in range(k):
        pendant = first_pendant + t
        g.add_edge(t, pendant)
        g.add_edge(pendant, relay)
    for pair in pairs:
        shortcut = first_shortcut + index[pair]
        if pair in subset:
            g.add_edge(pair[0], shortcut)
            g.add_edge(shortcut, pair[1])
        else:
            # Keep the vertex count fixed across the family: park the
            # unused shortcut vertex on the relay.
            g.add_edge(shortcut, relay)
    return g


def shortcut_family_bound(k: int) -> Tuple[int, float]:
    """``(n, bits_per_label)`` certified by the shortcut family on k
    terminals: ``log2 |F| = (k choose 2)`` over ``k`` labels."""
    num_pairs = k * (k - 1) // 2
    n = k + 1 + k + num_pairs
    return n, counting_bound_bits_per_label(float(num_pairs), k)
