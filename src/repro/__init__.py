"""repro -- a reproduction of Kosowski, Uznanski, Viennot (PODC 2019),
"Hardness of exact distance queries in sparse graphs through hub
labeling" (arXiv:1902.07055).

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.graphs`     -- self-contained graph substrate;
* :mod:`repro.core`       -- hub labeling: store, baselines (PLL,
  greedy), and the paper's constructions (monotone hubsets, hitting
  sets, the sparse scheme, the Theorem 4.1 RS scheme, degree
  reduction, bound curves);
* :mod:`repro.lowerbound` -- the Theorem 2.1 hard instances ``H_{b,l}``
  / ``G_{b,l}`` with certificates and charging audits;
* :mod:`repro.sumindex`   -- Section 3: ``G'_{b,l}``, Observation 3.1,
  and the Theorem 1.6 simultaneous-message protocol;
* :mod:`repro.rs`         -- Ruzsa-Szemeredi machinery (Behrend sets,
  RS graphs, matchings, Koenig covers);
* :mod:`repro.labeling`   -- bit-accounted distance labeling schemes;
* :mod:`repro.oracles`    -- centralized oracles for the S*T trade-off;
* :mod:`repro.reachability` -- directed 2-hop reachability covers, the
  original [CHKZ03] form of the framework;
* :mod:`repro.runtime`    -- the resilient serving layer: typed errors,
  integrity-checked artifacts, fault injection, and an oracle that
  degrades to exact search instead of answering wrong;
* :mod:`repro.perf`       -- the performance layer: flat-array label
  store (``backend="flat"`` on the oracles), process-pool traversal
  fan-out (``workers=``), and the ``repro bench`` suite.
"""

from . import (
    core,
    graphs,
    labeling,
    lowerbound,
    oracles,
    perf,
    reachability,
    rs,
    runtime,
    sumindex,
)
from .core import (
    HubLabeling,
    greedy_hub_labeling,
    is_valid_cover,
    pruned_landmark_labeling,
    rs_hub_labeling,
    sparse_hub_labeling,
    verify_cover,
)
from .graphs import Graph, GraphBuilder
from .lowerbound import build_degree3_instance, certificate_for

__version__ = "1.0.0"

__all__ = [
    "core",
    "graphs",
    "labeling",
    "lowerbound",
    "oracles",
    "perf",
    "reachability",
    "rs",
    "runtime",
    "sumindex",
    "HubLabeling",
    "greedy_hub_labeling",
    "is_valid_cover",
    "pruned_landmark_labeling",
    "rs_hub_labeling",
    "sparse_hub_labeling",
    "verify_cover",
    "Graph",
    "GraphBuilder",
    "build_degree3_instance",
    "certificate_for",
    "__version__",
]
