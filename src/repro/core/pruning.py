"""Redundant-hub elimination.

A hub ``h ∈ S(v)`` is *redundant* when every pair ``(v, u)`` is still
answered exactly without it.  Generic constructions (the threshold
scheme, the RS scheme) over-provision heavily; pruning quantifies by
how much, and gives a fair size comparison against the canonical
labelings (PLL output is already minimal for its order, so pruning
barely touches it -- a property the tests assert).

:func:`prune_labeling` removes hubs greedily (largest labels first,
self-hubs kept); each removal is validated against the current labeling
so the result is always a correct cover.  Cost:
``O(sum_v |S_v| * n * avg_label)`` -- intended for graphs up to a few
hundred vertices.
"""

from __future__ import annotations

from typing import List, Optional

from ..graphs.graph import Graph
from ..graphs.shortest_paths import all_pairs_distances
from ..graphs.traversal import INF
from .hublabel import HubLabeling

__all__ = ["prune_labeling"]


def prune_labeling(
    graph: Graph,
    labeling: HubLabeling,
    *,
    keep_self_hubs: bool = True,
    matrix: Optional[List[List[float]]] = None,
) -> HubLabeling:
    """A minimal-by-inclusion sub-labeling that still covers exactly.

    The input must itself be a valid cover (checked pair-by-pair during
    pruning; a broken input raises ``ValueError``).  The result's labels
    are subsets of the input's; no hub distances change.
    """
    n = graph.num_vertices
    if labeling.num_vertices != n:
        raise ValueError("labeling does not match the graph")
    if matrix is None:
        matrix = all_pairs_distances(graph)
    pruned = labeling.copy()

    # Sanity: the input must cover everything it can reach.
    for u in range(n):
        for v in range(u + 1, n):
            if matrix[u][v] != INF and pruned.query(u, v) != matrix[u][v]:
                raise ValueError(
                    f"input labeling does not cover pair ({u}, {v})"
                )

    # Try removals, biggest labels first (most room to shrink).
    order = sorted(range(n), key=pruned.label_size, reverse=True)
    for v in order:
        row_v = matrix[v]
        for h in sorted(
            pruned.hub_set(v),
            key=lambda x: row_v[x] if row_v[x] != INF else -1,
            reverse=True,
        ):
            if keep_self_hubs and h == v:
                continue
            distance = pruned.hub_distance(v, h)
            pruned.discard_hub(v, h)
            # Only pairs (v, u) can break.
            if _still_covered(pruned, matrix, v):
                continue
            pruned.add_hub(v, h, distance)
    return pruned


def _still_covered(
    labeling: HubLabeling, matrix: List[List[float]], v: int
) -> bool:
    row = matrix[v]
    for u in range(len(row)):
        if u == v or row[u] == INF:
            continue
        if labeling.query(v, u) != row[u]:
            return False
    return True
