"""Additive-approximate hub labelings (the Section 1.1 recipe).

The paper sketches how state-of-the-art distance labelings for general
graphs are built: first an *approximate* hub labeling where for every
pair some common hub ``w`` has ``w`` or a neighbor of ``w`` on a
shortest path (absolute error 0, 1, or 2), then explicit correction
tables that restore exactness at ``log2(3)`` bits per pair.

:func:`additive_approximation` performs the hub-coarsening step: every
hub ``h`` is replaced by a *representative* ``r(h)`` drawn from its
closed neighborhood by a shared hash, so distinct hubs collapse onto
shared representatives and labels shrink; for any pair covered by ``h``
the representative satisfies::

    d(u, r) + d(r, v)  <=  d(u, h) + d(h, v) + 2  =  d(u, v) + 2

and is never below ``d(u, v)``, so the error lies in {0, 1, 2}.

:class:`CorrectedScheme` stores, per vertex, the ternary error row and
decodes exact distances from (approximate labels + corrections), with
honest bit accounting -- the shape of [AGHP16a]'s
``log2(3)/2 * n + o(n)`` construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..graphs.graph import Graph
from ..graphs.traversal import INF, shortest_path_distances
from .hublabel import HubLabeling

__all__ = [
    "additive_approximation",
    "approximation_errors",
    "CorrectedScheme",
]


def additive_approximation(
    graph: Graph, labeling: HubLabeling, *, seed: int = 0
) -> HubLabeling:
    """Coarsen ``labeling`` by mapping each hub into its closed
    neighborhood with a shared random choice.

    The representative map ``r`` is a single global function (the same
    for every vertex), so common hubs stay common.  Distances stored are
    exact distances to the representative.  Errors are bounded by 2 and
    the result never underestimates.
    """
    rng = random.Random(seed)
    n = graph.num_vertices
    representative: List[int] = []
    for h in range(n):
        neighbors = graph.neighbor_ids(h)
        candidates = [h] + neighbors
        representative.append(candidates[rng.randrange(len(candidates))])

    # Distances to representatives: computed per *used* representative.
    used = sorted(
        {
            representative[h]
            for v in range(n)
            for h in labeling.hubs(v)
        }
    )
    rows: Dict[int, List[float]] = {
        r: shortest_path_distances(graph, r)[0] for r in used
    }
    coarse = HubLabeling(n)
    for v in range(n):
        for h in labeling.hubs(v):
            r = representative[h]
            if rows[r][v] != INF:
                coarse.add_hub(v, r, rows[r][v])
    return coarse


def approximation_errors(
    graph: Graph, approximate: HubLabeling
) -> List[int]:
    """Histogram (index = error) of query errors over connected pairs.

    Returns a list ``counts`` where ``counts[e]`` is the number of pairs
    with ``query - distance == e``.  Raises if any pair underestimates
    (which would falsify the construction).
    """
    counts: List[int] = []
    n = graph.num_vertices
    for u in range(n):
        dist, _ = shortest_path_distances(graph, u)
        for v in range(u + 1, n):
            if dist[v] == INF:
                continue
            estimate = approximate.query(u, v)
            if estimate == INF:
                raise ValueError(f"pair ({u}, {v}) lost coverage entirely")
            error = int(estimate - dist[v])
            if error < 0:
                raise ValueError(
                    f"pair ({u}, {v}) underestimated by {-error}"
                )
            while len(counts) <= error:
                counts.append(0)
            counts[error] += 1
    return counts


@dataclass
class CorrectedScheme:
    """Approximate hub labels + per-vertex ternary correction rows.

    ``corrections[u][v]`` is the error of the approximate query for the
    pair (a value in {0, 1, 2}); exact distance = approximate query
    minus correction.  Bits per vertex =
    approximate-label bits + ``log2(3) * n`` for the row (the paper's
    accounting; rows are stored ternary-packed).
    """

    graph: Graph
    approximate: HubLabeling
    corrections: List[List[int]]

    @classmethod
    def build(
        cls, graph: Graph, labeling: HubLabeling, *, seed: int = 0
    ) -> "CorrectedScheme":
        approximate = additive_approximation(graph, labeling, seed=seed)
        n = graph.num_vertices
        corrections: List[List[int]] = []
        for u in range(n):
            dist, _ = shortest_path_distances(graph, u)
            row = []
            for v in range(n):
                if dist[v] == INF:
                    row.append(0)
                    continue
                estimate = approximate.query(u, v)
                row.append(int(estimate - dist[v]))
            corrections.append(row)
        return cls(
            graph=graph, approximate=approximate, corrections=corrections
        )

    def query(self, u: int, v: int) -> float:
        estimate = self.approximate.query(u, v)
        if estimate == INF:
            return INF
        return estimate - self.corrections[u][v]

    def correction_bits_per_vertex(self) -> float:
        """``log2(3) * n`` -- the ternary row, information-theoretically."""
        import math

        return math.log2(3) * self.graph.num_vertices

    def total_bits_per_vertex(self) -> float:
        """Correction row + the coarse hub labels (naive encoding)."""
        n = max(self.graph.num_vertices, 2)
        import math

        id_bits = math.ceil(math.log2(n))
        max_dist = max(
            (
                d
                for v in range(self.approximate.num_vertices)
                for d in self.approximate.hubs(v).values()
            ),
            default=1,
        )
        dist_bits = max(1, math.ceil(math.log2(max_dist + 2)))
        label_bits = (
            self.approximate.total_size()
            * (id_bits + dist_bits)
            / self.graph.num_vertices
        )
        return label_bits + self.correction_bits_per_vertex()
