"""Hierarchical hub labelings (the class PLL produces).

A labeling is *hierarchical* for an order ``pi`` when every hub stored
at ``v`` has rank at most ``v``'s rank (hubs are "more important" than
their owners).  PLL produces the *canonical* hierarchical labeling of
its order: hub ``h ∈ S(v)`` exactly when ``h`` is the highest-ranked
vertex on some shortest ``hv`` path.  Canonical labelings are minimal
among hierarchical labelings for the same order, which the tests verify
against :func:`repro.core.optimal.best_hierarchical_labeling`.

These predicates quantify the hierarchical-vs-unrestricted gap -- a
structural dimension the paper's lower bound is oblivious to (Theorem
1.1 binds *all* hub labelings, hierarchical or not).
"""

from __future__ import annotations

from typing import List, Sequence

from ..graphs.graph import Graph
from ..graphs.traversal import INF, shortest_path_distances
from .hublabel import HubLabeling

__all__ = ["is_hierarchical", "canonical_hub_count", "order_rank"]


def order_rank(order: Sequence[int]) -> List[int]:
    """rank[v] = position of v in the order (0 = most important)."""
    rank = [0] * len(order)
    for position, v in enumerate(order):
        rank[v] = position
    return rank


def is_hierarchical(
    labeling: HubLabeling, order: Sequence[int]
) -> bool:
    """True iff every stored hub outranks (or is) its owner."""
    rank = order_rank(order)
    for v in range(labeling.num_vertices):
        for h in labeling.hub_set(v):
            if rank[h] > rank[v]:
                return False
    return True


def canonical_hub_count(
    graph: Graph, order: Sequence[int], vertex: int
) -> int:
    """|S(vertex)| in the canonical hierarchical labeling for ``order``.

    Definition: ``h ∈ S(v)`` iff ``h`` is the highest-ranked vertex on
    some shortest ``hv`` path.  Computed directly from distances (one
    traversal per candidate hub) -- an independent oracle the PLL tests
    compare against.
    """
    rank = order_rank(order)
    dist_v, _ = shortest_path_distances(graph, vertex)
    count = 0
    for h in range(graph.num_vertices):
        if dist_v[h] == INF:
            continue
        dist_h, _ = shortest_path_distances(graph, h)
        dvh = dist_v[h]
        on_path_ranks = [
            rank[x]
            for x in range(graph.num_vertices)
            if dist_v[x] != INF and dist_v[x] + dist_h[x] == dvh
        ]
        if rank[h] == min(on_path_ranks):
            count += 1
    return count
