"""The paper's upper-bound construction (Theorem 4.1 / Theorem 1.4).

Builds, for any graph of bounded max degree, a hub labeling of total size
``O(D^5 n^2 / RS(n) + n^2 log D / D)`` -- which, at the paper's choice
``D = RS(n)^{1/6}``, is ``O(n^2 / RS(n)^{1/6} * polylog)`` total, i.e.
``O(n / RS(n)^{1/c})`` average with ``c <= 7``.

The construction follows the proof of Theorem 4.1 verbatim:

1. **Far pairs** (``|H_uv| >= D``): a random hitting set ``S`` of size
   ``(n / D) ln D`` hits almost every rich pair; the few misses are
   stored explicitly in correction sets ``Q_v``
   (:mod:`repro.core.hitting`).
2. **Color conflicts**: vertices get uniform colors from ``[1, D^3]``;
   a near pair whose candidate set ``H_uv`` (size ``<= D``) is *not*
   rainbow-colored is stored explicitly in ``R_v``.
3. **Rainbow near pairs**: for every hub candidate ``h`` and distance
   split ``(a, b)``, the ordered pairs ``(u, v)`` with
   ``h ∈ H_uv, dist(u,h) = a, dist(h,v) = b`` form a bipartite graph
   ``E^h_{a,b}``.  A maximal matching is extracted, a minimum vertex
   cover (Koenig) charges ``h`` to the sets ``F_v`` of covered vertices,
   and the final labels take the closed neighborhoods ``N(F_v)``.
   Lemma 4.2: matchings of same-colored hubs tile an RS graph, bounding
   ``sum |F_v| = O(D^5 n^2 / RS(n))``.

The cover argument (case 3 of the proof) walks a shortest path: every
path vertex lands in ``F_u`` or ``F_v``; at a switch point two adjacent
path vertices split sides, so ``N(F_u) ∩ N(F_v)`` contains a valid hub.
Self-hubs (always included) absorb the no-switch cases.

Works for unweighted and {0, 1}-weighted graphs (degree reduction
output); the paper notes the construction generalizes verbatim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..graphs.graph import Graph
from ..graphs.shortest_paths import hub_candidates_from_distances
from ..graphs.traversal import INF, shortest_path_distances
from ..rs.function import rs_upper_bound
from ..rs.matchings import greedy_maximal_matching, konig_vertex_cover
from .hitting import HittingSetResult, build_hitting_set
from .hublabel import HubLabeling

__all__ = ["RSSchemeResult", "rs_hub_labeling", "default_threshold"]


@dataclass
class RSSchemeResult:
    """The labeling plus the per-component accounting of the proof."""

    labeling: HubLabeling
    threshold: int
    num_colors: int
    hitting: HittingSetResult
    #: sum over v of |Q_v| (explicit far-pair corrections).
    correction_total: int
    #: sum over v of |R_v| (color-conflict corrections).
    conflict_total: int
    #: sum over v of |F_v| (hub charges from vertex covers).
    charge_total: int
    #: sum over v of |N(F_v)|.
    neighborhood_total: int
    #: number of non-empty bipartite graphs E^h_{a,b} processed.
    num_pair_graphs: int = 0
    #: matchings grouped by (color, a, b) for the Lemma 4.2 diagnostics.
    matchings_by_color: Dict[Tuple[int, int, int], List[List[Tuple[int, int]]]] = field(
        default_factory=dict
    )

    def component_sizes(self) -> Dict[str, int]:
        n = self.labeling.num_vertices
        return {
            "hitting_set": len(self.hitting.hitting_set) * n,
            "corrections_Q": self.correction_total,
            "conflicts_R": self.conflict_total,
            "charges_F": self.charge_total,
            "neighborhoods_NF": self.neighborhood_total,
            "total_label_size": self.labeling.total_size(),
        }


def default_threshold(num_vertices: int) -> int:
    """The paper's choice ``D = RS(n)^{1/6}`` on the Behrend curve."""
    rs = rs_upper_bound(max(num_vertices, 2))
    return max(2, int(round(rs ** (1.0 / 6.0))))


def rs_hub_labeling(
    graph: Graph,
    *,
    threshold: Optional[int] = None,
    seed: int = 0,
    collect_matchings: bool = False,
    cover_method: str = "konig",
) -> RSSchemeResult:
    """Run the Theorem 4.1 construction on ``graph``.

    ``threshold`` is the parameter ``D`` (defaults to the paper's
    ``RS(n)^{1/6}``).  The returned labeling is always a correct exact
    cover; the result records the size of every proof component.

    ``cover_method`` selects the vertex cover used to charge hubs:
    ``"konig"`` computes a true minimum cover (what the paper's "some
    minimum vertex cover" asks for); ``"matching"`` takes both endpoints
    of the greedy maximal matching -- the 2-approximation the proof's
    *bound* actually uses (``|VC| <= 2 |MM|``).  The ablation benchmark
    compares the two.

    Complexity: ``O(n * m)`` for APSP plus ``O(n^2 D)`` for the pair
    scan -- intended for instances up to a few thousand vertices.
    """
    if cover_method not in ("konig", "matching"):
        raise ValueError("cover_method must be 'konig' or 'matching'")
    n = graph.num_vertices
    if threshold is None:
        threshold = default_threshold(n)
    if threshold < 2:
        raise ValueError("threshold D must be >= 2")
    rng = random.Random(seed)
    matrix = [shortest_path_distances(graph, v)[0] for v in graph.vertices()]

    labeling = HubLabeling(n)
    for v in range(n):
        labeling.add_hub(v, v, 0)

    # --- Step 1: far pairs via the random hitting set -----------------
    hitting = build_hitting_set(
        graph, threshold, seed=rng.randrange(1 << 30), matrix=matrix
    )
    for h in hitting.hitting_set:
        for v in range(n):
            if matrix[v][h] != INF:
                labeling.add_hub(v, h, matrix[v][h])
    correction_total = 0
    for u, partners in hitting.corrections.items():
        for v in partners:
            labeling.add_hub(u, v, matrix[u][v])
            correction_total += 1

    # --- Step 2: random coloring, conflict sets R ----------------------
    num_colors = threshold ** 3
    colors = [rng.randrange(num_colors) for _ in range(n)]
    conflict_total = 0
    near_rainbow_pairs: List[Tuple[int, int, List[int]]] = []
    # Far pairs are step 1's job; in unweighted graphs distance
    # >= threshold - 1 certifies |H_uv| >= threshold without a scan.
    unweighted = not graph.is_weighted
    for u in range(n):
        row_u = matrix[u]
        for v in range(u + 1, n):
            if row_u[v] == INF:
                continue
            if unweighted and row_u[v] >= threshold - 1:
                continue  # rich pair, handled by step 1
            candidates = hub_candidates_from_distances(
                row_u, matrix[v], row_u[v]
            )
            if len(candidates) >= threshold:
                continue  # handled by step 1
            seen_colors: Set[int] = set()
            conflict = False
            for x in candidates:
                if colors[x] in seen_colors:
                    conflict = True
                    break
                seen_colors.add(colors[x])
            if conflict:
                # Store the pair explicitly (v into R_u and u into R_v).
                labeling.add_hub(u, v, row_u[v])
                labeling.add_hub(v, u, row_u[v])
                conflict_total += 2
            else:
                near_rainbow_pairs.append((u, v, candidates))

    # --- Step 3: pair graphs, matchings, vertex covers, F sets ---------
    pair_graphs: Dict[Tuple[int, int, int], List[Tuple[int, int]]] = {}
    for u, v, candidates in near_rainbow_pairs:
        duv = matrix[u][v]
        for h in candidates:
            a = matrix[u][h]
            b = matrix[h][v]
            # Ordered both ways so each endpoint can be charged.
            pair_graphs.setdefault((h, a, b), []).append((u, v))
            pair_graphs.setdefault((h, b, a), []).append((v, u))
    charges: List[Set[int]] = [set() for _ in range(n)]
    matchings_by_color: Dict[
        Tuple[int, int, int], List[List[Tuple[int, int]]]
    ] = {}
    for (h, a, b), edges in pair_graphs.items():
        matching = greedy_maximal_matching(edges)
        if cover_method == "konig":
            left_cover, right_cover = konig_vertex_cover(edges)
            cover = left_cover | right_cover
        else:
            cover = {u for u, _ in matching} | {v for _, v in matching}
        for w in cover:
            charges[w].add(h)
        if collect_matchings:
            matchings_by_color.setdefault(
                (colors[h], a, b), []
            ).append(matching)
    charge_total = sum(len(f) for f in charges)
    neighborhood_total = 0
    for v in range(n):
        closed: Set[int] = set()
        for h in charges[v]:
            closed.add(h)
            closed.update(graph.neighbor_ids(h))
        for x in closed:
            if matrix[v][x] != INF:
                labeling.add_hub(v, x, matrix[v][x])
        neighborhood_total += len(closed)

    return RSSchemeResult(
        labeling=labeling,
        threshold=threshold,
        num_colors=num_colors,
        hitting=hitting,
        correction_total=correction_total,
        conflict_total=conflict_total,
        charge_total=charge_total,
        neighborhood_total=neighborhood_total,
        num_pair_graphs=len(pair_graphs),
        matchings_by_color=matchings_by_color,
    )
