"""Closed-form bound values quoted by the paper's theorems.

These are the reference curves the benchmark harness prints next to the
measured quantities, with the explicit constants taken from the proofs
rather than the Theta-statements, so finite instances can be checked
*exactly* (DESIGN.md, "Substitutions").
"""

from __future__ import annotations

import math

from ..rs.function import rs_upper_bound

__all__ = [
    "theorem_11_average_hub_lower_bound",
    "theorem_14_average_hub_upper_bound",
    "theorem_21_node_count_bounds",
    "theorem_21_hub_sum_lower_bound",
    "gppr_general_label_bits",
    "gppr_sparse_label_lower_bound_bits",
    "sqrt_n_lower_bound_bits",
    "ambainis_sumindex_upper_bound_bits",
]


def theorem_11_average_hub_lower_bound(n: int, constant: float = 3.0) -> float:
    """The asymptotic shape ``n / 2^{c sqrt(log n)}`` of Theorem 1.1.

    ``constant`` absorbs the Theta; the default 3 matches the b = l =
    sqrt(log N) parameter balance of Section 2 to within lower-order
    terms.
    """
    if n < 2:
        return 0.0
    return n / 2.0 ** (constant * math.sqrt(math.log2(n)))


def theorem_14_average_hub_upper_bound(n: int, c: float = 7.0) -> float:
    """Theorem 1.4's ``O(n / RS(n)^{1/c})`` on the Behrend curve."""
    if n < 2:
        return float(n)
    return n / rs_upper_bound(n) ** (1.0 / c)


def theorem_21_node_count_bounds(b: int, ell: int) -> tuple:
    """Explicit node-count bounds for ``G_{b, l}`` from the proof.

    Returns ``(lower, upper)``: the grid population ``s^l (2l+1)`` below
    and the proof's counting
    ``4 s * s^l * (2l+1) + (3l+1) s^2 * s^l * 2l * s`` above.
    """
    s = 2 ** b
    grid = s ** ell * (2 * ell + 1)
    upper = 4 * s * grid + (3 * ell + 1) * s ** 2 * s ** ell * 2 * ell * s
    return grid, upper


def theorem_21_hub_sum_lower_bound(b: int, ell: int) -> float:
    """Claim (iii) made explicit: ``sum_v |S_v| >= s^{2l} 2^{-l} / K``
    with the distortion factor ``K = (3l+1) s^2 * 4l`` from Eq. (1)."""
    s = 2 ** b
    triplets = (s ** ell) * ((s / 2.0) ** ell)
    distortion = (3 * ell + 1) * s ** 2 * 4 * ell
    return triplets / distortion


def gppr_general_label_bits(n: int) -> float:
    """The tight general-graph label size ``(1/2) log2(3) * n`` bits
    [AGHP16a], with the ``n/2`` counting lower bound [GPPR04]."""
    return 0.5 * math.log2(3) * n


def gppr_sparse_label_lower_bound_bits(n: int) -> float:
    """[GPPR04]'s ``Omega(sqrt(n))`` counting lower bound for sparse
    graphs (constant 1)."""
    return math.sqrt(n)


def sqrt_n_lower_bound_bits(n: int) -> float:
    """Known ``Omega(sqrt n)`` lower bound for SUMINDEX(n) (constant 1)."""
    return math.sqrt(n)


def ambainis_sumindex_upper_bound_bits(n: int) -> float:
    """Ambainis's "unexpected" upper bound shape for SUMINDEX(n):
    ``n log^{1/4}(n) / 2^{sqrt(log n)}`` (constant 1, base-2 logs).

    A reference curve only -- the protocol itself is out of scope (see
    DESIGN.md, Substitutions); the paper quotes it to calibrate how far
    below ``n`` the true complexity already provably sits.
    """
    if n < 2:
        return float(n)
    log_n = math.log2(n)
    return n * log_n ** 0.25 / 2 ** math.sqrt(log_n)
