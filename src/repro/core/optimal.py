"""Exact minimum hub labelings by exhaustive search (tiny graphs).

The greedy 2-hop cover is an ``O(log n)`` approximation; to *measure*
its gap the tests need ground truth.  This module computes the true
minimum total label size on very small graphs:

* :func:`minimum_hub_labeling` -- branch-and-bound over per-vertex hub
  sets, pruning with the best solution found so far and a simple
  uncovered-pairs lower bound;
* :func:`minimum_total_size` -- just the optimum value.

Complexity is exponential; the guard rejects graphs beyond
``max_vertices`` (default 8).  Hierarchical labelings (PLL over all
``n!`` orders) are also searchable via
:func:`best_hierarchical_labeling` for slightly larger graphs.
"""

from __future__ import annotations

from itertools import permutations
from typing import List, Optional, Tuple

from ..graphs.graph import Graph
from ..graphs.shortest_paths import all_pairs_distances
from ..graphs.traversal import INF
from .hublabel import HubLabeling
from .pll import pruned_landmark_labeling

__all__ = [
    "minimum_hub_labeling",
    "minimum_total_size",
    "best_hierarchical_labeling",
]


def minimum_hub_labeling(
    graph: Graph, *, max_vertices: int = 8
) -> HubLabeling:
    """The minimum-total-size hub labeling, by branch and bound.

    Search space: for each connected pair we must choose a common hub on
    a shortest path.  We branch over uncovered pairs (most-constrained
    first) and the hub choices for them, sharing hub assignments across
    pairs via the incremental labeling.
    """
    n = graph.num_vertices
    if n > max_vertices:
        raise ValueError(
            f"exhaustive search capped at {max_vertices} vertices"
        )
    matrix = all_pairs_distances(graph)
    pairs: List[Tuple[int, int, List[int]]] = []
    for u in range(n):
        for v in range(u + 1, n):
            if matrix[u][v] == INF:
                continue
            candidates = [
                x
                for x in range(n)
                if matrix[u][x] != INF
                and matrix[u][x] + matrix[x][v] == matrix[u][v]
            ]
            pairs.append((u, v, candidates))
    # Most-constrained pairs first gives better pruning.
    pairs.sort(key=lambda p: len(p[2]))

    # Start from the PLL solution as the incumbent upper bound.
    incumbent = pruned_landmark_labeling(graph)
    best_size = incumbent.total_size()
    best_labels: List[set] = [set(incumbent.hub_set(v)) for v in range(n)]

    labels: List[set] = [set() for _ in range(n)]

    def covered(u: int, v: int) -> bool:
        common = labels[u] & labels[v]
        duv = matrix[u][v]
        return any(matrix[u][x] + matrix[x][v] == duv for x in common)

    def search(index: int, size: int) -> None:
        nonlocal best_size, best_labels
        if size >= best_size:
            return
        while index < len(pairs) and covered(
            pairs[index][0], pairs[index][1]
        ):
            index += 1
        if index == len(pairs):
            best_size = size
            best_labels = [set(label) for label in labels]
            return
        u, v, candidates = pairs[index]
        for x in candidates:
            added = 0
            if x not in labels[u]:
                labels[u].add(x)
                added += 1
                added_u = True
            else:
                added_u = False
            if x not in labels[v]:
                labels[v].add(x)
                added += 1
                added_v = True
            else:
                added_v = False
            search(index + 1, size + added)
            if added_u:
                labels[u].discard(x)
            if added_v:
                labels[v].discard(x)

    search(0, 0)
    result = HubLabeling(n)
    for v in range(n):
        for x in best_labels[v]:
            if matrix[v][x] != INF:
                result.add_hub(v, x, matrix[v][x])
    return result


def minimum_total_size(graph: Graph, *, max_vertices: int = 8) -> int:
    return minimum_hub_labeling(
        graph, max_vertices=max_vertices
    ).total_size()


def best_hierarchical_labeling(
    graph: Graph, *, max_vertices: int = 7
) -> Tuple[HubLabeling, Tuple[int, ...]]:
    """The best PLL labeling over all vertex orders (n! search).

    Returns ``(labeling, order)``.  Useful to quantify the hierarchical
    vs unrestricted gap on small instances.
    """
    n = graph.num_vertices
    if n > max_vertices:
        raise ValueError(
            f"order enumeration capped at {max_vertices} vertices"
        )
    best: Optional[HubLabeling] = None
    best_order: Tuple[int, ...] = tuple(range(n))
    for order in permutations(range(n)):
        labeling = pruned_landmark_labeling(graph, list(order))
        if best is None or labeling.total_size() < best.total_size():
            best = labeling
            best_order = order
    assert best is not None
    return best, best_order
