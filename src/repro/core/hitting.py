"""Random hitting sets for far pairs -- property (∗) of Section 4.

For a threshold ``D``, call a pair ``(u, v)`` *rich* when its hub
candidate set ``H_uv`` (every vertex on some shortest path) has size at
least ``D``.  Sampling ``|S| = ceil((n / D) * ln D)`` vertices uniformly
leaves each rich pair unhit with probability ``<= (1 - D/n)^{|S|} <= 1/D``,
so in expectation at most ``n^2 / D`` rich pairs survive; those survivors
are stored explicitly in the sets ``Q_v``.

This is also the mechanism behind the sparse-graph schemes of
[ADKP16, GKU16]: far pairs are cheap, only short distances are hard.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..graphs.graph import Graph
from ..graphs.traversal import INF, shortest_path_distances
from ..obs.catalog import BUILD_PAIRS_PER_SECOND
from ..obs.registry import get_registry
from ..obs.spans import span

__all__ = ["HittingSetResult", "hitting_set_size", "build_hitting_set"]


def hitting_set_size(n: int, threshold: int) -> int:
    """The sample size ``ceil((n / D) * ln D)`` used in the proof."""
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    if threshold == 1:
        return n
    return min(n, max(1, math.ceil(n / threshold * math.log(threshold))))


@dataclass
class HittingSetResult:
    """A sampled hitting set plus its per-vertex correction sets.

    ``hitting_set`` is the global sample ``S``; ``corrections[u]`` is the
    paper's ``Q_u``: partners ``v`` of rich pairs not hit by ``S``.
    Together they cover every rich pair: either some ``h ∈ S ∩ H_uv`` or
    ``v ∈ Q_u`` acts as the hub.
    """

    threshold: int
    hitting_set: Set[int]
    corrections: Dict[int, Set[int]] = field(default_factory=dict)
    num_rich_pairs: int = 0

    @property
    def num_uncovered(self) -> int:
        return sum(len(q) for q in self.corrections.values())

    def correction_bound(self, n: int) -> float:
        """The proof's expectation bound ``n^2 / D`` on |uncovered|."""
        return n * n / self.threshold


def build_hitting_set(
    graph: Graph,
    threshold: int,
    *,
    seed: int = 0,
    matrix: List[List[float]] = None,
    workers: int = None,
) -> HittingSetResult:
    """Sample ``S`` and collect the correction sets ``Q_u``.

    ``matrix`` may supply a precomputed distance matrix (APSP reuse by
    the RS scheme); otherwise it is computed here -- with ``workers``
    the per-root sweeps fan out over a process pool
    (:func:`repro.perf.parallel.shortest_path_rows`; None/1 = serial,
    identical rows).  Rich pairs are detected exactly via
    ``|H_uv| >= D``.
    """
    with span("hitting.build"):
        n = graph.num_vertices
        rng = random.Random(seed)
        size = hitting_set_size(n, threshold)
        sample = set(rng.sample(range(n), size)) if n else set()
        if matrix is None:
            # Imported here: repro.perf sits above the core layer.
            from ..perf.parallel import shortest_path_rows

            with span("hitting.apsp"):
                matrix = shortest_path_rows(graph, workers=workers)
        result = HittingSetResult(threshold=threshold, hitting_set=sample)
        sample_list = sorted(sample)
        # In an unweighted graph a shortest path of length d carries d + 1
        # candidate hubs, so distance >= threshold - 1 certifies richness
        # without scanning -- the common case for far pairs.
        unweighted = not graph.is_weighted
        with span("hitting.classify") as classify_span:
            for u in range(n):
                row_u = matrix[u]
                for v in range(u + 1, n):
                    duv = row_u[v]
                    if duv == INF:
                        continue
                    row_v = matrix[v]
                    if unweighted and duv >= threshold - 1:
                        rich = True
                    else:
                        count = 0
                        for x in range(n):
                            if row_u[x] + row_v[x] == duv:
                                count += 1
                                if count >= threshold:
                                    break
                        rich = count >= threshold
                    if not rich:
                        continue
                    result.num_rich_pairs += 1
                    # A sample vertex on a shortest path?  O(|S|)
                    # short-circuit.
                    hit = any(
                        row_u[s] + row_v[s] == duv for s in sample_list
                    )
                    if not hit:
                        result.corrections.setdefault(u, set()).add(v)
                        result.corrections.setdefault(v, set()).add(u)
    registry = get_registry()
    if registry.enabled and classify_span.duration:
        registry.gauge(BUILD_PAIRS_PER_SECOND, builder="hitting-set").set(
            (n * (n - 1) // 2) / classify_span.duration
        )
    return result
