"""Vertex orderings for hierarchical hub labelings.

Pruned landmark labeling (:mod:`repro.core.pll`) processes vertices in a
fixed order and produces the canonical *hierarchical* labeling for that
order; the order is therefore the entire tuning surface.  This module
provides the standard choices from the hub-labeling literature:

* :func:`degree_order` -- highest degree first (the classic PLL default);
* :func:`random_order` -- a seeded uniformly random permutation;
* :func:`coverage_order` -- greedy shortest-path-coverage (approximate
  betweenness): repeatedly pick the vertex covering the most still
  uncovered pairs.  Quadratic; meant for small instances and baselines;
* :func:`eccentricity_order` -- most central (smallest eccentricity)
  first, a good choice on grids and meshes.
"""

from __future__ import annotations

import random
from typing import List

from ..graphs.graph import Graph
from ..graphs.traversal import INF, shortest_path_distances

__all__ = [
    "degree_order",
    "random_order",
    "eccentricity_order",
    "coverage_order",
    "betweenness_order",
]


def degree_order(graph: Graph) -> List[int]:
    """Vertices by decreasing degree, ties by index."""
    return sorted(
        graph.vertices(), key=lambda v: (-graph.degree(v), v)
    )


def random_order(graph: Graph, seed: int = 0) -> List[int]:
    """A seeded random permutation of the vertices."""
    order = list(graph.vertices())
    random.Random(seed).shuffle(order)
    return order


def eccentricity_order(graph: Graph) -> List[int]:
    """Vertices by increasing eccentricity (most central first).

    Costs ``n`` single-source traversals.
    """
    keys = []
    for v in graph.vertices():
        dist, _ = shortest_path_distances(graph, v)
        finite = [d for d in dist if d != INF]
        keys.append((max(finite) if finite else 0, v))
    keys.sort()
    return [v for _, v in keys]


def betweenness_order(graph: Graph) -> List[int]:
    """Vertices by decreasing exact betweenness (Brandes), ties by index.

    The strongest general-purpose order for PLL on structured graphs;
    ``O(nm)`` preprocessing.
    """
    from ..graphs.betweenness import betweenness_centrality

    scores = betweenness_centrality(graph)
    return sorted(graph.vertices(), key=lambda v: (-scores[v], v))


def coverage_order(graph: Graph, *, rounds: int = None) -> List[int]:
    """Greedy coverage order.

    Repeatedly selects the vertex lying on shortest paths between the most
    still-uncovered pairs (computed exactly from the distance matrix), a
    quadratic-memory stand-in for betweenness orderings.  ``rounds`` caps
    the greedy phase; remaining vertices are appended by degree.
    """
    n = graph.num_vertices
    if rounds is None:
        rounds = n
    matrix = [shortest_path_distances(graph, v)[0] for v in graph.vertices()]
    uncovered = {
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if matrix[u][v] != INF
    }
    order: List[int] = []
    chosen = [False] * n
    for _ in range(min(rounds, n)):
        if not uncovered:
            break
        best_vertex = -1
        best_gain = -1
        for w in range(n):
            if chosen[w]:
                continue
            gain = sum(
                1
                for (u, v) in uncovered
                if matrix[u][w] + matrix[w][v] == matrix[u][v]
            )
            if gain > best_gain:
                best_gain = gain
                best_vertex = w
        if best_vertex == -1:
            break
        chosen[best_vertex] = True
        order.append(best_vertex)
        w = best_vertex
        uncovered = {
            (u, v)
            for (u, v) in uncovered
            if matrix[u][w] + matrix[w][v] != matrix[u][v]
        }
    for v in degree_order(graph):
        if not chosen[v]:
            order.append(v)
            chosen[v] = True
    return order
