"""Array-based pruned landmark labeling for large instances.

Produces the *same* canonical hierarchical labeling as
:func:`repro.core.pll.pruned_landmark_labeling` (tests assert equality)
but stores labels as parallel arrays of (rank-sorted hub, distance)
over a CSR adjacency -- the layout real PLL implementations use, and
the porting surface for a C/Cython kernel.  In pure CPython the two
run neck and neck (dict probes are cheap there); the value of this
module is the memory layout (flat int lists instead of per-vertex hub
dicts during construction) and the rank-sorted invariant downstream
consumers can rely on.

Only unweighted graphs take the array path (pruned BFS); weighted
input falls back to the reference implementation.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from ..graphs.csr import CSRGraph
from ..graphs.graph import Graph
from ..obs.spans import span
from .hublabel import HubLabeling
from .orders import degree_order
from .pll import _report_build_rate, pruned_landmark_labeling

__all__ = ["fast_pruned_landmark_labeling"]


def fast_pruned_landmark_labeling(
    graph: Graph, order: Optional[List[int]] = None
) -> HubLabeling:
    """Canonical hierarchical labeling via array PLL (unweighted path).

    Hubs are stored internally by *rank* (position in ``order``), which
    makes every label automatically sorted: a root processed later has a
    higher rank than everything already stored, so appends keep order
    and the pruning merge stays linear.
    """
    if order is None:
        order = degree_order(graph)
    if sorted(order) != list(graph.vertices()):
        raise ValueError("order must be a permutation of the vertices")
    if graph.is_weighted:
        return pruned_landmark_labeling(graph, order)
    with span("pll-fast.build") as build_span:
        labeling = _array_pll(graph, order)
    _report_build_rate("pll-fast", labeling, build_span.duration)
    return labeling


def _array_pll(graph: Graph, order: List[int]) -> HubLabeling:
    n = graph.num_vertices
    csr = CSRGraph(graph)
    offsets = csr.offsets
    targets = csr.targets

    label_hubs: List[List[int]] = [[] for _ in range(n)]  # rank-sorted
    label_dists: List[List[int]] = [[] for _ in range(n)]

    dist = [-1] * n
    for rank, root in enumerate(order):
        root_hubs = label_hubs[root]
        root_dists = label_dists[root]
        # Distance-to-root lookup over the root's own label, indexed by
        # rank, for O(1) probes during the merge test.
        root_lookup = dict(zip(root_hubs, root_dists))
        queue = deque([root])
        dist[root] = 0
        visited = [root]
        while queue:
            u = queue.popleft()
            d = dist[u]
            # Pruning: existing labels answer (root, u) within d?
            pruned = False
            hubs_u = label_hubs[u]
            dists_u = label_dists[u]
            for i, h in enumerate(hubs_u):
                rd = root_lookup.get(h)
                if rd is not None and rd + dists_u[i] <= d:
                    pruned = True
                    break
            if pruned:
                continue
            hubs_u.append(rank)
            dists_u.append(d)
            if rank not in root_lookup and u == root:
                root_lookup[rank] = 0
            for idx in range(offsets[u], offsets[u + 1]):
                v = targets[idx]
                if dist[v] < 0:
                    dist[v] = d + 1
                    queue.append(v)
                    visited.append(v)
        for v in visited:
            dist[v] = -1

    labeling = HubLabeling(n)
    for v in range(n):
        for h_rank, d in zip(label_hubs[v], label_dists[v]):
            labeling.add_hub(v, order[h_rank], d)
    return labeling
