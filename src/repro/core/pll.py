"""Pruned landmark labeling (PLL) -- the standard hub-labeling baseline.

PLL (Akiba, Iwata, Yoshida, SIGMOD 2013) processes vertices in a fixed
priority order ``v_1, v_2, ...``.  For each ``v_k`` it runs a *pruned*
traversal: when reaching ``u`` at distance ``d``, if the labels built so
far already certify ``dist(v_k, u) <= d`` the search is cut at ``u``;
otherwise ``v_k`` is added to ``S(u)`` with distance ``d``.

The result is the canonical *hierarchical* hub labeling for the order: it
is correct for every pair, and minimal among hierarchical labelings for
that order.  The paper's lower bound (Theorem 1.1) applies to *all* hub
labelings, so PLL on the hard instances gives the measured side of
experiment E4.

Both unweighted (pruned BFS) and weighted (pruned Dijkstra) graphs are
supported; weight-0 edges are handled by the Dijkstra path.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List, Optional, Tuple

from ..graphs.graph import Graph
from ..graphs.traversal import INF
from ..obs.catalog import BUILD_LABELS_PER_SECOND
from ..obs.registry import get_registry
from ..obs.spans import span
from .hublabel import HubLabeling
from .orders import degree_order

__all__ = ["pruned_landmark_labeling"]


def pruned_landmark_labeling(
    graph: Graph, order: Optional[List[int]] = None
) -> HubLabeling:
    """Build the canonical hierarchical hub labeling for ``order``.

    ``order`` defaults to decreasing degree.  Every vertex appears in its
    own hub set (with distance 0), which PLL guarantees by construction.

    The build reports tracing spans (``pll.build`` with nested
    ``pll.order`` / ``pll.sweeps``) and a ``build.labels_per_second``
    gauge to the active metrics registry.
    """
    with span("pll.build") as build_span:
        with span("pll.order"):
            if order is None:
                order = degree_order(graph)
            if sorted(order) != list(graph.vertices()):
                raise ValueError(
                    "order must be a permutation of the vertices"
                )
        labeling = HubLabeling(graph.num_vertices)
        with span("pll.sweeps"):
            if graph.is_weighted:
                for root in order:
                    _pruned_dijkstra(graph, root, labeling)
            else:
                for root in order:
                    _pruned_bfs(graph, root, labeling)
    _report_build_rate("pll", labeling, build_span.duration)
    return labeling


def _report_build_rate(builder: str, labeling, duration) -> None:
    """Set ``build.labels_per_second{builder=...}`` for a finished build."""
    registry = get_registry()
    if registry.enabled and duration:
        registry.gauge(BUILD_LABELS_PER_SECOND, builder=builder).set(
            labeling.total_size() / duration
        )


def _pruned_bfs(graph: Graph, root: int, labeling: HubLabeling) -> None:
    dist: List[float] = [INF] * graph.num_vertices
    dist[root] = 0
    queue = deque([root])
    root_label = labeling.hubs(root)
    while queue:
        u = queue.popleft()
        d = dist[u]
        # Pruning test: can the existing labels already answer (root, u)
        # with a distance <= d?  root's own label is merged against u's.
        if _covered_within(root_label, labeling.hubs(u), d):
            continue
        labeling.add_hub(u, root, d)
        for v, _ in graph.neighbors(u):
            if dist[v] == INF:
                dist[v] = d + 1
                queue.append(v)


def _pruned_dijkstra(graph: Graph, root: int, labeling: HubLabeling) -> None:
    dist: List[float] = [INF] * graph.num_vertices
    dist[root] = 0
    heap: List[Tuple[float, int]] = [(0, root)]
    root_label = labeling.hubs(root)
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        if _covered_within(root_label, labeling.hubs(u), d):
            continue
        labeling.add_hub(u, root, d)
        for v, w in graph.neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    # NOTE on weight-0 edges: Dijkstra settles a 0-weight neighbor at the
    # same key, and the pruning test only ever *removes* work, so the
    # labeling remains correct.


def _covered_within(root_label, u_label, d: float) -> bool:
    """True if the two labels certify a distance <= d already."""
    if len(root_label) > len(u_label):
        root_label, u_label = u_label, root_label
    for hub, dr in root_label.items():
        du = u_label.get(hub)
        if du is not None and dr + du <= d:
            return True
    return False
