"""Recursive separator hub labeling (the [GPPR04] planar recipe, §1.1).

Every vertex of a component stores the whole separator (with exact
*full-graph* distances), then the parts recurse.  Correctness: consider
a pair ``(u, v)``.  They start in the same component; at the first
recursion step that puts them in different parts (or consumes one of
them into the separator), any shortest ``uv`` path must cross a
separator vertex -- either of this step or of an earlier step if the
path leaves the current component -- and both endpoints stored every
such vertex while they were still together.

On an ``r x c`` grid with the middle row/column separator this gives
``O(sqrt n)`` hubs per vertex: the planar bound of [GPPR04], reproduced
on the planar subclass the library can generate.  With the generic BFS
level separator it is a heuristic that remains *correct* on every
graph, just not always small.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set

from ..graphs.graph import Graph
from ..graphs.properties import connected_components
from ..graphs.separators import bfs_level_separator
from ..graphs.traversal import INF, shortest_path_distances
from .hublabel import HubLabeling

__all__ = ["separator_hub_labeling", "grid_recursive_separator_fn"]

SeparatorFn = Callable[[Graph, Sequence[int]], List[int]]


def grid_recursive_separator_fn(cols: int) -> SeparatorFn:
    """A separator function for grids laid out as ``r * cols + c``.

    Reconstructs each component's bounding box and cuts its longer side
    in the middle -- the textbook planar recursion on grids.
    """

    def separator(graph: Graph, component: Sequence[int]) -> List[int]:
        rows_present = sorted({v // cols for v in component})
        cols_present = sorted({v % cols for v in component})
        members = set(component)
        if len(rows_present) >= len(cols_present):
            r = rows_present[len(rows_present) // 2]
            return [v for v in component if v // cols == r]
        c = cols_present[len(cols_present) // 2]
        return [v for v in members if v % cols == c]

    return separator


def separator_hub_labeling(
    graph: Graph, *, separator_fn: Optional[SeparatorFn] = None
) -> HubLabeling:
    """Build the recursive separator labeling (always a valid cover).

    ``separator_fn(graph, component) -> separator`` defaults to
    :func:`repro.graphs.bfs_level_separator`.  The function must return
    a non-empty subset of the component; each returned vertex costs one
    full-graph traversal.
    """
    if separator_fn is None:
        separator_fn = bfs_level_separator
    n = graph.num_vertices
    labeling = HubLabeling(n)
    for v in range(n):
        labeling.add_hub(v, v, 0)
    stack: List[List[int]] = list(connected_components(graph))
    while stack:
        component = stack.pop()
        if len(component) <= 1:
            continue
        separator = separator_fn(graph, component)
        if not separator:
            raise ValueError("separator_fn returned an empty separator")
        sep_set = set(separator)
        if not sep_set <= set(component):
            raise ValueError("separator must be a subset of the component")
        for s in sep_set:
            dist, _ = shortest_path_distances(graph, s)
            for v in component:
                if dist[v] != INF:
                    labeling.add_hub(v, s, dist[v])
        remaining = set(component) - sep_set
        seen: Set[int] = set()
        for start in remaining:
            if start in seen:
                continue
            part = []
            frontier = [start]
            seen.add(start)
            while frontier:
                u = frontier.pop()
                part.append(u)
                for w, _ in graph.neighbors(u):
                    if w in remaining and w not in seen:
                        seen.add(w)
                        frontier.append(w)
            stack.append(part)
    return labeling
