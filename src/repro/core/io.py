"""Serialization of graphs and hub labelings.

A library users adopt needs artifacts to survive the process: build a
labeling once, query it from anywhere.  Formats:

* JSON (:func:`labeling_to_json` / :func:`labeling_from_json`) --
  human-readable, interoperable;
* a compact binary stream (:func:`labeling_to_bytes` /
  :func:`labeling_from_bytes`) built on the library's own bit codecs
  (gap + gamma, the same encoding the distance-label sizes are measured
  in), typically ~4x smaller than JSON;
* edge-list text for graphs (:func:`graph_to_edgelist` /
  :func:`graph_from_edgelist`).

Round-trip fidelity is exact (tests cover all three).

Binary labelings are wrapped in a versioned, checksummed **envelope**
(see :data:`ARTIFACT_MAGIC`) so that truncation and bit-flips are
detected at load time -- a labeling answers *exact* distance queries,
so a corrupted artifact must fail loudly, never decode to plausible
garbage.  Envelope layout, all integers big-endian::

    offset  size  field
    0       4     magic  b"RHL\\x01"  (format marker)
    4       1     format version      (1 = bit stream, 2 = flat arrays)
    5       8     num_vertices        (redundant with payload; checked)
    13      8     payload length in bytes
    21      4     CRC32 of payload
    25      ...   payload

Version-1 payloads are the legacy bit stream (8-byte bit count + bits).
Version-2 payloads (:func:`flat_labeling_to_bytes` /
:func:`flat_labeling_from_bytes`) carry a
:class:`~repro.perf.flat.FlatHubLabeling` as raw little-endian arrays::

    8                 total entry count T  (big-endian, like the header)
    8 * (n + 1)       offsets  (int64)
    8 * T             hub ids  (int64)
    8 * T             distances (float64)

which serialize and load in milliseconds even for multi-million-entry
labelings -- the format behind the persistent label cache
(:mod:`repro.perf.cache`).  Loaded flat payloads are structurally
validated (offsets monotone, hub ids in range and ascending per run)
before use.

Legacy (pre-envelope) blobs start with the payload directly; since
their leading 8-byte bit count never reaches ``2**56``, the first byte
of a legacy blob is always ``0x00`` and the two formats cannot be
confused.  :func:`labeling_from_bytes` and
:func:`flat_labeling_from_bytes` each read every flavor, converting
between stores as needed.  Malformed input of any flavor raises
:class:`~repro.runtime.errors.ArtifactCorruptError` with the offset
where decoding failed; malformed edge-list text raises
:class:`~repro.runtime.errors.FormatError` naming the offending line.
"""

from __future__ import annotations

import json
import sys
import zlib
from array import array
from typing import TYPE_CHECKING, List, Tuple

from ..graphs.graph import Graph
from ..labeling.bits import BitReader, BitWriter
from ..runtime.errors import ArtifactCorruptError, FormatError
from .hublabel import HubLabeling

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..perf.flat import FlatHubLabeling

__all__ = [
    "ARTIFACT_MAGIC",
    "ARTIFACT_VERSION",
    "FLAT_ARTIFACT_VERSION",
    "labeling_to_json",
    "labeling_from_json",
    "labeling_to_bytes",
    "labeling_from_bytes",
    "flat_labeling_to_bytes",
    "flat_labeling_from_bytes",
    "flat_labeling_view",
    "verify_envelope_crc",
    "graph_to_edgelist",
    "graph_from_edgelist",
]

#: Leading bytes of an enveloped labeling artifact.
ARTIFACT_MAGIC = b"RHL\x01"
#: Envelope format version of the gap+gamma bit-stream payload.
ARTIFACT_VERSION = 1
#: Envelope format version of the flat-array payload.
FLAT_ARTIFACT_VERSION = 2
#: Envelope header size: magic + version + n + payload length + CRC32.
_HEADER_SIZE = 4 + 1 + 8 + 8 + 4


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def labeling_to_json(labeling: HubLabeling) -> str:
    payload = {
        "num_vertices": labeling.num_vertices,
        "labels": [
            {str(hub): dist for hub, dist in sorted(labeling.hubs(v).items())}
            for v in range(labeling.num_vertices)
        ],
    }
    return json.dumps(payload)


def labeling_from_json(text: str) -> HubLabeling:
    payload = json.loads(text)
    labeling = HubLabeling(payload["num_vertices"])
    for v, hubs in enumerate(payload["labels"]):
        for hub, dist in hubs.items():
            labeling.add_hub(v, int(hub), dist)
    return labeling


# ----------------------------------------------------------------------
# Binary (gap + gamma coded, byte-packed, CRC-protected envelope)
# ----------------------------------------------------------------------
def _encode_payload(labeling: HubLabeling) -> bytes:
    writer = BitWriter()
    writer.write_gamma(labeling.num_vertices + 1)
    for v in range(labeling.num_vertices):
        hubs = sorted(labeling.hubs(v).items())
        writer.write_gamma(len(hubs) + 1)
        previous = -1
        for hub, dist in hubs:
            writer.write_gamma(hub - previous)
            writer.write_gamma(int(dist) + 1)
            previous = hub
    bits = writer.getvalue()
    # Pack to bytes, recording the bit length first.
    out = bytearray()
    out += len(bits).to_bytes(8, "big")
    byte = 0
    filled = 0
    for bit in bits:
        byte = (byte << 1) | bit
        filled += 1
        if filled == 8:
            out.append(byte)
            byte = 0
            filled = 0
    if filled:
        out.append(byte << (8 - filled))
    return bytes(out)


def labeling_to_bytes(labeling: HubLabeling, *, envelope: bool = True) -> bytes:
    """Serialize ``labeling``; by default inside the checksummed envelope.

    ``envelope=False`` emits the legacy raw bit stream (still readable by
    :func:`labeling_from_bytes`, but without load-time corruption
    detection beyond structural decode failures).
    """
    payload = _encode_payload(labeling)
    if not envelope:
        return payload
    header = bytearray()
    header += ARTIFACT_MAGIC
    header.append(ARTIFACT_VERSION)
    header += labeling.num_vertices.to_bytes(8, "big")
    header += len(payload).to_bytes(8, "big")
    header += (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "big")
    return bytes(header) + payload


def _decode_payload(payload: bytes, *, base_offset: int = 0) -> HubLabeling:
    """Decode the legacy bit stream, converting decode mishaps into
    :class:`ArtifactCorruptError` with a useful offset."""
    if len(payload) < 8:
        raise ArtifactCorruptError(
            "payload shorter than its 8-byte bit-count header",
            offset=base_offset + len(payload),
        )
    num_bits = int.from_bytes(payload[:8], "big")
    available = 8 * (len(payload) - 8)
    if num_bits > available:
        raise ArtifactCorruptError(
            f"bit count claims {num_bits} bits but only {available} present",
            offset=base_offset + 8,
        )
    bits: List[int] = []
    for byte in payload[8:]:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    reader = BitReader(bits[:num_bits])

    def fail(message: str) -> ArtifactCorruptError:
        # Translate the reader's bit position to a byte offset in the
        # whole input (bits start after the 8-byte count).
        byte_offset = base_offset + 8 + (num_bits - reader.remaining) // 8
        return ArtifactCorruptError(message, offset=byte_offset)

    try:
        n = reader.read_gamma() - 1
        if n > reader.remaining:
            # Every vertex contributes at least a 1-bit hub count, so a
            # decoded n beyond the remaining bits is corruption -- refuse
            # before allocating n label slots.
            raise fail(
                f"implausible vertex count {n} for a "
                f"{reader.remaining}-bit payload"
            )
        labeling = HubLabeling(n)
        for v in range(n):
            count = reader.read_gamma() - 1
            current = -1
            for _ in range(count):
                current += reader.read_gamma()
                if current >= n:
                    raise fail(
                        f"hub id {current} out of range for {n} vertices"
                    )
                distance = reader.read_gamma() - 1
                labeling.add_hub(v, current, distance)
    except EOFError:
        raise fail("bit stream exhausted mid-decode") from None
    except (IndexError, ValueError) as exc:
        if isinstance(exc, ArtifactCorruptError):
            raise
        raise fail(f"malformed bit stream ({exc})") from None
    if reader.remaining:
        raise fail(f"{reader.remaining} trailing bits after decode")
    return labeling


def _open_envelope(blob: bytes) -> Tuple[int, int, bytes]:
    """Validate an enveloped blob; return (version, declared_n, payload).

    Checks the header size, payload length and CRC32 -- everything but
    the version-specific payload decode.
    """
    if len(blob) < _HEADER_SIZE:
        raise ArtifactCorruptError(
            f"envelope header truncated ({len(blob)} of "
            f"{_HEADER_SIZE} bytes)",
            offset=len(blob),
        )
    version = blob[4]
    declared_n = int.from_bytes(blob[5:13], "big")
    payload_len = int.from_bytes(blob[13:21], "big")
    checksum = int.from_bytes(blob[21:25], "big")
    payload = blob[_HEADER_SIZE:]
    if len(payload) != payload_len:
        raise ArtifactCorruptError(
            f"payload is {len(payload)} bytes, header declares "
            f"{payload_len}",
            offset=_HEADER_SIZE + min(len(payload), payload_len),
        )
    if (zlib.crc32(payload) & 0xFFFFFFFF) != checksum:
        raise ArtifactCorruptError(
            "payload CRC32 mismatch (artifact bytes were altered)",
            offset=_HEADER_SIZE,
        )
    return version, declared_n, payload


def _decode_v1_envelope(declared_n: int, payload: bytes) -> HubLabeling:
    labeling = _decode_payload(payload, base_offset=_HEADER_SIZE)
    if labeling.num_vertices != declared_n:
        raise ArtifactCorruptError(
            f"header declares {declared_n} vertices, payload decodes "
            f"{labeling.num_vertices}",
            offset=5,
        )
    return labeling


def labeling_from_bytes(blob: bytes) -> HubLabeling:
    """Deserialize a labeling from envelope or legacy bytes.

    Accepts every format this module writes -- version-1 bit streams,
    version-2 flat arrays (thawed into the dict store), and legacy
    pre-envelope blobs.  Raises :class:`ArtifactCorruptError` (with the
    failing offset) on truncated, bit-flipped, or otherwise malformed
    input.
    """
    if blob[:4] == ARTIFACT_MAGIC:
        version, declared_n, payload = _open_envelope(blob)
        if version == ARTIFACT_VERSION:
            return _decode_v1_envelope(declared_n, payload)
        if version == FLAT_ARTIFACT_VERSION:
            return _decode_v2_envelope(declared_n, payload).to_labeling()
        raise ArtifactCorruptError(
            f"unsupported artifact version {version}", offset=4
        )
    if not blob:
        raise ArtifactCorruptError("empty artifact", offset=0)
    if blob[0] != 0:
        raise ArtifactCorruptError(
            "unrecognized artifact header (neither envelope magic nor a "
            "legacy bit stream)",
            offset=0,
        )
    return _decode_payload(blob)


# ----------------------------------------------------------------------
# Flat-array payload (envelope version 2)
# ----------------------------------------------------------------------
def _le_bytes(values: array) -> bytes:
    """The array's raw bytes, little-endian, widened to 8-byte items."""
    if values.itemsize != 8:  # pragma: no cover - exotic platforms
        values = array("q" if values.typecode != "d" else "d", values)
    if sys.byteorder == "big":  # pragma: no cover - exotic platforms
        values = array(values.typecode, values)
        values.byteswap()
    return values.tobytes()


def _le_array(typecode: str, raw: bytes) -> array:
    """Inverse of :func:`_le_bytes` into an ``array(typecode)``."""
    out = array(typecode)
    if out.itemsize == 8:
        out.frombytes(raw)
        if sys.byteorder == "big":  # pragma: no cover - exotic platforms
            out.byteswap()
        return out
    wide = array("q" if typecode != "d" else "d")  # pragma: no cover
    wide.frombytes(raw)  # pragma: no cover
    if sys.byteorder == "big":  # pragma: no cover
        wide.byteswap()
    out.extend(wide)  # pragma: no cover
    return out  # pragma: no cover


def flat_labeling_to_bytes(flat: "FlatHubLabeling") -> bytes:
    """Serialize a flat labeling as a version-2 enveloped artifact.

    The payload is the store's CSR arrays verbatim (little-endian), so
    both directions are O(bytes) copies -- no per-entry coding.  The
    result round-trips through :func:`flat_labeling_from_bytes` and is
    also readable by :func:`labeling_from_bytes`.
    """
    payload = bytearray()
    payload += flat.total_size().to_bytes(8, "big")
    payload += _le_bytes(flat._offsets)
    payload += _le_bytes(flat._hubs)
    payload += _le_bytes(flat._dists)
    header = bytearray()
    header += ARTIFACT_MAGIC
    header.append(FLAT_ARTIFACT_VERSION)
    header += flat.num_vertices.to_bytes(8, "big")
    header += len(payload).to_bytes(8, "big")
    header += (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "big")
    return bytes(header) + bytes(payload)


def _decode_v2_envelope(declared_n: int, payload: bytes) -> "FlatHubLabeling":
    from ..perf.flat import FlatHubLabeling

    if len(payload) < 8:
        raise ArtifactCorruptError(
            "flat payload shorter than its 8-byte entry count",
            offset=_HEADER_SIZE + len(payload),
        )
    total = int.from_bytes(payload[:8], "big")
    expected = 8 + 8 * (declared_n + 1) + 16 * total
    if len(payload) != expected:
        raise ArtifactCorruptError(
            f"flat payload is {len(payload)} bytes, {expected} expected "
            f"for {declared_n} vertices and {total} entries",
            offset=_HEADER_SIZE + min(len(payload), expected),
        )
    cut_offsets = 8 + 8 * (declared_n + 1)
    cut_hubs = cut_offsets + 8 * total
    offsets = _le_array("l", payload[8:cut_offsets])
    hubs = _le_array("l", payload[cut_offsets:cut_hubs])
    dists = _le_array("d", payload[cut_hubs:])
    try:
        return FlatHubLabeling.from_arrays(offsets, hubs, dists)
    except ValueError as exc:
        raise ArtifactCorruptError(
            f"flat payload failed structural validation ({exc})",
            offset=_HEADER_SIZE + 8,
        ) from None


def _open_envelope_header(view: memoryview) -> Tuple[int, int, int, int]:
    """Validate *only* the 25-byte header of an enveloped buffer.

    Returns ``(version, declared_n, payload_len, checksum)`` without
    touching the payload -- the cheap half of :func:`_open_envelope`,
    for callers that defer the CRC (mapped artifacts must not page in
    every byte just to open).  Raises :class:`ArtifactCorruptError` on
    a bad magic, a truncated header, or a length mismatch.
    """
    if len(view) < _HEADER_SIZE:
        raise ArtifactCorruptError(
            f"envelope header truncated ({len(view)} of "
            f"{_HEADER_SIZE} bytes)",
            offset=len(view),
        )
    if bytes(view[:4]) != ARTIFACT_MAGIC:
        raise ArtifactCorruptError(
            "unrecognized artifact header (envelope magic missing)",
            offset=0,
        )
    version = view[4]
    declared_n = int.from_bytes(view[5:13], "big")
    payload_len = int.from_bytes(view[13:21], "big")
    checksum = int.from_bytes(view[21:25], "big")
    actual = len(view) - _HEADER_SIZE
    if actual != payload_len:
        raise ArtifactCorruptError(
            f"payload is {actual} bytes, header declares {payload_len}",
            offset=_HEADER_SIZE + min(actual, payload_len),
        )
    return version, declared_n, payload_len, checksum


def verify_envelope_crc(buffer) -> None:
    """The deferred half of a lazy open: CRC32 the payload now.

    ``buffer`` is any enveloped artifact (bytes, mmap, shared-memory
    view).  This is the only part of a :func:`flat_labeling_view` open
    that reads every payload byte, so callers schedule it off the cold
    -start path -- a background check, a ``verify`` CLI flag, a test.
    Raises :class:`ArtifactCorruptError` on a mismatch.
    """
    view = memoryview(buffer)
    _, _, payload_len, checksum = _open_envelope_header(view)
    payload = view[_HEADER_SIZE : _HEADER_SIZE + payload_len]
    if (zlib.crc32(payload) & 0xFFFFFFFF) != checksum:
        raise ArtifactCorruptError(
            "payload CRC32 mismatch (artifact bytes were altered)",
            offset=_HEADER_SIZE,
        )


def flat_labeling_view(
    buffer, *, verify_crc: bool = False, validate: bool = False
) -> "FlatHubLabeling":
    """A zero-copy :class:`FlatHubLabeling` over an enveloped buffer.

    The buffer must hold a version-2 (flat-array) envelope; the CSR
    triple is exposed as read-only NumPy views straight into it --
    nothing is deserialized, so opening a memory-mapped artifact costs
    O(pages touched), not O(entries).  Validation is tiered to match:

    * the **header** (magic, version, lengths) and the offsets-array
      endpoints are always checked -- O(1);
    * the payload **CRC32** runs only with ``verify_crc=True`` (or
      later, via :func:`verify_envelope_crc` on the same buffer);
    * the full **structural** walk (offsets monotone, hub ids in range
      and ascending) runs only with ``validate=True``.

    The returned store keeps ``buffer`` alive for as long as it is
    queryable.  Requires NumPy (the whole point is array views).
    """
    import numpy as np

    from ..perf.flat import FlatHubLabeling

    view = memoryview(buffer)
    version, declared_n, payload_len, _ = _open_envelope_header(view)
    if version != FLAT_ARTIFACT_VERSION:
        raise ArtifactCorruptError(
            f"artifact version {version} cannot back a zero-copy view "
            f"(need the flat version {FLAT_ARTIFACT_VERSION})",
            offset=4,
        )
    if verify_crc:
        verify_envelope_crc(view)
    payload = view[_HEADER_SIZE : _HEADER_SIZE + payload_len]
    if payload_len < 8:
        raise ArtifactCorruptError(
            "flat payload shorter than its 8-byte entry count",
            offset=_HEADER_SIZE + payload_len,
        )
    total = int.from_bytes(payload[:8], "big")
    expected = 8 + 8 * (declared_n + 1) + 16 * total
    if payload_len != expected:
        raise ArtifactCorruptError(
            f"flat payload is {payload_len} bytes, {expected} expected "
            f"for {declared_n} vertices and {total} entries",
            offset=_HEADER_SIZE + min(payload_len, expected),
        )
    cut_offsets = 8 + 8 * (declared_n + 1)
    cut_hubs = cut_offsets + 8 * total
    offsets = np.frombuffer(payload, dtype="<i8", count=declared_n + 1,
                            offset=8)
    hubs = np.frombuffer(payload, dtype="<i8", count=total,
                         offset=cut_offsets)
    dists = np.frombuffer(payload, dtype="<f8", count=total,
                          offset=cut_hubs)
    if sys.byteorder == "big":  # pragma: no cover - exotic platforms
        # No zero-copy view exists across a byte-order mismatch; one
        # conversion copy beats serving byte-swapped garbage.
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        hubs = np.ascontiguousarray(hubs, dtype=np.int64)
        dists = np.ascontiguousarray(dists, dtype=np.float64)
    try:
        return FlatHubLabeling.from_buffers(
            offsets, hubs, dists, validate=validate
        )
    except ValueError as exc:
        raise ArtifactCorruptError(
            f"flat payload failed structural validation ({exc})",
            offset=_HEADER_SIZE + 8,
        ) from None


def flat_labeling_from_bytes(blob: bytes) -> "FlatHubLabeling":
    """Deserialize a :class:`FlatHubLabeling` from any artifact flavor.

    Version-2 blobs load by array adoption (plus structural
    validation); version-1 and legacy bit streams are decoded and
    frozen, so existing artifacts keep working.  Raises
    :class:`ArtifactCorruptError` exactly like
    :func:`labeling_from_bytes`.
    """
    from ..perf.flat import FlatHubLabeling

    if blob[:4] == ARTIFACT_MAGIC:
        version, declared_n, payload = _open_envelope(blob)
        if version == FLAT_ARTIFACT_VERSION:
            return _decode_v2_envelope(declared_n, payload)
        if version == ARTIFACT_VERSION:
            return FlatHubLabeling.from_labeling(
                _decode_v1_envelope(declared_n, payload)
            )
        raise ArtifactCorruptError(
            f"unsupported artifact version {version}", offset=4
        )
    return FlatHubLabeling.from_labeling(labeling_from_bytes(blob))


# ----------------------------------------------------------------------
# Graphs
# ----------------------------------------------------------------------
def graph_to_edgelist(graph: Graph) -> str:
    """Header line ``n m`` then one ``u v w`` line per edge."""
    lines = [f"{graph.num_vertices} {graph.num_edges}"]
    for u, v, w in graph.edges():
        lines.append(f"{u} {v} {w}")
    return "\n".join(lines) + "\n"


def _parse_int(token: str, what: str, line_number: int) -> int:
    try:
        return int(token)
    except ValueError:
        raise FormatError(
            f"{what} {token!r} is not an integer", line=line_number
        ) from None


def graph_from_edgelist(text: str) -> Graph:
    """Parse ``n m`` header + ``u v [w]`` edge lines into a :class:`Graph`.

    Blank lines and ``#`` comments are skipped.  Malformed lines,
    out-of-range or negative vertex ids, non-numeric or negative
    weights, self-loops, and a header/edge-count mismatch all raise
    :class:`FormatError` naming the offending (1-based) line.
    """
    graph: Graph = Graph()
    header = None
    declared_edges = 0
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if header is None:
            if len(parts) != 2:
                raise FormatError(
                    f"header must be 'n m', got {len(parts)} fields",
                    line=line_number,
                )
            n = _parse_int(parts[0], "vertex count", line_number)
            m = _parse_int(parts[1], "edge count", line_number)
            if n < 0 or m < 0:
                raise FormatError(
                    "vertex and edge counts must be non-negative",
                    line=line_number,
                )
            header = (n, m)
            declared_edges = m
            graph = Graph(n)
            continue
        if len(parts) not in (2, 3):
            raise FormatError(
                f"edge line must be 'u v [w]', got {len(parts)} fields",
                line=line_number,
            )
        u = _parse_int(parts[0], "vertex id", line_number)
        v = _parse_int(parts[1], "vertex id", line_number)
        weight = (
            _parse_int(parts[2], "edge weight", line_number)
            if len(parts) == 3
            else 1
        )
        n = graph.num_vertices
        for vertex in (u, v):
            if vertex < 0 or vertex >= n:
                raise FormatError(
                    f"vertex id {vertex} outside 0..{n - 1}",
                    line=line_number,
                )
        try:
            graph.add_edge(u, v, weight)
        except ValueError as exc:
            raise FormatError(str(exc), line=line_number) from None
    if header is None:
        return graph
    if graph.num_edges != declared_edges:
        raise FormatError(
            f"edge count mismatch: header says {declared_edges}, "
            f"found {graph.num_edges}",
            line=1,
        )
    return graph
