"""Serialization of graphs and hub labelings.

A library users adopt needs artifacts to survive the process: build a
labeling once, query it from anywhere.  Formats:

* JSON (:func:`labeling_to_json` / :func:`labeling_from_json`) --
  human-readable, interoperable;
* a compact binary stream (:func:`labeling_to_bytes` /
  :func:`labeling_from_bytes`) built on the library's own bit codecs
  (gap + gamma, the same encoding the distance-label sizes are measured
  in), typically ~4x smaller than JSON;
* edge-list text for graphs (:func:`graph_to_edgelist` /
  :func:`graph_from_edgelist`).

Round-trip fidelity is exact (tests cover all three).
"""

from __future__ import annotations

import json
from typing import List

from ..graphs.graph import Graph
from ..labeling.bits import BitReader, BitWriter
from .hublabel import HubLabeling

__all__ = [
    "labeling_to_json",
    "labeling_from_json",
    "labeling_to_bytes",
    "labeling_from_bytes",
    "graph_to_edgelist",
    "graph_from_edgelist",
]


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def labeling_to_json(labeling: HubLabeling) -> str:
    payload = {
        "num_vertices": labeling.num_vertices,
        "labels": [
            {str(hub): dist for hub, dist in sorted(labeling.hubs(v).items())}
            for v in range(labeling.num_vertices)
        ],
    }
    return json.dumps(payload)


def labeling_from_json(text: str) -> HubLabeling:
    payload = json.loads(text)
    labeling = HubLabeling(payload["num_vertices"])
    for v, hubs in enumerate(payload["labels"]):
        for hub, dist in hubs.items():
            labeling.add_hub(v, int(hub), dist)
    return labeling


# ----------------------------------------------------------------------
# Binary (gap + gamma coded, byte-packed)
# ----------------------------------------------------------------------
def labeling_to_bytes(labeling: HubLabeling) -> bytes:
    writer = BitWriter()
    writer.write_gamma(labeling.num_vertices + 1)
    for v in range(labeling.num_vertices):
        hubs = sorted(labeling.hubs(v).items())
        writer.write_gamma(len(hubs) + 1)
        previous = -1
        for hub, dist in hubs:
            writer.write_gamma(hub - previous)
            writer.write_gamma(int(dist) + 1)
            previous = hub
    bits = writer.getvalue()
    # Pack to bytes, recording the bit length first.
    out = bytearray()
    out += len(bits).to_bytes(8, "big")
    byte = 0
    filled = 0
    for bit in bits:
        byte = (byte << 1) | bit
        filled += 1
        if filled == 8:
            out.append(byte)
            byte = 0
            filled = 0
    if filled:
        out.append(byte << (8 - filled))
    return bytes(out)


def labeling_from_bytes(blob: bytes) -> HubLabeling:
    num_bits = int.from_bytes(blob[:8], "big")
    bits: List[int] = []
    for byte in blob[8:]:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    reader = BitReader(bits[:num_bits])
    n = reader.read_gamma() - 1
    labeling = HubLabeling(n)
    for v in range(n):
        count = reader.read_gamma() - 1
        current = -1
        for _ in range(count):
            current += reader.read_gamma()
            distance = reader.read_gamma() - 1
            labeling.add_hub(v, current, distance)
    return labeling


# ----------------------------------------------------------------------
# Graphs
# ----------------------------------------------------------------------
def graph_to_edgelist(graph: Graph) -> str:
    """Header line ``n m`` then one ``u v w`` line per edge."""
    lines = [f"{graph.num_vertices} {graph.num_edges}"]
    for u, v, w in graph.edges():
        lines.append(f"{u} {v} {w}")
    return "\n".join(lines) + "\n"


def graph_from_edgelist(text: str) -> Graph:
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return Graph()
    header = lines[0].split()
    n, m = int(header[0]), int(header[1])
    graph = Graph(n)
    for line in lines[1:]:
        parts = line.split()
        graph.add_edge(int(parts[0]), int(parts[1]), int(parts[2]))
    if graph.num_edges != m:
        raise ValueError(
            f"edge count mismatch: header says {m}, found {graph.num_edges}"
        )
    return graph
