"""Verification of hub labelings against ground-truth distances.

A labeling is *correct* (a shortest-path cover / 2-hop cover) when every
connected pair's query equals the true distance.  The checker reports the
violating pairs, which the tests use both positively (constructions are
correct) and negatively (deliberately broken labelings are caught).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..graphs.graph import Graph
from ..graphs.traversal import INF, shortest_path_distances
from ..runtime.errors import DomainError
from .hublabel import HubLabeling

__all__ = [
    "CoverReport",
    "verify_cover",
    "is_valid_cover",
    "coverage_fraction",
    "verify_cover_sampled",
]


@dataclass
class CoverReport:
    """Outcome of a full cover check."""

    num_pairs: int
    num_covered: int
    violations: List[Tuple[int, int, float, float]] = field(
        default_factory=list
    )
    #: Cap that was applied to the stored violation list (the counts above
    #: are always exact).
    violation_cap: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.num_covered == self.num_pairs

    @property
    def fraction_covered(self) -> float:
        if self.num_pairs == 0:
            return 1.0
        return self.num_covered / self.num_pairs

    def __repr__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)}+ violations"
        return (
            f"CoverReport(pairs={self.num_pairs}, "
            f"covered={self.num_covered}, {status})"
        )


def verify_cover(
    graph: Graph,
    labeling: HubLabeling,
    *,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
    max_violations: int = 100,
    include_disconnected: bool = False,
) -> CoverReport:
    """Check that the labeling answers every (given) pair exactly.

    When ``pairs`` is None all connected ordered pairs ``u < v`` are
    checked via ``n`` single-source traversals.  Violations are recorded
    as ``(u, v, true_distance, query_result)`` up to ``max_violations``.

    ``include_disconnected`` additionally checks pairs with no path:
    their query must return INF (a corrupted labeling inventing a finite
    distance for a disconnected pair is a violation too).  The runtime's
    admission gate uses this; the default matches the paper's cover
    property, which only constrains connected pairs.
    """
    if labeling.num_vertices != graph.num_vertices:
        raise DomainError(
            "labeling does not match the graph's vertex count"
        )
    report = CoverReport(
        num_pairs=0, num_covered=0, violation_cap=max_violations
    )
    if pairs is not None:
        for u, v in pairs:
            dist, _ = shortest_path_distances(graph, u)
            _check_pair(report, u, v, dist[v], labeling, max_violations)
        return report
    for u in graph.vertices():
        dist, _ = shortest_path_distances(graph, u)
        for v in range(u + 1, graph.num_vertices):
            if dist[v] == INF and not include_disconnected:
                continue
            _check_pair(report, u, v, dist[v], labeling, max_violations)
    return report


def _check_pair(
    report: CoverReport,
    u: int,
    v: int,
    true_distance: float,
    labeling: HubLabeling,
    max_violations: int,
) -> None:
    report.num_pairs += 1
    estimate = labeling.query(u, v)
    if estimate == true_distance:
        report.num_covered += 1
    elif len(report.violations) < max_violations:
        report.violations.append((u, v, true_distance, estimate))


def verify_cover_sampled(
    graph: Graph,
    labeling: HubLabeling,
    *,
    num_sources: int = 32,
    seed: int = 0,
    max_violations: int = 100,
    include_disconnected: bool = False,
    workers: int = None,
) -> CoverReport:
    """Cover check from a random sample of source vertices.

    For graphs beyond full-APSP reach: runs one traversal per sampled
    source and checks every pair it roots.  A passing report certifies
    exactly the sampled rows; a failing one is a genuine counterexample.
    ``workers`` fans the per-source traversals out over a process pool
    (None/1 = serial, identical rows and report).
    """
    import random

    if labeling.num_vertices != graph.num_vertices:
        raise DomainError(
            "labeling does not match the graph's vertex count"
        )
    n = graph.num_vertices
    rng = random.Random(seed)
    sources = (
        list(graph.vertices())
        if num_sources >= n
        else rng.sample(range(n), num_sources)
    )
    report = CoverReport(
        num_pairs=0, num_covered=0, violation_cap=max_violations
    )
    # Imported here: repro.perf sits above the core layer.
    from ..perf.parallel import shortest_path_rows

    rows = shortest_path_rows(graph, sources, workers=workers)
    for u, dist in zip(sources, rows):
        for v in graph.vertices():
            if v == u or (dist[v] == INF and not include_disconnected):
                continue
            _check_pair(report, u, v, dist[v], labeling, max_violations)
    return report


def is_valid_cover(graph: Graph, labeling: HubLabeling) -> bool:
    """True iff the labeling is a correct exact-distance 2-hop cover."""
    return verify_cover(graph, labeling, max_violations=1).ok


def coverage_fraction(graph: Graph, labeling: HubLabeling) -> float:
    """The fraction of connected pairs answered exactly (1.0 = correct)."""
    return verify_cover(graph, labeling, max_violations=0).fraction_covered
