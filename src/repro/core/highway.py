"""Highway dimension estimation ([ADF+16], Section 1.1).

The paper cites highway dimension ``h`` as the reason hub labels are
small on transportation networks: for every radius ``r`` and every ball
of radius ``2r`` there is a set of ``h`` vertices hitting all shortest
paths of length ``> r`` inside the ball, and shortest-path covers of
size ``O~(h)`` per vertex follow.

Exact highway dimension is NP-hard; this module computes the standard
greedy upper estimate, which is what empirical studies report:

1. enumerate all shortest paths of length in ``(r, 2r]`` (one canonical
   path per pair -- the usual approximation);
2. for each ball ``B(v, 2r)``, greedily hit the paths fully inside it;
3. the estimate for radius ``r`` is the largest hitting set used;
   the overall estimate maximizes over ``r`` in a doubling sweep.

Grids have ``h = Theta(sqrt n)``-ish growth while highway-augmented
networks stay flat -- exactly the contrast `examples/road_network.py`
exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..graphs.graph import Graph
from ..graphs.shortest_paths import reconstruct_path
from ..graphs.traversal import INF, shortest_path_distances

__all__ = ["HighwayEstimate", "estimate_highway_dimension"]


@dataclass(frozen=True)
class HighwayEstimate:
    """Greedy highway-dimension estimate per radius, and the maximum."""

    per_radius: Dict[int, int]

    @property
    def dimension(self) -> int:
        return max(self.per_radius.values(), default=0)


def _canonical_paths(
    graph: Graph, low: float, high: float
) -> List[Tuple[int, List[int]]]:
    """One shortest path per pair with length in (low, high]."""
    paths = []
    for source in graph.vertices():
        dist, parent = shortest_path_distances(
            graph, source, with_parents=True
        )
        for target in range(source + 1, graph.num_vertices):
            if dist[target] == INF or not low < dist[target] <= high:
                continue
            paths.append((source, reconstruct_path(parent, target)))
    return paths


def estimate_highway_dimension(
    graph: Graph, *, max_radius: int = None
) -> HighwayEstimate:
    """The greedy estimate, maximized over doubling radii ``r``.

    ``O(n m)`` per radius for path enumeration plus the greedy hitting
    sets; intended for graphs up to a few thousand vertices.
    """
    if max_radius is None:
        finite = []
        dist, _ = shortest_path_distances(graph, 0) if graph.num_vertices else ([], None)
        finite = [d for d in dist if d != INF]
        max_radius = int(max(finite)) if finite else 0
    per_radius: Dict[int, int] = {}
    r = 1
    while r <= max(1, max_radius):
        per_radius[r] = _estimate_for_radius(graph, r)
        r *= 2
    return HighwayEstimate(per_radius=per_radius)


def _estimate_for_radius(graph: Graph, r: int) -> int:
    paths = _canonical_paths(graph, r, 2 * r)
    if not paths:
        return 0
    path_sets = [frozenset(p) for _, p in paths]
    worst = 0
    for center in graph.vertices():
        dist, _ = shortest_path_distances(graph, center)
        ball = {v for v in graph.vertices() if dist[v] <= 2 * r}
        inside = [s for s in path_sets if s <= ball]
        worst = max(worst, _greedy_hitting(inside))
    return worst


def _greedy_hitting(path_sets: List[frozenset]) -> int:
    remaining = list(path_sets)
    hits = 0
    while remaining:
        counts: Dict[int, int] = {}
        for s in remaining:
            for v in s:
                counts[v] = counts.get(v, 0) + 1
        best = max(counts, key=counts.get)
        hits += 1
        remaining = [s for s in remaining if best not in s]
    return hits
