"""A threshold-based hub labeling for sparse graphs (ADKP16/GKU16 style).

Section 1.1 of the paper sketches how the first sublinear schemes for
sparse graphs work: a random global hubset of size ``~ (n/D) log D``
covers almost every pair at distance ``>= D``; pairs at distance ``< D``
are covered by storing the ball of radius ``D`` explicitly (plus explicit
corrections for the few far pairs the sample misses).

This module implements that recipe as an honest baseline:

* every vertex stores itself, the global sample ``S``, its correction
  set, and its distance-``<= D`` ball;
* correctness is unconditional (balls cover all near pairs because
  ``v ∈ ball(u, D)`` whenever ``dist(u, v) <= D``);
* on bounded-degree graphs with ``D ~ log n / log Δ`` the average label
  size lands at ``O(n log D / D + Δ^D)``, the shape of
  [ADKP16]'s bound (their paper then works much harder to tame
  high-degree vertices; the library's degree reduction can be composed
  for that).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..graphs.graph import Graph
from ..graphs.traversal import INF, shortest_path_distances
from .hitting import HittingSetResult, build_hitting_set
from .hublabel import HubLabeling

__all__ = ["SparseSchemeResult", "sparse_hub_labeling", "default_radius"]


@dataclass
class SparseSchemeResult:
    """Labeling plus the accounting of its two ingredients."""

    labeling: HubLabeling
    radius: int
    hitting: HittingSetResult
    ball_total: int
    correction_total: int


def default_radius(graph: Graph) -> int:
    """A ball radius balancing ``n/D`` against ``Δ^D``: ``log_Δ n``."""
    n = max(graph.num_vertices, 2)
    delta = max(graph.max_degree(), 2)
    return max(1, int(round(math.log(n) / math.log(delta))))


def sparse_hub_labeling(
    graph: Graph,
    *,
    radius: Optional[int] = None,
    seed: int = 0,
) -> SparseSchemeResult:
    """Build the threshold scheme with ball radius ``D = radius``.

    Far pairs (distance ``> D``) have ``|H_uv| >= D`` automatically (in
    unweighted graphs every shortest-path vertex is a candidate), so the
    hitting-set machinery of :mod:`repro.core.hitting` applies verbatim.
    """
    if graph.is_weighted:
        raise ValueError("the sparse scheme expects an unweighted graph")
    n = graph.num_vertices
    if radius is None:
        radius = default_radius(graph)
    if radius < 1:
        raise ValueError("radius must be >= 1")
    labeling = HubLabeling(n)
    matrix = [shortest_path_distances(graph, v)[0] for v in graph.vertices()]
    hitting = build_hitting_set(graph, radius + 1, seed=seed, matrix=matrix)
    for v in range(n):
        labeling.add_hub(v, v, 0)
        row = matrix[v]
        for h in hitting.hitting_set:
            if row[h] != INF:
                labeling.add_hub(v, h, row[h])
    correction_total = 0
    for u, partners in hitting.corrections.items():
        for v in partners:
            labeling.add_hub(u, v, matrix[u][v])
            correction_total += 1
    ball_total = 0
    for v in range(n):
        row = matrix[v]
        for x in range(n):
            if x != v and row[x] <= radius:
                labeling.add_hub(v, x, row[x])
                ball_total += 1
    return SparseSchemeResult(
        labeling=labeling,
        radius=radius,
        hitting=hitting,
        ball_total=ball_total,
        correction_total=correction_total,
    )
