"""The hub labeling data structure (2-hop cover labels).

A *hub labeling* of a graph assigns to every vertex ``v`` a hub set
``S(v)`` together with the exact distances ``dist(v, h)`` for each hub
``h in S(v)``.  A distance query ``uv`` is answered as::

    min over w in S(u) ∩ S(v) of  dist(u, w) + dist(w, v)

which equals the true distance whenever ``S(u) ∩ S(v)`` contains a vertex
on some shortest ``uv`` path (the *shortest-path cover* property,
checked by :mod:`repro.core.verification`).

The store is deliberately simple -- per-vertex sorted arrays of
``(hub, distance)`` pairs -- because every construction in the paper is
about hub-set *size*, which this class accounts exactly
(:meth:`HubLabeling.total_size`, :meth:`HubLabeling.average_size`,
:meth:`HubLabeling.bit_size`).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..graphs.traversal import INF

__all__ = ["HubLabeling", "label_size_histogram", "label_size_quantiles"]


class HubLabeling:
    """Hub labels for a graph on ``num_vertices`` vertices.

    Labels are stored as per-vertex dictionaries ``hub -> distance`` while
    building, and the query path merges the two hub sets.  Distances must
    be exact graph distances for the query result to be meaningful; the
    class itself does not know the graph.
    """

    __slots__ = ("_labels",)

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._labels: List[Dict[int, float]] = [
            {} for _ in range(num_vertices)
        ]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_hub(self, vertex: int, hub: int, distance: float) -> None:
        """Record ``hub in S(vertex)`` at the given exact distance.

        Re-adding a hub keeps the smaller distance (guards against caller
        bugs; exact constructions always re-add the same value).
        """
        if distance < 0:
            raise ValueError("hub distance must be non-negative")
        label = self._labels[vertex]
        old = label.get(hub)
        if old is None or distance < old:
            label[hub] = distance

    def add_hubs(
        self, vertex: int, hubs: Iterable[Tuple[int, float]]
    ) -> None:
        for hub, distance in hubs:
            self.add_hub(vertex, hub, distance)

    def discard_hub(self, vertex: int, hub: int) -> None:
        self._labels[vertex].pop(hub, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, u: int, v: int) -> float:
        """The 2-hop distance estimate for the pair ``(u, v)``.

        Returns INF when the hub sets do not intersect.  The estimate is
        an upper bound on the true distance and is exact iff the labeling
        covers the pair.
        """
        label_u = self._labels[u]
        label_v = self._labels[v]
        if len(label_u) > len(label_v):
            label_u, label_v = label_v, label_u
        best = INF
        for hub, du in label_u.items():
            dv = label_v.get(hub)
            if dv is not None and du + dv < best:
                best = du + dv
        return best

    def meet(self, u: int, v: int) -> Optional[int]:
        """A hub realizing :meth:`query`'s minimum, or None."""
        label_u = self._labels[u]
        label_v = self._labels[v]
        if len(label_u) > len(label_v):
            label_u, label_v = label_v, label_u
        best = INF
        best_hub: Optional[int] = None
        for hub, du in label_u.items():
            dv = label_v.get(hub)
            if dv is not None and du + dv < best:
                best = du + dv
                best_hub = hub
        return best_hub

    def hubs(self, vertex: int) -> Dict[int, float]:
        """The hub -> distance map of ``vertex`` (do not mutate)."""
        return self._labels[vertex]

    def hub_set(self, vertex: int) -> List[int]:
        return sorted(self._labels[vertex])

    def hub_distance(self, vertex: int, hub: int) -> Optional[float]:
        return self._labels[vertex].get(hub)

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        vertex, hub = pair
        return hub in self._labels[vertex]

    def items(self) -> Iterator[Tuple[int, Dict[int, float]]]:
        return iter(enumerate(self._labels))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    def label_size(self, vertex: int) -> int:
        return len(self._labels[vertex])

    def total_size(self) -> int:
        """``sum_v |S(v)|`` -- the quantity all the paper's bounds govern."""
        return sum(len(label) for label in self._labels)

    def average_size(self) -> float:
        if not self._labels:
            return 0.0
        return self.total_size() / len(self._labels)

    def max_size(self) -> int:
        return max((len(label) for label in self._labels), default=0)

    def bit_size(self, *, max_distance: Optional[float] = None) -> int:
        """A straightforward binary-encoding size in bits.

        Each hub entry is charged ``ceil(log2 n)`` bits for the hub id and
        ``ceil(log2 (max_distance + 1))`` bits for the distance (computed
        from the stored distances when not supplied).  This matches the
        naive hubset -> distance-label conversion discussed in Section 1.1
        (more compact encodings live in :mod:`repro.labeling`).
        """
        n = len(self._labels)
        if n == 0:
            return 0
        if max_distance is None:
            max_distance = max(
                (d for label in self._labels for d in label.values()),
                default=0,
            )
        id_bits = max(1, math.ceil(math.log2(max(n, 2))))
        dist_bits = max(1, math.ceil(math.log2(max(max_distance + 1, 2))))
        return self.total_size() * (id_bits + dist_bits)

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def union(self, other: "HubLabeling") -> "HubLabeling":
        """The per-vertex union of two labelings (minimum distances win)."""
        if other.num_vertices != self.num_vertices:
            raise ValueError("labelings cover different vertex sets")
        merged = HubLabeling(self.num_vertices)
        for v in range(self.num_vertices):
            merged.add_hubs(v, self._labels[v].items())
            merged.add_hubs(v, other._labels[v].items())
        return merged

    def copy(self) -> "HubLabeling":
        dup = HubLabeling(self.num_vertices)
        dup._labels = [dict(label) for label in self._labels]
        return dup

    def __repr__(self) -> str:
        return (
            f"HubLabeling(n={self.num_vertices}, "
            f"total={self.total_size()}, avg={self.average_size():.2f})"
        )


def label_size_histogram(labeling: "HubLabeling"):
    """``histogram[k]`` = number of vertices with exactly ``k`` hubs.

    A distribution view of the paper's average-size metric: the hard
    instances concentrate mass at large ``k`` while scale-free networks
    concentrate near the minimum.
    """
    sizes = [labeling.label_size(v) for v in range(labeling.num_vertices)]
    histogram = [0] * (max(sizes, default=0) + 1)
    for size in sizes:
        histogram[size] += 1
    return histogram


def label_size_quantiles(labeling: "HubLabeling", quantiles=(0.5, 0.9, 0.99)):
    """Selected quantiles of the label-size distribution."""
    sizes = sorted(
        labeling.label_size(v) for v in range(labeling.num_vertices)
    )
    if not sizes:
        return {q: 0 for q in quantiles}
    result = {}
    for q in quantiles:
        index = min(len(sizes) - 1, max(0, int(q * len(sizes))))
        result[q] = sizes[index]
    return result
