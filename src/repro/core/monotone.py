"""Monotone hubsets (Section 1.2 of the paper).

A hubset family is *monotone* when for every vertex ``u`` and every hub
``x ∈ S(u)``, all vertices of some chosen shortest ``ux`` path also
belong to ``S(u)``.  The paper observes:

* the monotone closure of a hubset covering distances up to ``D`` is at
  most a factor ``D + 1`` larger (each hub at distance ``<= D`` drags in
  at most ``D`` path vertices, and the closure of a deeper hub is charged
  along the tree);
* on pairs connected by a *unique* shortest path, monotonicity forces
  every path vertex ``x`` into ``S(u)`` or ``S(v)`` -- the accounting
  device behind the lower bound.

The closure here follows one fixed shortest-path tree per vertex, so the
"chosen" path of each hub is the tree path, making the family
well-defined and idempotent.
"""

from __future__ import annotations

from typing import List

from ..graphs.graph import Graph
from ..graphs.traversal import INF, shortest_path_distances
from .hublabel import HubLabeling

__all__ = ["monotone_closure", "is_monotone", "tree_path_to_root"]


def tree_path_to_root(parent: List[int], v: int) -> List[int]:
    """The vertices on the tree path from ``v`` up to the root."""
    path = [v]
    while parent[v] != -1:
        v = parent[v]
        path.append(v)
    return path


def monotone_closure(graph: Graph, labeling: HubLabeling) -> HubLabeling:
    """The monotone closure of ``labeling`` along per-vertex SP trees.

    For each vertex ``u`` a shortest-path tree rooted at ``u`` is fixed;
    every hub ``x ∈ S(u)`` contributes all vertices of the tree path
    ``u -> x`` to the closed label.  Unreachable hubs (never produced by
    correct constructions) are dropped.
    """
    closed = HubLabeling(labeling.num_vertices)
    for u in range(labeling.num_vertices):
        hubs = labeling.hubs(u)
        if not hubs:
            continue
        dist, parent = shortest_path_distances(graph, u, with_parents=True)
        assert parent is not None
        for x in hubs:
            if dist[x] == INF:
                continue
            for w in tree_path_to_root(parent, x):
                closed.add_hub(u, w, dist[w])
    return closed


def is_monotone(graph: Graph, labeling: HubLabeling) -> bool:
    """Check monotonicity: every hub's *distance-consistent* predecessor
    chain stays inside the label.

    A labeling is accepted when for every ``u`` and ``x ∈ S(u)`` with
    ``x != u`` there exists a neighbor ``y`` of ``x`` with
    ``dist(u, y) + w(y, x) = dist(u, x)`` and ``y ∈ S(u)``.  This is the
    path-by-path definition quantified over *some* shortest path, so any
    closure produced by :func:`monotone_closure` passes.
    """
    for u in range(labeling.num_vertices):
        hubs = labeling.hubs(u)
        if not hubs:
            continue
        dist, _ = shortest_path_distances(graph, u)
        for x, dx in hubs.items():
            if x == u:
                continue
            if dist[x] != dx:
                return False
            has_predecessor = False
            for y, w in graph.neighbors(x):
                if dist[y] + w == dist[x] and y in hubs:
                    has_predecessor = True
                    break
            if not has_predecessor:
                return False
    return True
