"""Interruptible hub-label queries (the practical aside in §1.1).

"the order in which elements of S(u) and S(v) are browsed ... is
relevant, and in some schemes the operation can be interrupted once it
is certain that the minimum has been found" -- this module implements
that optimization and measures how much scanning it saves.

:class:`SortedHubIndex` stores each label as arrays sorted by distance.
A query merges the two arrays by ascending distance and maintains the
best meeting found; once the next unread distance on each side,
*plus the smallest distance on the other side*, cannot beat the best,
no unread entry can either, and the scan stops.  The result is always
exact (equal to the plain full-merge query); only the work changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..graphs.traversal import INF
from .hublabel import HubLabeling

__all__ = ["QueryStats", "SortedHubIndex"]


@dataclass(frozen=True)
class QueryStats:
    """An exact distance plus scan-work accounting."""

    distance: float
    entries_scanned: int
    entries_total: int

    @property
    def fraction_scanned(self) -> float:
        if self.entries_total == 0:
            return 0.0
        return self.entries_scanned / self.entries_total


class SortedHubIndex:
    """A hub labeling reindexed for early-termination queries.

    Accepts any label store exposing ``num_vertices`` and ``hubs(v)`` --
    the dict-backed :class:`HubLabeling` and the frozen
    :class:`~repro.perf.flat.FlatHubLabeling` both qualify.
    """

    def __init__(self, labeling: HubLabeling) -> None:
        self._by_distance: List[List[Tuple[float, int]]] = []
        self._lookup: List[Dict[int, float]] = []
        for v in range(labeling.num_vertices):
            items = sorted(
                (distance, hub) for hub, distance in labeling.hubs(v).items()
            )
            self._by_distance.append(items)
            self._lookup.append({hub: d for d, hub in items})

    @property
    def num_vertices(self) -> int:
        return len(self._by_distance)

    def query(self, u: int, v: int) -> QueryStats:
        """Exact 2-hop query with early termination."""
        side_u = self._by_distance[u]
        side_v = self._by_distance[v]
        look_u = self._lookup[u]
        look_v = self._lookup[v]
        total = len(side_u) + len(side_v)
        if not side_u or not side_v:
            return QueryStats(INF, 0, total)
        min_u = side_u[0][0]
        min_v = side_v[0][0]
        best = INF
        scanned = 0
        i = j = 0
        while i < len(side_u) or j < len(side_v):
            # Lower bounds on anything still unread.
            bound_u = side_u[i][0] + min_v if i < len(side_u) else INF
            bound_v = side_v[j][0] + min_u if j < len(side_v) else INF
            if best <= bound_u and best <= bound_v:
                break
            if bound_u <= bound_v:
                distance, hub = side_u[i]
                i += 1
                other = look_v.get(hub)
            else:
                distance, hub = side_v[j]
                j += 1
                other = look_u.get(hub)
            scanned += 1
            if other is not None and distance + other < best:
                best = distance + other
        return QueryStats(best, scanned, total)

    def average_scan_fraction(
        self, pairs: List[Tuple[int, int]]
    ) -> float:
        """Mean fraction of label entries touched over ``pairs``."""
        if not pairs:
            return 0.0
        return sum(
            self.query(u, v).fraction_scanned for u, v in pairs
        ) / len(pairs)
