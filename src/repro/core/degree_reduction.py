"""Degree reduction by vertex splitting (end of Section 4).

A sparse graph has constant *average* degree but may contain vertices of
arbitrarily large degree.  The paper reduces to the bounded-max-degree
case by splitting every vertex ``v`` into ``ceil(deg(v) / k)`` copies
joined by a path of weight-0 auxiliary edges (``k = ceil(m / n)`` in the
paper); each copy inherits at most ``k`` of the original edges, so the
new max degree is at most ``k + 2``, while every original distance is
preserved exactly (the weight-0 spine is free to traverse).

:func:`reduce_degree` performs the split; :func:`project_labeling` maps a
hub labeling of the reduced graph back to the original graph, as in the
proof of Theorem 1.4: each original vertex adopts the hubs of its
*representative* copy and every hub is projected to its original vertex.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..graphs.graph import Graph
from .hublabel import HubLabeling

__all__ = ["DegreeReduction", "reduce_degree", "project_labeling"]


@dataclass
class DegreeReduction:
    """The split graph together with both direction maps."""

    reduced: Graph
    #: original vertex -> its representative copy in the reduced graph.
    representative: List[int]
    #: reduced vertex -> the original vertex it came from.
    origin: List[int]
    #: the per-copy edge budget ``k`` used for the split.
    chunk: int

    @property
    def max_degree_bound(self) -> int:
        return self.chunk + 2


def reduce_degree(graph: Graph, chunk: int = None) -> DegreeReduction:
    """Split high-degree vertices into weight-0 paths of bounded copies.

    ``chunk`` is the number of original edges each copy may carry; it
    defaults to ``max(1, ceil(m / n))`` as in the paper.  The reduced
    graph has ``O(m)`` vertices and edges, max degree ``<= chunk + 2``,
    and the same metric on original vertices (weight-0 edges inside each
    spine, weight of every original edge preserved).
    """
    n = graph.num_vertices
    if chunk is None:
        if n == 0:
            chunk = 1
        else:
            chunk = max(1, math.ceil(graph.num_edges / n))
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    reduced = Graph()
    representative: List[int] = []
    origin: List[int] = []
    copies: List[List[int]] = []
    for v in range(n):
        num_copies = max(1, math.ceil(graph.degree(v) / chunk))
        ids = []
        for _ in range(num_copies):
            new = reduced.add_vertex()
            origin.append(v)
            ids.append(new)
        for a, b in zip(ids, ids[1:]):
            reduced.add_edge(a, b, 0)
        representative.append(ids[0])
        copies.append(ids)
    # Distribute each original edge to the next free slot of each side.
    slots_used = [0] * n
    for u, v, w in graph.edges():
        cu = copies[u][slots_used[u] // chunk]
        cv = copies[v][slots_used[v] // chunk]
        slots_used[u] += 1
        slots_used[v] += 1
        reduced.add_edge(cu, cv, w)
    return DegreeReduction(
        reduced=reduced,
        representative=representative,
        origin=origin,
        chunk=chunk,
    )


def project_labeling(
    reduction: DegreeReduction, labeling: HubLabeling
) -> HubLabeling:
    """Project a labeling of the reduced graph back to the original.

    Original vertex ``v`` takes the hub set of its representative copy,
    with every hub replaced by its original vertex.  Distances transfer
    verbatim because the weight-0 spine makes all copies of a vertex
    mutually at distance 0.  If the reduced labeling is a correct cover,
    so is the projection (the proof of Theorem 1.4).
    """
    if labeling.num_vertices != reduction.reduced.num_vertices:
        raise ValueError("labeling does not match the reduced graph")
    n = len(reduction.representative)
    projected = HubLabeling(n)
    for v in range(n):
        rep = reduction.representative[v]
        for hub, distance in labeling.hubs(rep).items():
            projected.add_hub(v, reduction.origin[hub], distance)
    return projected
