"""Greedy 2-hop cover construction (Cohen, Halperin, Kaplan, Zwick 2003).

The greedy algorithm repeatedly selects a *star*: a center ``w`` and two
vertex sets ``A, B`` such that adding ``w`` to the labels of ``A ∪ B``
covers every still-uncovered pair ``(u, v) ∈ A × B`` having ``w`` on a
shortest path.  Choosing the star of maximum density

    (#newly covered pairs) / (#new label entries)

yields an ``O(log n)`` approximation of the minimum total label size.
The inner densest-subgraph step is solved with the classic 2-approximate
min-degree peeling, exactly as in the original paper.

This is the strongest *quality* baseline in the library (quadratic+ time
and memory -- use on instances up to a few hundred vertices); PLL
(:mod:`repro.core.pll`) is the scalable baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..graphs.graph import Graph
from ..graphs.shortest_paths import all_pairs_distances
from ..graphs.traversal import INF
from ..obs.spans import span
from .hublabel import HubLabeling
from .pll import _report_build_rate

__all__ = ["greedy_hub_labeling"]


def greedy_hub_labeling(
    graph: Graph, *, max_rounds: Optional[int] = None
) -> HubLabeling:
    """Build a hub labeling by greedy star selection.

    Every vertex starts with itself as a hub (distance 0), which covers
    all ``(v, v)`` pairs and lets stars stay asymmetric.  ``max_rounds``
    caps the number of greedy rounds (the labeling is completed with
    trivial stars afterwards so it is always correct).

    The build reports tracing spans (``greedy.build`` with nested
    ``greedy.apsp`` / ``greedy.rounds``) and a
    ``build.labels_per_second`` gauge to the active metrics registry.
    """
    with span("greedy.build") as build_span:
        n = graph.num_vertices
        with span("greedy.apsp"):
            matrix = all_pairs_distances(graph)
        labeling = HubLabeling(n)
        for v in range(n):
            labeling.add_hub(v, v, 0)
        uncovered: Set[Tuple[int, int]] = set()
        for u in range(n):
            row = matrix[u]
            for v in range(u + 1, n):
                if row[v] != INF and labeling.query(u, v) != row[v]:
                    uncovered.add((u, v))
        with span("greedy.rounds"):
            rounds = 0
            while uncovered:
                if max_rounds is not None and rounds >= max_rounds:
                    _finish_trivially(labeling, matrix, uncovered)
                    break
                rounds += 1
                star = _best_star(n, matrix, uncovered, labeling)
                if star is None:
                    _finish_trivially(labeling, matrix, uncovered)
                    break
                w, side_a, side_b = star
                for u in side_a | side_b:
                    labeling.add_hub(u, w, matrix[u][w])
                uncovered = {
                    (u, v)
                    for (u, v) in uncovered
                    if labeling.query(u, v) != matrix[u][v]
                }
    _report_build_rate("greedy", labeling, build_span.duration)
    return labeling


def _best_star(
    n: int,
    matrix: List[List[float]],
    uncovered: Set[Tuple[int, int]],
    labeling: HubLabeling,
) -> Optional[Tuple[int, Set[int], Set[int]]]:
    """The densest star over all centers ``w`` (2-approximate per center)."""
    best_density = 0.0
    best: Optional[Tuple[int, Set[int], Set[int]]] = None
    for w in range(n):
        row_w = matrix[w]
        edges = [
            (u, v)
            for (u, v) in uncovered
            if row_w[u] != INF
            and row_w[v] != INF
            and row_w[u] + row_w[v] == matrix[u][v]
        ]
        if not edges:
            continue
        result = _densest_bipartite(edges, w, labeling)
        if result is None:
            continue
        density, side_a, side_b = result
        if density > best_density:
            best_density = density
            best = (w, side_a, side_b)
    return best


def _densest_bipartite(
    edges: List[Tuple[int, int]],
    center: int,
    labeling: HubLabeling,
) -> Optional[Tuple[float, Set[int], Set[int]]]:
    """Min-degree peeling for the densest sub-star of ``center``.

    Left side holds the smaller endpoints, right side the larger ones.
    The cost of a vertex is 0 if it already stores ``center`` as a hub
    (adding it again is free), else 1.
    """
    adjacency: Dict[Tuple[str, int], Set[Tuple[str, int]]] = {}
    for u, v in edges:
        a = ("L", u)
        b = ("R", v)
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)

    def vertex_cost(node: Tuple[str, int]) -> int:
        return 0 if labeling.hub_distance(node[1], center) is not None else 1

    alive = set(adjacency)
    edge_count = len(edges)
    cost = sum(vertex_cost(node) for node in alive)
    best_density = -1.0
    best_snapshot: Optional[Set[Tuple[str, int]]] = None
    # Peel the minimum-degree vertex, tracking the densest prefix.
    degrees = {node: len(neigh) for node, neigh in adjacency.items()}
    import heapq

    heap = [(deg, node) for node, deg in degrees.items()]
    heapq.heapify(heap)
    removed: Set[Tuple[str, int]] = set()
    while alive:
        density = edge_count / cost if cost > 0 else float(edge_count) * 2
        if edge_count > 0 and density > best_density:
            best_density = density
            best_snapshot = set(alive)
        while heap:
            deg, node = heapq.heappop(heap)
            if node in alive and degrees[node] == deg:
                break
        else:
            break
        alive.discard(node)
        removed.add(node)
        cost -= vertex_cost(node)
        for neighbor in adjacency[node]:
            if neighbor in alive:
                degrees[neighbor] -= 1
                heapq.heappush(heap, (degrees[neighbor], neighbor))
                edge_count -= 1
    if best_snapshot is None:
        return None
    side_a = {v for (side, v) in best_snapshot if side == "L"}
    side_b = {v for (side, v) in best_snapshot if side == "R"}
    return best_density, side_a, side_b


def _finish_trivially(
    labeling: HubLabeling,
    matrix: List[List[float]],
    uncovered: Set[Tuple[int, int]],
) -> None:
    """Cover any leftovers pair-by-pair (u receives v as a hub)."""
    for u, v in uncovered:
        labeling.add_hub(u, v, matrix[u][v])
