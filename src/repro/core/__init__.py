"""Hub labeling: the paper's central object and every construction on it.

* :class:`HubLabeling` -- the 2-hop label store and query engine;
* verification of the shortest-path-cover property;
* baselines: pruned landmark labeling (PLL) and the greedy 2-hop cover;
* the paper's machinery: monotone hubsets, random hitting sets for far
  pairs, the sparse threshold scheme, the Theorem 4.1 RS-based scheme,
  and degree reduction;
* closed-form bound curves for every theorem.
"""

from .hublabel import (
    HubLabeling,
    label_size_histogram,
    label_size_quantiles,
)
from .verification import (
    CoverReport,
    coverage_fraction,
    is_valid_cover,
    verify_cover,
    verify_cover_sampled,
)
from .orders import (
    betweenness_order,
    coverage_order,
    degree_order,
    eccentricity_order,
    random_order,
)
from .pll import pruned_landmark_labeling
from .pll_fast import fast_pruned_landmark_labeling
from .greedy import greedy_hub_labeling
from .monotone import is_monotone, monotone_closure, tree_path_to_root
from .hitting import HittingSetResult, build_hitting_set, hitting_set_size
from .sparse_scheme import (
    SparseSchemeResult,
    default_radius,
    sparse_hub_labeling,
)
from .rs_scheme import RSSchemeResult, default_threshold, rs_hub_labeling
from .degree_reduction import (
    DegreeReduction,
    project_labeling,
    reduce_degree,
)
from .separator_scheme import (
    grid_recursive_separator_fn,
    separator_hub_labeling,
)
from .optimal import (
    best_hierarchical_labeling,
    minimum_hub_labeling,
    minimum_total_size,
)
from .hierarchical import canonical_hub_count, is_hierarchical, order_rank
from .approximate import (
    CorrectedScheme,
    additive_approximation,
    approximation_errors,
)
from .fastquery import QueryStats, SortedHubIndex
from .pruning import prune_labeling
from .highway import HighwayEstimate, estimate_highway_dimension
from .io import (
    flat_labeling_from_bytes,
    flat_labeling_to_bytes,
    graph_from_edgelist,
    graph_to_edgelist,
    labeling_from_bytes,
    labeling_from_json,
    labeling_to_bytes,
    labeling_to_json,
)
from .bounds import (
    ambainis_sumindex_upper_bound_bits,
    gppr_general_label_bits,
    gppr_sparse_label_lower_bound_bits,
    sqrt_n_lower_bound_bits,
    theorem_11_average_hub_lower_bound,
    theorem_14_average_hub_upper_bound,
    theorem_21_hub_sum_lower_bound,
    theorem_21_node_count_bounds,
)

__all__ = [
    "HubLabeling",
    "label_size_histogram",
    "label_size_quantiles",
    "CoverReport",
    "coverage_fraction",
    "is_valid_cover",
    "verify_cover",
    "verify_cover_sampled",
    "betweenness_order",
    "coverage_order",
    "degree_order",
    "eccentricity_order",
    "random_order",
    "pruned_landmark_labeling",
    "fast_pruned_landmark_labeling",
    "greedy_hub_labeling",
    "is_monotone",
    "monotone_closure",
    "tree_path_to_root",
    "HittingSetResult",
    "build_hitting_set",
    "hitting_set_size",
    "SparseSchemeResult",
    "default_radius",
    "sparse_hub_labeling",
    "RSSchemeResult",
    "default_threshold",
    "rs_hub_labeling",
    "DegreeReduction",
    "project_labeling",
    "reduce_degree",
    "ambainis_sumindex_upper_bound_bits",
    "gppr_general_label_bits",
    "gppr_sparse_label_lower_bound_bits",
    "sqrt_n_lower_bound_bits",
    "theorem_11_average_hub_lower_bound",
    "theorem_14_average_hub_upper_bound",
    "theorem_21_hub_sum_lower_bound",
    "theorem_21_node_count_bounds",
    "grid_recursive_separator_fn",
    "separator_hub_labeling",
    "best_hierarchical_labeling",
    "minimum_hub_labeling",
    "minimum_total_size",
    "canonical_hub_count",
    "is_hierarchical",
    "order_rank",
    "HighwayEstimate",
    "estimate_highway_dimension",
    "CorrectedScheme",
    "additive_approximation",
    "approximation_errors",
    "QueryStats",
    "SortedHubIndex",
    "prune_labeling",
    "flat_labeling_from_bytes",
    "flat_labeling_to_bytes",
    "graph_from_edgelist",
    "graph_to_edgelist",
    "labeling_from_bytes",
    "labeling_from_json",
    "labeling_to_bytes",
    "labeling_to_json",
]
