"""Dynamic graphs: incremental hub-label maintenance under edge churn.

Hub labelings are expensive to build -- the hardness results reproduced
by this repository are exactly why -- so a mutating graph cannot afford
a from-scratch rebuild per edge edit.  :class:`DynamicHubLabeling`
wraps a graph plus its PLL labeling and repairs the labeling in place
on ``insert_edge`` / ``delete_edge``: the affected hub roots are
detected with label queries, their stale entries invalidated, and a
rank-restricted pruned traversal re-run from each, falling back to a
cached full rebuild once a staleness/work budget is exceeded.  Every
repaired labeling answers exactly like a from-scratch rebuild on the
mutated graph (value and type, including ``INF``).

:mod:`repro.dynamic.mutations` provides the seeded
:class:`MutationScript` edit-sequence generator that the differential
corpus, the hypothesis properties, and the churn soak harness all
share.

See ``docs/dynamic.md`` for the repair algorithm and its proof sketch.
"""

from .labeling import DynamicHubLabeling, RepairReport
from .mutations import MutationScript, apply_script, mutation_script

__all__ = [
    "DynamicHubLabeling",
    "RepairReport",
    "MutationScript",
    "apply_script",
    "mutation_script",
]
