"""Incremental PLL label repair for edge inserts and deletes.

The repair algorithm is the same for both mutation kinds:

1. **Detect** the affected hub roots with label queries against the
   *pre-mutation* labeling.  An edge ``{u, v}`` of weight ``w`` lies on
   some shortest path from root ``r`` iff ``d(r,u) + w == d(r,v)`` or
   ``d(r,v) + w == d(r,u)`` (deletion can only disturb such roots); an
   insert improves some distance from ``r`` iff ``d(r,u) + w < d(r,v)``
   or ``d(r,v) + w < d(r,u)``.  Roots outside the affected set keep
   every distance unchanged, so their label entries stay exact.
2. **Invalidate**: remove every label entry whose hub is affected --
   this covers all entries whose witness paths could have used the
   edge.
3. **Re-sweep**: re-run the pruned traversal from each affected root in
   pinned-order rank, pruning only against hubs of strictly higher
   rank (exactly the label state a static PLL sweep would see).

The resulting labeling is *answer-identical* to a from-scratch PLL
rebuild under the pinned order: all surviving and re-added entries are
exact distances, and for any pair the highest-ranked vertex on a
shortest path is either unaffected (its old entries survive and the
static cover argument applies verbatim -- a pruning witness would be a
higher-ranked vertex on a still-shortest path) or affected (its
re-sweep replays the static sweep against exact entries).  The hub
*sets* may differ from the canonical rebuild; the answers may not.

Once a single mutation touches more than ``rebuild_fraction`` of the
roots, or the accumulated affected fraction crosses
``staleness_budget``, repair is abandoned for a full rebuild served
through the optional :class:`~repro.perf.cache.LabelCache`.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.hublabel import HubLabeling
from ..core.orders import degree_order
from ..core.pll import pruned_landmark_labeling
from ..graphs.graph import Graph
from ..graphs.traversal import INF
from ..obs.catalog import (
    DYNAMIC_AFFECTED_ROOTS,
    DYNAMIC_DELETES,
    DYNAMIC_INSERTS,
    DYNAMIC_LABELS_REPAIRED,
    DYNAMIC_REBUILDS,
    DYNAMIC_REPAIR_LATENCY_SECONDS,
)
from ..obs.registry import get_registry
from ..obs.spans import span

__all__ = ["DynamicHubLabeling", "RepairReport"]


@dataclass
class RepairReport:
    """What one ``insert_edge`` / ``delete_edge`` call did."""

    op: str
    u: int
    v: int
    weight: int
    affected_roots: int
    labels_removed: int
    labels_added: int
    rebuilt: bool
    seconds: float

    def render(self) -> str:
        how = "full rebuild" if self.rebuilt else "incremental repair"
        return (
            f"{self.op} {{{self.u}, {self.v}}} w={self.weight}: "
            f"{how}, {self.affected_roots} affected roots, "
            f"-{self.labels_removed}/+{self.labels_added} labels, "
            f"{self.seconds * 1e3:.2f} ms"
        )


class DynamicHubLabeling:
    """A hub labeling that tracks edge inserts and deletes on its graph.

    The wrapper owns the graph it is given and mutates it in place;
    callers observe the evolving graph through the :attr:`graph`
    property.  The vertex order is pinned at construction (mutations
    never change the vertex set, so it stays a valid permutation),
    which keeps every repaired labeling comparable to
    ``build_flat_labels(graph, order)`` on the mutated graph.

    ``cache`` is an optional :class:`~repro.perf.cache.LabelCache`;
    when the work budget forces a full rebuild it is served (and
    persisted) through the cache, so revisiting a graph state is a
    cache hit.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        order: Optional[List[int]] = None,
        cache=None,
        rebuild_fraction: float = 0.5,
        staleness_budget: float = 4.0,
    ) -> None:
        if not 0.0 < rebuild_fraction <= 1.0:
            raise ValueError("rebuild_fraction must be in (0, 1]")
        if staleness_budget <= 0.0:
            raise ValueError("staleness_budget must be positive")
        self._graph = graph
        self._order = list(order) if order is not None else degree_order(graph)
        if sorted(self._order) != list(graph.vertices()):
            raise ValueError("order must be a permutation of the vertices")
        self._rank = [0] * graph.num_vertices
        for position, vertex in enumerate(self._order):
            self._rank[vertex] = position
        self._cache = cache
        self._rebuild_fraction = rebuild_fraction
        self._staleness_budget = staleness_budget
        self._staleness = 0.0
        self._mutations = 0
        self._labeling = self._build()
        registry = get_registry()
        if registry.enabled:
            # Pre-create the rebuild counter so a churn run that never
            # exceeds its budget still exposes dynamic.rebuilds = 0.
            registry.counter(DYNAMIC_REBUILDS)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The live (mutating) graph. Mutate it only through this class."""
        return self._graph

    @property
    def labeling(self) -> HubLabeling:
        """The current repaired labeling (do not mutate)."""
        return self._labeling

    @property
    def order(self) -> List[int]:
        """The pinned vertex order (a copy)."""
        return list(self._order)

    @property
    def mutations(self) -> int:
        """Edge edits applied so far."""
        return self._mutations

    @property
    def staleness(self) -> float:
        """Accumulated affected-root fraction since the last full build."""
        return self._staleness

    def query(self, u: int, v: int) -> float:
        """Exact distance on the mutated graph (``INF`` if disconnected)."""
        return self._labeling.query(u, v)

    def flat(self):
        """A :class:`FlatHubLabeling` snapshot of the current labeling.

        This is the hot-swap currency: hand it to
        ``QueryServer.set_oracle`` / ``ShardedQueryServer.set_oracle``
        wrapped in a fresh oracle.
        """
        from ..perf.flat import FlatHubLabeling

        return FlatHubLabeling.from_labeling(self._labeling)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int, weight: int = 1) -> RepairReport:
        """Add edge ``{u, v}`` and repair the labeling incrementally.

        Raises ``ValueError`` if the edge is already present (parallel
        edges are not stored, so a duplicate insert is almost always a
        script bug) and propagates ``add_edge``'s validation errors.
        """
        if self._graph.has_edge(u, v):
            raise ValueError(f"edge {{{u}, {v}}} already present")
        started = time.perf_counter()
        with span("dynamic.repair"):
            affected = self._affected_roots_insert(u, v, weight)
            self._graph.add_edge(u, v, weight)
            removed, added, rebuilt = self._repair_or_rebuild(affected)
        return self._report(
            "insert", u, v, weight, affected, removed, added, rebuilt,
            time.perf_counter() - started, DYNAMIC_INSERTS,
        )

    def delete_edge(self, u: int, v: int) -> RepairReport:
        """Remove edge ``{u, v}`` and repair the labeling incrementally.

        Raises ``KeyError`` if the edge is absent.
        """
        weight = self._graph.edge_weight(u, v)
        if weight is None:
            raise KeyError(f"edge {{{u}, {v}}} not present")
        started = time.perf_counter()
        with span("dynamic.repair"):
            affected = self._affected_roots_delete(u, v, weight)
            self._graph.remove_edge(u, v)
            removed, added, rebuilt = self._repair_or_rebuild(affected)
        return self._report(
            "delete", u, v, weight, affected, removed, added, rebuilt,
            time.perf_counter() - started, DYNAMIC_DELETES,
        )

    def apply(self, script) -> List[RepairReport]:
        """Apply a :class:`~repro.dynamic.mutations.MutationScript`."""
        reports = []
        for op, u, v, weight in script:
            if op == "insert":
                reports.append(self.insert_edge(u, v, weight))
            elif op == "delete":
                reports.append(self.delete_edge(u, v))
            else:
                raise ValueError(f"unknown mutation op {op!r}")
        return reports

    # ------------------------------------------------------------------
    # Repair internals
    # ------------------------------------------------------------------
    def _affected_roots_insert(self, u: int, v: int, weight: int) -> List[int]:
        """Roots whose distances the new edge improves (pre-insert view)."""
        affected = []
        labeling = self._labeling
        for r in self._graph.vertices():
            du = labeling.query(r, u)
            dv = labeling.query(r, v)
            if du + weight < dv or dv + weight < du:
                affected.append(r)
        return affected

    def _affected_roots_delete(self, u: int, v: int, weight: int) -> List[int]:
        """Roots with some shortest path through ``{u, v}`` (pre-delete)."""
        affected = []
        labeling = self._labeling
        for r in self._graph.vertices():
            du = labeling.query(r, u)
            if du == INF:
                # The edge exists, so u and v share a component; a root
                # that cannot reach u cannot route anything through it.
                continue
            dv = labeling.query(r, v)
            if du + weight == dv or dv + weight == du:
                affected.append(r)
        return affected

    def _repair_or_rebuild(self, affected: List[int]):
        n = self._graph.num_vertices
        fraction = len(affected) / n if n else 0.0
        self._mutations += 1
        self._staleness += fraction
        if (
            fraction > self._rebuild_fraction
            or self._staleness >= self._staleness_budget
        ):
            before = self._labeling.total_size()
            self._labeling = self._build()
            self._staleness = 0.0
            return before, self._labeling.total_size(), True
        removed = self._invalidate(affected)
        added = self._resweep(affected)
        return removed, added, False

    def _invalidate(self, affected: List[int]) -> int:
        """Drop every entry whose hub is affected; return the count."""
        labeling = self._labeling
        affected_set = set(affected)
        removed = 0
        for x in self._graph.vertices():
            hubs = labeling.hubs(x)
            stale = [h for h in hubs if h in affected_set]
            for h in stale:
                labeling.discard_hub(x, h)
            removed += len(stale)
        return removed

    def _resweep(self, affected: List[int]) -> int:
        """Static-semantics pruned sweeps from the affected roots."""
        labeling = self._labeling
        rank = self._rank
        sweep = (
            _ranked_pruned_dijkstra
            if self._graph.is_weighted
            else _ranked_pruned_bfs
        )
        added = 0
        for root in sorted(affected, key=rank.__getitem__):
            added += sweep(self._graph, root, labeling, rank)
        return added

    def _build(self) -> HubLabeling:
        if self._cache is not None:
            return self._cache.load_or_build(
                self._graph, list(self._order)
            ).to_labeling()
        return pruned_landmark_labeling(self._graph, list(self._order))

    def _report(
        self, op, u, v, weight, affected, removed, added, rebuilt,
        seconds, op_metric,
    ) -> RepairReport:
        registry = get_registry()
        if registry.enabled:
            registry.counter(op_metric).inc()
            registry.gauge(DYNAMIC_AFFECTED_ROOTS).set(len(affected))
            registry.counter(DYNAMIC_LABELS_REPAIRED).inc(removed + added)
            registry.histogram(DYNAMIC_REPAIR_LATENCY_SECONDS).observe(seconds)
            if rebuilt:
                registry.counter(DYNAMIC_REBUILDS).inc()
        return RepairReport(
            op=op, u=u, v=v, weight=weight,
            affected_roots=len(affected),
            labels_removed=removed, labels_added=added,
            rebuilt=rebuilt, seconds=seconds,
        )


def _ranked_pruned_bfs(
    graph: Graph, root: int, labeling: HubLabeling, rank: List[int]
) -> int:
    """Pruned BFS from ``root``, pruning only on higher-ranked hubs.

    Unlike the static sweep, the labeling already holds entries for
    hubs of *lower* rank than ``root``; counting those in the pruning
    test would break the cover property, so coverage is restricted to
    hubs ``h`` with ``rank[h] < rank[root]`` -- exactly the label state
    the static sweep would have seen.  Returns the number of entries
    added.
    """
    limit = rank[root]
    dist: List[float] = [INF] * graph.num_vertices
    dist[root] = 0
    queue = deque([root])
    root_label = labeling.hubs(root)
    added = 0
    while queue:
        u = queue.popleft()
        d = dist[u]
        if _covered_below_rank(root_label, labeling.hubs(u), d, rank, limit):
            continue
        labeling.add_hub(u, root, d)
        added += 1
        for v, _ in graph.neighbors(u):
            if dist[v] == INF:
                dist[v] = d + 1
                queue.append(v)
    return added


def _ranked_pruned_dijkstra(
    graph: Graph, root: int, labeling: HubLabeling, rank: List[int]
) -> int:
    """Weighted analogue of :func:`_ranked_pruned_bfs`."""
    limit = rank[root]
    dist: List[float] = [INF] * graph.num_vertices
    dist[root] = 0
    heap = [(0, root)]
    root_label = labeling.hubs(root)
    added = 0
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        if _covered_below_rank(root_label, labeling.hubs(u), d, rank, limit):
            continue
        labeling.add_hub(u, root, d)
        added += 1
        for v, w in graph.neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return added


def _covered_below_rank(
    root_label: Dict[int, float],
    u_label: Dict[int, float],
    d: float,
    rank: List[int],
    limit: int,
) -> bool:
    """True if hubs ranked above ``limit`` already certify ``<= d``."""
    if len(root_label) > len(u_label):
        root_label, u_label = u_label, root_label
    for hub, dr in root_label.items():
        if rank[hub] >= limit:
            continue
        du = u_label.get(hub)
        if du is not None and dr + du <= d:
            return True
    return False
