"""Seeded edge-mutation scripts for dynamic-graph harnesses.

Scripts are the shared currency of the churn tooling: the differential
mutation corpus, the hypothesis repair-vs-rebuild properties, the soak
harness, and the ``mutate`` CLI verb all replay the same
:class:`MutationScript` objects.

The generator follows the same convention as
:mod:`repro.graphs.generators`: ``seed`` is keyword-only with default
``0``, all randomness comes from one ``random.Random(seed)`` instance,
and the process-global RNG is never touched, so a ``(graph, seed)``
pair pins an edit sequence forever.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from ..graphs.graph import Graph

__all__ = ["MutationScript", "mutation_script", "apply_script"]

#: One edit: ``(op, u, v, weight)`` with ``op`` in {"insert", "delete"}.
#: ``weight`` records the deleted weight for deletes (for round-trips).
Mutation = Tuple[str, int, int, int]


@dataclass
class MutationScript:
    """A replayable edge-edit sequence for one starting graph."""

    ops: Tuple[Mutation, ...]
    seed: int = 0
    keep_connected: bool = True
    description: str = field(default="")

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Mutation]:
        return iter(self.ops)

    def counts(self) -> Tuple[int, int]:
        """``(inserts, deletes)`` in the script."""
        inserts = sum(1 for op, *_ in self.ops if op == "insert")
        return inserts, len(self.ops) - inserts


def mutation_script(
    graph: Graph,
    ops: int = 16,
    *,
    seed: int = 0,
    keep_connected: bool = True,
    insert_fraction: float = 0.5,
) -> MutationScript:
    """A seeded, valid insert/delete sequence against ``graph``.

    The script is generated against a scratch copy, so every delete
    names an edge that exists and every insert names a non-edge *at its
    point in the sequence*.  With ``keep_connected=True`` a delete that
    would split the component containing its endpoints is discarded and
    redrawn (the "kept-connected" variant -- distances stay finite if
    they started finite); with ``keep_connected=False`` any existing
    edge may go, so scripts exercise the ``INF`` answer path too.

    All randomness comes from a single ``random.Random(seed)``; the
    global RNG is untouched.  Inserted weights are 1 on unweighted
    graphs and uniform in ``1..8`` on weighted ones.
    """
    if ops < 0:
        raise ValueError("ops must be non-negative")
    if not 0.0 <= insert_fraction <= 1.0:
        raise ValueError("insert_fraction must be in [0, 1]")
    rng = random.Random(seed)
    scratch = graph.copy()
    n = scratch.num_vertices
    script: List[Mutation] = []
    for _ in range(ops):
        want_insert = rng.random() < insert_fraction
        edit = None
        if want_insert:
            edit = _draw_insert(scratch, rng, n)
            if edit is None:
                edit = _draw_delete(scratch, rng, keep_connected)
        else:
            edit = _draw_delete(scratch, rng, keep_connected)
            if edit is None:
                edit = _draw_insert(scratch, rng, n)
        if edit is None:
            break  # graph is complete or edgeless and stuck
        script.append(edit)
    return MutationScript(
        ops=tuple(script), seed=seed, keep_connected=keep_connected
    )


def apply_script(graph: Graph, script: MutationScript) -> Graph:
    """Replay ``script`` onto ``graph`` in place (and return it)."""
    for op, u, v, weight in script:
        if op == "insert":
            graph.add_edge(u, v, weight)
        elif op == "delete":
            graph.remove_edge(u, v)
        else:
            raise ValueError(f"unknown mutation op {op!r}")
    return graph


def _draw_insert(scratch: Graph, rng, n: int) -> "Mutation | None":
    """A random non-edge, or None if the graph is (nearly) complete."""
    if n < 2:
        return None
    for _ in range(64):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or scratch.has_edge(u, v):
            continue
        weight = rng.randint(1, 8) if scratch.is_weighted else 1
        scratch.add_edge(u, v, weight)
        return ("insert", min(u, v), max(u, v), weight)
    return None


def _draw_delete(scratch: Graph, rng, keep_connected: bool) -> "Mutation | None":
    """A random deletable edge, or None if none qualifies."""
    edges = list(scratch.edges())
    rng.shuffle(edges)
    for u, v, weight in edges[:64]:
        scratch.remove_edge(u, v)
        if keep_connected and not _still_reaches(scratch, u, v):
            scratch.add_edge(u, v, weight)
            continue
        return ("delete", u, v, weight)
    return None


def _still_reaches(graph: Graph, u: int, v: int) -> bool:
    """BFS reachability check after a tentative delete."""
    if u == v:
        return True
    seen = {u}
    frontier = [u]
    while frontier:
        nxt = []
        for x in frontier:
            for y, _ in graph.neighbors(x):
                if y == v:
                    return True
                if y not in seen:
                    seen.add(y)
                    nxt.append(y)
        frontier = nxt
    return False
