"""Experiment E1: regenerate Figure 1.

Figure 1 of the paper depicts ``H_{b,l}`` with ``b = 2, l = 2``
(``s = 4``) and highlights:

* the *blue* path from ``v_{0,(1,0)}`` to ``v_{4,(3,2)}``: the unique
  shortest path, of length ``4A + 4``, passing through ``v_{2,(2,1)}``
  (the point of symmetry);
* a *red* alternative of length ``4A + 8`` (the uneven split).

The runner rebuilds the graph, measures everything the caption claims,
and reports paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..graphs import count_shortest_paths, path_weight, shortest_path
from ..lowerbound import LayeredGraph
from .tables import Table

__all__ = ["Figure1Result", "run_figure1", "figure1_table"]


@dataclass
class Figure1Result:
    base_weight: int
    blue_length: int
    blue_expected: int
    blue_is_unique: bool
    blue_passes_midpoint: bool
    red_length: int
    red_expected: int
    num_vertices: int
    num_edges: int


def run_figure1() -> Figure1Result:
    lay = LayeredGraph(2, 2)
    a = lay.base_weight
    x, z = (1, 0), (3, 2)
    vx = lay.vertex(0, x)
    vz = lay.vertex(4, z)
    dist, count = count_shortest_paths(lay.graph, vx)
    blue = shortest_path(lay.graph, vx, vz)
    midpoint = lay.vertex(2, (2, 1))
    red: List[int] = [
        lay.vertex(0, (1, 0)),
        lay.vertex(1, (3, 0)),
        lay.vertex(2, (3, 2)),
        lay.vertex(3, (3, 2)),
        lay.vertex(4, (3, 2)),
    ]
    return Figure1Result(
        base_weight=a,
        blue_length=int(dist[vz]),
        blue_expected=4 * a + 4,
        blue_is_unique=count[vz] == 1,
        blue_passes_midpoint=midpoint in blue,
        red_length=path_weight(lay.graph, red),
        red_expected=4 * a + 8,
        num_vertices=lay.graph.num_vertices,
        num_edges=lay.graph.num_edges,
    )


def figure1_table(result: Figure1Result) -> Table:
    table = Table(
        "E1 / Figure 1: H_{2,2} (s=4, A=%d)" % result.base_weight,
        ["quantity", "paper", "measured", "match"],
    )
    table.add_row(
        "blue path length",
        f"4A+4 = {result.blue_expected}",
        result.blue_length,
        result.blue_length == result.blue_expected,
    )
    table.add_row(
        "blue path unique", "yes", result.blue_is_unique, result.blue_is_unique
    )
    table.add_row(
        "passes v_{2,(2,1)}",
        "yes",
        result.blue_passes_midpoint,
        result.blue_passes_midpoint,
    )
    table.add_row(
        "red path length",
        f"4A+8 = {result.red_expected}",
        result.red_length,
        result.red_length == result.red_expected,
    )
    return table
