"""Experiments E9/E12: the hub-labeling landscape and monotone hubsets.

E9 tabulates average hub-set size of every construction in the library
across the graph families the paper discusses (trees get the centroid
scheme; everything gets PLL; small instances also get the greedy
optimum-approximation; sparse graphs get the threshold scheme and the
RS scheme).  The qualitative shape to reproduce: trees are ``O(log n)``,
structured sparse graphs stay polylog-ish under good orders, and the
hard instances of Section 2 push every method toward ``n^{1-o(1)}``.

E12 measures the monotone-closure inflation against the ``(D + 1)``
factor of Section 1.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core import (
    greedy_hub_labeling,
    is_valid_cover,
    monotone_closure,
    pruned_landmark_labeling,
    rs_hub_labeling,
    sparse_hub_labeling,
)
from ..graphs import (
    Graph,
    diameter,
    grid_2d,
    random_bounded_degree_graph,
    random_sparse_graph,
    random_tree,
)
from ..labeling import tree_centroid_labeling
from ..lowerbound import build_degree3_instance
from .tables import Table

__all__ = [
    "BaselineRow",
    "run_baselines",
    "baseline_table",
    "MonotoneRow",
    "run_monotone",
    "monotone_table",
    "standard_families",
]


@dataclass
class BaselineRow:
    family: str
    n: int
    m: int
    pll_avg: float
    greedy_avg: Optional[float]
    sparse_avg: Optional[float]
    rs_avg: Optional[float]
    centroid_avg: Optional[float]
    all_valid: bool


def standard_families(scale: int = 60) -> Dict[str, Graph]:
    """The graph families of the comparison (keyed by name)."""
    from ..graphs import barabasi_albert

    side = max(3, int(round(scale ** 0.5)))
    return {
        "tree": random_tree(scale, seed=1),
        "grid": grid_2d(side, side),
        "sparse": random_sparse_graph(scale, seed=2),
        "degree3": random_bounded_degree_graph(scale, 3, seed=3),
        "scale-free": barabasi_albert(scale, 2, seed=4),
        "hard-G(1,1)": build_degree3_instance(1, 1).graph,
    }


def run_baselines(
    families: Optional[Dict[str, Graph]] = None,
    *,
    greedy_limit: int = 80,
) -> List[BaselineRow]:
    if families is None:
        families = standard_families()
    rows: List[BaselineRow] = []
    for name, graph in families.items():
        n = graph.num_vertices
        valid = True
        pll = pruned_landmark_labeling(graph)
        valid &= is_valid_cover(graph, pll)
        greedy_avg = None
        if n <= greedy_limit:
            greedy = greedy_hub_labeling(graph)
            valid &= is_valid_cover(graph, greedy)
            greedy_avg = greedy.average_size()
        sparse_avg = None
        if not graph.is_weighted:
            sparse = sparse_hub_labeling(graph, seed=1).labeling
            valid &= is_valid_cover(graph, sparse)
            sparse_avg = sparse.average_size()
        rs_avg = None
        if n <= 400:
            rs = rs_hub_labeling(graph, threshold=3, seed=1).labeling
            valid &= is_valid_cover(graph, rs)
            rs_avg = rs.average_size()
        centroid_avg = None
        if graph.num_edges == n - 1:
            centroid = tree_centroid_labeling(graph)
            valid &= is_valid_cover(graph, centroid)
            centroid_avg = centroid.average_size()
        rows.append(
            BaselineRow(
                family=name,
                n=n,
                m=graph.num_edges,
                pll_avg=pll.average_size(),
                greedy_avg=greedy_avg,
                sparse_avg=sparse_avg,
                rs_avg=rs_avg,
                centroid_avg=centroid_avg,
                all_valid=valid,
            )
        )
    return rows


def baseline_table(rows: List[BaselineRow]) -> Table:
    table = Table(
        "E9: average hub-set size by construction and family",
        [
            "family",
            "n",
            "m",
            "PLL",
            "greedy",
            "sparse-D",
            "RS-scheme",
            "centroid",
            "valid",
        ],
    )
    for r in rows:
        table.add_row(
            r.family,
            r.n,
            r.m,
            r.pll_avg,
            r.greedy_avg if r.greedy_avg is not None else "-",
            r.sparse_avg if r.sparse_avg is not None else "-",
            r.rs_avg if r.rs_avg is not None else "-",
            r.centroid_avg if r.centroid_avg is not None else "-",
            r.all_valid,
        )
    return table


@dataclass
class MonotoneRow:
    family: str
    n: int
    diameter: float
    base_total: int
    closed_total: int
    inflation: float
    factor_bound: float

    @property
    def within_bound(self) -> bool:
        return self.inflation <= self.factor_bound


def run_monotone(
    families: Optional[Dict[str, Graph]] = None,
) -> List[MonotoneRow]:
    if families is None:
        families = standard_families(scale=40)
    rows: List[MonotoneRow] = []
    for name, graph in families.items():
        labeling = pruned_landmark_labeling(graph)
        closed = monotone_closure(graph, labeling)
        diam = diameter(graph)
        base = labeling.total_size()
        rows.append(
            MonotoneRow(
                family=name,
                n=graph.num_vertices,
                diameter=diam,
                base_total=base,
                closed_total=closed.total_size(),
                inflation=closed.total_size() / base if base else 1.0,
                factor_bound=diam + 1,
            )
        )
    return rows


def monotone_table(rows: List[MonotoneRow]) -> Table:
    table = Table(
        "E12: monotone closure inflation (bound: diameter + 1)",
        ["family", "n", "diam", "sum|S|", "sum|S*|", "inflation", "bound", "ok"],
    )
    for r in rows:
        table.add_row(
            r.family,
            r.n,
            r.diameter,
            r.base_total,
            r.closed_total,
            r.inflation,
            r.factor_bound,
            r.within_bound,
        )
    return table
