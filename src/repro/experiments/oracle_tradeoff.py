"""Experiment E11: the centralized ``S * T`` trade-off (Section 1).

The paper motivates its lower bound with the open question of distance
oracles for sparse graphs on the curve ``S * T = O~(n^2)``.  The runner
measures concrete (space, average query operations) points:

* the APSP matrix (``S ~ n^2, T ~ 1``);
* hub-label oracles built from PLL (``S = 2 sum|S_v|``, ``T ~ |S_u|``);
* landmark oracles across ``k`` (``S ~ n k``, search shrinks with k).

The qualitative shape: every exact oracle lands at
``S * T >~ n^2 / polylog`` on sparse inputs -- hub labels *do not* beat
the curve, which is exactly what Theorem 1.1 predicts for the hub route.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..core import pruned_landmark_labeling
from ..graphs import Graph, random_sparse_graph
from ..oracles import HubLabelOracle, LandmarkOracle, MatrixOracle
from .tables import Table

__all__ = ["OracleRow", "run_oracles", "oracle_table"]


@dataclass
class OracleRow:
    oracle: str
    n: int
    space_words: int
    avg_query_ops: float
    space_time_product: float
    exact: bool


def _measure(oracle, graph: Graph, pairs) -> OracleRow:
    from ..graphs import shortest_path_distances

    total_ops = 0
    exact = True
    cache = {}
    for u, v in pairs:
        outcome = oracle.query(u, v)
        total_ops += outcome.operations
        if u not in cache:
            cache[u], _ = shortest_path_distances(graph, u)
        if outcome.distance != cache[u][v]:
            exact = False
    avg_ops = total_ops / len(pairs)
    return OracleRow(
        oracle=oracle.name,
        n=graph.num_vertices,
        space_words=oracle.space_words(),
        avg_query_ops=avg_ops,
        space_time_product=oracle.space_words() * avg_ops,
        exact=exact,
    )


def run_oracles(
    n: int = 120, *, num_pairs: int = 60, seed: int = 0
) -> List[OracleRow]:
    graph = random_sparse_graph(n, seed=seed)
    rng = random.Random(seed + 1)
    pairs = [
        (rng.randrange(n), rng.randrange(n)) for _ in range(num_pairs)
    ]
    rows = [_measure(MatrixOracle(graph), graph, pairs)]
    labeling = pruned_landmark_labeling(graph)
    rows.append(_measure(HubLabelOracle(labeling), graph, pairs))
    for k in (2, 8, 32):
        oracle = LandmarkOracle(graph, k, seed=seed)
        row = _measure(oracle, graph, pairs)
        row.oracle = f"landmark-k{k}"
        rows.append(row)
    return rows


def oracle_table(rows: List[OracleRow]) -> Table:
    table = Table(
        "E11: exact distance oracles on a sparse graph (S*T curve)",
        ["oracle", "n", "space (words)", "avg ops/query", "S*T", "exact"],
    )
    for r in rows:
        table.add_row(
            r.oracle,
            r.n,
            r.space_words,
            r.avg_query_ops,
            r.space_time_product,
            r.exact,
        )
    return table
