"""Experiment E5: Theorem 1.6 -- the Sum-Index protocol, end to end.

For each parameter pair the runner executes the simultaneous-message
protocol on *every* ``(a, b)`` index pair (and several shared strings),
verifying that the referee always recovers ``S[(a+b) mod m]``, and
reports the measured message sizes next to:

* the trivial protocol's ``m + log m`` bits (upper envelope);
* the known ``Omega(sqrt m)`` lower bound;
* the hub-label route's bits (what a *good* labeling would give).

The paper's inequality reads in both directions: label bits of the
graph family upper-bound ``SUMINDEX(m)`` up to the index overhead, so
any future improvement in distance labeling of sparse graphs transfers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import List, Optional

from ..core import pruned_landmark_labeling
from ..labeling import HubEncodedScheme
from ..sumindex import (
    GraphLabelingProtocol,
    SumIndexInstance,
    random_bitstring,
    run_protocol,
)
from .tables import Table

__all__ = [
    "SumIndexRow",
    "run_sum_index",
    "sum_index_table",
    "ExactComplexityRow",
    "run_exact_complexity",
    "exact_complexity_table",
]


@dataclass
class SumIndexRow:
    b: int
    ell: int
    m: int
    graph_vertices: int
    instances_checked: int
    all_correct: bool
    row_message_bits: int
    hub_message_bits: Optional[int]
    trivial_bits: int
    sqrt_lower_bound: float


def _hub_factory(graph):
    return HubEncodedScheme(pruned_landmark_labeling(graph))


def _hub_decoder(label_a, label_b):
    return HubEncodedScheme.decode(None, label_a, label_b)


def run_sum_index(
    parameters: List,
    *,
    num_strings: int = 2,
    with_hub_backend: bool = True,
) -> List[SumIndexRow]:
    rows: List[SumIndexRow] = []
    for b, ell in parameters:
        m = (2 ** (b - 1)) ** ell
        strings = [random_bitstring(m, seed=s) for s in range(num_strings)]
        # Exhaust all-ones and all-zeros too: the degenerate geometries.
        strings.append(tuple([1] * m))
        strings.append(tuple([0] * m))
        all_correct = True
        checked = 0
        row_bits = 0
        graph_vertices = 0
        for bits in strings:
            proto = GraphLabelingProtocol(b, ell)
            for a, bb in product(range(m), repeat=2):
                inst = SumIndexInstance(
                    bits=bits, alice_index=a, bob_index=bb
                )
                out, alice_bits, _ = run_protocol(proto, inst)
                checked += 1
                row_bits = max(row_bits, alice_bits)
                if out != inst.answer:
                    all_correct = False
            pruned, _ = proto._build(tuple(bits))
            graph_vertices = max(graph_vertices, pruned.graph.num_vertices)
        hub_bits: Optional[int] = None
        if with_hub_backend:
            proto = GraphLabelingProtocol(
                b, ell, scheme_factory=_hub_factory, decoder=_hub_decoder
            )
            bits = strings[0]
            for a, bb in product(range(m), repeat=2):
                inst = SumIndexInstance(
                    bits=bits, alice_index=a, bob_index=bb
                )
                out, alice_bits, _ = run_protocol(proto, inst)
                checked += 1
                hub_bits = max(hub_bits or 0, alice_bits)
                if out != inst.answer:
                    all_correct = False
        rows.append(
            SumIndexRow(
                b=b,
                ell=ell,
                m=m,
                graph_vertices=graph_vertices,
                instances_checked=checked,
                all_correct=all_correct,
                row_message_bits=row_bits,
                hub_message_bits=hub_bits,
                trivial_bits=m + max(1, (m - 1).bit_length()),
                sqrt_lower_bound=math.sqrt(m),
            )
        )
    return rows


def sum_index_table(rows: List[SumIndexRow]) -> Table:
    table = Table(
        "E5: Theorem 1.6 -- Sum-Index via distance labels of G'_{b,l}",
        [
            "b",
            "l",
            "m",
            "|V(G')|",
            "instances",
            "correct",
            "row-label bits",
            "hub-label bits",
            "trivial bits",
            "sqrt(m) LB",
        ],
    )
    for r in rows:
        table.add_row(
            r.b,
            r.ell,
            r.m,
            r.graph_vertices,
            r.instances_checked,
            r.all_correct,
            r.row_message_bits,
            r.hub_message_bits if r.hub_message_bits is not None else "-",
            r.trivial_bits,
            r.sqrt_lower_bound,
        )
    return table


@dataclass
class ExactComplexityRow:
    m: int
    exact_bits: Optional[int]
    sqrt_bound: float
    trivial_bits: int


def run_exact_complexity(ms: List[int]) -> List[ExactComplexityRow]:
    """E5b: brute-forced exact SM complexity for the tiniest instances.

    Only ``m <= 2`` is exhaustively searchable (the protocol space is
    doubly exponential); the table pins the known envelope's left edge.
    """
    from ..sumindex import exact_total_bits

    rows = []
    for m in ms:
        exact = exact_total_bits(m) if m <= 2 else None
        rows.append(
            ExactComplexityRow(
                m=m,
                exact_bits=exact,
                sqrt_bound=math.sqrt(m),
                trivial_bits=m + max(1, (m - 1).bit_length()),
            )
        )
    return rows


def exact_complexity_table(rows: List[ExactComplexityRow]) -> Table:
    table = Table(
        "E5b: exact SM complexity of SUMINDEX(m) by protocol enumeration",
        ["m", "exact total bits", "sqrt(m)", "trivial m + log m"],
    )
    for r in rows:
        table.add_row(
            r.m,
            r.exact_bits if r.exact_bits is not None else "(search capped)",
            r.sqrt_bound,
            r.trivial_bits,
        )
    return table
