"""Experiment E13: the additive-approximation + correction recipe (§1.1).

The paper explains how exact general-graph distance labels are built:
an error-{0,1,2} approximate hub labeling plus ternary correction
tables costing ``log2(3)`` bits per pair.  The runner executes the
recipe and reports:

* the measured error histogram (must be supported on {0, 1, 2});
* label-size shrinkage from hub coarsening;
* exactness of the corrected scheme;
* total bits per vertex next to the [AGHP16a] general-graph reference
  curve ``log2(3)/2 * n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core import (
    CorrectedScheme,
    additive_approximation,
    approximation_errors,
    gppr_general_label_bits,
    pruned_landmark_labeling,
)
from ..graphs import all_pairs_distances, random_sparse_graph
from .tables import Table

__all__ = ["ApproximationRow", "run_approximation", "approximation_table"]


@dataclass
class ApproximationRow:
    n: int
    exact_total: int
    coarse_total: int
    errors: List[int]
    corrected_exact: bool
    bits_per_vertex: float
    reference_bits: float

    @property
    def errors_bounded(self) -> bool:
        return len(self.errors) <= 3


def run_approximation(
    sizes: List[int], *, seed: int = 0
) -> List[ApproximationRow]:
    rows = []
    for n in sizes:
        graph = random_sparse_graph(n, seed=seed)
        exact = pruned_landmark_labeling(graph)
        coarse = additive_approximation(graph, exact, seed=seed)
        errors = approximation_errors(graph, coarse)
        scheme = CorrectedScheme.build(graph, exact, seed=seed)
        matrix = all_pairs_distances(graph)
        corrected_exact = all(
            scheme.query(u, v) == matrix[u][v]
            for u in range(n)
            for v in range(n)
        )
        rows.append(
            ApproximationRow(
                n=n,
                exact_total=exact.total_size(),
                coarse_total=coarse.total_size(),
                errors=errors,
                corrected_exact=corrected_exact,
                bits_per_vertex=scheme.total_bits_per_vertex(),
                reference_bits=gppr_general_label_bits(n),
            )
        )
    return rows


def approximation_table(rows: List[ApproximationRow]) -> Table:
    table = Table(
        "E13: additive approximation + correction tables (Section 1.1)",
        [
            "n",
            "exact sum|S|",
            "coarse sum|S|",
            "errors 0/1/2",
            "corrected exact",
            "bits/vertex",
            "log2(3)/2 n",
        ],
    )
    for r in rows:
        padded = (r.errors + [0, 0, 0])[:3]
        table.add_row(
            r.n,
            r.exact_total,
            r.coarse_total,
            "/".join(map(str, padded)),
            r.corrected_exact,
            r.bits_per_vertex,
            r.reference_bits,
        )
    return table
