"""Experiment E8: the Ruzsa-Szemeredi landscape.

Two measurements:

* progression-free set sizes -- Behrend's construction against the
  greedy (Stanley) baseline and the density guarantee
  ``N / e^{c sqrt(ln N)}``;
* RS graphs -- for growing ``q``, the certified value ``n^2 / m``
  (an *upper* witness for ``RS(n)``) against the reference envelope
  ``2^{Omega(log* n)} <= RS(n) <= 2^{O(sqrt(log n))}``, plus a full
  verification of the induced-matching partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..rs import (
    behrend_density_bound,
    behrend_set,
    build_rs_graph,
    greedy_progression_free,
    rs_lower_bound,
    rs_upper_bound,
)
from .tables import Table

__all__ = [
    "ApFreeRow",
    "run_ap_free",
    "ap_free_table",
    "RSGraphRow",
    "run_rs_graphs",
    "rs_graph_table",
]


@dataclass
class ApFreeRow:
    limit: int
    behrend_size: int
    greedy_size: int
    density_guarantee: float


def run_ap_free(limits: List[int]) -> List[ApFreeRow]:
    return [
        ApFreeRow(
            limit=limit,
            behrend_size=len(behrend_set(limit)),
            greedy_size=len(greedy_progression_free(limit))
            if limit <= 20000
            else -1,
            density_guarantee=behrend_density_bound(limit),
        )
        for limit in limits
    ]


def ap_free_table(rows: List[ApFreeRow]) -> Table:
    table = Table(
        "E8a: 3-AP-free set sizes",
        ["N", "behrend", "greedy (Stanley)", "N/e^{c sqrt(ln N)}"],
    )
    for r in rows:
        table.add_row(
            r.limit,
            r.behrend_size,
            r.greedy_size if r.greedy_size >= 0 else "-",
            r.density_guarantee,
        )
    return table


@dataclass
class RSGraphRow:
    q: int
    num_vertices: int
    num_edges: int
    num_matchings: int
    certified_rs: float
    envelope_low: float
    envelope_high: float
    verified: bool


def run_rs_graphs(qs: List[int], *, verify: bool = True) -> List[RSGraphRow]:
    rows: List[RSGraphRow] = []
    for q in qs:
        rs = build_rs_graph(q)
        n = rs.num_vertices
        rows.append(
            RSGraphRow(
                q=q,
                num_vertices=n,
                num_edges=rs.num_edges,
                num_matchings=rs.num_matchings,
                certified_rs=rs.density_ratio(),
                envelope_low=rs_lower_bound(n),
                envelope_high=rs_upper_bound(n),
                verified=rs.verify() if verify else True,
            )
        )
    return rows


def rs_graph_table(rows: List[RSGraphRow]) -> Table:
    table = Table(
        "E8b: RS graphs (bipartite midpoint construction)",
        [
            "q",
            "n",
            "m",
            "matchings (<= n)",
            "n^2/m (RS witness)",
            "2^{log* n}",
            "e^{c sqrt(ln n)}",
            "verified",
        ],
    )
    for r in rows:
        table.add_row(
            r.q,
            r.num_vertices,
            r.num_edges,
            r.num_matchings,
            r.certified_rs,
            r.envelope_low,
            r.envelope_high,
            r.verified,
        )
    return table
