"""Experiment E14: bits per label across distance-labeling schemes.

The paper's upper bounds are stated in hub count *and* in bits
(Section 1: `O(n/log n · log log n)` bits for sparse graphs, `log2(3)/2 n`
for general graphs, `O(log^2 n)` for trees).  This runner measures the
library's encoded schemes against those reference curves:

* trivial row scheme                -- `O(n log diam)` bits;
* incremental row scheme            -- `O(n)` bits (unit graphs);
* hub-encoded PLL                   -- structure-adaptive;
* hub-encoded tree centroid (trees) -- `O(log^2 n)` bits;
* the `sqrt(n)` lower bound of [GPPR04] as the floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..core import (
    gppr_sparse_label_lower_bound_bits,
    pruned_landmark_labeling,
)
from ..graphs import random_sparse_graph, random_tree
from ..labeling import (
    DistanceRowScheme,
    HubEncodedScheme,
    IncrementalRowScheme,
    tree_centroid_labeling,
)
from .tables import Table

__all__ = ["BitSizeRow", "run_bit_sizes", "bit_size_table"]


@dataclass
class BitSizeRow:
    family: str
    n: int
    row_bits: float
    incremental_bits: Optional[float]
    hub_bits: float
    centroid_bits: Optional[float]
    sqrt_floor: float
    log2_sq: float

    @property
    def all_exact(self) -> bool:
        return True  # schemes are exact by construction; tests verify


def run_bit_sizes(sizes: List[int], *, seed: int = 0) -> List[BitSizeRow]:
    rows = []
    for n in sizes:
        for family in ("sparse", "tree"):
            if family == "sparse":
                graph = random_sparse_graph(n, seed=seed)
            else:
                graph = random_tree(n, seed=seed)
            row_scheme = DistanceRowScheme(graph)
            hub_scheme = HubEncodedScheme(pruned_landmark_labeling(graph))
            incremental = (
                IncrementalRowScheme(graph)
                if not graph.is_weighted
                else None
            )
            centroid_bits = None
            if family == "tree":
                centroid_bits = HubEncodedScheme(
                    tree_centroid_labeling(graph)
                ).stats().average_bits
            rows.append(
                BitSizeRow(
                    family=family,
                    n=n,
                    row_bits=row_scheme.stats().average_bits,
                    incremental_bits=(
                        incremental.stats().average_bits
                        if incremental
                        else None
                    ),
                    hub_bits=hub_scheme.stats().average_bits,
                    centroid_bits=centroid_bits,
                    sqrt_floor=gppr_sparse_label_lower_bound_bits(n),
                    log2_sq=math.log2(n) ** 2,
                )
            )
    return rows


def bit_size_table(rows: List[BitSizeRow]) -> Table:
    table = Table(
        "E14: average bits per label across schemes",
        [
            "family",
            "n",
            "row O(n log D)",
            "incremental O(n)",
            "hub-PLL",
            "centroid",
            "sqrt(n) LB",
            "log^2 n",
        ],
    )
    for r in rows:
        table.add_row(
            r.family,
            r.n,
            r.row_bits,
            r.incremental_bits if r.incremental_bits is not None else "-",
            r.hub_bits,
            r.centroid_bits if r.centroid_bits is not None else "-",
            r.sqrt_floor,
            r.log2_sq,
        )
    return table
